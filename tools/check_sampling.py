#!/usr/bin/env python3
"""CI gates for sampled simulation (docs/SAMPLING.md).

Two subcommands:

  compare --exact FILE --sampled FILE [--max-rel-err PCT]
      FILE are result-cache CSVs (bench --cache) from one sweep run
      twice: once with --sample exact and once sampled.  The sweep
      must include the `baseline` policy.  Cells are matched by
      their cache key minus the version/fingerprint prefix (the
      sampling knobs are fingerprinted, so the prefixes never match
      across modes), then turned into figure points: per policy and
      benchmark, the policy-over-baseline time and energy ratios —
      exactly the quantities fig04/fig07 plot.  Both runs share
      probe placement, so the phase-sampling error common to the
      numerator and denominator cancels out of the point (see
      docs/SAMPLING.md).  Every figure point must satisfy both
      gates: the sampled ratio within --max-rel-err percent of the
      exact ratio, and the exact ratio inside the sampled point's
      95% confidence interval (propagated from the two cells' CIs;
      conservative, since it ignores their positive correlation).

  speedup --json FILE [--min RATIO]
      FILE is bench_throughput's --json output (BENCH_sim.json).
      The exact cycle-simulation benchmark must be at least RATIO
      times slower per iteration than the checkpointed sampled one.

Exit 0 when every gate holds, 1 otherwise, 2 on usage/input errors.
"""

import argparse
import json
import math
import sys
from pathlib import Path

# Payload cells per cache line, in exp::outcomeToLine order.
NUM_LINE_FIELDS = 13
F_TIME_PS = 0
F_ENERGY_NJ = 1
F_TIME_CI_PS = 11
F_ENERGY_CI_NJ = 12


def read_cache(path):
    """cell id (key minus 'v<N>|c<hex>|') -> payload float list."""
    cells = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        parts = line.split(",")
        if len(parts) <= NUM_LINE_FIELDS:
            continue
        try:
            payload = [float(v) for v in parts[-NUM_LINE_FIELDS:]]
        except ValueError:
            continue
        key = ",".join(parts[:-NUM_LINE_FIELDS])
        fields = key.split("|")
        if len(fields) < 3:
            continue
        cells["|".join(fields[2:])] = payload
    return cells


def check_point(cell, exact_p, exact_b, sampled_p, sampled_b,
                max_rel_err, failures):
    """Gate one figure point: the policy cell's time and energy
    ratios over its benchmark's baseline cell."""
    for label, vi, ci in (("time", F_TIME_PS, F_TIME_CI_PS),
                          ("energy", F_ENERGY_NJ, F_ENERGY_CI_NJ)):
        pe, pb = exact_p[vi], exact_b[vi]
        ps, bs = sampled_p[vi], sampled_b[vi]
        if pe == 0.0 or pb == 0.0 or ps == 0.0 or bs == 0.0:
            continue
        rho_e = pe / pb
        rho_s = ps / bs
        err = abs(rho_s - rho_e) / abs(rho_e)
        if err > max_rel_err / 100.0:
            failures.append(
                "%s: %s ratio error %.3f%% exceeds %.3f%% "
                "(exact %.6f, sampled %.6f)"
                % (cell, label, err * 100.0, max_rel_err,
                   rho_e, rho_s))
        half = abs(rho_s) * math.sqrt(
            (sampled_p[ci] / ps) ** 2 + (sampled_b[ci] / bs) ** 2)
        if abs(rho_s - rho_e) > half:
            failures.append(
                "%s: exact %s ratio %.6f outside the sampled 95%% "
                "CI %.6f +/- %.6f"
                % (cell, label, rho_e, rho_s, half))


def cmd_compare(args):
    exact = read_cache(args.exact)
    sampled = read_cache(args.sampled)
    matched = sorted(set(exact) & set(sampled))
    if not matched:
        print("check_sampling: no cells matched between %s and %s"
              % (args.exact, args.sampled), file=sys.stderr)
        return 2
    # benchmark -> its baseline cell, per side.
    base = {}
    for cell in matched:
        fields = cell.split("|")
        if len(fields) >= 2 and fields[0] == "baseline":
            base[fields[1]] = (exact[cell], sampled[cell])
    failures = []
    points = 0
    for cell in matched:
        fields = cell.split("|")
        if len(fields) < 2 or fields[0] == "baseline":
            continue
        if fields[1] not in base:
            print("check_sampling: no baseline cell for %s" % cell,
                  file=sys.stderr)
            return 2
        exact_b, sampled_b = base[fields[1]]
        points += 1
        check_point(cell, exact[cell], exact_b, sampled[cell],
                    sampled_b, args.max_rel_err, failures)
    if points == 0:
        print("check_sampling: no figure points (sweep must "
              "include baseline plus at least one policy)",
              file=sys.stderr)
        return 2
    for f in failures:
        print("FAIL %s" % f)
    print("check_sampling: %d figure point(s) compared, "
          "%d failure(s)" % (points, len(failures)))
    return 1 if failures else 0


def cmd_speedup(args):
    doc = json.loads(Path(args.json).read_text(encoding="utf-8"))
    rows = {r["name"]: r for r in doc.get("benchmarks", [])}
    if args.exact not in rows or args.sampled not in rows:
        print("check_sampling: %s must contain %s and %s"
              % (args.json, args.exact, args.sampled),
              file=sys.stderr)
        return 2
    if rows[args.sampled].get("mode") != "sampled":
        print("check_sampling: %s row is not sampled mode"
              % args.sampled, file=sys.stderr)
        return 2
    slow = rows[args.exact]["wall_ms"]
    fast = rows[args.sampled]["wall_ms"]
    if fast <= 0.0:
        print("check_sampling: non-positive wall_ms for %s"
              % args.sampled, file=sys.stderr)
        return 2
    ratio = slow / fast
    print("check_sampling: %s %.3f ms / %s %.3f ms = %.2fx "
          "(gate %.2fx)"
          % (args.exact, slow, args.sampled, fast, ratio, args.min))
    if ratio < args.min:
        print("FAIL per-cell speedup %.2fx below the %.2fx gate"
              % (ratio, args.min))
        return 1
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    cmp_p = sub.add_parser("compare")
    cmp_p.add_argument("--exact", required=True)
    cmp_p.add_argument("--sampled", required=True)
    cmp_p.add_argument("--max-rel-err", type=float, default=2.0,
                       help="max |sampled-exact|/exact, percent")
    cmp_p.set_defaults(fn=cmd_compare)
    spd_p = sub.add_parser("speedup")
    spd_p.add_argument("--json", required=True)
    spd_p.add_argument("--min", type=float, default=5.0)
    spd_p.add_argument("--exact", default="BM_CycleSimulation")
    spd_p.add_argument("--sampled",
                       default="BM_CycleSimulationCheckpointed")
    spd_p.set_defaults(fn=cmd_speedup)
    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
