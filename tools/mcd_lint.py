#!/usr/bin/env python3
"""mcd_lint: enforce the repo's determinism/caching/registration
contracts as hard errors.

Every hard bug in this repro's history was an invariant the compiler
cannot see: config knobs missing from the memo-cache fingerprint,
registrar object files the linker could drop, locale-sensitive double
formatting on cache/wire paths.  This pass parses the C++ sources and
CMake lists directly (no compiler needed) and checks:

  fingerprint-complete  every SimConfig/PowerConfig/ExpConfig/
                        ChipConfig field is hashed in
                        exp::configFingerprint or carries an allow
                        annotation explaining why not
  cache-version-pin     a fingerprint-affecting diff must come with a
                        CACHE_VERSION bump (field-list digest pinned in
                        tools/mcd_lint_pins.json)
  determinism           no rand()/srand()/std::random_device/time()/
                        gettimeofday/default-seeded std RNG engines
                        anywhere; no std::hash near cache-key/wire code
  locale-safety         no ad-hoc precision()/setprecision/imbue() on
                        the cache and MCD/2 wire paths (src/exp/,
                        src/srv/) — doubles go through util::fmtDouble17
  registration          every .cc under src/control/policies/,
                        src/workload/workloads/ and src/chip/policies/
                        contains its MCD_REGISTER_* macro and is
                        listed in the OBJECT-library CMakeLists
  lint-docs             every rule above has a section in
                        docs/LINTING.md and is pinned in
                        tests/test_docs.cc

Suppressions (see docs/LINTING.md): on the offending line or in the
contiguous comment block directly above it,

    // mcd-lint: allow(<rule>): <reason>

or, once anywhere in a file, for the whole file:

    // mcd-lint: allow-file(<rule>): <reason>

Findings print as `<path>:<line>: [<rule>] <message>` and exit 1.

Run from anywhere:  python3 tools/mcd_lint.py --check-all
After a deliberate fingerprint change (CACHE_VERSION bumped):
                    python3 tools/mcd_lint.py --update-pins
"""

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

PIN_FILE = "tools/mcd_lint_pins.json"
FINGERPRINT_CC = "src/exp/experiment.cc"
LINT_DOC = "docs/LINTING.md"
LINT_DOC_TEST = "tests/test_docs.cc"

# struct name -> (header, variable prefix inside configFingerprint)
FINGERPRINT_STRUCTS = {
    "SimConfig": ("src/sim/config.hh", "s"),
    "SamplingConfig": ("src/sim/sampling.hh", "sp"),
    "PowerConfig": ("src/power/power.hh", "p"),
    "ExpConfig": ("src/exp/experiment.hh", "cfg"),
    "ChipConfig": ("src/chip/config.hh", "ch"),
    "LearnedConfig": ("src/control/learned.hh", "ln"),
    "TournamentConfig": ("src/exp/tournament.hh", "tn"),
}

# directories whose .cc/.hh files the determinism rule scans
DETERMINISM_DIRS = ["src", "bench", "tests", "tools", "examples"]
# subtrees where std::hash is additionally banned (anything here is
# one refactor away from a persisted key or a wire message)
STD_HASH_DIRS = ["src/exp", "src/srv", "src/workload", "src/control",
                 "src/chip"]
# cache/wire formatting paths for the locale-safety rule
LOCALE_DIRS = ["src/exp", "src/srv"]

REGISTRATION = [
    ("src/control/policies", "MCD_REGISTER_POLICY",
     "src/control/CMakeLists.txt", "mcd_policies"),
    ("src/workload/workloads", "MCD_REGISTER_WORKLOAD",
     "src/workload/CMakeLists.txt", "mcd_workloads"),
    ("src/chip/policies", "MCD_REGISTER_POLICY",
     "src/chip/CMakeLists.txt", "mcd_chip_policies"),
]

RULES = {
    "fingerprint-complete":
        "every config field is hashed in exp::configFingerprint "
        "or carries an allow annotation",
    "cache-version-pin":
        "fingerprint-affecting diffs come with a CACHE_VERSION bump",
    "determinism":
        "no wall-clock, unseeded or implementation-defined "
        "randomness in simulation, cache or wire code",
    "locale-safety":
        "doubles on cache/wire paths go through util::fmtDouble17, "
        "not ad-hoc stream state",
    "registration":
        "self-registering .cc files carry their MCD_REGISTER_* "
        "macro and are listed in the OBJECT library",
    "lint-docs":
        "every lint rule is documented in docs/LINTING.md and "
        "pinned in tests/test_docs.cc",
}

ALLOW = re.compile(r"mcd-lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE = re.compile(r"mcd-lint:\s*allow-file\(([a-z-]+)\)")


class Findings:
    def __init__(self, root):
        self.root = root
        self.items = []

    def add(self, path, line, rule, message):
        rel = path.relative_to(self.root) if path.is_absolute() else path
        self.items.append((str(rel), line, rule, message))


class Source:
    """One source file: raw text, comment/string-stripped text (same
    length and line numbering, stripped spans blanked with spaces), and
    the suppression annotations found in comments."""

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.stripped = strip_comments_and_strings(text)
        self.raw_lines = text.split("\n")
        self.lines = self.stripped.split("\n")
        self.file_allows = set(ALLOW_FILE.findall(text))

    def allowed(self, lineno, rule):
        """True if `rule` is suppressed at 1-based `lineno`: file-wide
        allow-file, an allow on the line itself, or an allow in the
        contiguous comment lines directly above it."""
        if rule in self.file_allows:
            return True
        i = lineno - 1
        if i < len(self.raw_lines) and _line_allows(
                self.raw_lines[i], rule):
            return True
        j = i - 1
        while j >= 0:
            raw = self.raw_lines[j].strip()
            is_comment = raw.startswith(("//", "*", "/*", "/**")) or \
                raw.endswith("*/")
            if not is_comment:
                break
            if _line_allows(raw, rule):
                return True
            j -= 1
        return False


def _line_allows(line, rule):
    return any(m == rule for m in ALLOW.findall(line))


def strip_comments_and_strings(text):
    """Blank out //, /*...*/ comments and "..."/'...' literals,
    preserving every newline so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "dquote"
                out.append('"')
                i += 1
            elif c == "'":
                # A ' directly after an identifier/digit character is
                # a C++14 digit separator (150'000), not a char
                # literal.
                prev = text[i - 1] if i > 0 else ""
                if prev.isalnum() or prev == "_":
                    out.append("'")
                else:
                    state = "squote"
                    out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # dquote / squote
            quote = '"' if state == "dquote" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def load(root, rel):
    path = root / rel
    if not path.is_file():
        return None
    return Source(path, path.read_text(encoding="utf-8"))


def lineno_at(text, offset):
    return text.count("\n", 0, offset) + 1


# ------------------------------------------------------------------ #
# fingerprint-complete / cache-version-pin                           #
# ------------------------------------------------------------------ #

FIELD = re.compile(
    r"^\s*(?:[A-Za-z_][\w:<>,\s]*[&\s])\s*([A-Za-z_]\w*)\s*(?:=[^;]*)?;")


def struct_fields(src, struct_name):
    """(name, lineno) for every data member at depth 1 of the struct
    body.  Methods and constructors are skipped (their declaration
    lines contain parentheses; their bodies sit at depth >= 2)."""
    m = re.search(r"\bstruct\s+%s\b[^;{]*\{" % struct_name,
                  src.stripped)
    if not m:
        return None
    start = m.end()
    depth = 1
    i = start
    while i < len(src.stripped) and depth > 0:
        if src.stripped[i] == "{":
            depth += 1
        elif src.stripped[i] == "}":
            depth -= 1
        i += 1
    body = src.stripped[start:i - 1]
    base_line = lineno_at(src.stripped, start)
    fields = []
    depth = 0
    for k, line in enumerate(body.split("\n")):
        at_depth = depth
        depth += line.count("{") - line.count("}")
        if at_depth != 0 or "(" in line:
            continue
        fm = FIELD.match(line)
        if fm and fm.group(1) not in ("public", "private", "return"):
            fields.append((fm.group(1), base_line + k))
    return fields


def fingerprint_body(src):
    m = re.search(r"\bconfigFingerprint\s*\([^)]*\)\s*\{", src.stripped)
    if not m:
        return None, 0
    start = m.end()
    depth = 1
    i = start
    while i < len(src.stripped) and depth > 0:
        if src.stripped[i] == "{":
            depth += 1
        elif src.stripped[i] == "}":
            depth -= 1
        i += 1
    return src.stripped[start:i - 1], lineno_at(src.stripped, start)


def fingerprint_digest(body):
    """Digest of the ordered hash calls: the f.<kind>() sequence and
    every s./sp./p./cfg./ch. member token, in source order.  Any field
    joining, leaving or reordering — or an int/float encoding change —
    changes the digest; whitespace and comments do not."""
    tokens = re.findall(
        r"f\.(?:u64|i64|f64)|\b(?:sp|s|p|cfg|ch|ln|tn)\.[A-Za-z_]\w*",
        body)
    blob = "\n".join(tokens).encode()
    return hashlib.sha256(blob).hexdigest()


def check_fingerprint(root, findings):
    cc = load(root, FINGERPRINT_CC)
    if cc is None:
        findings.add(Path(FINGERPRINT_CC), 1, "fingerprint-complete",
                     "missing file (looked for exp::configFingerprint"
                     " here)")
        return
    body, body_line = fingerprint_body(cc)
    if body is None:
        findings.add(Path(FINGERPRINT_CC), 1, "fingerprint-complete",
                     "configFingerprint() definition not found")
        return
    hashed = set(
        re.findall(r"\b((?:sp|s|p|cfg|ch|ln|tn)\.[A-Za-z_]\w*)\b",
                   body))

    for struct, (header, prefix) in FINGERPRINT_STRUCTS.items():
        src = load(root, header)
        if src is None:
            findings.add(Path(header), 1, "fingerprint-complete",
                         "missing file (declares %s)" % struct)
            continue
        fields = struct_fields(src, struct)
        if fields is None:
            findings.add(src.path, 1, "fingerprint-complete",
                         "struct %s not found" % struct)
            continue
        for name, lineno in fields:
            if "%s.%s" % (prefix, name) in hashed:
                continue
            if src.allowed(lineno, "fingerprint-complete"):
                continue
            findings.add(
                src.path, lineno, "fingerprint-complete",
                "%s::%s is not hashed in exp::configFingerprint "
                "(%s) and carries no allow annotation — a knob that "
                "shapes outcomes but misses the fingerprint lets "
                "differently-configured runs exchange cache lines"
                % (struct, name, FINGERPRINT_CC))

    check_version_pin(root, cc, body, findings)


def cache_version(cc):
    m = re.search(r"\bCACHE_VERSION\s*=\s*(\d+)\s*;", cc.stripped)
    return int(m.group(1)) if m else None


def check_version_pin(root, cc, body, findings):
    version = cache_version(cc)
    if version is None:
        findings.add(cc.path, 1, "cache-version-pin",
                     "CACHE_VERSION constant not found")
        return
    digest = fingerprint_digest(body)
    pin_path = root / PIN_FILE
    if not pin_path.is_file():
        findings.add(Path(PIN_FILE), 1, "cache-version-pin",
                     "pin file missing; run tools/mcd_lint.py "
                     "--update-pins to create it")
        return
    pins = json.loads(pin_path.read_text(encoding="utf-8"))
    if version == pins.get("cache_version"):
        if digest != pins.get("fingerprint_digest"):
            findings.add(
                cc.path, 1, "cache-version-pin",
                "configFingerprint changed but CACHE_VERSION is "
                "still %d — bump it (old cache lines must be "
                "ignored, never misread) and run --update-pins"
                % version)
    else:
        findings.add(
            Path(PIN_FILE), 1, "cache-version-pin",
            "CACHE_VERSION is %d but the pin records %s; run "
            "tools/mcd_lint.py --update-pins and commit the result"
            % (version, pins.get("cache_version")))


def update_pins(root):
    cc = load(root, FINGERPRINT_CC)
    if cc is None:
        print("error: %s not found" % FINGERPRINT_CC, file=sys.stderr)
        return 2
    body, _ = fingerprint_body(cc)
    version = cache_version(cc)
    if body is None or version is None:
        print("error: configFingerprint/CACHE_VERSION not found in %s"
              % FINGERPRINT_CC, file=sys.stderr)
        return 2
    digest = fingerprint_digest(body)
    pin_path = root / PIN_FILE
    if pin_path.is_file():
        pins = json.loads(pin_path.read_text(encoding="utf-8"))
        if (pins.get("cache_version") == version
                and pins.get("fingerprint_digest") != digest):
            print("refusing to update pins: configFingerprint "
                  "changed but CACHE_VERSION is still %d — bump it "
                  "first (see docs/LINTING.md)" % version,
                  file=sys.stderr)
            return 1
    pin_path.parent.mkdir(parents=True, exist_ok=True)
    pin_path.write_text(
        json.dumps({"cache_version": version,
                    "fingerprint_digest": digest},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print("pinned CACHE_VERSION %d, fingerprint %s..."
          % (version, digest[:12]))
    return 0


# ------------------------------------------------------------------ #
# determinism / locale-safety                                        #
# ------------------------------------------------------------------ #

DETERMINISM_BANS = [
    (re.compile(r"(?<![\w.>])rand\s*\("),
     "rand() is seedless global state; draw from a seeded engine "
     "owned by the simulation"),
    (re.compile(r"(?<![\w.>])srand\s*\("),
     "srand() mutates global RNG state; seed an engine instance "
     "instead"),
    (re.compile(r"std::random_device"),
     "std::random_device is nondeterministic; seeds come from "
     "config (e.g. SimConfig::jitterSeed)"),
    (re.compile(r"(?<![\w.>])gettimeofday\b"),
     "wall-clock time must not reach simulation or cache state"),
    (re.compile(r"(?<![\w.>:])time\s*\(\s*(?:NULL|nullptr|0|&|\))"),
     "time() makes output depend on when the run happened"),
    (re.compile(r"std::time\s*\("),
     "std::time() makes output depend on when the run happened"),
    (re.compile(r"std::(?:mt19937(?:_64)?|minstd_rand0?|"
                r"default_random_engine|ranlux\w+|knuth_b)"
                r"\s+\w+\s*;"),
     "default-constructed standard RNG engine; pass an explicit "
     "seed so runs are reproducible"),
]

STD_HASH = re.compile(r"std::hash\s*<")

LOCALE_BANS = [
    (re.compile(r"\bsetprecision\s*\("),
     "stream precision on a cache/wire path; route doubles through "
     "util::fmtDouble17"),
    (re.compile(r"(?<!\w)precision\s*\("),
     "stream precision on a cache/wire path; route doubles through "
     "util::fmtDouble17"),
    (re.compile(r"\bimbue\s*\("),
     "per-stream locale fiddling on a cache/wire path; the "
     "util/text.hh helpers already guarantee the classic locale"),
]


def cpp_files(root, rel_dirs):
    for rel in rel_dirs:
        base = root / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cc", ".hh") and path.is_file():
                if "build" in path.parts or ".git" in path.parts:
                    continue
                yield path


def scan_patterns(src, bans, rule, findings):
    for pattern, why in bans:
        for m in pattern.finditer(src.stripped):
            lineno = lineno_at(src.stripped, m.start())
            if src.allowed(lineno, rule):
                continue
            findings.add(src.path, lineno, rule,
                         "%s (%s)" % (m.group(0).strip(), why))


def check_determinism(root, findings):
    hash_dirs = [root / d for d in STD_HASH_DIRS]
    for path in cpp_files(root, DETERMINISM_DIRS):
        src = Source(path, path.read_text(encoding="utf-8"))
        scan_patterns(src, DETERMINISM_BANS, "determinism", findings)
        if any(d in path.parents for d in hash_dirs):
            for m in STD_HASH.finditer(src.stripped):
                lineno = lineno_at(src.stripped, m.start())
                if src.allowed(lineno, "determinism"):
                    continue
                findings.add(
                    src.path, lineno, "determinism",
                    "std::hash is implementation-defined and may "
                    "change across libraries; cache keys and wire "
                    "identities use util::fnv1a64")


def check_locale(root, findings):
    for path in cpp_files(root, LOCALE_DIRS):
        src = Source(path, path.read_text(encoding="utf-8"))
        scan_patterns(src, LOCALE_BANS, "locale-safety", findings)


# ------------------------------------------------------------------ #
# registration                                                       #
# ------------------------------------------------------------------ #

def object_library_sources(cmake_text, target):
    m = re.search(r"add_library\s*\(\s*%s\s+OBJECT\b([^)]*)\)" % target,
                  cmake_text)
    if m is None:
        return None
    sources = set()
    for token in m.group(1).split():
        if not token.startswith("#"):
            sources.add(token)
    return sources


def check_registration(root, findings):
    for rel_dir, macro, cmake_rel, target in REGISTRATION:
        base = root / rel_dir
        if not base.is_dir():
            continue
        cmake_path = root / cmake_rel
        cmake_text = cmake_path.read_text(encoding="utf-8") \
            if cmake_path.is_file() else ""
        listed = object_library_sources(cmake_text, target)
        macro_call = re.compile(r"\b%s\s*\(" % macro)
        for path in sorted(base.glob("*.cc")):
            src = Source(path, path.read_text(encoding="utf-8"))
            if not macro_call.search(src.stripped) and \
                    "registration" not in src.file_allows:
                findings.add(
                    path, 1, "registration",
                    "no %s(...) call — a factory file that never "
                    "registers is dead weight; annotate "
                    "`mcd-lint: allow-file(registration)` if a "
                    "custom registrar covers it" % macro)
            entry = "%s/%s" % (base.name, path.name)
            if listed is None:
                findings.add(
                    Path(cmake_rel), 1, "registration",
                    "add_library(%s OBJECT ...) not found — "
                    "self-registering objects must be injected via "
                    "the OBJECT library or the linker drops them"
                    % target)
            elif entry not in listed:
                findings.add(
                    Path(cmake_rel), 1, "registration",
                    "%s is not listed in add_library(%s OBJECT ...)"
                    " — its static registrar would be silently "
                    "dropped from the archive at link time"
                    % (entry, target))


# ------------------------------------------------------------------ #
# lint-docs                                                          #
# ------------------------------------------------------------------ #

def check_lint_docs(root, findings):
    doc_path = root / LINT_DOC
    if not doc_path.is_file():
        findings.add(Path(LINT_DOC), 1, "lint-docs",
                     "missing — every enforced invariant must be "
                     "documented (docs/LINTING.md)")
        return
    text = doc_path.read_text(encoding="utf-8")
    sections = set(re.findall(r"^##\s+`([a-z-]+)`", text,
                              re.MULTILINE))
    for rule in RULES:
        if rule not in sections:
            findings.add(Path(LINT_DOC), 1, "lint-docs",
                         "no `## \\`%s\\`` section documenting that "
                         "rule" % rule)
    for extra in sorted(sections - set(RULES)):
        findings.add(Path(LINT_DOC), 1, "lint-docs",
                     "documents unknown rule `%s` (stale doc or "
                     "typo)" % extra)
    test_path = root / LINT_DOC_TEST
    test_text = test_path.read_text(encoding="utf-8") \
        if test_path.is_file() else ""
    for rule in RULES:
        if rule not in test_text:
            findings.add(Path(LINT_DOC_TEST), 1, "lint-docs",
                         "rule `%s` is not pinned here — the test "
                         "keeps code, doc and lint in sync" % rule)


# ------------------------------------------------------------------ #
# driver                                                             #
# ------------------------------------------------------------------ #

def run_checks(root):
    findings = Findings(root)
    check_fingerprint(root, findings)
    check_determinism(root, findings)
    check_locale(root, findings)
    check_registration(root, findings)
    check_lint_docs(root, findings)
    return findings


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="mcd_lint.py",
        description="repo-invariant static analysis "
                    "(see docs/LINTING.md)")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root to lint (default: the "
                         "checkout containing this script)")
    ap.add_argument("--check-all", action="store_true",
                    help="run every rule (the default action)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule ids and one-line summaries")
    ap.add_argument("--update-pins", action="store_true",
                    help="re-pin the fingerprint digest after a "
                         "deliberate, version-bumped change")
    args = ap.parse_args(argv)
    root = args.root.resolve()

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-21s %s" % (rule, RULES[rule]))
        return 0
    if args.update_pins:
        return update_pins(root)

    findings = run_checks(root)
    for path, line, rule, message in sorted(findings.items):
        print("%s:%d: [%s] %s" % (path, line, rule, message))
    if findings.items:
        print("%d finding(s)" % len(findings.items), file=sys.stderr)
        return 1
    print("mcd_lint: %d rules clean" % len(RULES), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
