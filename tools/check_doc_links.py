#!/usr/bin/env python3
"""Fail on dangling relative links in the repo's Markdown files.

Scans every *.md under the repository root (skipping build trees and
dot-directories) for inline links/images `[text](target)` and
reference definitions `[id]: target`, and verifies that relative
targets resolve to an existing file or directory.  http(s)/mailto
links and bare in-page anchors are skipped; an in-file anchor suffix
(`file.md#section`) is checked against the file only.

Run from anywhere:  python3 tools/check_doc_links.py
CI runs it as the docs gate.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
REFDEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_DIRS = {"build", ".git", ".claude"}


def targets(text):
    code_free = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    code_free = re.sub(r"`[^`]*`", "", code_free)
    for match in LINK.finditer(code_free):
        yield match.group(1)
    for match in REFDEF.finditer(code_free):
        yield match.group(1)


def main():
    root = Path(__file__).resolve().parent.parent
    bad = []
    md_files = [
        p
        for p in root.rglob("*.md")
        if not any(part in SKIP_DIRS or part.startswith(".")
                   for part in p.relative_to(root).parts[:-1])
    ]
    for md in sorted(md_files):
        for target in targets(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                bad.append(
                    f"{md.relative_to(root)}: dangling link "
                    f"'{target}'"
                )
    if bad:
        print("\n".join(bad), file=sys.stderr)
        print(f"{len(bad)} dangling link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(md_files)} markdown files: all relative "
          "links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
