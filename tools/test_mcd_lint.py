#!/usr/bin/env python3
"""Fixture tests for tools/mcd_lint.py.

Copies tests/lint_fixtures/clean/ (a miniature repo that passes every
rule) into a temp directory, applies one named mutation per case —
each re-introducing a violation class from this repo's history — and
compares the lint's full stdout against the golden file in
tests/lint_fixtures/expected/<case>.txt, plus the exit code.

Run directly (python3 tools/test_mcd_lint.py) or via CTest as
`LintFixtures`.  Pass --update-golden to regenerate the expected
files after a deliberate message change.
"""

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINT = ROOT / "tools" / "mcd_lint.py"
CLEAN = ROOT / "tests" / "lint_fixtures" / "clean"
EXPECTED = ROOT / "tests" / "lint_fixtures" / "expected"

# case name -> list of (relative file, old text, new text).  Every
# `old` must occur in the fixture exactly as written; the driver
# fails loudly if a fixture edit breaks a mutation.
CASES = {
    # The tree as committed: no findings, exit 0.
    "clean": [],
    # PR 2's bug class: a knob silently leaves the fingerprint.
    # Expect fingerprint-complete (the field is no longer hashed and
    # has no annotation) plus cache-version-pin (the hash-call list
    # changed under an unchanged CACHE_VERSION).
    "drop-fingerprint-field": [
        ("src/exp/experiment.cc",
         "    f.u64(s.jitterSeed);\n", ""),
    ],
    # A version bump whose pin update was forgotten.
    "stale-version-pin": [
        ("src/exp/experiment.cc",
         "constexpr int CACHE_VERSION = 5;",
         "constexpr int CACHE_VERSION = 6;"),
    ],
    # PR 9's bug class, sampling flavor: a sampling knob shapes
    # sampled outcomes but leaves the fingerprint, so cached exact
    # and sampled rows could trade places.
    "sampling-knob-unfingerprinted": [
        ("src/exp/experiment.cc",
         "    f.f64(sp.ciBiasPct);\n", ""),
    ],
    # PR 3's bug class: the registrar macro disappears.
    "missing-register-macro": [
        ("src/control/policies/toy.cc",
         "MCD_REGISTER_POLICY(ToyPolicy);\n", ""),
    ],
    # ...or the file falls out of the OBJECT library (the linker
    # would silently drop its static registrar).
    "missing-cmake-entry": [
        ("src/workload/CMakeLists.txt",
         "    workloads/toy.cc\n", ""),
    ],
    # PR 8's bug class, chip flavor: an uncore knob leaves the
    # fingerprint while chip cache keys still depend on it.
    "chip-knob-unfingerprinted": [
        ("src/exp/experiment.cc",
         "    f.f64(ch.uncoreMaxMhz);\n", ""),
    ],
    # PR 10's bug class, learned flavor: a training knob shapes the
    # learned policy's frozen weights (and so every cached learned
    # outcome) but silently leaves the fingerprint.
    "learned-knob-unfingerprinted": [
        ("src/exp/experiment.cc",
         "    f.u64(ln.trainWindow);\n", ""),
    ],
    # ...and the chip coordinator falls out of its OBJECT library.
    "chip-missing-cmake-entry": [
        ("src/chip/CMakeLists.txt",
         "    policies/toy_coord.cc\n", ""),
    ],
    # Raw rand() on a wire path.
    "raw-rand": [
        ("src/srv/proto.cc",
         "    std::string out = \"ROW \" + key;",
         "    std::string out = \"ROW \" + key;\n"
         "    int jitter = rand();\n"
         "    (void)jitter;"),
    ],
    # PR 2/PR 6's bug class: ad-hoc stream precision on a cache path.
    "locale-unsafe-double": [
        ("src/exp/experiment.cc",
         "    std::string line = key;",
         "    std::ostringstream os;\n"
         "    os.precision(17);\n"
         "    std::string line = key;"),
    ],
    # A rule whose doc section went missing.
    "undocumented-rule": [
        ("docs/LINTING.md",
         "## `determinism`\n", "### determinism (demoted)\n"),
    ],
}


def run_case(name, mutations, update):
    with tempfile.TemporaryDirectory(prefix="mcd_lint_fix_") as tmp:
        tree = Path(tmp) / "tree"
        shutil.copytree(CLEAN, tree)
        for rel, old, new in mutations:
            path = tree / rel
            text = path.read_text(encoding="utf-8")
            if old not in text:
                print("%s: mutation text not found in %s:\n%r"
                      % (name, rel, old), file=sys.stderr)
                return False
            path.write_text(text.replace(old, new, 1),
                            encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(tree),
             "--check-all"],
            capture_output=True, text=True)
        golden_path = EXPECTED / (name + ".txt")
        if update:
            golden_path.write_text(proc.stdout, encoding="utf-8")
            print("updated %s" % golden_path.relative_to(ROOT))
            return True
        ok = True
        want_exit = 0 if not mutations else 1
        if proc.returncode != want_exit:
            print("%s: exit %d, want %d\nstderr: %s"
                  % (name, proc.returncode, want_exit, proc.stderr),
                  file=sys.stderr)
            ok = False
        golden = golden_path.read_text(encoding="utf-8") \
            if golden_path.is_file() else "<missing golden file>"
        if proc.stdout != golden:
            print("%s: findings differ from %s\n--- got ---\n%s"
                  "--- want ---\n%s"
                  % (name, golden_path.relative_to(ROOT),
                     proc.stdout, golden), file=sys.stderr)
            ok = False
        if ok:
            print("%s: ok" % name)
        return ok


def main(argv):
    update = "--update-golden" in argv
    EXPECTED.mkdir(parents=True, exist_ok=True)
    failures = [name for name, muts in sorted(CASES.items())
                if not run_case(name, muts, update)]
    if failures:
        print("FAILED: %s" % ", ".join(failures), file=sys.stderr)
        return 1
    print("%d lint fixture case(s) pass" % len(CASES))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
