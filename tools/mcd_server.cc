/**
 * @file
 * `mcd_server` — the standalone sweep-service daemon: bind a Unix
 * and/or loopback-TCP listener, serve MCD/2 requests until SIGTERM
 * or SIGINT, then drain cleanly (admitted sweeps finish streaming,
 * the result cache is flushed) and exit 0.
 *
 * The startup line on stdout is machine-readable — the CI smoke job
 * greps the bound ephemeral port out of it:
 *
 *     mcd_server listening tcp=PORT unix=PATH fingerprint=HEX \
 *         window=N jobs=N
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

#include "srv/server.hh"

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
printUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --unix PATH        listen on a Unix-domain socket\n"
        "  --tcp PORT         listen on 127.0.0.1:PORT (0 = pick an\n"
        "                     ephemeral port, printed at startup)\n"
        "  --window N         default production window "
        "(instructions)\n"
        "  --jobs N           sweep pool size (0 = all hardware "
        "threads)\n"
        "  --cache FILE       CSV result cache (default: none)\n"
        "  --queue-limit N    max cells queued or running "
        "(admission bound)\n"
        "  --max-cells N      max cells in one SWEEP request\n"
        "  --max-connections N  max simultaneous connections\n"
        "  --request-timeout-ms N  per-request deadline cap\n"
        "  --idle-timeout-ms N     per-frame read deadline\n"
        "  --retry-after-ms N      back-off hint on overload\n"
        "  --max-windows N    max distinct per-request windows\n"
        "  --help             print this message and exit\n"
        "at least one of --unix / --tcp is required.\n",
        argv0);
}

unsigned long long
numberArg(int argc, char **argv, int &i, const char *flag,
          unsigned long long max)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    const char *text = argv[++i];
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (!(text[0] >= '0' && text[0] <= '9') || end == text ||
        *end != '\0' || errno == ERANGE || v > max) {
        std::fprintf(stderr,
                     "%s: %s wants a plain decimal number in "
                     "[0, %llu], got '%s'\n\n",
                     argv[0], flag, max, text);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return v;
}

const char *
valueArg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return argv[++i];
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mcd;

    srv::ServerConfig cfg;
    bool haveTcp = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--unix")) {
            cfg.unixPath = valueArg(argc, argv, i, "--unix");
        } else if (!std::strcmp(argv[i], "--tcp")) {
            cfg.tcpPort = static_cast<int>(
                numberArg(argc, argv, i, "--tcp", 65535));
            haveTcp = true;
        } else if (!std::strcmp(argv[i], "--window")) {
            cfg.exp.productionWindow = numberArg(
                argc, argv, i, "--window",
                std::numeric_limits<std::uint64_t>::max());
            cfg.exp.analysisWindow = cfg.exp.productionWindow;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            cfg.exp.jobs = static_cast<unsigned>(
                numberArg(argc, argv, i, "--jobs",
                          std::numeric_limits<unsigned>::max()));
        } else if (!std::strcmp(argv[i], "--cache")) {
            cfg.exp.cacheFile = valueArg(argc, argv, i, "--cache");
        } else if (!std::strcmp(argv[i], "--queue-limit")) {
            cfg.queueLimit = static_cast<std::size_t>(
                numberArg(argc, argv, i, "--queue-limit", 1u << 20));
        } else if (!std::strcmp(argv[i], "--max-cells")) {
            cfg.maxCellsPerRequest = static_cast<std::size_t>(
                numberArg(argc, argv, i, "--max-cells", 1u << 20));
        } else if (!std::strcmp(argv[i], "--max-connections")) {
            cfg.maxConnections = static_cast<std::size_t>(numberArg(
                argc, argv, i, "--max-connections", 1u << 16));
        } else if (!std::strcmp(argv[i], "--request-timeout-ms")) {
            cfg.requestTimeoutMs = static_cast<int>(
                numberArg(argc, argv, i, "--request-timeout-ms",
                          86'400'000));
        } else if (!std::strcmp(argv[i], "--idle-timeout-ms")) {
            cfg.idleTimeoutMs = static_cast<int>(numberArg(
                argc, argv, i, "--idle-timeout-ms", 86'400'000));
        } else if (!std::strcmp(argv[i], "--retry-after-ms")) {
            cfg.retryAfterMs = static_cast<int>(numberArg(
                argc, argv, i, "--retry-after-ms", 3'600'000));
        } else if (!std::strcmp(argv[i], "--max-windows")) {
            cfg.maxWindows = static_cast<std::size_t>(
                numberArg(argc, argv, i, "--max-windows", 1u << 10));
        } else if (!std::strcmp(argv[i], "--help")) {
            printUsage(argv[0], stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "%s: unrecognized argument '%s'\n\n",
                         argv[0], argv[i]);
            printUsage(argv[0], stderr);
            return 1;
        }
    }
    if (cfg.unixPath.empty() && !haveTcp) {
        std::fprintf(stderr,
                     "%s: need at least one of --unix / --tcp\n\n",
                     argv[0]);
        printUsage(argv[0], stderr);
        return 1;
    }

    srv::SweepServer server(cfg);
    try {
        server.start();
    } catch (const srv::NetError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }

    std::printf("mcd_server listening tcp=%u unix=%s "
                "fingerprint=%016llx window=%llu jobs=%u\n",
                server.tcpPort(),
                server.unixSocketPath().empty()
                    ? "-"
                    : server.unixSocketPath().c_str(),
                static_cast<unsigned long long>(server.fingerprint()),
                static_cast<unsigned long long>(
                    cfg.exp.productionWindow),
                cfg.exp.jobs);
    std::fflush(stdout);

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    while (!g_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("mcd_server draining...\n");
    std::fflush(stdout);
    server.stop();
    mcd::srv::ServerStats s = server.stats();
    std::printf("mcd_server drained: connections=%llu rows=%llu "
                "computed=%llu memo_hits=%llu\n",
                static_cast<unsigned long long>(s.connections),
                static_cast<unsigned long long>(s.rowsStreamed),
                static_cast<unsigned long long>(s.memoMisses),
                static_cast<unsigned long long>(s.memoHits));
    return 0;
}
