/**
 * @file
 * `mcd_client` — the sweep-service CLI.  Two modes that must print
 * identical bytes per cell (the CI smoke job diffs them):
 *
 *  - remote (`--unix PATH` / `--tcp PORT`): HELLO, optionally upload
 *    `@file` programs via PROG, run one SWEEP, print one
 *    `srv::resultLine()` per ROW;
 *  - `--local`: run the same cells in-process through `exp::Runner`
 *    and print the same `srv::resultLine()` per cell.
 *
 * Cells are ordered workload-major (every policy of the first
 * workload, then the next workload), matching the server's ROW
 * stream.  Structured server errors print as `error: CODE: msg` and
 * exit 1; `overload` rejections exit 75 (EX_TEMPFAIL) so shell
 * loops can back off and retry.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "chip/multi.hh"
#include "exp/experiment.hh"
#include "srv/client.hh"
#include "workload/author.hh"
#include "workload/registry.hh"

namespace
{

void
printUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s (--unix PATH | --tcp PORT | --local) [options]\n"
        "  --workload SPEC  workload spec (repeatable): suite name,\n"
        "                   gen:... spec, or @FILE with an authored\n"
        "                   program (uploaded via PROG in remote "
        "mode)\n"
        "  --policy SPEC    policy spec (repeatable)\n"
        "  --tiles N        chip sweep: run each workload as an\n"
        "                   N-tile co-schedule (0 = tile count as\n"
        "                   named by a multi: spec); prints tiles+1\n"
        "                   rows per cell (tile=0..N-1, tile=u)\n"
        "  --coord SPEC     chip-coord: spec for the shared uncore\n"
        "                   (chip sweeps only)\n"
        "  --window N       production window (0 = server default)\n"
        "  --timeout-ms N   per-request deadline (remote)\n"
        "  --pin            pin the server's config fingerprint\n"
        "  --jobs N         local-mode sweep parallelism\n"
        "  --stats          print server stats instead of sweeping\n"
        "  --quit           send QUIT after the request\n"
        "  --help           print this message and exit\n",
        argv0);
}

unsigned long long
numberArg(int argc, char **argv, int &i, const char *flag,
          unsigned long long max)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    const char *text = argv[++i];
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (!(text[0] >= '0' && text[0] <= '9') || end == text ||
        *end != '\0' || errno == ERANGE || v > max) {
        std::fprintf(stderr,
                     "%s: %s wants a plain decimal number in "
                     "[0, %llu], got '%s'\n\n",
                     argv[0], flag, max, text);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return v;
}

const char *
valueArg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return argv[++i];
}

struct Options
{
    std::string unixPath;
    int tcpPort = -1;
    bool local = false;
    std::vector<std::string> workloads;  ///< raw; @FILE not yet read
    std::vector<std::string> policies;
    long long tiles = -1;  ///< >= 0 makes this a chip sweep
    std::string coord;
    std::uint64_t window = 0;
    int timeoutMs = 0;
    bool pin = false;
    unsigned jobs = 0;
    bool stats = false;
    bool quit = false;
};

int
runLocal(const Options &opt)
{
    using namespace mcd;
    mcd::exp::ExpConfig cfg;  // qualified: ::exp is std::exp here
    if (opt.window) {
        cfg.productionWindow = opt.window;
        cfg.analysisWindow = opt.window;
    }
    cfg.jobs = opt.jobs;
    cfg.cacheFile.clear();  // match the server default: no CSV cache

    std::vector<std::string> benches;
    for (const auto &w : opt.workloads) {
        try {
            if (w.size() > 1 && w[0] == '@')
                benches.push_back(
                    workload::WorkloadRegistry::instance()
                        .addProgram(workload::readProgramFile(
                            w.substr(1))));
            else if (opt.tiles >= 0)
                // Chip mode accepts multi: co-schedules, which the
                // single-core canonicalizer rejects; runChip
                // canonicalizes per cell.
                benches.push_back(w);
            else
                benches.push_back(
                    workload::canonicalWorkloadSpec(w));
        } catch (const workload::SpecError &e) {
            std::fprintf(stderr, "error: bad-spec: %s\n", e.what());
            return 1;
        }
    }
    std::vector<control::PolicySpec> specs;
    for (const auto &p : opt.policies) {
        control::PolicySpec ps;
        std::string err;
        if (!control::parseSpec(p, ps, err) ||
            !control::PolicyRegistry::instance().canonicalize(
                ps, err)) {
            std::fprintf(stderr, "error: bad-spec: %s\n",
                         err.c_str());
            return 1;
        }
        specs.push_back(std::move(ps));
    }

    mcd::exp::Runner runner(cfg);
    if (opt.tiles >= 0) {
        // Chip sweep: each cell is one co-scheduled chip::Chip run
        // streaming tiles+1 rows, labelled with the canonical
        // multi: spec exactly as the server labels its ROW frames.
        for (const auto &b : benches) {
            for (const auto &s : specs) {
                mcd::exp::ChipCell cell;
                cell.workload = b;
                cell.tiles = static_cast<int>(opt.tiles);
                cell.tilePolicy = s;
                cell.coord = opt.coord;
                try {
                    std::vector<std::string> tile_specs =
                        chip::parseMultiSpec(b, cell.tiles);
                    std::string multi =
                        chip::multiSpecOf(tile_specs);
                    std::vector<mcd::exp::Outcome> rows =
                        runner.runChip(cell);
                    for (std::size_t k = 0; k < rows.size(); ++k)
                        std::printf(
                            "tile=%s %s\n",
                            srv::tileLabel(k, tile_specs.size())
                                .c_str(),
                            srv::resultLine(multi, s.str(), rows[k])
                                .c_str());
                } catch (const workload::SpecError &e) {
                    std::fprintf(stderr, "error: bad-spec: %s\n",
                                 e.what());
                    return 1;
                }
            }
        }
        return 0;
    }
    for (const auto &b : benches) {
        for (const auto &s : specs) {
            mcd::exp::Outcome o = runner.run(b, s);
            std::printf("%s\n",
                        srv::resultLine(b, s.str(), o).c_str());
        }
    }
    return 0;
}

int
runRemote(const Options &opt)
{
    using namespace mcd;
    try {
        srv::Client client =
            opt.tcpPort >= 0
                ? srv::Client::connectTcp(
                      static_cast<std::uint16_t>(opt.tcpPort))
                : srv::Client::connectUnix(opt.unixPath);
        client.hello();

        if (opt.stats) {
            for (const auto &kv : client.stats())
                std::printf("%s=%s\n", kv.first.c_str(),
                            kv.second.c_str());
            if (opt.quit)
                client.quit();
            return 0;
        }

        // Authored @FILE programs travel by value: upload the text,
        // sweep by the returned content-addressed handle.
        std::vector<std::string> workloads;
        for (const auto &w : opt.workloads) {
            if (w.size() > 1 && w[0] == '@') {
                std::string text;
                try {
                    text = workload::readProgramFile(w.substr(1));
                } catch (const workload::SpecError &e) {
                    std::fprintf(stderr, "error: bad-spec: %s\n",
                                 e.what());
                    return 1;
                }
                workloads.push_back(client.uploadProgram(text));
            } else {
                workloads.push_back(w);
            }
        }

        srv::SweepReply reply =
            client.sweep(workloads, opt.policies, opt.window,
                         opt.timeoutMs, opt.pin, opt.tiles,
                         opt.coord);
        for (const auto &row : reply.rows) {
            if (!row.tile.empty())
                std::printf("tile=%s ", row.tile.c_str());
            std::printf("%s\n",
                        srv::resultLine(row.workload, row.policy,
                                        row.outcome)
                            .c_str());
        }
        if (opt.quit)
            client.quit();
        return 0;
    } catch (const srv::ClientError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return e.code() == srv::err::OVERLOAD ? 75 : 1;
    } catch (const srv::NetError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--unix")) {
            opt.unixPath = valueArg(argc, argv, i, "--unix");
        } else if (!std::strcmp(argv[i], "--tcp")) {
            opt.tcpPort = static_cast<int>(
                numberArg(argc, argv, i, "--tcp", 65535));
        } else if (!std::strcmp(argv[i], "--local")) {
            opt.local = true;
        } else if (!std::strcmp(argv[i], "--workload")) {
            opt.workloads.push_back(
                valueArg(argc, argv, i, "--workload"));
        } else if (!std::strcmp(argv[i], "--policy")) {
            opt.policies.push_back(
                valueArg(argc, argv, i, "--policy"));
        } else if (!std::strcmp(argv[i], "--tiles")) {
            opt.tiles = static_cast<long long>(
                numberArg(argc, argv, i, "--tiles", 4096));
        } else if (!std::strcmp(argv[i], "--coord")) {
            opt.coord = valueArg(argc, argv, i, "--coord");
        } else if (!std::strcmp(argv[i], "--window")) {
            opt.window = numberArg(
                argc, argv, i, "--window",
                std::numeric_limits<std::uint64_t>::max());
        } else if (!std::strcmp(argv[i], "--timeout-ms")) {
            opt.timeoutMs = static_cast<int>(numberArg(
                argc, argv, i, "--timeout-ms", 86'400'000));
        } else if (!std::strcmp(argv[i], "--pin")) {
            opt.pin = true;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            opt.jobs = static_cast<unsigned>(
                numberArg(argc, argv, i, "--jobs",
                          std::numeric_limits<unsigned>::max()));
        } else if (!std::strcmp(argv[i], "--stats")) {
            opt.stats = true;
        } else if (!std::strcmp(argv[i], "--quit")) {
            opt.quit = true;
        } else if (!std::strcmp(argv[i], "--help")) {
            printUsage(argv[0], stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "%s: unrecognized argument '%s'\n\n",
                         argv[0], argv[i]);
            printUsage(argv[0], stderr);
            return 1;
        }
    }

    int modes = (opt.local ? 1 : 0) + (opt.unixPath.empty() ? 0 : 1) +
                (opt.tcpPort >= 0 ? 1 : 0);
    if (modes != 1) {
        std::fprintf(stderr,
                     "%s: pick exactly one of --local / --unix / "
                     "--tcp\n\n",
                     argv[0]);
        printUsage(argv[0], stderr);
        return 1;
    }
    if (!opt.stats &&
        (opt.workloads.empty() || opt.policies.empty())) {
        std::fprintf(stderr,
                     "%s: a sweep needs at least one --workload and "
                     "one --policy\n\n",
                     argv[0]);
        printUsage(argv[0], stderr);
        return 1;
    }
    if (!opt.coord.empty() && opt.tiles < 0) {
        std::fprintf(stderr,
                     "%s: --coord needs --tiles (chip sweeps "
                     "only)\n\n",
                     argv[0]);
        printUsage(argv[0], stderr);
        return 1;
    }
    if (opt.stats && opt.local) {
        std::fprintf(stderr, "%s: --stats needs a server\n\n",
                     argv[0]);
        printUsage(argv[0], stderr);
        return 1;
    }

    return opt.local ? runLocal(opt) : runRemote(opt);
}
