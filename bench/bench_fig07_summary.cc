/**
 * @file
 * Figure 7: minimum, maximum and average slowdown, energy savings
 * and energy x delay improvement for the global-DVS, on-line,
 * off-line and profile-driven (L+F) methods.
 *
 * "Global" runs the chip at the single frequency that matches the
 * off-line algorithm's run time (Section 4.1).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    exp::Runner runner(opt.cfg);

    struct Method
    {
        const char *name;
        Summary slow, save, ed;
    };
    Method methods[4] = {
        {"global", {}, {}, {}},
        {"on-line", {}, {}, {}},
        {"off-line", {}, {}, {}},
        {"L+F", {}, {}, {}},
    };

    const auto &benches = workloads(opt);
    std::vector<exp::SweepCell> cells;
    for (const auto &bench : benches) {
        cells.push_back(exp::SweepCell::of(bench, HEADLINE_GLOBAL));
        cells.push_back(exp::SweepCell::of(bench, HEADLINE_ONLINE));
        cells.push_back(exp::SweepCell::of(bench, HEADLINE_OFFLINE));
        cells.push_back(exp::SweepCell::of(bench, HEADLINE_PROFILE));
    }
    std::vector<exp::Outcome> out = runner.runSweep(cells);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        Metrics ms[4];
        for (int i = 0; i < 4; ++i)
            ms[i] = out[4 * b + static_cast<std::size_t>(i)].metrics;
        for (int i = 0; i < 4; ++i) {
            methods[i].slow.add(ms[i].slowdownPct);
            methods[i].save.add(ms[i].energySavingsPct);
            methods[i].ed.add(ms[i].energyDelayImprovementPct);
        }
    }

    TextTable t;
    t.header({"method", "slow min", "slow avg", "slow max",
              "save min", "save avg", "save max", "exd min",
              "exd avg", "exd max"});
    for (const auto &m : methods) {
        t.row({m.name, TextTable::num(m.slow.min()),
               TextTable::num(m.slow.mean()),
               TextTable::num(m.slow.max()),
               TextTable::num(m.save.min()),
               TextTable::num(m.save.mean()),
               TextTable::num(m.save.max()),
               TextTable::num(m.ed.min()), TextTable::num(m.ed.mean()),
               TextTable::num(m.ed.max())});
    }
    std::printf("Figure 7: min/avg/max slowdown, energy savings and "
                "energy-delay improvement (%%)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);

    double adv_off = methods[2].save.mean() / methods[0].save.mean();
    double adv_lf = methods[3].save.mean() / methods[0].save.mean();
    double adv_onl = methods[1].save.mean() / methods[0].save.mean();
    std::printf("\nenergy-savings advantage over global: off-line "
                "%.0f%%, L+F %.0f%%, on-line %.0f%% higher\n",
                (adv_off - 1.0) * 100.0, (adv_lf - 1.0) * 100.0,
                (adv_onl - 1.0) * 100.0);
    return 0;
}
