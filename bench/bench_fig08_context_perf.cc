/**
 * @file
 * Figure 8: sensitivity of performance degradation to the definition
 * of calling context (Section 4.2), for the applications that show
 * variation: the six context modes on the benchmarks the paper
 * highlights (mpeg2 decode's unseen reference paths, epic encode's
 * per-call-site behaviour, loop effects in adpcm/gsm/applu/art).
 */

#include "common.hh"

namespace
{

const char *const interesting[] = {
    "mpeg2_decode", "epic_encode", "mpeg2_encode", "adpcm_decode",
    "adpcm_encode", "gsm_decode", "applu", "art",
};

const mcd::core::ContextMode modes[] = {
    mcd::core::ContextMode::LFCP, mcd::core::ContextMode::LFP,
    mcd::core::ContextMode::FCP,  mcd::core::ContextMode::FP,
    mcd::core::ContextMode::LF,   mcd::core::ContextMode::F,
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    exp::Runner runner(parseArgs(argc, argv));

    TextTable t;
    std::vector<std::string> head = {"benchmark"};
    for (auto m : modes)
        head.push_back(core::contextModeName(m));
    t.header(head);
    for (const char *bench : interesting) {
        std::vector<std::string> row = {bench};
        for (auto m : modes)
            row.push_back(TextTable::num(
                runner.profile(bench, m, HEADLINE_D)
                    .metrics.slowdownPct));
        t.row(row);
    }
    std::printf("Figure 8: performance degradation (%%) by context "
                "definition\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
