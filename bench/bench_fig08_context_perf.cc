/**
 * @file
 * Figure 8: sensitivity of performance degradation to the definition
 * of calling context (Section 4.2), for the applications that show
 * variation: the six context modes on the benchmarks the paper
 * highlights (mpeg2 decode's unseen reference paths, epic encode's
 * per-call-site behaviour, loop effects in adpcm/gsm/applu/art).
 */

#include "common.hh"

namespace
{

const mcd::core::ContextMode modes[] = {
    mcd::core::ContextMode::LFCP, mcd::core::ContextMode::LFP,
    mcd::core::ContextMode::FCP,  mcd::core::ContextMode::FP,
    mcd::core::ContextMode::LF,   mcd::core::ContextMode::F,
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    exp::Runner runner(opt.cfg);
    // The paper highlights these eight; --workload overrides.
    const std::vector<std::string> benches = workloadsOr(
        opt, {"mpeg2_decode", "epic_encode", "mpeg2_encode",
              "adpcm_decode", "adpcm_encode", "gsm_decode", "applu",
              "art"});

    TextTable t;
    std::vector<std::string> head = {"benchmark"};
    for (auto m : modes)
        head.push_back(core::contextModeName(m));
    t.header(head);
    std::vector<exp::SweepCell> cells;
    for (const auto &bench : benches)
        for (auto m : modes)
            cells.push_back(exp::SweepCell::of(bench, modeSpec(m)));
    std::vector<exp::Outcome> out = runner.runSweep(cells);
    std::size_t i = 0;
    for (const auto &bench : benches) {
        std::vector<std::string> row = {bench};
        for (std::size_t j = 0; j < std::size(modes); ++j)
            row.push_back(
                TextTable::num(out[i++].metrics.slowdownPct));
        t.row(row);
    }
    std::printf("Figure 8: performance degradation (%%) by context "
                "definition\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
