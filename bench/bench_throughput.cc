/**
 * @file
 * Google-benchmark microbenchmarks of the infrastructure itself:
 * workload stream generation, cycle-level simulation (with the
 * idle-edge fast-forward kernel on and off), call-tree profiling and
 * shaker analysis throughput.
 *
 * Beyond the standard Google Benchmark flags, `--json FILE` writes a
 * machine-readable summary ({name, wall_ms, iterations, mode,
 * sample} per benchmark) for the CI perf-trajectory artifact
 * (BENCH_sim.json), `--workload SPEC` (any registry spec: suite
 * name, gen:..., @file) re-points every workload-driven
 * microbenchmark at that workload instead of its default, and
 * `--sample SPEC` (sim::parseSamplingSpec grammar, see
 * docs/SAMPLING.md) re-points the sampled-mode microbenchmarks at
 * that geometry instead of the default sampled configuration.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <locale>
#include <string>
#include <vector>

#include "common.hh"
#include "core/profiler.hh"
#include "core/shaker.hh"
#include "exp/experiment.hh"
#include "sim/checkpoint.hh"
#include "sim/processor.hh"
#include "sim/sampling.hh"
#include "workload/stream.hh"
#include "workload/suite.hh"

using namespace mcd;

namespace
{

/** --workload override; empty = each benchmark's default. */
std::string g_workload_override;

/** The geometry the sampled-mode microbenchmarks run under: the
 *  default sampled configuration, or the --sample override. */
sim::SamplingConfig g_sample_cfg = [] {
    sim::SamplingConfig c;
    c.mode = sim::SamplingMode::Sampled;
    return c;
}();

/** The sampling configuration benchmark @p name ran under (exact for
 *  everything but the sampled-mode microbenchmarks). */
sim::SamplingConfig
samplingFor(const std::string &name)
{
    if (name.rfind("BM_CycleSimulationSampled", 0) == 0 ||
        name.rfind("BM_CycleSimulationCheckpointed", 0) == 0)
        return g_sample_cfg;
    return sim::SamplingConfig{};
}

/** The workload a microbenchmark runs: the --workload override when
 *  given, @p dflt otherwise. */
workload::Benchmark
benchFor(const char *dflt)
{
    return workload::makeBenchmark(g_workload_override.empty()
                                       ? dflt
                                       : g_workload_override);
}

void
BM_StreamGeneration(benchmark::State &state)
{
    workload::Benchmark bm = benchFor("gsm_decode");
    for (auto _ : state) {
        workload::Stream s(bm.program, bm.train);
        workload::StreamItem item;
        std::uint64_t n = 0;
        while (n < 50'000 && s.next(item))
            n += item.kind == workload::StreamItem::Kind::Instr;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 50'000);
}
BENCHMARK(BM_StreamGeneration)->Unit(benchmark::kMillisecond);

void
BM_CycleSimulation(benchmark::State &state)
{
    workload::Benchmark bm = benchFor("gsm_decode");
    sim::SimConfig scfg;
    power::PowerConfig pcfg;
    for (auto _ : state) {
        sim::Processor proc(scfg, pcfg, bm.program, bm.train);
        auto r = proc.run(30'000);
        benchmark::DoNotOptimize(r.timePs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 30'000);
}
BENCHMARK(BM_CycleSimulation)->Unit(benchmark::kMillisecond);

void
BM_CycleSimulationSlowPath(benchmark::State &state)
{
    // The same run with idle-edge fast-forward disabled: the gap to
    // BM_CycleSimulation is the kernel's win on an integer workload
    // whose FP domain is idle.  Results are identical in both modes.
    workload::Benchmark bm = benchFor("gsm_decode");
    sim::SimConfig scfg;
    scfg.fastForward = false;
    power::PowerConfig pcfg;
    for (auto _ : state) {
        sim::Processor proc(scfg, pcfg, bm.program, bm.train);
        auto r = proc.run(30'000);
        benchmark::DoNotOptimize(r.timePs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 30'000);
}
BENCHMARK(BM_CycleSimulationSlowPath)->Unit(benchmark::kMillisecond);

void
BM_CycleSimulationSampled(benchmark::State &state)
{
    // BM_CycleSimulation's run in sampled mode with an inline
    // functional walk (no checkpoint set): the gap to the exact
    // benchmark is the single-cell speedup, where the walk is paid
    // inside every run.
    workload::Benchmark bm = benchFor("gsm_decode");
    sim::SimConfig scfg;
    scfg.sampling = g_sample_cfg;
    power::PowerConfig pcfg;
    for (auto _ : state) {
        sim::Processor proc(scfg, pcfg, bm.program, bm.train);
        auto r = proc.run(30'000);
        benchmark::DoNotOptimize(r.timePs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 30'000);
}
BENCHMARK(BM_CycleSimulationSampled)->Unit(benchmark::kMillisecond);

void
BM_CycleSimulationCheckpointed(benchmark::State &state)
{
    // The sweep-engine shape: the checkpoint set is built once
    // outside the timed region (runSweep shares it across every cell
    // of a benchmark), so the timed body is the detailed probes plus
    // the skip-span replay alone.  This wall time over
    // BM_CycleSimulation's is the per-cell speedup the CI gate
    // checks (tools/check_sampling.py speedup).
    auto bm = std::make_shared<workload::Benchmark>(
        benchFor("gsm_decode"));
    sim::SimConfig scfg;
    scfg.sampling = g_sample_cfg;
    power::PowerConfig pcfg;
    std::shared_ptr<const sim::CheckpointSet> cps;
    if (scfg.sampling.sampled()) {
        std::shared_ptr<const workload::Program> prog(bm,
                                                      &bm->program);
        cps = sim::CheckpointSet::build(prog, bm->train, scfg,
                                        30'000);
    }
    for (auto _ : state) {
        sim::Processor proc(scfg, pcfg, bm->program, bm->train);
        proc.setCheckpoints(cps);
        auto r = proc.run(30'000);
        benchmark::DoNotOptimize(r.timePs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 30'000);
}
BENCHMARK(BM_CycleSimulationCheckpointed)
    ->Unit(benchmark::kMillisecond);

void
BM_Profiling(benchmark::State &state)
{
    workload::Benchmark bm = benchFor("gzip");
    for (auto _ : state) {
        core::ProfileConfig cfg;
        cfg.maxInstrs = 100'000;
        auto tree = core::profileProgram(bm.program, bm.train,
                                         core::ContextMode::LFCP, cfg);
        benchmark::DoNotOptimize(tree.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_Profiling)->Unit(benchmark::kMillisecond);

void
BM_ShakerAnalysis(benchmark::State &state)
{
    // Build a realistic trace segment once, then time the shaker.
    workload::Benchmark bm = benchFor("gsm_decode");
    sim::SimConfig scfg;
    power::PowerConfig pcfg;
    struct Collect : sim::TraceSink
    {
        std::vector<sim::InstrTiming> items;
        void onInstr(const sim::InstrTiming &t) override
        {
            items.push_back(t);
        }
    } collect;
    sim::Processor proc(scfg, pcfg, bm.program, bm.train);
    proc.setTraceSink(&collect);
    proc.run(10'000);

    core::ShakerConfig cfg;
    core::SegmentAnalyzer analyzer(cfg);
    for (auto _ : state) {
        core::NodeHistograms out;
        analyzer.analyze(collect.items, out);
        benchmark::DoNotOptimize(out.spanPs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(collect.items.size()));
}
BENCHMARK(BM_ShakerAnalysis)->Unit(benchmark::kMillisecond);

void
BM_SweepEngine(benchmark::State &state)
{
    // The figure-sweep engine end to end: every {benchmark, policy}
    // cell of a small headline-style sweep runs as one job on the
    // work-stealing pool.  The argument is the --jobs thread count;
    // wall-clock time (UseRealTime) is what parallelism improves.
    const char *const benches[] = {"gsm_decode", "adpcm_encode",
                                   "mcf", "gzip"};
    std::vector<exp::SweepCell> cells;
    for (const char *b : benches) {
        cells.push_back(exp::SweepCell::of(b, "baseline"));
        cells.push_back(exp::SweepCell::of(b, "offline:d=10"));
        cells.push_back(exp::SweepCell::of(b, "online:aggr=1"));
    }
    unsigned jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        // A fresh in-memory Runner per iteration so every cell is
        // recomputed rather than served from the memo.
        exp::ExpConfig cfg;
        cfg.productionWindow = 20'000;
        cfg.analysisWindow = 20'000;
        exp::Runner runner(cfg);
        auto out = runner.runSweep(cells, jobs);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_SweepEngine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Console reporter that additionally records every non-aggregate run
 * and, at exit, writes the machine-readable summary for --json.
 */
class JsonTeeReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonTeeReporter(std::string path) : path(std::move(path))
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type == Run::RT_Aggregate)
                continue;
            Row row;
            row.name = r.benchmark_name();
            row.wallMs = r.iterations
                             ? r.real_accumulated_time /
                                   static_cast<double>(r.iterations) *
                                   1e3
                             : 0.0;
            row.iterations = r.iterations;
            sim::SamplingConfig sp = samplingFor(row.name);
            row.mode = sp.sampled() ? "sampled" : "exact";
            row.sample = sim::canonicalSamplingSpec(sp);
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    void
    Finalize() override
    {
        ConsoleReporter::Finalize();
        std::ofstream out;
        out.imbue(std::locale::classic());
        out.open(path);
        if (!out) {
            std::fprintf(stderr,
                         "bench_throughput: cannot write '%s'\n",
                         path.c_str());
            return;
        }
        out.precision(6);
        out << "{\n  \"benchmarks\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            out << "    {\"name\": \"" << rows[i].name
                << "\", \"wall_ms\": " << std::fixed
                << rows[i].wallMs << std::defaultfloat
                << ", \"iterations\": " << rows[i].iterations
                << ", \"mode\": \"" << rows[i].mode
                << "\", \"sample\": \"" << rows[i].sample << "\"}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }

  private:
    struct Row
    {
        std::string name;
        double wallMs = 0.0;
        std::int64_t iterations = 0;
        std::string mode;    ///< "exact" | "sampled"
        std::string sample;  ///< canonical --sample spec
    };
    std::string path;
    std::vector<Row> rows;
};

} // namespace

int
main(int argc, char **argv)
{
    // Peel off --json FILE, --workload SPEC and --sample SPEC
    // before Google Benchmark sees the args (it hard-errors on flags
    // it does not know).
    std::string json_path;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json")) {
            // A trailing --json used to fall through to Google
            // Benchmark (which rejects it with its own error) —
            // hard-error here like every other flag instead.
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --json needs a value\n",
                             argv[0]);
                return 1;
            }
            json_path = argv[++i];
            continue;
        }
        if (!std::strcmp(argv[i], "--workload")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --workload needs a value\n",
                             argv[0]);
                return 1;
            }
            try {
                g_workload_override =
                    bench::resolveWorkloadArg(argv[++i]);
            } catch (const workload::SpecError &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             e.what());
                return 1;
            }
            continue;
        }
        if (!std::strcmp(argv[i], "--sample")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --sample needs a value\n",
                             argv[0]);
                return 1;
            }
            try {
                g_sample_cfg = sim::parseSamplingSpec(argv[++i]);
            } catch (const workload::SpecError &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             e.what());
                return 1;
            }
            continue;
        }
        args.push_back(argv[i]);
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    if (json_path.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        JsonTeeReporter reporter(std::move(json_path));
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    return 0;
}
