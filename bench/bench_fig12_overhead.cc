/**
 * @file
 * Figure 12: number of static reconfiguration and instrumentation
 * points, and run-time overhead, of the six context definitions,
 * averaged across the suite and normalized to L+F+C+P.
 *
 * Expected shape (paper): L+F and F have no tracking instrumentation
 * (every point is a reconfiguration point) and essentially zero
 * run-time overhead; L+F+C+P is the most expensive.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    exp::Runner runner(opt.cfg);

    const core::ContextMode modes[] = {
        core::ContextMode::LFCP, core::ContextMode::LFP,
        core::ContextMode::FCP,  core::ContextMode::FP,
        core::ContextMode::LF,   core::ContextMode::F,
    };

    struct Agg
    {
        Summary reconf, instr, overhead;
    };
    Agg agg[6];
    const auto &benches = workloads(opt);
    std::vector<exp::SweepCell> cells;
    for (const auto &bench : benches)
        for (int i = 0; i < 6; ++i)
            cells.push_back(
                exp::SweepCell::of(bench, modeSpec(modes[i])));
    std::vector<exp::Outcome> out = runner.runSweep(cells);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        for (int i = 0; i < 6; ++i) {
            const auto &o =
                out[6 * b + static_cast<std::size_t>(i)];
            agg[i].reconf.add(o.staticReconfigPoints);
            agg[i].instr.add(o.staticInstrPoints);
            agg[i].overhead.add(
                o.feCycles > 0.0
                    ? o.overheadCycles / o.feCycles * 100.0
                    : 0.0);
        }
    }

    double base_reconf = agg[0].reconf.mean();
    double base_instr = agg[0].instr.mean();
    double base_over = agg[0].overhead.mean();

    TextTable t;
    t.header({"mode", "st reconf (avg)", "st instr (avg)",
              "overhead % (avg)", "reconf norm", "instr norm",
              "overhead norm"});
    for (int i = 0; i < 6; ++i) {
        t.row({core::contextModeName(modes[i]),
               TextTable::num(agg[i].reconf.mean(), 1),
               TextTable::num(agg[i].instr.mean(), 1),
               TextTable::num(agg[i].overhead.mean(), 3),
               TextTable::num(base_reconf > 0
                                  ? agg[i].reconf.mean() / base_reconf
                                  : 0.0,
                              2),
               TextTable::num(base_instr > 0
                                  ? agg[i].instr.mean() / base_instr
                                  : 0.0,
                              2),
               TextTable::num(base_over > 0
                                  ? agg[i].overhead.mean() / base_over
                                  : 0.0,
                              2)});
    }
    std::printf("Figure 12: static points and run-time overhead by "
                "context mode (suite averages, normalized to "
                "L+F+C+P)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
