/**
 * @file
 * `bench_chip` — the tiled many-core interference benchmark
 * (docs/CHIP.md).
 *
 * Two experiments, both through the memoizing `exp::Runner`:
 *
 *  1. **Co-schedule interference**: run one co-schedule
 *     (`--multi`, default gsm_decode + adpcm_decode) on a chip and
 *     each of its workloads alone on a single core under the same
 *     per-tile policy, and report per-tile slowdown and energy
 *     ratio — what sharing the L2 port and DRAM queue costs each
 *     neighbour — with and without the `chip-coord` uncore
 *     coordinator.
 *
 *  2. **Throughput scaling**: replicate one workload (`--scale`)
 *     across 1..`--tiles-max` tiles and report global run time,
 *     aggregate energy and relative throughput (tiles x alone-time
 *     / chip-time) per tile count, again with and without the
 *     coordinator.
 *
 * `--json FILE` writes both tables as a machine-readable artifact
 * (CI uploads it as BENCH_chip.json).  `--canon SPEC` prints the
 * canonical `multi:` form of a co-schedule spec and exits — CI uses
 * it for a canonicalization round-trip check.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "chip/multi.hh"
#include "control/policy.hh"
#include "exp/experiment.hh"
#include "util/table.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"

using namespace mcd;

namespace
{

void
printUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --multi SPEC     co-schedule for the interference table\n"
        "                   (default multi:t0=gsm_decode,"
        "t1=adpcm_decode)\n"
        "  --scale SPEC     workload replicated for the scaling "
        "curve (default gsm_decode)\n"
        "  --tiles-max N    largest tile count in the scaling curve "
        "(default 4)\n"
        "  --policy SPEC    per-tile policy (default baseline; must "
        "be tile-capable)\n"
        "  --coord SPEC     coordinator spec for the \"coord\" rows "
        "(default chip-coord)\n"
        "  --window N       instructions per tile (default 20000)\n"
        "  --jobs N         runner parallelism (default 1; chip "
        "rows are deterministic at any value)\n"
        "  --cache FILE     result cache path (default "
        "$MCD_BENCH_CACHE or none)\n"
        "  --json FILE      write both tables as JSON\n"
        "  --canon SPEC     print the canonical multi: form of SPEC "
        "and exit\n"
        "  --help           print this message and exit\n",
        argv0);
}

unsigned long long
numberArg(int argc, char **argv, int &i, const char *flag,
          unsigned long long max)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    const char *text = argv[++i];
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (!(text[0] >= '0' && text[0] <= '9') || end == text ||
        *end != '\0' || errno == ERANGE || v > max) {
        std::fprintf(stderr,
                     "%s: %s wants a plain decimal number in "
                     "[0, %llu], got '%s'\n\n",
                     argv[0], flag, max, text);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return v;
}

const char *
valueArg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return argv[++i];
}

/** One tile of the interference experiment. */
struct TileRow
{
    std::string workload;     ///< canonical per-tile spec
    double aloneTimePs = 0.0; ///< same policy, single core
    double aloneEnergyNj = 0.0;
    double timePs = 0.0;      ///< on the chip, no coordinator
    double energyNj = 0.0;
    double coordTimePs = 0.0; ///< on the chip, with --coord
    double coordEnergyNj = 0.0;
};

/** One tile count of the scaling experiment. */
struct ScaleRow
{
    int tiles = 0;
    double timePs = 0.0;       ///< global end time, no coordinator
    double energyNj = 0.0;     ///< tiles + uncore
    double coordTimePs = 0.0;  ///< with --coord
    double coordEnergyNj = 0.0;
    double coordUncoreMhz = 0.0;
};

/** Sum of per-tile chip energy plus the uncore row's. */
double
chipEnergy(const std::vector<exp::Outcome> &rows)
{
    double e = 0.0;
    for (const exp::Outcome &o : rows)
        e += o.energyNj;
    return e;
}

void
writeJson(const std::string &path, const std::string &multi,
          const std::string &policy, const std::string &coord,
          const std::vector<TileRow> &tiles,
          const std::string &scale,
          const std::vector<ScaleRow> &scaling)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_chip: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"co_schedule\": \"%s\",\n"
                 "  \"policy\": \"%s\",\n  \"coord\": \"%s\",\n"
                 "  \"tiles\": [\n",
                 multi.c_str(), policy.c_str(), coord.c_str());
    for (std::size_t k = 0; k < tiles.size(); ++k) {
        const TileRow &t = tiles[k];
        std::fprintf(f,
                     "    {\"tile\": %zu, \"workload\": \"%s\", "
                     "\"alone_time_ps\": %.0f, "
                     "\"alone_energy_nj\": %.6f, "
                     "\"time_ps\": %.0f, \"energy_nj\": %.6f, "
                     "\"coord_time_ps\": %.0f, "
                     "\"coord_energy_nj\": %.6f}%s\n",
                     k, t.workload.c_str(), t.aloneTimePs,
                     t.aloneEnergyNj, t.timePs, t.energyNj,
                     t.coordTimePs, t.coordEnergyNj,
                     k + 1 < tiles.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"scale_workload\": \"%s\",\n"
                    "  \"scaling\": [\n",
                 scale.c_str());
    for (std::size_t k = 0; k < scaling.size(); ++k) {
        const ScaleRow &s = scaling[k];
        std::fprintf(f,
                     "    {\"tiles\": %d, \"time_ps\": %.0f, "
                     "\"energy_nj\": %.6f, "
                     "\"coord_time_ps\": %.0f, "
                     "\"coord_energy_nj\": %.6f, "
                     "\"coord_uncore_mhz\": %.3f}%s\n",
                     s.tiles, s.timePs, s.energyNj, s.coordTimePs,
                     s.coordEnergyNj, s.coordUncoreMhz,
                     k + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string multi = "multi:t0=gsm_decode,t1=adpcm_decode";
    std::string scale = "gsm_decode";
    int tilesMax = 4;
    std::string policyText = "baseline";
    std::string coordText = "chip-coord";
    exp::ExpConfig cfg;
    cfg.jobs = 1;
    cfg.productionWindow = 20'000;
    cfg.analysisWindow = 20'000;
    const char *env = std::getenv("MCD_BENCH_CACHE");
    cfg.cacheFile = env ? env : "";
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--multi")) {
            multi = valueArg(argc, argv, i, "--multi");
        } else if (!std::strcmp(argv[i], "--scale")) {
            scale = valueArg(argc, argv, i, "--scale");
        } else if (!std::strcmp(argv[i], "--tiles-max")) {
            tilesMax = static_cast<int>(
                numberArg(argc, argv, i, "--tiles-max", 64));
        } else if (!std::strcmp(argv[i], "--policy")) {
            policyText = valueArg(argc, argv, i, "--policy");
        } else if (!std::strcmp(argv[i], "--coord")) {
            coordText = valueArg(argc, argv, i, "--coord");
        } else if (!std::strcmp(argv[i], "--window")) {
            cfg.productionWindow =
                numberArg(argc, argv, i, "--window", 100'000'000ull);
            cfg.analysisWindow = cfg.productionWindow;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            cfg.jobs = static_cast<unsigned>(
                numberArg(argc, argv, i, "--jobs", 256));
            if (cfg.jobs == 0)
                cfg.jobs = 1;
        } else if (!std::strcmp(argv[i], "--cache")) {
            cfg.cacheFile = valueArg(argc, argv, i, "--cache");
        } else if (!std::strcmp(argv[i], "--json")) {
            jsonPath = valueArg(argc, argv, i, "--json");
        } else if (!std::strcmp(argv[i], "--canon")) {
            const char *text = valueArg(argc, argv, i, "--canon");
            try {
                std::printf("%s\n",
                            chip::canonicalMultiSpec(text).c_str());
            } catch (const workload::SpecError &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                return 1;
            }
            return 0;
        } else if (!std::strcmp(argv[i], "--help")) {
            printUsage(argv[0], stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "%s: unrecognized argument '%s'\n\n",
                         argv[0], argv[i]);
            printUsage(argv[0], stderr);
            return 1;
        }
    }
    if (tilesMax < 1) {
        std::fprintf(stderr, "%s: --tiles-max must be >= 1\n",
                     argv[0]);
        return 1;
    }

    control::PolicySpec policy;
    std::string perr;
    if (!control::parseSpec(policyText, policy, perr) ||
        !control::PolicyRegistry::instance().canonicalize(policy,
                                                          perr)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], perr.c_str());
        return 1;
    }

    try {
        exp::Runner runner(cfg);

        // -- Experiment 1: co-schedule interference. ------------- //
        std::vector<std::string> tileSpecs =
            chip::parseMultiSpec(multi);
        std::string canonMulti = chip::multiSpecOf(tileSpecs);

        exp::ChipCell cell;
        cell.workload = canonMulti;
        cell.tilePolicy = policy;
        std::vector<exp::Outcome> plain = runner.runChip(cell);
        cell.coord = coordText;
        std::vector<exp::Outcome> coord = runner.runChip(cell);

        std::vector<TileRow> tiles(tileSpecs.size());
        for (std::size_t k = 0; k < tileSpecs.size(); ++k) {
            TileRow &t = tiles[k];
            t.workload = tileSpecs[k];
            // The same policy alone on one core: the interference
            // denominator (a one-tile chip is byte-identical).
            exp::Outcome alone = runner.run(tileSpecs[k], policy);
            t.aloneTimePs = alone.timePs;
            t.aloneEnergyNj = alone.energyNj;
            t.timePs = plain[k].timePs;
            t.energyNj = plain[k].energyNj;
            t.coordTimePs = coord[k].timePs;
            t.coordEnergyNj = coord[k].energyNj;
        }

        TextTable t1;
        t1.header({"tile", "workload", "alone ps", "chip ps",
                   "slowdown %", "coord ps", "coord slowdown %"});
        for (std::size_t k = 0; k < tiles.size(); ++k) {
            const TileRow &t = tiles[k];
            auto pct = [&](double ps) {
                return t.aloneTimePs > 0.0
                           ? 100.0 * (ps / t.aloneTimePs - 1.0)
                           : 0.0;
            };
            t1.row({std::to_string(k), t.workload,
                    TextTable::num(t.aloneTimePs, 0),
                    TextTable::num(t.timePs, 0),
                    TextTable::num(pct(t.timePs)),
                    TextTable::num(t.coordTimePs, 0),
                    TextTable::num(pct(t.coordTimePs))});
        }
        std::printf("co-schedule interference: %s\n"
                    "tile policy %s, coordinator %s, window %llu "
                    "instructions/tile\n",
                    canonMulti.c_str(), policy.str().c_str(),
                    coordText.c_str(),
                    (unsigned long long)cfg.productionWindow);
        std::ostringstream os1;
        t1.print(os1);
        std::fputs(os1.str().c_str(), stdout);

        // -- Experiment 2: throughput scaling. ------------------- //
        exp::Outcome aloneScale = runner.run(
            workload::canonicalWorkloadSpec(scale), policy);
        std::vector<ScaleRow> scaling;
        for (int n = 1; n <= tilesMax; ++n) {
            exp::ChipCell c;
            c.workload = scale;
            c.tiles = n;
            c.tilePolicy = policy;
            std::vector<exp::Outcome> rows = runner.runChip(c);
            ScaleRow s;
            s.tiles = n;
            s.timePs = rows.back().timePs;
            s.energyNj = chipEnergy(rows);
            c.coord = coordText;
            rows = runner.runChip(c);
            s.coordTimePs = rows.back().timePs;
            s.coordEnergyNj = chipEnergy(rows);
            s.coordUncoreMhz = rows.back().globalFreq;
            scaling.push_back(s);
        }

        TextTable t2;
        t2.header({"tiles", "chip ps", "throughput x", "energy nJ",
                   "coord ps", "coord energy nJ", "coord MHz"});
        for (const ScaleRow &s : scaling) {
            double tp = s.timePs > 0.0
                            ? s.tiles * aloneScale.timePs / s.timePs
                            : 0.0;
            t2.row({std::to_string(s.tiles),
                    TextTable::num(s.timePs, 0), TextTable::num(tp),
                    TextTable::num(s.energyNj),
                    TextTable::num(s.coordTimePs, 0),
                    TextTable::num(s.coordEnergyNj),
                    TextTable::num(s.coordUncoreMhz, 0)});
        }
        std::printf("\nthroughput scaling: %s x 1..%d tiles\n",
                    scale.c_str(), tilesMax);
        std::ostringstream os2;
        t2.print(os2);
        std::fputs(os2.str().c_str(), stdout);

        if (!jsonPath.empty())
            writeJson(jsonPath, canonMulti, policy.str(), coordText,
                      tiles, scale, scaling);
    } catch (const workload::SpecError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    return 0;
}
