/**
 * @file
 * Section 4.1 side experiment: the inherent performance and energy
 * penalty of the MCD processor relative to its globally-clocked
 * counterpart at equal (maximum) frequency.  The paper reports a
 * mean performance penalty of ~1.3% (max 3.6%) and energy penalty of
 * ~0.8% (max 2.1%); our substrate is more latency-sensitive (see
 * docs/ARCHITECTURE.md, "Synchronization window") but the penalty
 * must stay small and positive.
 */

#include "common.hh"
#include "sim/processor.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    const exp::ExpConfig &cfg = opt.cfg;

    TextTable t;
    t.header({"benchmark", "perf penalty %", "energy penalty %"});
    Summary perf, energy;
    const auto &benches = workloads(opt);
    std::vector<double> perf_pct(benches.size());
    std::vector<double> energy_pct(benches.size());
    util::parallelFor(benches.size(), jobsOf(cfg), [&](std::size_t i) {
        workload::Benchmark bm = workload::makeBenchmark(benches[i]);
        sim::Processor mcd_proc(cfg.sim, cfg.power, bm.program,
                                bm.ref);
        sim::RunResult mcd_run =
            mcd_proc.run(cfg.productionWindow);
        sim::SimConfig sc_cfg = cfg.sim;
        sc_cfg.singleClock = true;
        sim::Processor sc_proc(sc_cfg, cfg.power, bm.program, bm.ref);
        sim::RunResult sc_run = sc_proc.run(cfg.productionWindow);

        perf_pct[i] = (static_cast<double>(mcd_run.timePs) -
                       static_cast<double>(sc_run.timePs)) /
                      static_cast<double>(sc_run.timePs) * 100.0;
        energy_pct[i] =
            (mcd_run.chipEnergyNj - sc_run.chipEnergyNj) /
            sc_run.chipEnergyNj * 100.0;
    });
    for (std::size_t i = 0; i < benches.size(); ++i) {
        perf.add(perf_pct[i]);
        energy.add(energy_pct[i]);
        t.row({benches[i], TextTable::num(perf_pct[i]),
               TextTable::num(energy_pct[i])});
    }
    t.separator();
    t.row({"average", TextTable::num(perf.mean()),
           TextTable::num(energy.mean())});
    t.row({"max", TextTable::num(perf.max()),
           TextTable::num(energy.max())});
    std::printf("MCD inherent penalty vs. single-clock processor "
                "(paper: 1.3%% mean / 3.6%% max perf, 0.8%% mean "
                "energy)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
