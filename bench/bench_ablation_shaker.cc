/**
 * @file
 * Ablation: the shaker's structural resource edges
 * (docs/ARCHITECTURE.md, "Shaker structural edges").
 *
 * The dependence DAG carries ROB/issue-queue occupancy edges,
 * width-aware bandwidth chains and mispredict-redirect events on top
 * of the paper's functional/data dependences.  This bench removes
 * them (by inflating the capacities/widths until the edges vanish)
 * and shows how the thresholded frequencies collapse — i.e., why the
 * analysis would otherwise see phantom slack on overlapped
 * long-latency operations.
 */

#include <sstream>

#include "common.hh"
#include "core/shaker.hh"
#include "core/threshold.hh"
#include "sim/processor.hh"

using namespace mcd;

namespace
{

std::vector<sim::InstrTiming>
traceOf(const workload::Benchmark &bm, const exp::ExpConfig &cfg)
{
    struct Collect : sim::TraceSink
    {
        std::vector<sim::InstrTiming> items;
        void onInstr(const sim::InstrTiming &t) override
        {
            items.push_back(t);
        }
    } sink;
    sim::Processor proc(cfg.sim, cfg.power, bm.program, bm.ref);
    proc.setTraceSink(&sink);
    proc.run(30'000);
    return sink.items;
}

sim::FreqSet
choose(const std::vector<sim::InstrTiming> &trace,
       const core::ShakerConfig &scfg)
{
    core::SegmentAnalyzer analyzer(scfg);
    core::NodeHistograms out;
    analyzer.analyze(trace, out);
    core::ThresholdConfig tcfg;
    tcfg.slowdownPct = 10.0;
    return core::chooseFrequencies(out, tcfg);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    const exp::ExpConfig &cfg = opt.cfg;

    TextTable t;
    t.header({"benchmark", "variant", "fe MHz", "int MHz", "fp MHz",
              "mem MHz"});
    const std::vector<std::string> benches =
        workloadsOr(opt, {"mcf", "gsm_decode", "swim"});
    std::vector<std::vector<std::vector<std::string>>> rows(
        benches.size());
    util::parallelFor(benches.size(), jobsOf(cfg),
                      [&](std::size_t b) {
        const std::string &bench = benches[b];
        workload::Benchmark bm = workload::makeBenchmark(bench);
        auto trace = traceOf(bm, cfg);

        core::ShakerConfig full;  // defaults: all edges on
        core::ShakerConfig no_res = full;
        no_res.robSize = 1 << 20;     // occupancy edges never fire
        no_res.lsqSize = 1 << 20;
        no_res.intIqSize = 1 << 20;
        no_res.fpIqSize = 1 << 20;
        core::ShakerConfig no_redirect = full;
        no_redirect.mispredictPenalty = 0;

        struct
        {
            const char *name;
            const core::ShakerConfig *scfg;
        } variants[] = {
            {"full DAG", &full},
            {"no occupancy edges", &no_res},
            {"no redirect events", &no_redirect},
        };
        for (const auto &v : variants) {
            sim::FreqSet f = choose(trace, *v.scfg);
            rows[b].push_back({bench, v.name, TextTable::num(f[0], 0),
                               TextTable::num(f[1], 0),
                               TextTable::num(f[2], 0),
                               TextTable::num(f[3], 0)});
        }
    });
    for (const auto &bench_rows : rows) {
        for (const auto &row : bench_rows)
            t.row(row);
        t.separator();
    }
    std::printf("Ablation: thresholded frequencies (d=10) with "
                "shaker structural edges removed\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
