/**
 * @file
 * Figure 10: suite-average energy savings as a function of achieved
 * slowdown, for the on-line, off-line and profile-driven (L+F)
 * algorithms.  Off-line and L+F sweep the slowdown threshold d; the
 * on-line algorithm sweeps its aggressiveness.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    exp::Runner runner(parseArgs(argc, argv));

    const double d_points[] = {2.0, 4.0, 6.0, 10.0, 14.0, 20.0};
    const double aggr_points[] = {0.25, 0.5, 1.0, 2.0, 3.5, 6.0};

    TextTable t;
    t.header({"series", "point", "avg slowdown %", "avg savings %"});
    for (double d : d_points) {
        Summary slow, save;
        for (const auto &bench : workload::suiteNames()) {
            auto m = runner.offline(bench, d).metrics;
            slow.add(m.slowdownPct);
            save.add(m.energySavingsPct);
        }
        t.row({"off-line", strprintf("d=%.0f", d),
               TextTable::num(slow.mean()), TextTable::num(save.mean())});
    }
    t.separator();
    for (double d : d_points) {
        Summary slow, save;
        for (const auto &bench : workload::suiteNames()) {
            auto m = runner.profile(bench, core::ContextMode::LF, d)
                         .metrics;
            slow.add(m.slowdownPct);
            save.add(m.energySavingsPct);
        }
        t.row({"L+F", strprintf("d=%.0f", d),
               TextTable::num(slow.mean()), TextTable::num(save.mean())});
    }
    t.separator();
    for (double a : aggr_points) {
        Summary slow, save;
        for (const auto &bench : workload::suiteNames()) {
            auto m = runner.online(bench, a).metrics;
            slow.add(m.slowdownPct);
            save.add(m.energySavingsPct);
        }
        t.row({"on-line", strprintf("aggr=%.2f", a),
               TextTable::num(slow.mean()), TextTable::num(save.mean())});
    }
    std::printf("Figure 10: energy savings vs. achieved slowdown "
                "(suite averages)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
