/**
 * @file
 * Figure 4: per-benchmark performance degradation of the off-line,
 * on-line and profile-driven (L+F) reconfiguration methods, relative
 * to the MCD baseline.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    exp::Runner runner(opt.cfg);
    auto rows = headlineSweep(runner, workloads(opt));
    printHeadlineTable(rows, "Figure 4: performance degradation", "%",
                       &Metrics::slowdownPct);
    return 0;
}
