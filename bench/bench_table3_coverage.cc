/**
 * @file
 * Table 3: number of long-running ("reconfiguration") nodes and
 * total nodes in the L+F+C+P call tree when profiling with the
 * training and reference input sets, the counts common to both, and
 * the coverage fractions.
 *
 * Expected shapes (paper): most benchmarks have coverage 1.0; mpeg2
 * decode ~0.6 (reference-only code paths), vpr ~0.1 (training
 * exercises placement, reference routing), swim <1 with all training
 * nodes also present in the reference tree.
 */

#include <set>

#include "common.hh"
#include "core/profiler.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    const exp::ExpConfig &cfg = opt.cfg;

    TextTable t;
    t.header({"benchmark", "train LR", "train all", "ref LR",
              "ref all", "common LR", "common all", "cov LR",
              "cov all"});

    const auto &benches = workloads(opt);
    std::vector<std::vector<std::string>> rows(benches.size());
    util::parallelFor(benches.size(), jobsOf(cfg), [&](std::size_t i) {
        const std::string &bench = benches[i];
        workload::Benchmark bm = workload::makeBenchmark(bench);
        core::ProfileConfig pcfg;
        pcfg.maxInstrs = cfg.profileMaxInstrs;
        core::CallTree train = core::profileProgram(
            bm.program, bm.train, core::ContextMode::LFCP, pcfg);
        core::CallTree ref = core::profileProgram(
            bm.program, bm.ref, core::ContextMode::LFCP, pcfg);

        auto signatures = [&](const core::CallTree &tree, bool lr) {
            std::set<std::string> sigs;
            for (auto id : tree.nodeIds())
                if (!lr || tree.node(id).longRunning)
                    sigs.insert(tree.signature(id, bm.program));
            return sigs;
        };
        auto train_all = signatures(train, false);
        auto train_lr = signatures(train, true);
        auto ref_all = signatures(ref, false);
        auto ref_lr = signatures(ref, true);

        auto common = [](const std::set<std::string> &a,
                         const std::set<std::string> &b) {
            std::size_t n = 0;
            for (const auto &s : a)
                n += b.count(s);
            return n;
        };
        std::size_t common_all = common(train_all, ref_all);
        std::size_t common_lr = common(train_lr, ref_lr);

        rows[i] = {bench, std::to_string(train_lr.size()),
                   std::to_string(train_all.size()),
                   std::to_string(ref_lr.size()),
                   std::to_string(ref_all.size()),
                   std::to_string(common_lr),
                   std::to_string(common_all),
                   ref_lr.empty()
                       ? "-"
                       : TextTable::num(
                             static_cast<double>(common_lr) /
                                 static_cast<double>(ref_lr.size()),
                             2),
                   ref_all.empty()
                       ? "-"
                       : TextTable::num(
                             static_cast<double>(common_all) /
                                 static_cast<double>(ref_all.size()),
                             2)};
    });
    for (const auto &row : rows)
        t.row(row);
    std::printf("Table 3: call-tree nodes, training vs. reference "
                "(L+F+C+P)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
