/**
 * @file
 * `bench_server` — an adaptive load driver for the sweep service.
 *
 * Starts an in-process `srv::SweepServer` on an ephemeral loopback
 * port, then probes for its saturation point the way MongoDB's
 * throughput-probing simulator exercises execution control: run a
 * fixed-duration probe at a concurrency level, observe completed
 * requests/second, and hill-climb — move to the neighbouring level
 * (±1 client) whenever it beat the current one, stay put otherwise.
 * Each client thread holds one connection and issues small SWEEP
 * requests drawn from a fixed cell universe, so after the first
 * probe warms the memo the driver measures the server's framing,
 * admission and streaming path rather than simulation speed.
 *
 * `overload` rejections are part of the probe, not a failure: the
 * driver counts them, honours the server's retry_ms hint, and
 * reports them per probe — a healthy server sheds load instead of
 * degrading admitted work.
 *
 * `--json FILE` writes the probe table and the server's final
 * counters as a machine-readable artifact (CI uploads it as
 * BENCH_server.json).
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "srv/client.hh"
#include "srv/server.hh"

using namespace mcd;

namespace
{

void
printUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --probes N         hill-climb steps to run (default 6)\n"
        "  --probe-ms N       duration of one probe (default 1000)\n"
        "  --clients-max N    concurrency ceiling (default 32)\n"
        "  --window N         production window per cell "
        "(default 4000)\n"
        "  --jobs N           server pool size (default 4)\n"
        "  --queue-limit N    server admission bound (default 64)\n"
        "  --json FILE        write the probe table as JSON\n"
        "  --help             print this message and exit\n",
        argv0);
}

unsigned long long
numberArg(int argc, char **argv, int &i, const char *flag,
          unsigned long long max)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    const char *text = argv[++i];
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (!(text[0] >= '0' && text[0] <= '9') || end == text ||
        *end != '\0' || errno == ERANGE || v > max) {
        std::fprintf(stderr,
                     "%s: %s wants a plain decimal number in "
                     "[0, %llu], got '%s'\n\n",
                     argv[0], flag, max, text);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return v;
}

/** One cell per op keeps requests small; the universe mixes
 *  workloads and policies so probes touch several memo shards. */
struct Cell
{
    const char *workload;
    const char *policy;
};

const Cell kUniverse[] = {
    {"gsm_decode", "baseline"},
    {"gsm_decode", "offline:d=10"},
    {"adpcm_decode", "baseline"},
    {"adpcm_decode", "offline:d=10"},
    {"epic_decode", "baseline"},
    {"gen:phases=3,seed=11", "baseline"},
};

struct ProbeResult
{
    unsigned concurrency = 0;
    std::uint64_t ops = 0;       ///< completed SWEEP requests
    std::uint64_t rows = 0;
    std::uint64_t overloads = 0; ///< admission rejections honoured
    std::uint64_t errors = 0;    ///< anything else (should be 0)
    double opsPerSec = 0.0;
};

ProbeResult
probe(std::uint16_t port, unsigned concurrency, int probe_ms,
      std::uint64_t window)
{
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0}, rows{0}, overloads{0},
        errors{0};
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < concurrency; ++t) {
        clients.emplace_back([&, t] {
            try {
                srv::Client c = srv::Client::connectTcp(port);
                c.hello();
                std::uint32_t state = 0x9e3779b9u + t;
                while (!stop.load(std::memory_order_relaxed)) {
                    state ^= state << 13;
                    state ^= state >> 17;
                    state ^= state << 5;
                    const Cell &cell =
                        kUniverse[state % (sizeof(kUniverse) /
                                           sizeof(kUniverse[0]))];
                    try {
                        srv::SweepReply r = c.sweep(
                            {cell.workload}, {cell.policy}, window);
                        ops.fetch_add(1);
                        rows.fetch_add(r.rows.size());
                    } catch (const srv::ClientError &e) {
                        if (e.code() == srv::err::OVERLOAD) {
                            overloads.fetch_add(1);
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(
                                    e.retryMs() > 0 ? e.retryMs()
                                                    : 10));
                        } else {
                            errors.fetch_add(1);
                        }
                    }
                }
                c.quit();
            } catch (const std::exception &) {
                errors.fetch_add(1);
            }
        });
    }
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(probe_ms));
    stop.store(true);
    for (auto &c : clients)
        c.join();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    ProbeResult r;
    r.concurrency = concurrency;
    r.ops = ops.load();
    r.rows = rows.load();
    r.overloads = overloads.load();
    r.errors = errors.load();
    r.opsPerSec = secs > 0.0 ? static_cast<double>(r.ops) / secs
                             : 0.0;
    return r;
}

void
writeJson(const std::string &path,
          const std::vector<ProbeResult> &probes,
          const ProbeResult &best, const srv::ServerStats &stats)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_server: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"probes\": [\n");
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const ProbeResult &p = probes[i];
        std::fprintf(f,
                     "    {\"concurrency\": %u, \"ops\": %llu, "
                     "\"rows\": %llu, \"overloads\": %llu, "
                     "\"errors\": %llu, \"ops_per_sec\": %.2f}%s\n",
                     p.concurrency,
                     (unsigned long long)p.ops,
                     (unsigned long long)p.rows,
                     (unsigned long long)p.overloads,
                     (unsigned long long)p.errors, p.opsPerSec,
                     i + 1 < probes.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"best_concurrency\": %u,\n"
                 "  \"best_ops_per_sec\": %.2f,\n"
                 "  \"server\": {\"connections\": %llu, "
                 "\"admitted\": %llu, \"rejected_overload\": %llu, "
                 "\"rows_streamed\": %llu, \"memo_hits\": %llu, "
                 "\"memo_misses\": %llu}\n"
                 "}\n",
                 best.concurrency, best.opsPerSec,
                 (unsigned long long)stats.connections,
                 (unsigned long long)stats.admitted,
                 (unsigned long long)stats.rejectedOverload,
                 (unsigned long long)stats.rowsStreamed,
                 (unsigned long long)stats.memoHits,
                 (unsigned long long)stats.memoMisses);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned probes = 6;
    int probeMs = 1000;
    unsigned clientsMax = 32;
    std::uint64_t window = 4000;
    unsigned jobs = 4;
    std::size_t queueLimit = 64;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--probes")) {
            probes = static_cast<unsigned>(
                numberArg(argc, argv, i, "--probes", 1000));
        } else if (!std::strcmp(argv[i], "--probe-ms")) {
            probeMs = static_cast<int>(
                numberArg(argc, argv, i, "--probe-ms", 600'000));
        } else if (!std::strcmp(argv[i], "--clients-max")) {
            clientsMax = static_cast<unsigned>(
                numberArg(argc, argv, i, "--clients-max", 512));
        } else if (!std::strcmp(argv[i], "--window")) {
            window = numberArg(argc, argv, i, "--window",
                               100'000'000ull);
        } else if (!std::strcmp(argv[i], "--jobs")) {
            jobs = static_cast<unsigned>(
                numberArg(argc, argv, i, "--jobs", 256));
        } else if (!std::strcmp(argv[i], "--queue-limit")) {
            queueLimit = static_cast<std::size_t>(
                numberArg(argc, argv, i, "--queue-limit", 1u << 20));
        } else if (!std::strcmp(argv[i], "--json")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: --json needs a value\n\n",
                             argv[0]);
                printUsage(argv[0], stderr);
                return 1;
            }
            jsonPath = argv[++i];
        } else if (!std::strcmp(argv[i], "--help")) {
            printUsage(argv[0], stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "%s: unrecognized argument '%s'\n\n",
                         argv[0], argv[i]);
            printUsage(argv[0], stderr);
            return 1;
        }
    }
    if (probes == 0 || probeMs == 0 || clientsMax == 0 ||
        window == 0) {
        std::fprintf(stderr,
                     "%s: --probes, --probe-ms, --clients-max and "
                     "--window must be positive\n",
                     argv[0]);
        return 1;
    }

    srv::ServerConfig cfg;
    cfg.tcpPort = 0;  // ephemeral, in-process
    cfg.exp.productionWindow = window;
    cfg.exp.analysisWindow = window;
    cfg.exp.offlineInterval = window / 2 ? window / 2 : 1;
    cfg.exp.jobs = jobs;
    cfg.queueLimit = queueLimit;
    cfg.maxConnections = clientsMax + 8;
    srv::SweepServer server(cfg);
    server.start();
    std::printf("bench_server: server on 127.0.0.1:%u "
                "(jobs=%u window=%llu queue_limit=%zu)\n",
                server.tcpPort(), jobs,
                (unsigned long long)window, queueLimit);

    // Warm the memo so every probe measures the serving path, not
    // the first simulation of each cell.
    {
        srv::Client warm = srv::Client::connectTcp(server.tcpPort());
        warm.hello();
        for (const Cell &cell : kUniverse)
            warm.sweep({cell.workload}, {cell.policy}, window);
        warm.quit();
    }

    // Hill-climb: probe the current level, then the better-looking
    // neighbour; move whenever the neighbour wins.
    std::vector<ProbeResult> results;
    unsigned c = 1;
    ProbeResult best =
        probe(server.tcpPort(), c, probeMs, window);
    results.push_back(best);
    std::printf("probe c=%-3u  %8.1f ops/s  rows=%llu "
                "overload=%llu err=%llu\n",
                best.concurrency, best.opsPerSec,
                (unsigned long long)best.rows,
                (unsigned long long)best.overloads,
                (unsigned long long)best.errors);
    int direction = 1;
    for (unsigned p = 1; p < probes; ++p) {
        unsigned next =
            direction > 0
                ? (c < clientsMax ? c + 1 : c)
                : (c > 1 ? c - 1 : c);
        if (next == c) {
            direction = -direction;
            continue;
        }
        ProbeResult r =
            probe(server.tcpPort(), next, probeMs, window);
        results.push_back(r);
        std::printf("probe c=%-3u  %8.1f ops/s  rows=%llu "
                    "overload=%llu err=%llu\n",
                    r.concurrency, r.opsPerSec,
                    (unsigned long long)r.rows,
                    (unsigned long long)r.overloads,
                    (unsigned long long)r.errors);
        if (r.opsPerSec > best.opsPerSec) {
            best = r;
            c = next;
        } else {
            direction = -direction;  // overshoot: turn around
        }
    }

    srv::ServerStats stats = server.stats();
    server.stop();
    std::printf("bench_server: best c=%u at %.1f ops/s "
                "(server: admitted=%llu rows=%llu memo_hits=%llu "
                "memo_misses=%llu rejected=%llu)\n",
                best.concurrency, best.opsPerSec,
                (unsigned long long)stats.admitted,
                (unsigned long long)stats.rowsStreamed,
                (unsigned long long)stats.memoHits,
                (unsigned long long)stats.memoMisses,
                (unsigned long long)stats.rejectedOverload);
    if (!jsonPath.empty())
        writeJson(jsonPath, results, best, stats);
    return best.errors == 0 ? 0 : 1;
}
