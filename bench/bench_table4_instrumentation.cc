/**
 * @file
 * Table 4: static and dynamic reconfiguration/instrumentation point
 * counts and the estimated run-time overhead of the injected
 * instructions, for the most aggressive context definition
 * (L+F+C+P).  Also prints the lookup-table sizes of Section 3.4
 * (worst case in the paper: ~13 KB).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    exp::Runner runner(opt.cfg);

    TextTable t;
    t.header({"benchmark", "st reconf", "st instr", "dyn reconf",
              "dyn instr", "overhead %", "tables KB"});
    const auto &benches = workloads(opt);
    std::vector<exp::SweepCell> cells;
    for (const auto &bench : benches)
        cells.push_back(exp::SweepCell::of(
            bench, modeSpec(core::ContextMode::LFCP)));
    std::vector<exp::Outcome> out = runner.runSweep(cells);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const std::string &bench = benches[b];
        const auto &o = out[b];
        double overhead_pct =
            o.feCycles > 0.0
                ? o.overheadCycles / o.feCycles * 100.0
                : 0.0;
        t.row({bench, TextTable::num(o.staticReconfigPoints, 0),
               TextTable::num(o.staticInstrPoints, 0),
               TextTable::num(o.dynReconfigPoints, 0),
               TextTable::num(o.dynInstrPoints, 0),
               TextTable::num(overhead_pct, 2),
               TextTable::num(o.tableBytes / 1024.0, 2)});
    }
    std::printf("Table 4: static/dynamic reconfiguration and "
                "instrumentation points, run-time overhead "
                "(L+F+C+P)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
