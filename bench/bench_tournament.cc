/**
 * @file
 * `bench_tournament` — the all-policy tournament (exp/tournament.hh).
 *
 * Every registered sweepable policy (or an explicit `--policy`
 * roster) runs the tournament workload roster — the curated training
 * split plus the held-out `gen:` workloads (workload/split.hh), or
 * an explicit `--workload` list — and is ranked by mean regret
 * against the off-line oracle (`--oracle`, default offline:d=10) on
 * the paper's energy*delay metric.  The holdout column shows regret
 * on the generated workloads alone: the policies' generalization
 * score.
 *
 * Deterministic: cells run through the memoizing `exp::Runner`, so
 * the ranked table and the `--json` artifact (CI uploads it as
 * BENCH_tournament.json) are byte-identical across reruns and
 * `--jobs` values.  Sampled mode is refused — the roster contains
 * feedback controllers (docs/SAMPLING.md).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/tournament.hh"
#include "sim/sampling.hh"
#include "workload/spec.hh"

using namespace mcd;

namespace
{

void
printUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --oracle SPEC    regret reference (default offline:d=10)\n"
        "  --policy SPEC    add a policy to the roster (repeatable; "
        "default: every\n"
        "                   registered sweepable policy at schema "
        "defaults)\n"
        "  --workload SPEC  add a workload (repeatable; default: the "
        "tournament\n"
        "                   roster, training split + held-out gen: "
        "workloads)\n"
        "  --window N       production window, instructions "
        "(default 20000)\n"
        "  --jobs N         runner parallelism (default 1; the "
        "ranking is\n"
        "                   byte-identical at any value)\n"
        "  --sample SPEC    sampling mode; only `exact` is accepted "
        "(the roster\n"
        "                   holds feedback controllers, see "
        "docs/SAMPLING.md)\n"
        "  --cache FILE     result cache path (default "
        "$MCD_BENCH_CACHE or none)\n"
        "  --json FILE      write the ranking as JSON\n"
        "  --help           print this message and exit\n",
        argv0);
}

unsigned long long
numberArg(int argc, char **argv, int &i, const char *flag,
          unsigned long long max)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    const char *text = argv[++i];
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (!(text[0] >= '0' && text[0] <= '9') || end == text ||
        *end != '\0' || errno == ERANGE || v > max) {
        std::fprintf(stderr,
                     "%s: %s wants a plain decimal number in "
                     "[0, %llu], got '%s'\n\n",
                     argv[0], flag, max, text);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return v;
}

const char *
valueArg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                     flag);
        printUsage(argv[0], stderr);
        std::exit(1);
    }
    return argv[++i];
}

void
writeJson(const std::string &path, const exp::TournamentResult &r,
          std::uint64_t window)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_tournament: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"oracle\": \"%s\",\n"
                 "  \"window\": %llu,\n  \"workloads\": [\n",
                 r.oracle.c_str(), (unsigned long long)window);
    for (std::size_t k = 0; k < r.workloads.size(); ++k)
        std::fprintf(f, "    \"%s\"%s\n", r.workloads[k].c_str(),
                     k + 1 < r.workloads.size() ? "," : "");
    std::fprintf(f, "  ],\n  \"holdout_count\": %zu,\n"
                    "  \"ranking\": [\n",
                 r.holdoutCount);
    for (std::size_t k = 0; k < r.ranking.size(); ++k) {
        const exp::TournamentRow &row = r.ranking[k];
        std::fprintf(f,
                     "    {\"rank\": %zu, \"policy\": \"%s\", "
                     "\"regret_pct\": %.6f, "
                     "\"holdout_regret_pct\": %.6f, "
                     "\"ed_gain_pct\": %.6f, "
                     "\"slowdown_pct\": %.6f}%s\n",
                     k + 1, row.policy.c_str(), row.meanRegretPct,
                     row.holdoutRegretPct, row.meanEdGainPct,
                     row.meanSlowdownPct,
                     k + 1 < r.ranking.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    exp::TournamentConfig tc;
    exp::ExpConfig cfg;
    cfg.jobs = 1;
    cfg.productionWindow = 20'000;
    cfg.analysisWindow = 20'000;
    const char *env = std::getenv("MCD_BENCH_CACHE");
    cfg.cacheFile = env ? env : "";
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--oracle")) {
            tc.oracle = valueArg(argc, argv, i, "--oracle");
        } else if (!std::strcmp(argv[i], "--policy")) {
            tc.policies.push_back(
                valueArg(argc, argv, i, "--policy"));
        } else if (!std::strcmp(argv[i], "--workload")) {
            tc.workloads.push_back(
                valueArg(argc, argv, i, "--workload"));
        } else if (!std::strcmp(argv[i], "--window")) {
            cfg.productionWindow =
                numberArg(argc, argv, i, "--window", 100'000'000ull);
            cfg.analysisWindow = cfg.productionWindow;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            cfg.jobs = static_cast<unsigned>(
                numberArg(argc, argv, i, "--jobs", 256));
            if (cfg.jobs == 0)
                cfg.jobs = 1;
        } else if (!std::strcmp(argv[i], "--sample")) {
            // Parsed like the figure benches; anything but exact is
            // then refused by the Tournament constructor below with
            // the docs/SAMPLING.md rationale.
            try {
                cfg.sim.sampling = sim::parseSamplingSpec(
                    valueArg(argc, argv, i, "--sample"));
            } catch (const workload::SpecError &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                return 1;
            }
        } else if (!std::strcmp(argv[i], "--cache")) {
            cfg.cacheFile = valueArg(argc, argv, i, "--cache");
        } else if (!std::strcmp(argv[i], "--json")) {
            jsonPath = valueArg(argc, argv, i, "--json");
        } else if (!std::strcmp(argv[i], "--help")) {
            printUsage(argv[0], stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "%s: unrecognized argument '%s'\n\n",
                         argv[0], argv[i]);
            printUsage(argv[0], stderr);
            return 1;
        }
    }

    try {
        exp::Runner runner(cfg);
        exp::Tournament tournament(runner, tc);
        exp::TournamentResult r = tournament.run();
        std::fputs(renderTournamentTable(r).c_str(), stdout);
        if (!jsonPath.empty())
            writeJson(jsonPath, r, cfg.productionWindow);
    } catch (const workload::SpecError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    return 0;
}
