/**
 * @file
 * Ablation: the inter-domain synchronization window
 * (docs/ARCHITECTURE.md, "Synchronization window").
 *
 * Sweeps the Sjogren-Myers window (the paper models 30% of the faster
 * clock's period; Table 1's 300 ps) and the clock jitter, showing how
 * the MCD baseline penalty versus a single-clock chip decomposes
 * into window cost and jitter/misalignment cost.
 */

#include <sstream>

#include "common.hh"
#include "sim/processor.hh"

using namespace mcd;

int
main(int argc, char **argv)
{
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    const exp::ExpConfig &cfg = opt.cfg;
    const std::uint64_t window = 60'000;

    TextTable t;
    t.header({"benchmark", "variant", "penalty %"});
    const std::vector<std::string> benches =
        workloadsOr(opt, {"adpcm_decode", "gsm_decode", "mcf"});
    std::vector<std::vector<std::vector<std::string>>> rows(
        benches.size());
    util::parallelFor(benches.size(), jobsOf(cfg),
                      [&](std::size_t b) {
        const std::string &bench = benches[b];
        workload::Benchmark bm = workload::makeBenchmark(bench);
        auto run_with = [&](sim::SimConfig sc) {
            sim::Processor proc(sc, cfg.power, bm.program, bm.ref);
            return proc.run(window);
        };
        sim::SimConfig sc_single = cfg.sim;
        sc_single.singleClock = true;
        double t_single =
            static_cast<double>(run_with(sc_single).timePs);

        struct Variant
        {
            const char *name;
            double windowFrac;
            Tick jitterPs;
        } variants[] = {
            {"window 30% + jitter (paper)", 0.3, 110},
            {"window 15% + jitter", 0.15, 110},
            {"window 0 + jitter", 0.0, 110},
            {"window 30%, no jitter", 0.3, 0},
        };
        for (const auto &v : variants) {
            sim::SimConfig sc = cfg.sim;
            sc.syncWindowFrac = v.windowFrac;
            sc.jitterPs = v.jitterPs;
            double tm = static_cast<double>(run_with(sc).timePs);
            rows[b].push_back(
                {bench, v.name,
                 TextTable::num((tm - t_single) / t_single * 100.0)});
        }
    });
    for (const auto &bench_rows : rows) {
        for (const auto &row : bench_rows)
            t.row(row);
        t.separator();
    }
    std::printf("Ablation: MCD baseline penalty vs. synchronization "
                "window and jitter\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
