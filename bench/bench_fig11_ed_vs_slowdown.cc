/**
 * @file
 * Figure 11: suite-average energy x delay improvement as a function
 * of achieved slowdown (companion to Figure 10).  The paper's key
 * observation: the on-line algorithm's curve flattens beyond ~8%
 * slowdown while off-line and L+F remain near-linear.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    exp::Runner runner(opt.cfg);

    const double d_points[] = {2.0, 4.0, 6.0, 10.0, 14.0, 20.0};
    const double aggr_points[] = {0.25, 0.5, 1.0, 2.0, 3.5, 6.0};

    const auto &benches = workloads(opt);
    std::vector<exp::SweepCell> cells;
    for (double d : d_points)
        for (const auto &bench : benches)
            cells.push_back(exp::SweepCell::of(
                bench, strprintf("offline:d=%g", d)));
    for (double d : d_points)
        for (const auto &bench : benches)
            cells.push_back(exp::SweepCell::of(
                bench, strprintf("profile:mode=LF,d=%g", d)));
    for (double a : aggr_points)
        for (const auto &bench : benches)
            cells.push_back(exp::SweepCell::of(
                bench, strprintf("online:aggr=%g", a)));
    std::vector<exp::Outcome> out = runner.runSweep(cells);

    TextTable t;
    t.header({"series", "point", "avg slowdown %", "avg ExD gain %"});
    std::size_t i = 0;
    auto series = [&](const char *name, const double *points,
                      std::size_t n, const char *fmt) {
        for (std::size_t p = 0; p < n; ++p) {
            Summary slow, ed;
            for (std::size_t b = 0; b < benches.size(); ++b) {
                const Metrics &m = out[i++].metrics;
                slow.add(m.slowdownPct);
                ed.add(m.energyDelayImprovementPct);
            }
            t.row({name, strprintf(fmt, points[p]),
                   TextTable::num(slow.mean()),
                   TextTable::num(ed.mean())});
        }
    };
    series("off-line", d_points, std::size(d_points), "d=%.0f");
    t.separator();
    series("L+F", d_points, std::size(d_points), "d=%.0f");
    t.separator();
    series("on-line", aggr_points, std::size(aggr_points),
           "aggr=%.2f");
    std::printf("Figure 11: energy-delay improvement vs. achieved "
                "slowdown (suite averages)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
