/**
 * @file
 * Shared scaffolding for the benchmark binaries that regenerate the
 * paper's tables and figures.
 *
 * Every binary accepts:
 *   --window N     production window in instructions (default 150000)
 *   --no-cache     ignore and do not write the shared result cache
 *   --cache FILE   result cache path (default ./mcd_bench_cache.csv,
 *                  or $MCD_BENCH_CACHE)
 *   --jobs N       sweep parallelism (default hardware_concurrency;
 *                  1 = the old serial loops, byte-identical output)
 */

#ifndef MCD_BENCH_COMMON_HH
#define MCD_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "util/logging.hh"
#include "util/pool.hh"
#include "util/table.hh"
#include "workload/suite.hh"

namespace mcd::bench
{

/** Slowdown threshold used for the headline figures (4-7). */
constexpr double HEADLINE_D = 10.0;
/** On-line aggressiveness used for the headline figures. */
constexpr double HEADLINE_AGGR = 1.0;

inline exp::ExpConfig
parseArgs(int argc, char **argv)
{
    exp::ExpConfig cfg;
    const char *env = std::getenv("MCD_BENCH_CACHE");
    cfg.cacheFile = env ? env : "mcd_bench_cache.csv";
    cfg.d = HEADLINE_D;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--no-cache")) {
            cfg.cacheFile.clear();
        } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
            cfg.cacheFile = argv[++i];
        } else if (!std::strcmp(argv[i], "--window") && i + 1 < argc) {
            cfg.productionWindow =
                std::strtoull(argv[++i], nullptr, 10);
            cfg.analysisWindow = cfg.productionWindow;
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            cfg.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (cfg.jobs == 0)
                cfg.jobs = 1;
        }
    }
    return cfg;
}

/** Sweep parallelism for code that drives util::parallelFor itself
 *  (the bench binaries that run raw Processor experiments rather
 *  than Runner policies). */
inline unsigned
jobsOf(const exp::ExpConfig &cfg)
{
    return cfg.jobs ? cfg.jobs : util::ThreadPool::defaultThreads();
}

/** One benchmark's headline metrics under the three main policies. */
struct HeadlineRow
{
    std::string bench;
    Metrics offline;
    Metrics online;
    Metrics profile;
};

/**
 * The shared headline sweep behind Figures 4, 5 and 6: off-line,
 * on-line and profile-driven L+F on every benchmark, as one
 * runSweep() batch (results are memoized in the cache, so the three
 * binaries compute it once; the cells run in parallel per --jobs).
 */
inline std::vector<HeadlineRow>
headlineSweep(exp::Runner &runner)
{
    const auto &benches = workload::suiteNames();
    std::vector<exp::SweepCell> cells;
    for (const auto &bench : benches) {
        cells.push_back(exp::SweepCell::offline(bench, HEADLINE_D));
        cells.push_back(exp::SweepCell::online(bench, HEADLINE_AGGR));
        cells.push_back(exp::SweepCell::profile(
            bench, core::ContextMode::LF, HEADLINE_D));
    }
    std::vector<exp::Outcome> out = runner.runSweep(cells);
    std::vector<HeadlineRow> rows;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        HeadlineRow row;
        row.bench = benches[i];
        row.offline = out[3 * i].metrics;
        row.online = out[3 * i + 1].metrics;
        row.profile = out[3 * i + 2].metrics;
        rows.push_back(row);
    }
    return rows;
}

/** Print one metric of the headline sweep as a paper-style table. */
inline void
printHeadlineTable(const std::vector<HeadlineRow> &rows,
                   const char *title, const char *unit,
                   double Metrics::*field)
{
    TextTable t;
    t.header({"benchmark", "off-line", "on-line", "profile L+F"});
    Summary s_off, s_onl, s_prof;
    for (const auto &r : rows) {
        t.row({r.bench, TextTable::num(r.offline.*field),
               TextTable::num(r.online.*field),
               TextTable::num(r.profile.*field)});
        s_off.add(r.offline.*field);
        s_onl.add(r.online.*field);
        s_prof.add(r.profile.*field);
    }
    t.separator();
    t.row({"average", TextTable::num(s_off.mean()),
           TextTable::num(s_onl.mean()), TextTable::num(s_prof.mean())});
    std::printf("%s (%s, relative to the MCD baseline)\n", title, unit);
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
}

} // namespace mcd::bench

#endif // MCD_BENCH_COMMON_HH
