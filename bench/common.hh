/**
 * @file
 * Shared scaffolding for the benchmark binaries that regenerate the
 * paper's tables and figures.
 *
 * Every binary accepts:
 *   --window N       production window in instructions
 *                    (default 150000)
 *   --no-cache       ignore and do not write the shared result cache
 *   --cache FILE     result cache path (default
 *                    ./mcd_bench_cache.csv, or $MCD_BENCH_CACHE)
 *   --jobs N         sweep parallelism (default
 *                    hardware_concurrency; 1 = the old serial loops,
 *                    byte-identical output)
 *   --policy SPEC    run the given policy spec (repeatable) over the
 *                    whole suite instead of the binary's figure —
 *                    any policy in the registry, e.g.
 *                    "hybrid:guard=0.05", is selectable in every
 *                    binary
 *   --list-policies  print the policy registry (names, parameters,
 *                    defaults) and exit
 *   --workload SPEC  replace the benchmark set with the given
 *                    workload specs (repeatable): a suite name
 *                    ("gzip"), a generator spec
 *                    ("gen:phases=4,mem=0.4,seed=7"), or an
 *                    authored program file ("@solver.mcdw", the
 *                    docs/WORKLOADS.md text format)
 *   --list-workloads print the workload registry (names,
 *                    parameters, defaults) and exit
 *   --no-fast-forward  run the simulation kernel without idle-edge
 *                    fast-forward (slower; identical results — the
 *                    CI equivalence gate diffs the two modes)
 *   --sample SPEC    simulation sampling mode (docs/SAMPLING.md):
 *                    "exact" (default, bit-identical detailed
 *                    simulation) or
 *                    "sampled[:interval=N,sample=N,warmup=N,ci=PCT]"
 *                    (detailed probes + functional skips, results
 *                    carry 95% confidence intervals)
 *   --help           print usage and exit
 *
 * Unrecognized arguments are a hard error: a typo like `--job 4`
 * aborts with usage instead of silently running a full serial sweep.
 */

#ifndef MCD_BENCH_COMMON_HH
#define MCD_BENCH_COMMON_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "control/policy.hh"
#include "exp/experiment.hh"
#include "util/logging.hh"
#include "util/pool.hh"
#include "util/table.hh"
#include "workload/author.hh"
#include "workload/registry.hh"
#include "workload/suite.hh"

namespace mcd::bench
{

/**
 * Sweep cells are built from terse spec strings ("offline:d=10",
 * "profile:mode=LF,d=10") that canonicalize against the policy
 * schemas.  The headline figures (4-7) and Table 4 all run at the
 * paper's headline slowdown threshold and on-line aggressiveness;
 * the constants below are the single place those parameters live.
 */

/** Headline slowdown parameter (d=10%), shared by every headline
 *  spec and by modeSpec(). */
inline const std::string HEADLINE_D_PARAM = "d=10";
inline const std::string HEADLINE_OFFLINE = "offline:" + HEADLINE_D_PARAM;
inline const std::string HEADLINE_GLOBAL = "global:" + HEADLINE_D_PARAM;
inline const std::string HEADLINE_PROFILE =
    "profile:mode=LF," + HEADLINE_D_PARAM;
inline const std::string HEADLINE_ONLINE = "online:aggr=1";

/** Headline profile spec for one context mode: "profile:mode=M,d=10". */
inline std::string
modeSpec(core::ContextMode m)
{
    return std::string("profile:mode=") + control::compactModeName(m) +
           "," + HEADLINE_D_PARAM;
}

/** Parsed command line: the harness configuration plus any --policy
 *  override specs. */
struct Options
{
    exp::ExpConfig cfg;
    /** Policy specs from --policy flags; non-empty = the binary
     *  runs these over the suite instead of its figure (see
     *  runPolicyOverride()). */
    std::vector<control::PolicySpec> policies;
    /** Canonical workload specs from --workload flags; non-empty =
     *  they replace the benchmark set of the figure / --policy
     *  sweep (see workloads()). */
    std::vector<std::string> workloads;
};

inline void
printUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --window N       production window, instructions "
        "(default 150000)\n"
        "  --cache FILE     result cache path (default "
        "./mcd_bench_cache.csv or $MCD_BENCH_CACHE)\n"
        "  --no-cache       ignore and do not write the result "
        "cache\n"
        "  --jobs N         sweep parallelism (default: all "
        "hardware threads; 1 = serial)\n"
        "  --policy SPEC    run this policy spec over the suite "
        "instead of the figure (repeatable);\n"
        "                   SPEC is name[:key=value,...], e.g. "
        "profile:mode=LFCP,d=5 or online:aggr=1.5;\n"
        "                   unset parameters take the schema "
        "defaults shown by --list-policies\n"
        "                   (the figures themselves use the "
        "headline d=10)\n"
        "  --list-policies  print the policy registry and exit\n"
        "  --workload SPEC  replace the benchmark set "
        "(repeatable); SPEC is a suite name, a\n"
        "                   generator spec like "
        "gen:phases=4,mem=0.4,seed=7, or @FILE with an\n"
        "                   authored program (see "
        "docs/WORKLOADS.md)\n"
        "  --list-workloads print the workload registry and exit\n"
        "  --no-fast-forward  disable the kernel's idle-edge "
        "fast-forward (identical results, slower)\n"
        "  --sample SPEC    sampling mode: exact (default) or "
        "sampled[:interval=N,sample=N,warmup=N,ci=PCT]\n"
        "                   (see docs/SAMPLING.md)\n"
        "  --help           print this message and exit\n",
        argv0);
}

inline void
listPolicies()
{
    std::printf("registered policies:\n%s",
                control::describePolicies().c_str());
}

inline void
listWorkloads()
{
    std::printf("registered workloads (spec grammar "
                "name[:key=value,...]):\n%s",
                workload::describeWorkloads().c_str());
}

/** Resolve one --workload argument to its canonical spec string:
 *  `@FILE` loads and registers the authored program, anything else
 *  registry-validates.  Throws workload::SpecError — shared by
 *  parseArgs() and bench_throughput's flag peeler so the two CLIs
 *  cannot drift. */
inline std::string
resolveWorkloadArg(const char *text)
{
    if (text[0] == '@')
        return workload::WorkloadRegistry::instance().addProgram(
            workload::readProgramFile(text + 1));
    return workload::canonicalWorkloadSpec(text);
}

inline Options
parseArgs(int argc, char **argv)
{
    Options opt;
    exp::ExpConfig &cfg = opt.cfg;
    const char *env = std::getenv("MCD_BENCH_CACHE");
    cfg.cacheFile = env ? env : "mcd_bench_cache.csv";

    auto value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s needs a value\n\n", argv[0],
                         flag);
            printUsage(argv[0], stderr);
            std::exit(1);
        }
        return argv[++i];
    };
    // Values get the same strictness as flag names: a partial parse
    // ("150,000", "x4"), a negative ("-1", which strtoull would
    // sign-wrap to ULLONG_MAX without complaint) or an overflowing
    // value is an error, not a silent truncation.
    auto number = [&](int &i, const char *flag,
                      unsigned long long max) -> unsigned long long {
        const char *text = value(i, flag);
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(text, &end, 10);
        if (!(text[0] >= '0' && text[0] <= '9') || end == text ||
            *end != '\0' || errno == ERANGE || v > max) {
            std::fprintf(stderr,
                         "%s: %s wants a plain decimal number in "
                         "[0, %llu], got '%s'\n\n",
                         argv[0], flag, max, text);
            printUsage(argv[0], stderr);
            std::exit(1);
        }
        return v;
    };

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--no-cache")) {
            cfg.cacheFile.clear();
        } else if (!std::strcmp(argv[i], "--cache")) {
            cfg.cacheFile = value(i, "--cache");
        } else if (!std::strcmp(argv[i], "--window")) {
            cfg.productionWindow = number(
                i, "--window",
                std::numeric_limits<std::uint64_t>::max());
            cfg.analysisWindow = cfg.productionWindow;
        } else if (!std::strcmp(argv[i], "--jobs")) {
            cfg.jobs = static_cast<unsigned>(number(
                i, "--jobs",
                std::numeric_limits<unsigned>::max()));
            if (cfg.jobs == 0)
                cfg.jobs = 1;
        } else if (!std::strcmp(argv[i], "--policy")) {
            const char *text = value(i, "--policy");
            control::PolicySpec spec;
            std::string err;
            // Parse and registry-validate up front so a typo fails
            // here, with the message, not mid-sweep.
            if (!control::parseSpec(text, spec, err) ||
                !control::PolicyRegistry::instance().canonicalize(
                    spec, err)) {
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             err.c_str());
                std::exit(1);
            }
            opt.policies.push_back(std::move(spec));
        } else if (!std::strcmp(argv[i], "--workload")) {
            // Resolve to the canonical spec up front so a typo or
            // bad file fails here, with the message, not mid-sweep.
            try {
                opt.workloads.push_back(
                    resolveWorkloadArg(value(i, "--workload")));
            } catch (const workload::SpecError &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                std::exit(1);
            }
        } else if (!std::strcmp(argv[i], "--no-fast-forward")) {
            cfg.sim.fastForward = false;
        } else if (!std::strcmp(argv[i], "--sample")) {
            // Validate up front so a typo fails here with the
            // grammar message, not mid-sweep.
            try {
                cfg.sim.sampling =
                    sim::parseSamplingSpec(value(i, "--sample"));
            } catch (const workload::SpecError &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                std::exit(1);
            }
        } else if (!std::strcmp(argv[i], "--list-policies")) {
            listPolicies();
            std::exit(0);
        } else if (!std::strcmp(argv[i], "--list-workloads")) {
            listWorkloads();
            std::exit(0);
        } else if (!std::strcmp(argv[i], "--help")) {
            printUsage(argv[0], stdout);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unrecognized argument '%s'\n\n",
                         argv[0], argv[i]);
            printUsage(argv[0], stderr);
            std::exit(1);
        }
    }
    return opt;
}

/** Sweep parallelism for code that drives util::parallelFor itself
 *  (the bench binaries that run raw Processor experiments rather
 *  than Runner policies). */
inline unsigned
jobsOf(const exp::ExpConfig &cfg)
{
    return cfg.jobs ? cfg.jobs : util::ThreadPool::defaultThreads();
}

/** The benchmark set a binary should sweep: the --workload specs
 *  when given, the full 19-name suite otherwise. */
inline const std::vector<std::string> &
workloads(const Options &opt)
{
    return opt.workloads.empty() ? workload::suiteNames()
                                 : opt.workloads;
}

/** Like workloads(), for binaries whose figure uses a curated
 *  subset of the suite (the context figures, the ablations):
 *  --workload still overrides, the subset is the default. */
inline std::vector<std::string>
workloadsOr(const Options &opt,
            std::initializer_list<const char *> subset)
{
    if (!opt.workloads.empty())
        return opt.workloads;
    return {subset.begin(), subset.end()};
}

/**
 * The --policy override shared by every binary: when specs were
 * given on the command line, run them over the whole suite (one
 * runSweep() batch, memoized and parallel like any figure) and print
 * the paper's three metrics plus reconfiguration counts per cell.
 * Returns true if it ran (the caller should skip its figure).
 */
inline bool
runPolicyOverride(const Options &opt)
{
    if (opt.policies.empty())
        return false;
    exp::Runner runner(opt.cfg);
    const auto &benches = workloads(opt);
    std::vector<exp::SweepCell> cells;
    for (const auto &bench : benches)
        for (const auto &spec : opt.policies)
            cells.push_back(exp::SweepCell::of(bench, spec));
    std::vector<exp::Outcome> out = runner.runSweep(cells);

    TextTable t;
    t.header({"benchmark", "policy", "slowdown %", "savings %",
              "ExD gain %", "reconfigs"});
    std::size_t i = 0;
    std::vector<Summary> slow(opt.policies.size()),
        save(opt.policies.size()), ed(opt.policies.size());
    for (const auto &bench : benches) {
        for (std::size_t p = 0; p < opt.policies.size(); ++p) {
            const exp::Outcome &o = out[i++];
            t.row({bench, opt.policies[p].str(),
                   TextTable::num(o.metrics.slowdownPct),
                   TextTable::num(o.metrics.energySavingsPct),
                   TextTable::num(o.metrics.energyDelayImprovementPct),
                   TextTable::num(o.reconfigs, 0)});
            slow[p].add(o.metrics.slowdownPct);
            save[p].add(o.metrics.energySavingsPct);
            ed[p].add(o.metrics.energyDelayImprovementPct);
        }
    }
    t.separator();
    for (std::size_t p = 0; p < opt.policies.size(); ++p)
        t.row({"average", opt.policies[p].str(),
               TextTable::num(slow[p].mean()),
               TextTable::num(save[p].mean()),
               TextTable::num(ed[p].mean()), "-"});
    std::printf("policy sweep (window %llu instructions, vs MCD "
                "baseline)\n",
                (unsigned long long)opt.cfg.productionWindow);
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return true;
}

/** One benchmark's headline metrics under the three main policies. */
struct HeadlineRow
{
    std::string bench;
    Metrics offline;
    Metrics online;
    Metrics profile;
};

/**
 * The shared headline sweep behind Figures 4, 5 and 6: off-line,
 * on-line and profile-driven L+F on every benchmark of @p benches
 * (the full suite, or the --workload set), as one runSweep() batch
 * (results are memoized in the cache, so the three binaries compute
 * it once; the cells run in parallel per --jobs).
 */
inline std::vector<HeadlineRow>
headlineSweep(exp::Runner &runner,
              const std::vector<std::string> &benches)
{
    std::vector<exp::SweepCell> cells;
    for (const auto &bench : benches) {
        cells.push_back(exp::SweepCell::of(bench, HEADLINE_OFFLINE));
        cells.push_back(exp::SweepCell::of(bench, HEADLINE_ONLINE));
        cells.push_back(exp::SweepCell::of(bench, HEADLINE_PROFILE));
    }
    std::vector<exp::Outcome> out = runner.runSweep(cells);
    std::vector<HeadlineRow> rows;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        HeadlineRow row;
        row.bench = benches[i];
        row.offline = out[3 * i].metrics;
        row.online = out[3 * i + 1].metrics;
        row.profile = out[3 * i + 2].metrics;
        rows.push_back(row);
    }
    return rows;
}

/** Print one metric of the headline sweep as a paper-style table. */
inline void
printHeadlineTable(const std::vector<HeadlineRow> &rows,
                   const char *title, const char *unit,
                   double Metrics::*field)
{
    TextTable t;
    t.header({"benchmark", "off-line", "on-line", "profile L+F"});
    Summary s_off, s_onl, s_prof;
    for (const auto &r : rows) {
        t.row({r.bench, TextTable::num(r.offline.*field),
               TextTable::num(r.online.*field),
               TextTable::num(r.profile.*field)});
        s_off.add(r.offline.*field);
        s_onl.add(r.online.*field);
        s_prof.add(r.profile.*field);
    }
    t.separator();
    t.row({"average", TextTable::num(s_off.mean()),
           TextTable::num(s_onl.mean()), TextTable::num(s_prof.mean())});
    std::printf("%s (%s, relative to the MCD baseline)\n", title, unit);
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
}

} // namespace mcd::bench

#endif // MCD_BENCH_COMMON_HH
