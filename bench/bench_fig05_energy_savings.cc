/**
 * @file
 * Figure 5: per-benchmark energy savings of the off-line, on-line
 * and profile-driven (L+F) reconfiguration methods, relative to the
 * MCD baseline.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace mcd;
    using namespace mcd::bench;
    Options opt = parseArgs(argc, argv);
    if (runPolicyOverride(opt))
        return 0;
    exp::Runner runner(opt.cfg);
    auto rows = headlineSweep(runner, workloads(opt));
    printHeadlineTable(rows, "Figure 5: energy savings", "%",
                       &Metrics::energySavingsPct);
    return 0;
}
