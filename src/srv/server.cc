#include "srv/server.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include <poll.h>

#include "chip/multi.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"

namespace mcd::srv
{

namespace
{

using Clock = std::chrono::steady_clock;

int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left < 0 ? 0 : static_cast<int>(left);
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

SweepServer::SweepServer(ServerConfig cfg) : cfg_(std::move(cfg))
{
    fingerprint_ = exp::configFingerprint(cfg_.exp);
}

SweepServer::~SweepServer() { stop(); }

void
SweepServer::start()
{
    if (started_.exchange(true))
        throw NetError("server already started");
    if (cfg_.unixPath.empty() && cfg_.tcpPort < 0) {
        started_ = false;
        throw NetError(
            "no listener configured (need a unix path or tcp port)");
    }
    try {
        if (!cfg_.unixPath.empty())
            listeners_.push_back(Listener::unixSocket(cfg_.unixPath));
        if (cfg_.tcpPort >= 0)
            listeners_.push_back(Listener::tcp(
                static_cast<std::uint16_t>(cfg_.tcpPort)));
    } catch (...) {
        listeners_.clear();
        started_ = false;
        throw;
    }
    pool_ = std::make_unique<util::ThreadPool>(cfg_.exp.jobs);
    acceptThread_ = std::thread(&SweepServer::acceptLoop, this);
}

void
SweepServer::stop()
{
    std::lock_guard<std::mutex> lock(stopM_);
    stopping_ = true;
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto &l : listeners_)
        l.close();
    listeners_.clear();
    reapConnThreads(/*join_all=*/true);
    if (pool_)
        pool_->wait();
    {
        // Destroying the runners flushes their CSV cache writers;
        // keep their counters for the post-drain stats line.
        std::lock_guard<std::mutex> rlock(runnersM_);
        for (const auto &kv : runners_) {
            retiredHits_ += kv.second->memoHits();
            retiredMisses_ += kv.second->memoMisses();
            retiredLoaded_ += kv.second->loadedFromCache();
            retiredRejected_ += kv.second->rejectedCacheLines();
        }
        runners_.clear();
    }
}

std::uint16_t
SweepServer::tcpPort() const
{
    for (const auto &l : listeners_)
        if (l.port() != 0)
            return l.port();
    return 0;
}

std::string
SweepServer::unixSocketPath() const
{
    for (const auto &l : listeners_)
        if (!l.path().empty())
            return l.path();
    return {};
}

ServerStats
SweepServer::stats() const
{
    ServerStats s;
    s.connections = nConnections_.load();
    s.activeConnections = nActiveConns_.load();
    s.admitted = nAdmitted_.load();
    s.rejectedOverload = nRejectedOverload_.load();
    s.badRequests = nBadRequests_.load();
    s.timeouts = nTimeouts_.load();
    s.rowsStreamed = nRowsStreamed_.load();
    s.inflightCells = inflightCells_.load();
    std::lock_guard<std::mutex> lock(runnersM_);
    s.memoHits = retiredHits_;
    s.memoMisses = retiredMisses_;
    s.cacheLoaded = retiredLoaded_;
    s.cacheRejected = retiredRejected_;
    for (const auto &kv : runners_) {
        s.memoHits += kv.second->memoHits();
        s.memoMisses += kv.second->memoMisses();
        s.cacheLoaded += kv.second->loadedFromCache();
        s.cacheRejected += kv.second->rejectedCacheLines();
    }
    return s;
}

exp::Runner *
SweepServer::runnerFor(std::uint64_t window, std::string &err)
{
    std::lock_guard<std::mutex> lock(runnersM_);
    auto it = runners_.find(window);
    if (it != runners_.end())
        return it->second.get();
    if (runners_.size() >= cfg_.maxWindows) {
        err = "window pool exhausted (max_windows=" +
              std::to_string(cfg_.maxWindows) +
              " distinct windows already in use)";
        return nullptr;
    }
    exp::ExpConfig wcfg = cfg_.exp;
    wcfg.productionWindow = window;
    wcfg.analysisWindow = window;
    auto runner = std::make_unique<exp::Runner>(wcfg);
    exp::Runner *raw = runner.get();
    runners_.emplace(window, std::move(runner));
    return raw;
}

void
SweepServer::acceptLoop()
{
    while (!stopping_) {
        std::vector<struct pollfd> pfds;
        pfds.reserve(listeners_.size());
        for (const auto &l : listeners_)
            pfds.push_back({l.fd(), POLLIN, 0});
        int pr = ::poll(pfds.data(),
                        static_cast<nfds_t>(pfds.size()), 100);
        reapConnThreads(/*join_all=*/false);
        if (pr <= 0)
            continue;
        for (std::size_t i = 0; i < pfds.size(); ++i) {
            if (!(pfds[i].revents & POLLIN))
                continue;
            Conn conn = listeners_[i].accept(0);
            if (!conn.valid())
                continue;
            nConnections_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(connsM_);
            if (conns_.size() >= cfg_.maxConnections) {
                nRejectedOverload_.fetch_add(
                    1, std::memory_order_relaxed);
                conn.writeLine(errLine(
                    "", err::OVERLOAD,
                    "connection limit reached (max_connections=" +
                        std::to_string(cfg_.maxConnections) + ")",
                    cfg_.retryAfterMs));
                continue; // conn closes on scope exit
            }
            auto slot = std::make_unique<ConnSlot>();
            ConnSlot *sp = slot.get();
            sp->thread = std::thread(
                [this, sp, c = std::move(conn)]() mutable {
                    serveConn(std::move(c));
                    sp->done.store(true);
                });
            conns_.push_back(std::move(slot));
        }
    }
}

void
SweepServer::reapConnThreads(bool join_all)
{
    std::lock_guard<std::mutex> lock(connsM_);
    for (auto it = conns_.begin(); it != conns_.end();) {
        if (join_all || (*it)->done.load()) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
SweepServer::serveConn(Conn conn)
{
    nActiveConns_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
        std::string line;
        // The deadline covers the whole frame: a slow-loris peer
        // trickling bytes cannot extend it.  Read in short slices so
        // stop() is noticed promptly between requests.
        Clock::time_point deadline =
            Clock::now() +
            std::chrono::milliseconds(cfg_.idleTimeoutMs);
        bool closing = false;
        for (;;) {
            int left = remainingMs(deadline);
            Conn::ReadStatus st = conn.readLine(
                line, std::min(left, 100), cfg_.maxLineBytes);
            if (st == Conn::ReadStatus::Line)
                break;
            if (st == Conn::ReadStatus::Timeout) {
                if (stopping_) {
                    closing = true;
                    break;
                }
                if (left > 100)
                    continue;
                conn.writeLine(errLine(
                    "", err::TIMEOUT,
                    "no complete frame within idle_timeout_ms=" +
                        std::to_string(cfg_.idleTimeoutMs)));
                closing = true;
                break;
            }
            if (st == Conn::ReadStatus::Overflow) {
                nBadRequests_.fetch_add(1,
                                        std::memory_order_relaxed);
                conn.writeLine(errLine(
                    "", err::TOO_LARGE,
                    "frame exceeds max_line_bytes=" +
                        std::to_string(cfg_.maxLineBytes)));
                closing = true;
                break;
            }
            closing = true; // Eof or Error
            break;
        }
        if (closing)
            break;
        if (!handleLine(conn, line))
            break;
    }
    conn.close();
    nActiveConns_.fetch_sub(1, std::memory_order_relaxed);
}

bool
SweepServer::handleLine(Conn &conn, const std::string &line)
{
    Request req;
    std::string perr;
    if (!parseRequest(line, req, perr)) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        return conn.writeLine(errLine("", err::BAD_REQUEST, perr));
    }
    switch (req.verb) {
    case Request::Verb::Hello:
        return conn.writeLine(formatResponse(
            Response::Kind::Ok, req.id,
            {{"proto", std::to_string(PROTO_VERSION)},
             {"fingerprint", hex16(fingerprint_)},
             {"window", std::to_string(cfg_.exp.productionWindow)},
             {"jobs",
              std::to_string(pool_ ? pool_->threadCount() : 0)}}));
    case Request::Verb::Ping:
        return conn.writeLine(
            formatResponse(Response::Kind::Ok, req.id));
    case Request::Verb::Stats: {
        ServerStats s = stats();
        return conn.writeLine(formatResponse(
            Response::Kind::Ok, req.id,
            {{"connections", std::to_string(s.connections)},
             {"active", std::to_string(s.activeConnections)},
             {"admitted", std::to_string(s.admitted)},
             {"rejected", std::to_string(s.rejectedOverload)},
             {"bad_requests", std::to_string(s.badRequests)},
             {"timeouts", std::to_string(s.timeouts)},
             {"rows", std::to_string(s.rowsStreamed)},
             {"inflight", std::to_string(s.inflightCells)},
             {"memo_hits", std::to_string(s.memoHits)},
             {"memo_misses", std::to_string(s.memoMisses)},
             {"cache_loaded", std::to_string(s.cacheLoaded)},
             {"cache_rejected", std::to_string(s.cacheRejected)}}));
    }
    case Request::Verb::Sweep:
        return handleSweep(conn, req);
    case Request::Verb::Prog:
        return handleProg(conn, req);
    case Request::Verb::Quit:
        conn.writeLine(formatResponse(Response::Kind::Bye, req.id));
        return false;
    }
    return false; // unreachable; parseRequest rejects unknown verbs
}

bool
SweepServer::handleSweep(Conn &conn, const Request &req)
{
    if (stopping_)
        return conn.writeLine(errLine(req.id, err::SHUTTING_DOWN,
                                      "server is draining"));
    if (req.hasFingerprint && req.fingerprint != fingerprint_) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        return conn.writeLine(
            errLine(req.id, err::CONFIG_MISMATCH,
                    "server fingerprint is " + hex16(fingerprint_) +
                        ", request pinned " +
                        hex16(req.fingerprint)));
    }
    if (req.hasTiles)
        return handleChipSweep(conn, req);

    // Validate every spec up front — a bad cell must be rejected
    // before any cell is admitted or computed.  The canonical spec
    // strings become the row labels, making the dedup identity
    // visible to the client.
    std::vector<std::string> benches;
    benches.reserve(req.workloads.size());
    for (const auto &w : req.workloads) {
        try {
            benches.push_back(workload::canonicalWorkloadSpec(w));
        } catch (const workload::SpecError &e) {
            nBadRequests_.fetch_add(1, std::memory_order_relaxed);
            return conn.writeLine(
                errLine(req.id, err::BAD_SPEC, e.what()));
        }
    }
    std::vector<control::PolicySpec> specs;
    specs.reserve(req.policies.size());
    for (const auto &p : req.policies) {
        control::PolicySpec ps;
        std::string serr;
        if (!control::parseSpec(p, ps, serr) ||
            !control::PolicyRegistry::instance().canonicalize(
                ps, serr)) {
            nBadRequests_.fetch_add(1, std::memory_order_relaxed);
            return conn.writeLine(
                errLine(req.id, err::BAD_SPEC, serr));
        }
        specs.push_back(std::move(ps));
    }

    const std::size_t ncells = benches.size() * specs.size();
    if (ncells > cfg_.maxCellsPerRequest) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        return conn.writeLine(errLine(
            req.id, err::TOO_LARGE,
            std::to_string(ncells) +
                " cells exceed max_cells_per_request=" +
                std::to_string(cfg_.maxCellsPerRequest)));
    }

    std::uint64_t window =
        req.window ? req.window : cfg_.exp.productionWindow;
    std::string rerr;
    exp::Runner *runner = runnerFor(window, rerr);
    if (!runner) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        return conn.writeLine(errLine(req.id, err::TOO_LARGE, rerr));
    }

    // Admission control: reserve the whole request's cells against
    // the queue bound, or bounce it with a retry hint.
    std::uint64_t cur = inflightCells_.load();
    for (;;) {
        if (cur + ncells > cfg_.queueLimit) {
            nRejectedOverload_.fetch_add(1,
                                         std::memory_order_relaxed);
            return conn.writeLine(errLine(
                req.id, err::OVERLOAD,
                std::to_string(cur) + " cells in flight; " +
                    std::to_string(ncells) +
                    " more would exceed queue_limit=" +
                    std::to_string(cfg_.queueLimit),
                cfg_.retryAfterMs));
        }
        if (inflightCells_.compare_exchange_weak(cur, cur + ncells))
            break;
    }
    nAdmitted_.fetch_add(ncells, std::memory_order_relaxed);

    // One pool job per cell.  Each job releases its admission slot
    // whether it succeeds, throws, or outlives a timed-out request
    // (the shared promise keeps the result alive for the memo).
    struct Cell
    {
        const std::string *bench;
        const control::PolicySpec *spec;
        std::shared_future<std::pair<exp::Outcome, bool>> fut;
    };
    std::vector<Cell> cells;
    cells.reserve(ncells);
    for (const auto &b : benches) {
        for (const auto &s : specs) {
            auto prom = std::make_shared<
                std::promise<std::pair<exp::Outcome, bool>>>();
            cells.push_back({&b, &s, prom->get_future().share()});
            std::string bench = b;
            control::PolicySpec spec = s;
            pool_->submit([this, runner, prom,
                           bench = std::move(bench),
                           spec = std::move(spec)]() {
                // Decrement *before* fulfilling the promise: a
                // client that has seen its last ROW (and therefore
                // DONE) must observe inflightCells == 0 in STATS.
                try {
                    bool hit = false;
                    exp::Outcome o = runner->run(bench, spec, &hit);
                    inflightCells_.fetch_sub(
                        1, std::memory_order_relaxed);
                    prom->set_value({o, hit});
                } catch (...) {
                    inflightCells_.fetch_sub(
                        1, std::memory_order_relaxed);
                    prom->set_exception(std::current_exception());
                }
            });
        }
    }

    int timeout = cfg_.requestTimeoutMs;
    if (req.timeoutMs > 0)
        timeout = std::min(timeout, req.timeoutMs);
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout);

    std::uint64_t rows = 0, hits = 0, misses = 0;
    for (const auto &cell : cells) {
        if (cell.fut.wait_until(deadline) !=
            std::future_status::ready) {
            nTimeouts_.fetch_add(1, std::memory_order_relaxed);
            return conn.writeLine(errLine(
                req.id, err::TIMEOUT,
                "deadline exceeded after " + std::to_string(rows) +
                    " rows (remaining cells keep computing and "
                    "warm the memo for a retry)"));
        }
        exp::Outcome o;
        bool hit = false;
        try {
            auto r = cell.fut.get();
            o = r.first;
            hit = r.second;
        } catch (const workload::SpecError &e) {
            nBadRequests_.fetch_add(1, std::memory_order_relaxed);
            return conn.writeLine(
                errLine(req.id, err::BAD_SPEC, e.what()));
        } catch (const std::exception &e) {
            return conn.writeLine(
                errLine(req.id, err::INTERNAL, e.what()));
        }
        (hit ? hits : misses) += 1;
        // The row embeds resultLine() verbatim (workload, policy,
        // outcome fields) with the memo flag appended, so clients
        // can recover the exact `mcd_client --local` bytes.
        std::string row = formatResponse(Response::Kind::Row,
                                         req.id);
        row += ' ';
        row += resultLine(*cell.bench, cell.spec->str(), o);
        row += " memo=";
        row += hit ? "hit" : "miss";
        if (!conn.writeLine(row))
            return false; // peer gone mid-stream; jobs finish anyway
        ++rows;
        nRowsStreamed_.fetch_add(1, std::memory_order_relaxed);
    }
    return conn.writeLine(formatResponse(
        Response::Kind::Done, req.id,
        {{"rows", std::to_string(rows)},
         {"hits", std::to_string(hits)},
         {"misses", std::to_string(misses)}}));
}

bool
SweepServer::handleChipSweep(Conn &conn, const Request &req)
{
    // handleSweep already handled the drain and fingerprint gates.
    // The runner comes first here: chip validation (coordinator
    // spec, tile capability) lives behind Runner::chipCacheKeys.
    std::uint64_t window =
        req.window ? req.window : cfg_.exp.productionWindow;
    std::string rerr;
    exp::Runner *runner = runnerFor(window, rerr);
    if (!runner) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        return conn.writeLine(errLine(req.id, err::TOO_LARGE, rerr));
    }

    // Validate every chip cell up front; the canonical multi spec
    // and tile policy become the row labels, so two clients spelling
    // one co-schedule differently still share one computation.
    struct ChipJob
    {
        exp::ChipCell cell;
        std::string multi;   ///< canonical multi: spec (row label)
        std::string policy;  ///< canonical tile policy (row label)
        std::size_t tiles = 0;
        std::shared_future<std::pair<std::vector<exp::Outcome>,
                                     std::vector<bool>>>
            fut;
    };
    std::vector<ChipJob> jobs;
    jobs.reserve(req.workloads.size() * req.policies.size());
    for (const auto &w : req.workloads) {
        for (const auto &p : req.policies) {
            ChipJob j;
            j.cell.workload = w;
            j.cell.tiles = static_cast<int>(req.tiles);
            j.cell.coord = req.coord;
            control::PolicySpec ps;
            std::string serr;
            if (!control::parseSpec(p, ps, serr) ||
                !control::PolicyRegistry::instance().canonicalize(
                    ps, serr)) {
                nBadRequests_.fetch_add(1,
                                        std::memory_order_relaxed);
                return conn.writeLine(
                    errLine(req.id, err::BAD_SPEC, serr));
            }
            j.cell.tilePolicy = ps;
            j.policy = ps.str();
            try {
                std::vector<std::string> tile_specs =
                    chip::parseMultiSpec(w, j.cell.tiles);
                j.multi = chip::multiSpecOf(tile_specs);
                j.tiles = tile_specs.size();
                // Full validation (coordinator spec, tile-capable
                // policy) before anything is admitted.
                runner->chipCacheKeys(j.cell);
            } catch (const workload::SpecError &e) {
                nBadRequests_.fetch_add(1,
                                        std::memory_order_relaxed);
                return conn.writeLine(
                    errLine(req.id, err::BAD_SPEC, e.what()));
            }
            jobs.push_back(std::move(j));
        }
    }

    // Admission counts whole chips: one cell = one simulation,
    // however many rows it streams.
    const std::size_t ncells = jobs.size();
    if (ncells > cfg_.maxCellsPerRequest) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        return conn.writeLine(errLine(
            req.id, err::TOO_LARGE,
            std::to_string(ncells) +
                " cells exceed max_cells_per_request=" +
                std::to_string(cfg_.maxCellsPerRequest)));
    }
    std::uint64_t cur = inflightCells_.load();
    for (;;) {
        if (cur + ncells > cfg_.queueLimit) {
            nRejectedOverload_.fetch_add(1,
                                         std::memory_order_relaxed);
            return conn.writeLine(errLine(
                req.id, err::OVERLOAD,
                std::to_string(cur) + " cells in flight; " +
                    std::to_string(ncells) +
                    " more would exceed queue_limit=" +
                    std::to_string(cfg_.queueLimit),
                cfg_.retryAfterMs));
        }
        if (inflightCells_.compare_exchange_weak(cur, cur + ncells))
            break;
    }
    nAdmitted_.fetch_add(ncells, std::memory_order_relaxed);

    for (auto &j : jobs) {
        auto prom = std::make_shared<std::promise<
            std::pair<std::vector<exp::Outcome>,
                      std::vector<bool>>>>();
        j.fut = prom->get_future().share();
        exp::ChipCell cell = j.cell;
        pool_->submit([this, runner, prom,
                       cell = std::move(cell)]() {
            try {
                std::vector<bool> hits;
                std::vector<exp::Outcome> rows =
                    runner->runChip(cell, &hits);
                inflightCells_.fetch_sub(1,
                                         std::memory_order_relaxed);
                prom->set_value({std::move(rows), std::move(hits)});
            } catch (...) {
                inflightCells_.fetch_sub(1,
                                         std::memory_order_relaxed);
                prom->set_exception(std::current_exception());
            }
        });
    }

    int timeout = cfg_.requestTimeoutMs;
    if (req.timeoutMs > 0)
        timeout = std::min(timeout, req.timeoutMs);
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout);

    std::uint64_t rows = 0, hits = 0, misses = 0;
    for (const auto &j : jobs) {
        if (j.fut.wait_until(deadline) !=
            std::future_status::ready) {
            nTimeouts_.fetch_add(1, std::memory_order_relaxed);
            return conn.writeLine(errLine(
                req.id, err::TIMEOUT,
                "deadline exceeded after " + std::to_string(rows) +
                    " rows (remaining cells keep computing and "
                    "warm the memo for a retry)"));
        }
        std::vector<exp::Outcome> cellRows;
        std::vector<bool> cellHits;
        try {
            auto r = j.fut.get();
            cellRows = std::move(r.first);
            cellHits = std::move(r.second);
        } catch (const workload::SpecError &e) {
            nBadRequests_.fetch_add(1, std::memory_order_relaxed);
            return conn.writeLine(
                errLine(req.id, err::BAD_SPEC, e.what()));
        } catch (const std::exception &e) {
            return conn.writeLine(
                errLine(req.id, err::INTERNAL, e.what()));
        }
        for (std::size_t k = 0; k < cellRows.size(); ++k) {
            bool hit = k < cellHits.size() && cellHits[k];
            (hit ? hits : misses) += 1;
            std::string row =
                formatResponse(Response::Kind::Row, req.id);
            row += " tile=" + tileLabel(k, j.tiles);
            row += ' ';
            row += resultLine(j.multi, j.policy, cellRows[k]);
            row += " memo=";
            row += hit ? "hit" : "miss";
            if (!conn.writeLine(row))
                return false;
            ++rows;
            nRowsStreamed_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return conn.writeLine(formatResponse(
        Response::Kind::Done, req.id,
        {{"rows", std::to_string(rows)},
         {"hits", std::to_string(hits)},
         {"misses", std::to_string(misses)}}));
}

bool
SweepServer::handleProg(Conn &conn, const Request &req)
{
    if (stopping_)
        return conn.writeLine(errLine(req.id, err::SHUTTING_DOWN,
                                      "server is draining"));
    if (req.progLines > cfg_.maxProgLines) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        // The payload was never read, so the stream cannot be
        // resynchronized — reject and close.
        conn.writeLine(errLine(
            req.id, err::TOO_LARGE,
            std::to_string(req.progLines) +
                " program lines exceed max_prog_lines=" +
                std::to_string(cfg_.maxProgLines)));
        return false;
    }
    std::string text;
    for (std::size_t i = 0; i < req.progLines; ++i) {
        std::string line;
        Conn::ReadStatus st = conn.readLine(
            line, cfg_.idleTimeoutMs, cfg_.maxLineBytes);
        if (st != Conn::ReadStatus::Line) {
            nBadRequests_.fetch_add(1, std::memory_order_relaxed);
            conn.writeLine(errLine(
                req.id, err::BAD_REQUEST,
                "program upload truncated at line " +
                    std::to_string(i) + " of " +
                    std::to_string(req.progLines)));
            return false;
        }
        text += line;
        text += '\n';
    }
    try {
        std::string handle =
            workload::WorkloadRegistry::instance().addProgram(text);
        return conn.writeLine(formatResponse(
            Response::Kind::Ok, req.id, {{"handle", handle}}));
    } catch (const workload::SpecError &e) {
        nBadRequests_.fetch_add(1, std::memory_order_relaxed);
        return conn.writeLine(
            errLine(req.id, err::BAD_SPEC, e.what()));
    }
}

} // namespace mcd::srv
