/**
 * @file
 * `srv::SweepServer` — the resident sweep service: a long-running
 * daemon that accepts `{workload spec, policy spec, window,
 * config fingerprint}` requests over a Unix or loopback-TCP socket
 * (the versioned line format of srv/proto.hh), executes them on the
 * shared thread pool through `exp::Runner`'s sharded shared-future
 * memo — concurrent identical cells compute exactly once — and
 * streams outcome rows back.
 *
 * Robustness is part of the contract, not an afterthought:
 *  - malformed frames get a structured `ERR code=bad-request` reply
 *    naming the offending token; the connection stays usable;
 *  - bad specs surface the catchable `workload::SpecError` /
 *    policy-canonicalization message over the wire as
 *    `ERR code=bad-spec`;
 *  - admission control is a bounded cell queue: a request that would
 *    overflow it is rejected up front with `ERR code=overload
 *    retry_ms=N` instead of degrading everyone already admitted;
 *  - per-request deadlines bound how long a client waits
 *    (`ERR code=timeout`; the cells keep computing and warm the memo
 *    for the retry);
 *  - oversized frames and slow-loris clients are bounded by the
 *    per-line byte cap and the idle deadline;
 *  - `stop()` is a clean drain: stop accepting, fail new sweeps with
 *    `ERR code=shutting-down`, let admitted work finish and stream
 *    out, then flush the result cache.
 *
 * The server is equally happy in-process (the test fixture and
 * `bench_server` start one inside the test binary) or as the
 * standalone `mcd_server` daemon.
 */

#ifndef MCD_SRV_SERVER_HH
#define MCD_SRV_SERVER_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "exp/experiment.hh"
#include "srv/net.hh"
#include "srv/proto.hh"
#include "util/pool.hh"

namespace mcd::srv
{

/** Every server knob, with its default.  docs/SERVER.md documents
 *  each one; tests/test_docs.cc pins that table to this struct. */
struct ServerConfig
{
    /** Unix-domain socket path; empty = no Unix listener. */
    std::string unixPath;
    /** Loopback TCP port; -1 = no TCP listener, 0 = ephemeral. */
    int tcpPort = -1;
    /** Harness configuration: default window, cache file, pool
     *  size (`exp.jobs`), Sim/Power knobs (fingerprinted). */
    exp::ExpConfig exp;
    /** Admission bound: max sweep cells queued or running across
     *  all clients.  A request that would exceed it is rejected
     *  with `overload` + retry_ms. */
    std::size_t queueLimit = 64;
    /** Max cells (workloads x policies) in one SWEEP request. */
    std::size_t maxCellsPerRequest = 64;
    /** Max simultaneously-served connections; beyond it new
     *  connections get `overload` and are closed. */
    std::size_t maxConnections = 64;
    /** Cap (and default) for a request's deadline. */
    int requestTimeoutMs = 120'000;
    /** Per-line read deadline: a client that cannot finish a frame
     *  within it (slow-loris) is disconnected. */
    int idleTimeoutMs = 30'000;
    /** Hard per-frame byte cap. */
    std::size_t maxLineBytes = 64 * 1024;
    /** Max lines in one PROG program upload. */
    std::size_t maxProgLines = 4096;
    /** retry_ms hint sent with `overload` rejections. */
    int retryAfterMs = 250;
    /** Max distinct per-request windows (each owns a Runner whose
     *  memo is shared by every request at that window). */
    std::size_t maxWindows = 8;
};

/** A monotonic snapshot of the server's counters (`STATS` payload). */
struct ServerStats
{
    std::uint64_t connections = 0;      ///< accepted, lifetime
    std::uint64_t activeConnections = 0;
    std::uint64_t admitted = 0;         ///< cells admitted, lifetime
    std::uint64_t rejectedOverload = 0; ///< requests+conns bounced
    std::uint64_t badRequests = 0;      ///< bad-request/bad-spec/...
    std::uint64_t timeouts = 0;         ///< requests past deadline
    std::uint64_t rowsStreamed = 0;
    std::uint64_t inflightCells = 0;    ///< queued or running now
    std::uint64_t memoHits = 0;         ///< summed over runners
    std::uint64_t memoMisses = 0;       ///< == cells actually computed
    std::uint64_t cacheLoaded = 0;
    std::uint64_t cacheRejected = 0;
};

class SweepServer
{
  public:
    explicit SweepServer(ServerConfig cfg);
    /** stop()s if still running. */
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind the configured listeners and start serving (background
     *  accept thread).  Throws NetError if no listener could bind. */
    void start();

    /**
     * Graceful drain, safe to call from any thread (once): stop
     * accepting, let every admitted request finish streaming, join
     * all service threads, then destroy the runners (flushing the
     * CSV cache writer).  Idempotent.
     */
    void stop();

    bool running() const { return started_ && !stopping_; }

    /** Actual TCP port (after an ephemeral bind), 0 if none. */
    std::uint16_t tcpPort() const;
    /** Unix socket path, empty if none. */
    std::string unixSocketPath() const;

    /** The config fingerprint requests may pin (`fingerprint=`). */
    std::uint64_t fingerprint() const { return fingerprint_; }

    ServerStats stats() const;

    const ServerConfig &config() const { return cfg_; }

  private:
    struct ConnSlot
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConn(Conn conn);
    /** Returns false when the connection should be closed. */
    bool handleLine(Conn &conn, const std::string &line);
    bool handleSweep(Conn &conn, const Request &req);
    /** `tiles=` requests: each cell is one whole chip::Chip run
     *  streaming tiles+1 rows (`tile=0..N-1`, `tile=u`). */
    bool handleChipSweep(Conn &conn, const Request &req);
    bool handleProg(Conn &conn, const Request &req);
    exp::Runner *runnerFor(std::uint64_t window, std::string &err);
    void reapConnThreads(bool join_all);

    ServerConfig cfg_;
    std::uint64_t fingerprint_ = 0;
    std::vector<Listener> listeners_;
    std::unique_ptr<util::ThreadPool> pool_;
    std::thread acceptThread_;
    std::list<std::unique_ptr<ConnSlot>> conns_;
    std::mutex connsM_;

    /** window -> Runner; every request at one window shares one
     *  memo, so identical concurrent cells compute once. */
    std::map<std::uint64_t, std::unique_ptr<exp::Runner>> runners_;
    mutable std::mutex runnersM_;
    /** Counters of runners already destroyed by stop(), so the
     *  post-drain stats line still reports them (under runnersM_). */
    std::uint64_t retiredHits_ = 0, retiredMisses_ = 0,
                  retiredLoaded_ = 0, retiredRejected_ = 0;
    std::mutex stopM_;  ///< serializes stop() calls (idempotence)

    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> inflightCells_{0};
    std::atomic<std::uint64_t> nConnections_{0};
    std::atomic<std::uint64_t> nActiveConns_{0};
    std::atomic<std::uint64_t> nAdmitted_{0};
    std::atomic<std::uint64_t> nRejectedOverload_{0};
    std::atomic<std::uint64_t> nBadRequests_{0};
    std::atomic<std::uint64_t> nTimeouts_{0};
    std::atomic<std::uint64_t> nRowsStreamed_{0};
};

} // namespace mcd::srv

#endif // MCD_SRV_SERVER_HH
