/**
 * @file
 * Client-side fault injection for the sweep server's wire protocol:
 * a small shim that takes a well-formed frame and delivers a broken
 * version of it — dropped, truncated, garbled, dribbled one byte at
 * a time (slow-loris), or cut off by a mid-frame disconnect.
 *
 * The injector is deliberately deterministic: every mutation is
 * driven by a caller-supplied seed through a xorshift PRNG, so a
 * failing fault-suite case replays exactly.  tests/test_server.cc
 * sweeps every Fault against a live in-process server and asserts
 * the server's contract: structured errors or clean disconnects,
 * never a crash, never a hang past the watchdog.  bench_server uses
 * the same shim to measure throughput under a hostile client mix.
 */

#ifndef MCD_SRV_FAULTS_HH
#define MCD_SRV_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "srv/net.hh"

namespace mcd::srv
{

/** The ways a frame can go wrong on the wire. */
enum class Fault
{
    None,               ///< deliver the frame verbatim
    DropFrame,          ///< deliver nothing at all
    TruncateFrame,      ///< deliver a strict prefix, still terminated
    GarbleFrame,        ///< flip random bytes, keep the terminator
    SlowLoris,          ///< dribble one byte per interval
    DisconnectMidFrame, ///< send half a frame, then close the socket
};

/** Every Fault, for exhaustive test sweeps. */
const std::vector<Fault> &allFaults();

/** Stable name for logs and parameterized-test labels. */
const char *faultName(Fault f);

/**
 * The byte-level mutation behind TruncateFrame/GarbleFrame, exposed
 * so the spec fuzz tests can reuse it on spec strings: returns
 * @p line cut or corrupted per @p f (other faults return it
 * unchanged).  Deterministic in @p seed.
 */
std::string mutateLine(const std::string &line, Fault f,
                       std::uint32_t seed);

/**
 * Deliver @p line (unterminated; '\n' is appended as the protocol
 * requires) through @p conn under fault @p f.  SlowLoris sleeps
 * @p dribble_ms between bytes; DisconnectMidFrame closes @p conn.
 * Returns false when the peer hung up first — for a fault client
 * that is a pass, not a failure.
 */
bool injectSend(Conn &conn, const std::string &line, Fault f,
                std::uint32_t seed, int dribble_ms = 5);

} // namespace mcd::srv

#endif // MCD_SRV_FAULTS_HH
