#include "srv/proto.hh"

#include <cerrno>
#include <cstdlib>

#include "util/text.hh"

namespace mcd::srv
{

const char *const PROTO_TAG = "MCD/2";

const std::vector<std::string> &
errorCodes()
{
    static const std::vector<std::string> codes = {
        err::BAD_REQUEST,     err::BAD_SPEC, err::TOO_LARGE,
        err::OVERLOAD,        err::TIMEOUT,  err::CONFIG_MISMATCH,
        err::SHUTTING_DOWN,   err::INTERNAL,
    };
    return codes;
}

namespace
{

/** Strict full-string decimal parse into [0, max]. */
bool
parseU64(const std::string &text, std::uint64_t max,
         std::uint64_t &out)
{
    if (text.empty() || text[0] < '0' || text[0] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE || v > max)
        return false;
    out = v;
    return true;
}

/** Strict 16-hex-digit fingerprint parse. */
bool
parseHex16(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (char c : text) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    out = v;
    return true;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)v);
    return buf;
}

/**
 * Split @p line into space-separated tokens, tracking each token's
 * byte offset so a trailing `msg=` token can recover the raw rest of
 * the line.  Rejects empty tokens (leading/double/trailing spaces)
 * — sloppy framing is how drift sneaks in.
 */
bool
tokenize(const std::string &line,
         std::vector<std::pair<std::string, std::size_t>> &tokens,
         std::string &err_text)
{
    tokens.clear();
    std::size_t pos = 0;
    while (pos <= line.size()) {
        std::size_t sp = line.find(' ', pos);
        std::size_t end = sp == std::string::npos ? line.size() : sp;
        if (end == pos) {
            err_text = "empty token (stray space) at byte " +
                       std::to_string(pos);
            return false;
        }
        tokens.emplace_back(line.substr(pos, end - pos), pos);
        if (sp == std::string::npos)
            break;
        pos = sp + 1;
    }
    if (tokens.empty()) {
        err_text = "empty line";
        return false;
    }
    return true;
}

/** Check the MCD/<n> tag on token 0. */
bool
checkTag(const std::string &tag, std::string &err_text)
{
    if (tag == PROTO_TAG)
        return true;
    if (tag.rfind("MCD/", 0) == 0) {
        err_text = "unsupported protocol version '" + tag +
                   "' (this server speaks " + PROTO_TAG + ")";
        return false;
    }
    err_text = "bad protocol tag '" + tag + "' (expected " +
               PROTO_TAG + ")";
    return false;
}

/** Split `key=value`; false if there is no '=' or the value is
 *  empty. */
bool
splitKv(const std::string &token, std::string &key,
        std::string &value)
{
    std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 == token.size())
        return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

} // namespace

bool
parseRequest(const std::string &line, Request &req,
             std::string &err_text)
{
    std::vector<std::pair<std::string, std::size_t>> tokens;
    if (!tokenize(line, tokens, err_text))
        return false;
    if (!checkTag(tokens[0].first, err_text))
        return false;
    if (tokens.size() < 2) {
        err_text = "missing verb";
        return false;
    }
    const std::string &verb = tokens[1].first;
    Request r;
    if (verb == "HELLO")
        r.verb = Request::Verb::Hello;
    else if (verb == "PING")
        r.verb = Request::Verb::Ping;
    else if (verb == "STATS")
        r.verb = Request::Verb::Stats;
    else if (verb == "SWEEP")
        r.verb = Request::Verb::Sweep;
    else if (verb == "PROG")
        r.verb = Request::Verb::Prog;
    else if (verb == "QUIT")
        r.verb = Request::Verb::Quit;
    else {
        err_text = "unknown verb '" + verb + "'";
        return false;
    }

    bool sawWindow = false, sawTimeout = false, sawLines = false;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!splitKv(tokens[i].first, key, value)) {
            err_text =
                "malformed token '" + tokens[i].first + "'";
            return false;
        }
        if (key == "id") {
            if (!r.id.empty()) {
                err_text = "duplicate id";
                return false;
            }
            if (!util::validSpecValue(value)) {
                err_text = "bad id '" + value + "'";
                return false;
            }
            r.id = value;
        } else if (key == "workload" &&
                   r.verb == Request::Verb::Sweep) {
            r.workloads.push_back(value);
        } else if (key == "policy" &&
                   r.verb == Request::Verb::Sweep) {
            r.policies.push_back(value);
        } else if (key == "window" &&
                   r.verb == Request::Verb::Sweep) {
            if (sawWindow ||
                !parseU64(value, ~0ULL, r.window) ||
                r.window == 0) {
                err_text = "bad window '" + value + "'";
                return false;
            }
            sawWindow = true;
        } else if (key == "timeout_ms" &&
                   r.verb == Request::Verb::Sweep) {
            std::uint64_t v = 0;
            if (sawTimeout || !parseU64(value, 86'400'000, v) ||
                v == 0) {
                err_text = "bad timeout_ms '" + value + "'";
                return false;
            }
            r.timeoutMs = static_cast<int>(v);
            sawTimeout = true;
        } else if (key == "fingerprint" &&
                   r.verb == Request::Verb::Sweep) {
            if (r.hasFingerprint ||
                !parseHex16(value, r.fingerprint)) {
                err_text = "bad fingerprint '" + value +
                           "' (want 16 lower-case hex digits)";
                return false;
            }
            r.hasFingerprint = true;
        } else if (key == "tiles" &&
                   r.verb == Request::Verb::Sweep) {
            if (r.hasTiles || !parseU64(value, 4096, r.tiles)) {
                err_text = "bad tiles '" + value + "'";
                return false;
            }
            r.hasTiles = true;
        } else if (key == "coord" &&
                   r.verb == Request::Verb::Sweep) {
            if (!r.coord.empty()) {
                err_text = "duplicate coord";
                return false;
            }
            r.coord = value;
        } else if (key == "lines" &&
                   r.verb == Request::Verb::Prog) {
            std::uint64_t v = 0;
            if (sawLines || !parseU64(value, 1'000'000, v) ||
                v == 0) {
                err_text = "bad lines '" + value + "'";
                return false;
            }
            r.progLines = static_cast<std::size_t>(v);
            sawLines = true;
        } else {
            err_text = "unknown key '" + key + "' for verb " + verb;
            return false;
        }
    }
    if (r.verb == Request::Verb::Sweep) {
        if (r.workloads.empty() || r.policies.empty()) {
            err_text = "SWEEP needs at least one workload= and one "
                       "policy=";
            return false;
        }
        if (!r.coord.empty() && !r.hasTiles) {
            err_text = "coord= needs tiles= (chip sweeps only)";
            return false;
        }
    }
    if (r.verb == Request::Verb::Prog && !sawLines) {
        err_text = "PROG needs lines=N";
        return false;
    }
    req = std::move(r);
    return true;
}

std::string
formatRequest(const Request &req)
{
    std::string out = PROTO_TAG;
    out += ' ';
    switch (req.verb) {
    case Request::Verb::Hello: out += "HELLO"; break;
    case Request::Verb::Ping: out += "PING"; break;
    case Request::Verb::Stats: out += "STATS"; break;
    case Request::Verb::Sweep: out += "SWEEP"; break;
    case Request::Verb::Prog: out += "PROG"; break;
    case Request::Verb::Quit: out += "QUIT"; break;
    }
    if (!req.id.empty())
        out += " id=" + req.id;
    if (req.verb == Request::Verb::Sweep) {
        for (const std::string &w : req.workloads)
            out += " workload=" + w;
        for (const std::string &p : req.policies)
            out += " policy=" + p;
        if (req.window)
            out += " window=" + std::to_string(req.window);
        if (req.timeoutMs)
            out += " timeout_ms=" + std::to_string(req.timeoutMs);
        if (req.hasFingerprint)
            out += " fingerprint=" + hex16(req.fingerprint);
        if (req.hasTiles)
            out += " tiles=" + std::to_string(req.tiles);
        if (!req.coord.empty())
            out += " coord=" + req.coord;
    }
    if (req.verb == Request::Verb::Prog)
        out += " lines=" + std::to_string(req.progLines);
    return out;
}

const std::string &
Response::field(const std::string &key) const
{
    static const std::string empty;
    for (const auto &kv : fields)
        if (kv.first == key)
            return kv.second;
    return empty;
}

bool
parseResponse(const std::string &line, Response &resp,
              std::string &err_text)
{
    std::vector<std::pair<std::string, std::size_t>> tokens;
    if (!tokenize(line, tokens, err_text))
        return false;
    if (!checkTag(tokens[0].first, err_text))
        return false;
    if (tokens.size() < 2) {
        err_text = "missing response kind";
        return false;
    }
    const std::string &kind = tokens[1].first;
    Response r;
    if (kind == "OK")
        r.kind = Response::Kind::Ok;
    else if (kind == "ROW")
        r.kind = Response::Kind::Row;
    else if (kind == "DONE")
        r.kind = Response::Kind::Done;
    else if (kind == "ERR")
        r.kind = Response::Kind::Err;
    else if (kind == "BYE")
        r.kind = Response::Kind::Bye;
    else {
        err_text = "unknown response kind '" + kind + "'";
        return false;
    }
    for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i].first.rfind("msg=", 0) == 0) {
            // msg= swallows the raw rest of the line, spaces and
            // all; it must be the last structured token.
            r.msg = line.substr(tokens[i].second + 4);
            break;
        }
        std::string key, value;
        if (!splitKv(tokens[i].first, key, value)) {
            err_text =
                "malformed token '" + tokens[i].first + "'";
            return false;
        }
        if (key == "id") {
            if (!r.id.empty()) {
                err_text = "duplicate id";
                return false;
            }
            r.id = value;
        } else {
            r.fields.emplace_back(key, value);
        }
    }
    resp = std::move(r);
    return true;
}

std::string
formatResponse(Response::Kind kind, const std::string &id,
               const std::vector<std::pair<std::string, std::string>>
                   &fields,
               const std::string &msg)
{
    std::string out = PROTO_TAG;
    out += ' ';
    switch (kind) {
    case Response::Kind::Ok: out += "OK"; break;
    case Response::Kind::Row: out += "ROW"; break;
    case Response::Kind::Done: out += "DONE"; break;
    case Response::Kind::Err: out += "ERR"; break;
    case Response::Kind::Bye: out += "BYE"; break;
    }
    if (!id.empty())
        out += " id=" + id;
    for (const auto &kv : fields)
        out += ' ' + kv.first + '=' + kv.second;
    if (!msg.empty())
        out += " msg=" + msg;
    return out;
}

std::string
errLine(const std::string &id, const char *code,
        const std::string &msg, int retry_ms)
{
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("code", code);
    if (retry_ms > 0)
        fields.emplace_back("retry_ms", std::to_string(retry_ms));
    return formatResponse(Response::Kind::Err, id, fields, msg);
}

namespace
{

/** ROW payload field names, in wire order: the Outcome raw fields in
 *  cache-line order, then the paper's three metrics. */
constexpr std::size_t NUM_OUTCOME_FIELDS = 14;

const char *const OUTCOME_FIELDS[NUM_OUTCOME_FIELDS] = {
    "time_ps",
    "energy_nj",
    "reconfigs",
    "overhead_cycles",
    "fe_cycles",
    "dyn_reconfig_points",
    "dyn_instr_points",
    "static_reconfig_points",
    "static_instr_points",
    "table_bytes",
    "global_freq",
    "slowdown_pct",
    "savings_pct",
    "ed_gain_pct",
};

void
outcomePtrs(control::Outcome &o,
            double *(&vals)[NUM_OUTCOME_FIELDS])
{
    double *v[NUM_OUTCOME_FIELDS] = {
        &o.timePs,
        &o.energyNj,
        &o.reconfigs,
        &o.overheadCycles,
        &o.feCycles,
        &o.dynReconfigPoints,
        &o.dynInstrPoints,
        &o.staticReconfigPoints,
        &o.staticInstrPoints,
        &o.tableBytes,
        &o.globalFreq,
        &o.metrics.slowdownPct,
        &o.metrics.energySavingsPct,
        &o.metrics.energyDelayImprovementPct,
    };
    for (std::size_t i = 0; i < NUM_OUTCOME_FIELDS; ++i)
        vals[i] = v[i];
}

} // namespace

std::string
formatOutcome(const control::Outcome &o)
{
    control::Outcome copy = o;
    double *vals[NUM_OUTCOME_FIELDS];
    outcomePtrs(copy, vals);
    // util::fmtDouble17 is the sanctioned double formatter for the
    // wire: C-locale, 17 significant digits, byte-exact round-trips.
    std::string out;
    for (std::size_t i = 0; i < NUM_OUTCOME_FIELDS; ++i) {
        if (i)
            out += ' ';
        out += OUTCOME_FIELDS[i];
        out += '=';
        out += util::fmtDouble17(*vals[i]);
    }
    return out;
}

bool
parseOutcome(
    const std::vector<std::pair<std::string, std::string>> &fields,
    control::Outcome &o, std::string &err_text)
{
    control::Outcome out;
    double *vals[NUM_OUTCOME_FIELDS];
    outcomePtrs(out, vals);
    for (std::size_t i = 0; i < NUM_OUTCOME_FIELDS; ++i) {
        const std::string *text = nullptr;
        for (const auto &kv : fields)
            if (kv.first == OUTCOME_FIELDS[i]) {
                text = &kv.second;
                break;
            }
        if (!text || !util::parseDouble(*text, *vals[i])) {
            err_text = std::string("missing or malformed ROW "
                                   "field '") +
                       OUTCOME_FIELDS[i] + "'";
            return false;
        }
    }
    o = out;
    return true;
}

std::string
resultLine(const std::string &workload, const std::string &policy,
           const control::Outcome &o)
{
    return "workload=" + workload + " policy=" + policy + ' ' +
           formatOutcome(o);
}

std::string
tileLabel(std::size_t k, std::size_t tiles)
{
    return k < tiles ? std::to_string(k) : std::string("u");
}

} // namespace mcd::srv
