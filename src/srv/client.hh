/**
 * @file
 * `srv::Client` — the typed client side of the sweep-server wire
 * protocol (srv/proto.hh): connect over Unix or loopback TCP, send
 * one request line, parse the reply frames back into structured
 * results.
 *
 * Error surfaces are split by layer, mirroring the server:
 *  - transport problems (connect refused, peer vanished, reply
 *    deadline) throw `NetError`;
 *  - structured `ERR` replies throw `ClientError`, which carries the
 *    machine-readable code (`bad-spec`, `overload`, ...) and the
 *    server's retry hint, so callers can branch on the code — the
 *    load driver backs off on `overload`, the CLI prints `bad-spec`
 *    messages verbatim.
 *
 * `mcd_client`, the test fixture and `bench_server` all drive the
 * server exclusively through this class.
 */

#ifndef MCD_SRV_CLIENT_HH
#define MCD_SRV_CLIENT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "srv/net.hh"
#include "srv/proto.hh"

namespace mcd::srv
{

/** A structured `ERR` reply from the server. */
class ClientError : public std::runtime_error
{
  public:
    ClientError(std::string code, const std::string &msg,
                int retry_ms)
        : std::runtime_error(code + ": " + msg),
          code_(std::move(code)), retryMs_(retry_ms)
    {
    }

    /** Machine-readable code (`srv::err` constants). */
    const std::string &code() const { return code_; }
    /** Server back-off hint in ms (0 unless code is `overload`). */
    int retryMs() const { return retryMs_; }

  private:
    std::string code_;
    int retryMs_;
};

/** One streamed sweep result row. */
struct SweepRow
{
    std::string workload;  ///< canonical workload spec
    std::string policy;    ///< canonical policy spec
    /** Chip sweeps only: `"0"`..`"N-1"` for a tile row, `"u"` for
     *  the shared-uncore row; empty on single-core sweeps. */
    std::string tile;
    bool memoHit = false;  ///< served from the server's memo?
    control::Outcome outcome;
};

/** A complete sweep reply (every ROW up to DONE). */
struct SweepReply
{
    std::vector<SweepRow> rows;
    std::uint64_t hits = 0;    ///< DONE hits= (memo hits)
    std::uint64_t misses = 0;  ///< DONE misses= (cells computed)
};

class Client
{
  public:
    /** Connect to a Unix-domain server socket. */
    static Client connectUnix(const std::string &path);
    /** Connect to a loopback-TCP server port. */
    static Client connectTcp(std::uint16_t port);

    Client(Client &&) = default;
    Client &operator=(Client &&) = default;

    /**
     * HELLO handshake.  Verifies the protocol version and remembers
     * the server's config fingerprint for `sweep(pin=true)`.
     */
    void hello();

    /** Server config fingerprint learned from hello() (0 before). */
    std::uint64_t serverFingerprint() const { return fingerprint_; }

    void ping();

    /** STATS payload as ordered key=value pairs. */
    std::vector<std::pair<std::string, std::string>> stats();

    /**
     * Run a {workloads x policies} sweep.  @p window and
     * @p timeout_ms of 0 take the server defaults; @p pin sends the
     * fingerprint learned by hello() so a differently-configured
     * server refuses instead of answering with foreign numbers.
     * @p tiles >= 0 makes it a chip sweep (`tiles=` on the wire;
     * 0 = "as named by the multi: spec"), streaming tiles+1 rows per
     * cell; @p coord optionally names a `chip-coord:` spec for the
     * shared uncore.
     */
    SweepReply sweep(const std::vector<std::string> &workloads,
                     const std::vector<std::string> &policies,
                     std::uint64_t window = 0, int timeout_ms = 0,
                     bool pin = false, long long tiles = -1,
                     const std::string &coord = {});

    /** Upload authored program text (PROG); returns the
     *  content-addressed `prog:...` handle. */
    std::string uploadProgram(const std::string &program_text);

    /** Polite QUIT (waits for BYE). */
    void quit();

    /** Deadline for each reply line (covers server compute time). */
    void setReplyTimeoutMs(int ms) { replyTimeoutMs_ = ms; }

    /** Escape hatch for protocol-level tests: send @p line verbatim
     *  and return the next reply line (throws NetError on EOF or
     *  deadline). */
    std::string raw(const std::string &line);

  private:
    explicit Client(Conn conn) : conn_(std::move(conn)) {}

    /** Read and parse one response frame; throws ClientError on ERR
     *  and NetError on transport/parse failure. */
    Response readResponse();
    /** Send one request and expect a single OK-class reply. */
    Response roundTrip(const Request &req, Response::Kind expect);

    Conn conn_;
    std::uint64_t fingerprint_ = 0;
    int replyTimeoutMs_ = 150'000;
    std::uint64_t seq_ = 0;  ///< request tag counter (q0, q1, ...)
};

} // namespace mcd::srv

#endif // MCD_SRV_CLIENT_HH
