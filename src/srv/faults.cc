#include "srv/faults.hh"

#include <chrono>
#include <thread>

namespace mcd::srv
{

namespace
{

/** xorshift32 — tiny, deterministic, good enough for byte fuzzing. */
std::uint32_t
nextRand(std::uint32_t &state)
{
    if (state == 0)
        state = 0x9e3779b9u;
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
}

} // namespace

const std::vector<Fault> &
allFaults()
{
    static const std::vector<Fault> faults = {
        Fault::None,          Fault::DropFrame,
        Fault::TruncateFrame, Fault::GarbleFrame,
        Fault::SlowLoris,     Fault::DisconnectMidFrame,
    };
    return faults;
}

const char *
faultName(Fault f)
{
    switch (f) {
    case Fault::None:
        return "none";
    case Fault::DropFrame:
        return "drop-frame";
    case Fault::TruncateFrame:
        return "truncate-frame";
    case Fault::GarbleFrame:
        return "garble-frame";
    case Fault::SlowLoris:
        return "slow-loris";
    case Fault::DisconnectMidFrame:
        return "disconnect-mid-frame";
    }
    return "unknown";
}

std::string
mutateLine(const std::string &line, Fault f, std::uint32_t seed)
{
    std::uint32_t rng = seed;
    switch (f) {
    case Fault::TruncateFrame: {
        if (line.empty())
            return line;
        // A strict prefix: at least one byte shorter.
        std::size_t keep = nextRand(rng) % line.size();
        return line.substr(0, keep);
    }
    case Fault::GarbleFrame: {
        if (line.empty())
            return line;
        std::string out = line;
        // Corrupt 1..4 positions with printable garbage (newlines
        // would split the frame, which is TruncateFrame's job).
        std::size_t flips = 1 + nextRand(rng) % 4;
        for (std::size_t i = 0; i < flips; ++i) {
            std::size_t pos = nextRand(rng) % out.size();
            out[pos] =
                static_cast<char>('!' + nextRand(rng) % ('~' - '!'));
        }
        return out;
    }
    default:
        return line;
    }
}

bool
injectSend(Conn &conn, const std::string &line, Fault f,
           std::uint32_t seed, int dribble_ms)
{
    std::uint32_t rng = seed;
    switch (f) {
    case Fault::None:
        return conn.writeLine(line);
    case Fault::DropFrame:
        return true;
    case Fault::TruncateFrame:
    case Fault::GarbleFrame:
        return conn.writeLine(mutateLine(line, f, seed));
    case Fault::SlowLoris: {
        std::string framed = line + '\n';
        for (char c : framed) {
            if (!conn.writeAll(std::string(1, c)))
                return false;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(dribble_ms));
        }
        return true;
    }
    case Fault::DisconnectMidFrame: {
        std::size_t half =
            line.empty() ? 0 : 1 + nextRand(rng) % line.size();
        bool ok = conn.writeAll(line.substr(0, half));
        conn.close();
        return ok;
    }
    }
    return false;
}

} // namespace mcd::srv
