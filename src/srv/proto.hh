/**
 * @file
 * The sweep server's versioned, line-oriented wire format — one
 * grammar shared by the server, the client library, the fault
 * harness and the golden-transcript tests, so the format cannot
 * drift silently.
 *
 * Every frame is one '\n'-terminated line of space-separated tokens:
 *
 *     MCD/2 <VERB> [key=value ...] [msg=free text to end of line]
 *
 * The leading `MCD/<version>` tag makes every frame self-describing;
 * a server that does not speak the client's version can say so in a
 * parseable way.  Values never contain spaces — workload and policy
 * spec strings (the `util/text.hh` grammar) satisfy this by
 * construction, and their *canonical* form is the request key, so
 * two clients spelling one cell differently still deduplicate into
 * one computation.  The one exception is the trailing `msg=` token
 * of an `ERR` reply, which swallows the rest of the line.
 *
 * Requests:  HELLO, PING, STATS, SWEEP, PROG, QUIT
 * Responses: OK, ROW, DONE, ERR, BYE
 *
 * See docs/SERVER.md for the full grammar, knob defaults and a
 * worked session.
 */

#ifndef MCD_SRV_PROTO_HH
#define MCD_SRV_PROTO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "control/policy.hh"

namespace mcd::srv
{

/**
 * Protocol version spoken by this tree.
 *
 * History (docs/SERVER.md keeps the same table):
 *  - MCD/1: HELLO/PING/STATS/SWEEP/PROG/QUIT over single-core cells.
 *  - MCD/2: SWEEP gained `tiles=` and `coord=` (chip sweeps); chip
 *    ROW frames carry a leading `tile=` field (`0..N-1` or `u` for
 *    the shared uncore).
 */
constexpr int PROTO_VERSION = 2;

/** The line tag every frame starts with ("MCD/2"). */
extern const char *const PROTO_TAG;

/**
 * Structured error codes an `ERR` reply can carry.  The code is a
 * stable machine-readable kebab-case word; the trailing `msg=` text
 * is for humans and may change freely.
 */
namespace err
{
inline constexpr const char *BAD_REQUEST = "bad-request";
inline constexpr const char *BAD_SPEC = "bad-spec";
inline constexpr const char *TOO_LARGE = "too-large";
inline constexpr const char *OVERLOAD = "overload";
inline constexpr const char *TIMEOUT = "timeout";
inline constexpr const char *CONFIG_MISMATCH = "config-mismatch";
inline constexpr const char *SHUTTING_DOWN = "shutting-down";
inline constexpr const char *INTERNAL = "internal";
} // namespace err

/** Every error code, for docs/tests that must enumerate them. */
const std::vector<std::string> &errorCodes();

/** A parsed request line. */
struct Request
{
    enum class Verb
    {
        Hello,
        Ping,
        Stats,
        Sweep,
        Prog,
        Quit,
    };

    Verb verb = Verb::Ping;
    /** Client-chosen tag echoed on every reply line (may be empty;
     *  charset [A-Za-z0-9_.-]). */
    std::string id;
    /** SWEEP: workload spec strings, outer sweep dimension. */
    std::vector<std::string> workloads;
    /** SWEEP: policy spec strings, inner sweep dimension. */
    std::vector<std::string> policies;
    /** SWEEP: production window; 0 = the server's default. */
    std::uint64_t window = 0;
    /** SWEEP: per-request timeout; 0 = the server's cap. */
    int timeoutMs = 0;
    /** SWEEP: expected exp::configFingerprint (16 hex digits), so a
     *  client can refuse results from a differently-configured
     *  server.  Checked only when present. */
    bool hasFingerprint = false;
    std::uint64_t fingerprint = 0;
    /** SWEEP: `tiles=` present makes this a chip sweep — every
     *  workload runs as a co-schedule on a `chip::Chip` and every
     *  cell streams tiles+1 rows (`tile=0..N-1` plus `tile=u`).
     *  tiles=0 means "as named by the multi: spec". */
    bool hasTiles = false;
    std::uint64_t tiles = 0;
    /** SWEEP (chip only): `chip-coord:...` coordinator spec; empty =
     *  the uncore stays pinned at its maximum frequency. */
    std::string coord;
    /** PROG: number of verbatim program-text lines that follow. */
    std::size_t progLines = 0;
};

/**
 * Parse one request line.  Strict: unknown verbs, unknown keys,
 * malformed values, a bad version tag and duplicate scalar keys all
 * fail with a self-contained message in @p err_text (the message
 * names the offending token).
 */
bool parseRequest(const std::string &line, Request &req,
                  std::string &err_text);

/** Render @p req as a wire line (the client side of the grammar). */
std::string formatRequest(const Request &req);

/** A parsed response line. */
struct Response
{
    enum class Kind
    {
        Ok,
        Row,
        Done,
        Err,
        Bye,
    };

    Kind kind = Kind::Ok;
    std::string id;
    /** key=value payload in wire order (excluding id and msg). */
    std::vector<std::pair<std::string, std::string>> fields;
    /** ERR only: free-text message (the rest of the line). */
    std::string msg;

    /** Value of @p key, or empty string if absent. */
    const std::string &field(const std::string &key) const;
};

/** Parse one response line (same strictness as parseRequest). */
bool parseResponse(const std::string &line, Response &resp,
                   std::string &err_text);

/** Render a response line.  @p msg is appended as a trailing
 *  `msg=` token when non-empty. */
std::string
formatResponse(Response::Kind kind, const std::string &id,
               const std::vector<std::pair<std::string, std::string>>
                   &fields = {},
               const std::string &msg = {});

/** Shorthand for an ERR line: `MCD/2 ERR [id=..] code=.. [retry_ms=..]
 *  msg=..`. */
std::string errLine(const std::string &id, const char *code,
                    const std::string &msg, int retry_ms = 0);

/**
 * The outcome payload of a ROW frame, as ordered key=value tokens:
 * the eleven raw Outcome fields in cache-line order followed by the
 * paper's three metrics.  Numbers are printed in the C locale at
 * precision 17, so parse -> format round-trips are byte-exact — the
 * local and remote client paths print identical bytes.
 */
std::string formatOutcome(const control::Outcome &o);

/** Inverse of formatOutcome over parsed ROW fields; false (with a
 *  message) on a missing or malformed field. */
bool parseOutcome(
    const std::vector<std::pair<std::string, std::string>> &fields,
    control::Outcome &o, std::string &err_text);

/**
 * The canonical one-line rendering of one sweep result,
 * `workload=.. policy=.. <outcome fields>` — what `mcd_client`
 * prints per cell in both `--local` and remote modes, and what the
 * byte-identity gates diff.
 */
std::string resultLine(const std::string &workload,
                       const std::string &policy,
                       const control::Outcome &o);

/**
 * Row label for chip sweep row @p k of an N-tile chip: `"0"`..`"N-1"`
 * for the tiles, `"u"` for the shared-uncore row (k == N).  The same
 * spelling appears in the `tile=` wire field, the `tile=K ` prefix
 * `mcd_client` prints, and the chip cache keys.
 */
std::string tileLabel(std::size_t k, std::size_t tiles);

} // namespace mcd::srv

#endif // MCD_SRV_PROTO_HH
