#include "srv/client.hh"

#include <cstdlib>

namespace mcd::srv
{

namespace
{

std::uint64_t
toU64(const std::string &text)
{
    return std::strtoull(text.c_str(), nullptr, 10);
}

} // namespace

Client
Client::connectUnix(const std::string &path)
{
    return Client(srv::connectUnix(path));
}

Client
Client::connectTcp(std::uint16_t port)
{
    return Client(srv::connectTcp(port));
}

Response
Client::readResponse()
{
    std::string line;
    Conn::ReadStatus st =
        conn_.readLine(line, replyTimeoutMs_, 256 * 1024);
    switch (st) {
    case Conn::ReadStatus::Line:
        break;
    case Conn::ReadStatus::Eof:
        throw NetError("server closed the connection");
    case Conn::ReadStatus::Timeout:
        throw NetError("no reply within " +
                       std::to_string(replyTimeoutMs_) + "ms");
    case Conn::ReadStatus::Overflow:
        throw NetError("reply line too long");
    case Conn::ReadStatus::Error:
        throw NetError("socket error reading reply");
    }
    Response resp;
    std::string perr;
    if (!parseResponse(line, resp, perr))
        throw NetError("unparseable reply: " + perr);
    if (resp.kind == Response::Kind::Err) {
        const std::string &retry = resp.field("retry_ms");
        throw ClientError(resp.field("code"), resp.msg,
                          retry.empty()
                              ? 0
                              : static_cast<int>(toU64(retry)));
    }
    return resp;
}

Response
Client::roundTrip(const Request &req, Response::Kind expect)
{
    if (!conn_.writeLine(formatRequest(req)))
        throw NetError("send failed (server gone?)");
    Response resp = readResponse();
    if (resp.kind != expect)
        throw NetError("unexpected reply kind for request id=" +
                       req.id);
    return resp;
}

void
Client::hello()
{
    Request req;
    req.verb = Request::Verb::Hello;
    req.id = "q" + std::to_string(seq_++);
    Response resp = roundTrip(req, Response::Kind::Ok);
    const std::string &proto = resp.field("proto");
    if (proto != std::to_string(PROTO_VERSION))
        throw NetError("server speaks protocol version '" + proto +
                       "', this client needs " +
                       std::to_string(PROTO_VERSION));
    fingerprint_ =
        std::strtoull(resp.field("fingerprint").c_str(), nullptr, 16);
}

void
Client::ping()
{
    Request req;
    req.verb = Request::Verb::Ping;
    req.id = "q" + std::to_string(seq_++);
    roundTrip(req, Response::Kind::Ok);
}

std::vector<std::pair<std::string, std::string>>
Client::stats()
{
    Request req;
    req.verb = Request::Verb::Stats;
    req.id = "q" + std::to_string(seq_++);
    return roundTrip(req, Response::Kind::Ok).fields;
}

SweepReply
Client::sweep(const std::vector<std::string> &workloads,
              const std::vector<std::string> &policies,
              std::uint64_t window, int timeout_ms, bool pin,
              long long tiles, const std::string &coord)
{
    Request req;
    req.verb = Request::Verb::Sweep;
    req.id = "q" + std::to_string(seq_++);
    req.workloads = workloads;
    req.policies = policies;
    req.window = window;
    req.timeoutMs = timeout_ms;
    if (pin) {
        req.hasFingerprint = true;
        req.fingerprint = fingerprint_;
    }
    if (tiles >= 0) {
        req.hasTiles = true;
        req.tiles = static_cast<std::uint64_t>(tiles);
    }
    req.coord = coord;
    if (!conn_.writeLine(formatRequest(req)))
        throw NetError("send failed (server gone?)");

    SweepReply reply;
    for (;;) {
        Response resp = readResponse();
        if (resp.kind == Response::Kind::Row) {
            SweepRow row;
            row.workload = resp.field("workload");
            row.policy = resp.field("policy");
            row.tile = resp.field("tile");
            row.memoHit = resp.field("memo") == "hit";
            std::string perr;
            if (!parseOutcome(resp.fields, row.outcome, perr))
                throw NetError("bad ROW payload: " + perr);
            reply.rows.push_back(std::move(row));
            continue;
        }
        if (resp.kind == Response::Kind::Done) {
            reply.hits = toU64(resp.field("hits"));
            reply.misses = toU64(resp.field("misses"));
            return reply;
        }
        throw NetError("unexpected reply kind mid-sweep");
    }
}

std::string
Client::uploadProgram(const std::string &program_text)
{
    // Split into lines; the PROG header announces the exact count.
    std::vector<std::string> lines;
    std::string cur;
    for (char c : program_text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);

    Request req;
    req.verb = Request::Verb::Prog;
    req.id = "q" + std::to_string(seq_++);
    req.progLines = lines.size();
    std::string payload = formatRequest(req);
    payload += '\n';
    for (const auto &l : lines) {
        payload += l;
        payload += '\n';
    }
    if (!conn_.writeAll(payload))
        throw NetError("send failed (server gone?)");
    Response resp = readResponse();
    if (resp.kind != Response::Kind::Ok)
        throw NetError("unexpected reply kind for PROG");
    return resp.field("handle");
}

void
Client::quit()
{
    Request req;
    req.verb = Request::Verb::Quit;
    req.id = "q" + std::to_string(seq_++);
    roundTrip(req, Response::Kind::Bye);
}

std::string
Client::raw(const std::string &line)
{
    if (!conn_.writeLine(line))
        throw NetError("send failed (server gone?)");
    std::string reply;
    Conn::ReadStatus st =
        conn_.readLine(reply, replyTimeoutMs_, 256 * 1024);
    if (st != Conn::ReadStatus::Line)
        throw NetError("no reply line");
    return reply;
}

} // namespace mcd::srv
