#include "srv/net.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mcd::srv
{

namespace
{

using Clock = std::chrono::steady_clock;

int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left < 0 ? 0 : static_cast<int>(left);
}

NetError
errnoError(const char *what)
{
    return NetError(std::string(what) + ": " +
                    std::strerror(errno));
}

} // namespace

Conn::~Conn() { close(); }

Conn::Conn(Conn &&other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_))
{
    other.fd_ = -1;
}

Conn &
Conn::operator=(Conn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

Conn::ReadStatus
Conn::readLine(std::string &line, int timeout_ms, std::size_t max_len)
{
    if (fd_ < 0)
        return ReadStatus::Error;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            if (nl > max_len)
                return ReadStatus::Overflow;
            line.assign(buf_, 0, nl);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            buf_.erase(0, nl + 1);
            return ReadStatus::Line;
        }
        if (buf_.size() > max_len)
            return ReadStatus::Overflow;
        int left = remainingMs(deadline);
        if (left == 0)
            return ReadStatus::Timeout;
        struct pollfd pfd = {fd_, POLLIN, 0};
        int pr = ::poll(&pfd, 1, left);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Error;
        }
        if (pr == 0)
            return ReadStatus::Timeout;
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n == 0)
            return ReadStatus::Eof;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Error;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
Conn::writeAll(const std::string &text)
{
    if (fd_ < 0)
        return false;
    std::size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::send(fd_, text.data() + off, text.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Conn::writeLine(const std::string &line)
{
    return writeAll(line + '\n');
}

void
Conn::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
Conn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

Conn
connectUnix(const std::string &path)
{
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw NetError("unix socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw errnoError("socket");
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        throw errnoError(("connect " + path).c_str());
    }
    return Conn(fd);
}

Conn
connectTcp(std::uint16_t port)
{
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw errnoError("socket");
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        throw errnoError("connect 127.0.0.1");
    }
    // The protocol is a small-frame request/response ping-pong;
    // without this, Nagle + delayed ACK cost ~40ms per exchange.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Conn(fd);
}

Listener::~Listener() { close(); }

Listener::Listener(Listener &&other) noexcept
    : fd_(other.fd_), port_(other.port_),
      path_(std::move(other.path_))
{
    other.fd_ = -1;
    other.path_.clear();
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        path_ = std::move(other.path_);
        other.fd_ = -1;
        other.path_.clear();
    }
    return *this;
}

Listener
Listener::unixSocket(const std::string &path)
{
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw NetError("unix socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw errnoError("socket");
    ::unlink(path.c_str());  // a stale socket file from a dead server
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        throw errnoError(("bind/listen " + path).c_str());
    }
    Listener l;
    l.fd_ = fd;
    l.path_ = path;
    return l;
}

Listener
Listener::tcp(std::uint16_t port)
{
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw errnoError("socket");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        throw errnoError("bind/listen tcp");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        throw errnoError("getsockname");
    }
    Listener l;
    l.fd_ = fd;
    l.port_ = ntohs(addr.sin_port);
    return l;
}

Conn
Listener::accept(int timeout_ms)
{
    if (fd_ < 0)
        throw NetError("accept on a closed listener");
    struct pollfd pfd = {fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr <= 0)
        return Conn();
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0)
        return Conn();
    // No-op (EOPNOTSUPP) on Unix sockets; see connectTcp().
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Conn(cfd);
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

} // namespace mcd::srv
