/**
 * @file
 * Minimal stream-socket primitives for the sweep server and its
 * clients: a connected `Conn` with bounded, deadline-guarded line
 * I/O, and a `Listener` over a Unix-domain path or a loopback TCP
 * port.
 *
 * Everything here is deliberately defensive — the wire carries
 * untrusted bytes:
 *  - reads are line-oriented with a hard per-line byte cap, so an
 *    endless unterminated frame cannot grow a buffer without bound;
 *  - every read carries a deadline measured from the *start* of the
 *    line, so a slow-loris peer trickling one byte per poll interval
 *    cannot hold a connection open past the timeout;
 *  - writes use MSG_NOSIGNAL, so a peer that disconnected mid-reply
 *    surfaces as a `false` return, never as SIGPIPE.
 */

#ifndef MCD_SRV_NET_HH
#define MCD_SRV_NET_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mcd::srv
{

/** Transport-level failure: bind/connect/accept errors.  Line-level
 *  read problems are reported as `Conn::ReadStatus`, not thrown. */
class NetError : public std::runtime_error
{
  public:
    explicit NetError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * One connected stream socket with a read-ahead buffer.  Movable,
 * not copyable; closes the descriptor on destruction.
 */
class Conn
{
  public:
    Conn() = default;
    /** Adopt an already-connected descriptor. */
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn();

    Conn(Conn &&other) noexcept;
    Conn &operator=(Conn &&other) noexcept;
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    enum class ReadStatus
    {
        Line,      ///< a complete line was returned
        Eof,       ///< peer closed (any partial line is discarded)
        Timeout,   ///< no complete line within the deadline
        Overflow,  ///< line exceeded @p max_len without a newline
        Error,     ///< socket error
    };

    /**
     * Read one '\n'-terminated line (terminator stripped; a trailing
     * '\r' is also stripped for telnet-style clients).  The deadline
     * is @p timeout_ms from the call — partial progress does not
     * extend it.  On anything but `Line`, @p line is untouched.
     */
    ReadStatus readLine(std::string &line, int timeout_ms,
                        std::size_t max_len);

    /** Write all of @p text; false on any error (peer gone, ...). */
    bool writeAll(const std::string &text);

    /** writeAll(line + '\n'). */
    bool writeLine(const std::string &line);

    /** Half-close the write side (the peer sees EOF after draining). */
    void shutdownWrite();

    void close();
    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buf_;  ///< bytes read past the last returned line
};

/** Connect to a Unix-domain socket; throws NetError on failure. */
Conn connectUnix(const std::string &path);

/** Connect to 127.0.0.1:@p port; throws NetError on failure. */
Conn connectTcp(std::uint16_t port);

/**
 * A listening socket.  `unixSocket()` unlinks a stale socket file at
 * @p path before binding and unlinks it again on close; `tcp()`
 * binds 127.0.0.1 (port 0 picks an ephemeral port, readable back
 * via `port()`).
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    static Listener unixSocket(const std::string &path);
    static Listener tcp(std::uint16_t port);

    /**
     * Wait up to @p timeout_ms for a connection; returns an invalid
     * Conn on timeout.  Throws NetError only on a dead listener.
     */
    Conn accept(int timeout_ms);

    void close();
    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    /** Bound TCP port (0 for a Unix listener). */
    std::uint16_t port() const { return port_; }
    /** Unix socket path (empty for a TCP listener). */
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::string path_;
};

} // namespace mcd::srv

#endif // MCD_SRV_NET_HH
