#include "exp/tournament.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"
#include "util/text.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"
#include "workload/split.hh"

namespace mcd::exp
{

namespace
{

/** Canonicalize @p text as a policy spec; throws SpecError (the
 *  tournament's malformed-input contract) instead of the registry's
 *  bool+err so one catchable type covers every bad cell part. */
control::PolicySpec
canonicalPolicy(const std::string &text, const char *role,
                const control::Policy **policy_out = nullptr)
{
    control::PolicySpec spec;
    std::string err;
    if (!control::parseSpec(text, spec, err))
        throw workload::SpecError(strprintf(
            "tournament %s spec '%s': %s", role, text.c_str(),
            err.c_str()));
    if (!control::PolicyRegistry::instance().canonicalize(spec, err))
        throw workload::SpecError(strprintf(
            "tournament %s spec '%s': %s", role, text.c_str(),
            err.c_str()));
    if (policy_out)
        *policy_out =
            control::PolicyRegistry::instance().find(spec.policy);
    return spec;
}

} // namespace

Tournament::Tournament(Runner &r, const TournamentConfig &cfg)
    : runner(r)
{
    if (runner.config().sim.sampling.sampled())
        throw workload::SpecError(
            "the tournament ranks feedback controllers (online, "
            "hybrid, learned), whose decisions diverge under "
            "sampled simulation (docs/SAMPLING.md); run the "
            "tournament with --sample exact");

    oracleSpec = canonicalPolicy(cfg.oracle, "oracle").str();

    if (cfg.policies.empty()) {
        for (const control::Policy *p :
             control::PolicyRegistry::instance().list()) {
            if (!p->sweepable())
                continue;
            roster.push_back(
                canonicalPolicy(p->name(), "policy").str());
        }
    } else {
        for (const std::string &text : cfg.policies) {
            const control::Policy *p = nullptr;
            std::string canon =
                canonicalPolicy(text, "policy", &p).str();
            if (!p->sweepable())
                throw workload::SpecError(strprintf(
                    "tournament policy spec '%s': policy '%s' "
                    "cannot run single-core sweep cells",
                    text.c_str(), p->name()));
            roster.push_back(canon);
        }
    }
    // Ranking tie-break order; also collapses duplicate spellings of
    // one cell to one row.
    std::sort(roster.begin(), roster.end());
    roster.erase(std::unique(roster.begin(), roster.end()),
                 roster.end());
    if (roster.empty())
        throw workload::SpecError(
            "tournament policy roster is empty");

    const std::vector<std::string> &wl =
        cfg.workloads.empty() ? workload::tournamentWorkloads()
                              : cfg.workloads;
    for (const std::string &text : wl) {
        // Throws SpecError on a malformed workload spec.
        std::string canon = workload::canonicalWorkloadSpec(text);
        loads.push_back(canon);
        holdout.push_back(canon.rfind("gen:", 0) == 0);
    }
    if (loads.empty())
        throw workload::SpecError(
            "tournament workload list is empty");
}

std::vector<std::string>
Tournament::cellKeys() const
{
    std::vector<std::string> keys;
    control::PolicySpec oracle;
    std::string err;
    parseSpec(oracleSpec, oracle, err);
    for (const std::string &w : loads)
        keys.push_back(runner.cacheKey(w, oracle));
    for (const std::string &p : roster) {
        control::PolicySpec spec;
        parseSpec(p, spec, err);
        for (const std::string &w : loads)
            keys.push_back(runner.cacheKey(w, spec));
    }
    return keys;
}

TournamentResult
Tournament::run(unsigned jobs)
{
    // One flat sweep — oracle row first, then policy-major — so the
    // runner's pool sees every cell at once and results come back in
    // cell order at any thread count.
    std::vector<SweepCell> cells;
    for (const std::string &w : loads)
        cells.push_back(SweepCell::of(w, oracleSpec));
    for (const std::string &p : roster)
        for (const std::string &w : loads)
            cells.push_back(SweepCell::of(w, p));
    std::vector<Outcome> res = runner.runSweep(cells, jobs);

    TournamentResult out;
    out.oracle = oracleSpec;
    out.workloads = loads;
    for (bool h : holdout)
        out.holdoutCount += h ? 1u : 0u;

    const Outcome *oracleRow = res.data();
    for (std::size_t pi = 0; pi < roster.size(); ++pi) {
        TournamentRow row;
        row.policy = roster[pi];
        double holdoutSum = 0.0;
        std::size_t holdoutN = 0;
        for (std::size_t wi = 0; wi < loads.size(); ++wi) {
            const Outcome &o =
                res[(pi + 1) * loads.size() + wi];
            TournamentCell cell;
            cell.workload = loads[wi];
            cell.policy = roster[pi];
            cell.holdout = holdout[wi];
            cell.outcome = o;
            cell.regretPct =
                oracleRow[wi].metrics.energyDelayImprovementPct -
                o.metrics.energyDelayImprovementPct;
            row.meanRegretPct += cell.regretPct;
            row.meanEdGainPct +=
                o.metrics.energyDelayImprovementPct;
            row.meanSlowdownPct += o.metrics.slowdownPct;
            if (cell.holdout) {
                holdoutSum += cell.regretPct;
                ++holdoutN;
            }
            row.cells.push_back(cell);
        }
        double n = static_cast<double>(loads.size());
        row.meanRegretPct /= n;
        row.meanEdGainPct /= n;
        row.meanSlowdownPct /= n;
        row.holdoutRegretPct =
            holdoutN ? holdoutSum / static_cast<double>(holdoutN)
                     : 0.0;
        out.ranking.push_back(row);
    }

    std::stable_sort(out.ranking.begin(), out.ranking.end(),
                     [](const TournamentRow &a,
                        const TournamentRow &b) {
                         if (a.meanRegretPct != b.meanRegretPct)
                             return a.meanRegretPct <
                                    b.meanRegretPct;
                         return a.policy < b.policy;
                     });
    return out;
}

std::string
renderTournamentTable(const TournamentResult &r)
{
    std::ostringstream os;
    os << "policy tournament: regret vs " << r.oracle << " over "
       << r.workloads.size() << " workloads (" << r.holdoutCount
       << " held-out gen:)\n";
    TextTable t;
    t.header({"rank", "policy", "regret %", "holdout regret %",
              "ExD gain %", "slowdown %"});
    for (std::size_t i = 0; i < r.ranking.size(); ++i) {
        const TournamentRow &row = r.ranking[i];
        t.row({strprintf("%zu", i + 1), row.policy,
               TextTable::num(row.meanRegretPct),
               TextTable::num(row.holdoutRegretPct),
               TextTable::num(row.meanEdGainPct),
               TextTable::num(row.meanSlowdownPct)});
    }
    t.print(os);
    return os.str();
}

} // namespace mcd::exp
