/**
 * @file
 * The policy tournament: every registered policy (at its schema
 * defaults, or an explicit roster) runs the full tournament workload
 * roster — curated suite benchmarks plus held-out `gen:` workloads
 * (workload/split.hh) — and each {policy, workload} cell is scored
 * as *regret* against the off-line oracle:
 *
 *     regret = oracle ED-improvement% - policy ED-improvement%
 *
 * i.e. how many energy*delay percentage points the policy leaves on
 * the table relative to perfect knowledge on the same workload
 * (both sides measured against the MCD baseline, Section 4.1, so
 * the baseline's regret is exactly the oracle's gain).  Policies
 * rank by mean regret, ascending; the holdout column isolates the
 * `gen:` workloads no heuristic was hand-tuned on, which is where a
 * learned policy has to earn its seat.
 *
 * Determinism: cells run through exp::Runner::runSweep(), whose
 * results come back in cell order at any thread count, and every
 * constituent simulation is bit-deterministic — so the ranked table
 * (and the bench_tournament JSON built from it) is byte-identical
 * across reruns and `--jobs` values.
 *
 * The tournament refuses sampled simulation outright: the default
 * roster contains feedback controllers (`online`, the `hybrid`
 * guard, `learned`) whose *decisions* diverge under sampling
 * (docs/SAMPLING.md, "Feedback policies"), and a ranking that mixes
 * trustworthy and untrustworthy rows is worse than no ranking.
 */

#ifndef MCD_EXP_TOURNAMENT_HH
#define MCD_EXP_TOURNAMENT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace mcd::exp
{

/**
 * Tournament shape.  Everything here only *selects* cells — each
 * cell's outcome is keyed by its own canonical policy/workload specs
 * and the runner's config fingerprint — so no field shapes a cached
 * value and none joins the fingerprint (tools/mcd_lint.py audits
 * this struct; see the per-field annotations).
 */
struct TournamentConfig
{
    /** Oracle spec every cell's regret is measured against. */
    // mcd-lint: allow(fingerprint-complete): the oracle's outcome
    // caches under its own canonical spec key; this field only names
    // which key to compare against.
    std::string oracle = "offline:d=10";
    /** Policy specs to rank; empty = every registered policy with
     *  `sweepable()` true, at its schema defaults. */
    // mcd-lint: allow(fingerprint-complete): cell selection only —
    // each selected cell keys on its canonical spec.
    std::vector<std::string> policies;
    /** Workload specs to run; empty =
     *  workload::tournamentWorkloads(). */
    // mcd-lint: allow(fingerprint-complete): cell selection only —
    // each selected cell keys on its canonical workload spec.
    std::vector<std::string> workloads;
};

/** One scored {policy, workload} cell. */
struct TournamentCell
{
    std::string workload;  ///< canonical workload spec
    std::string policy;    ///< canonical policy spec
    bool holdout = false;  ///< generated (`gen:`) workload?
    Outcome outcome;
    /** Regret vs the oracle on this workload (percentage points of
     *  energy*delay improvement; 0 = matched the oracle). */
    double regretPct = 0.0;
};

/** One ranked row: a policy aggregated over every workload. */
struct TournamentRow
{
    std::string policy;  ///< canonical policy spec
    double meanRegretPct = 0.0;     ///< over all workloads
    double holdoutRegretPct = 0.0;  ///< over holdout workloads only
    double meanEdGainPct = 0.0;     ///< mean ED-improvement vs baseline
    double meanSlowdownPct = 0.0;
    std::vector<TournamentCell> cells;  ///< in workload order
};

/** A finished tournament: rows ranked by mean regret, ascending
 *  (ties by canonical policy spec). */
struct TournamentResult
{
    std::string oracle;  ///< canonical oracle spec
    std::vector<std::string> workloads;  ///< canonical, in run order
    std::size_t holdoutCount = 0;        ///< how many are `gen:`
    std::vector<TournamentRow> ranking;
};

/**
 * The cross-product sweep.  Construction canonicalizes the whole
 * plan — oracle, roster, workloads — and throws
 * `workload::SpecError` on any malformed spec, an empty roster/
 * workload list, a non-sweepable policy named explicitly, or a
 * sampled-mode runner; nothing simulates until run().
 */
class Tournament
{
  public:
    Tournament(Runner &runner,
               const TournamentConfig &cfg = TournamentConfig());

    /** Canonical policy roster, in ranking tie-break order. */
    const std::vector<std::string> &policies() const
    {
        return roster;
    }

    /** Canonical workloads, in run order. */
    const std::vector<std::string> &workloads() const
    {
        return loads;
    }

    /** Canonical oracle spec. */
    const std::string &oracle() const { return oracleSpec; }

    /**
     * The memo/CSV cache keys of every cell the tournament will run
     * — oracle cells first, then policy-major cell order.  Exposed
     * so tests can pin key stability and fuzzers can prove malformed
     * cells die in the constructor, not here.
     */
    std::vector<std::string> cellKeys() const;

    /** Run every cell (through the runner's memo) and rank. */
    TournamentResult run(unsigned jobs = 0);

  private:
    Runner &runner;
    std::string oracleSpec;
    std::vector<std::string> roster;
    std::vector<std::string> loads;
    std::vector<bool> holdout;  ///< per load
};

/** Render @p r as the ranked text table bench_tournament prints. */
std::string renderTournamentTable(const TournamentResult &r);

} // namespace mcd::exp

#endif // MCD_EXP_TOURNAMENT_HH
