/**
 * @file
 * Experiment harness shared by the benchmark binaries: runs each
 * benchmark under the MCD baseline, the profile-driven pipeline, the
 * off-line oracle, the on-line attack/decay controller and the
 * global-DVS baseline, computing the paper's metrics (always
 * relative to the MCD baseline, Section 4.1).
 *
 * The harness is a parallel sweep engine: every {benchmark, policy,
 * parameter} cell of a figure is an independent job, and
 * Runner::runSweep() spreads the cells over a work-stealing thread
 * pool (`--jobs N` in the bench binaries; `--jobs 1` reproduces the
 * old serial loops exactly).
 *
 * Results are memoized in a sharded in-memory map and, optionally,
 * appended to a CSV cache file by a single writer thread so that the
 * per-figure bench binaries do not recompute shared sweeps.  Cache
 * keys embed a fingerprint of the active SimConfig/PowerConfig so
 * binaries run with different configurations can share one cache
 * file without reading each other's outcomes.
 */

#ifndef MCD_EXP_EXPERIMENT_HH
#define MCD_EXP_EXPERIMENT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hh"
#include "power/power.hh"
#include "sim/processor.hh"
#include "util/stats.hh"

namespace mcd::exp
{

/** Harness configuration shared by all experiments. */
struct ExpConfig
{
    sim::SimConfig sim;
    power::PowerConfig power;
    /** Production-run window (instructions). */
    std::uint64_t productionWindow = 150'000;
    /** Analysis-run window for the profile pipeline. */
    std::uint64_t analysisWindow = 150'000;
    /** Profiling cap for phase 1 (functional run). */
    std::uint64_t profileMaxInstrs = 4'000'000;
    /** Default slowdown threshold d (percent). */
    double d = 5.0;
    /** Off-line oracle reconfiguration interval. */
    std::uint64_t offlineInterval = 10'000;
    /** On-line controller aggressiveness at the default point. */
    double onlineAggressiveness = 1.0;
    /** CSV memo file; empty = in-memory only. */
    std::string cacheFile;
    /** Sweep parallelism; 0 = hardware_concurrency(). */
    unsigned jobs = 0;

    ExpConfig()
    {
        // Our instruction windows are ~1000x shorter than the
        // paper's; scale the DVFS transition rate so ramps keep a
        // comparable (small but visible) share of a reconfigurable
        // phase.  See docs/ARCHITECTURE.md, "Time-scaled DVFS ramp".
        sim.rampNsPerMhz = 2.2;
    }
};

/**
 * 64-bit FNV-1a fingerprint of every SimConfig/PowerConfig knob (and
 * the profiling cap) that shapes an outcome but is not spelled out in
 * the cache-key text.  Folded into every memo-cache key so two
 * harnesses with different configurations never exchange outcomes
 * through a shared cache file.
 */
std::uint64_t configFingerprint(const ExpConfig &cfg);

/** Result of one policy run on one benchmark. */
struct Outcome
{
    double timePs = 0.0;
    double energyNj = 0.0;
    Metrics metrics;  ///< vs the MCD baseline
    double reconfigs = 0.0;
    double overheadCycles = 0.0;
    double feCycles = 0.0;
    // profile-policy extras
    double dynReconfigPoints = 0.0;
    double dynInstrPoints = 0.0;
    double staticReconfigPoints = 0.0;
    double staticInstrPoints = 0.0;
    double tableBytes = 0.0;
    // global-policy extras
    double globalFreq = 0.0;
};

/** The reconfiguration policies a sweep cell can run. */
enum class Policy
{
    Baseline,  ///< MCD, all domains at maximum frequency
    Profile,   ///< profile-driven (mode, d)
    Offline,   ///< off-line perfect-knowledge oracle (d)
    Online,    ///< attack/decay controller (aggressiveness)
    Global,    ///< chip-wide DVS matched to the off-line run time
};

/**
 * One independently-runnable {benchmark, policy, parameter} cell of
 * a sweep.  Build cells with the named factories.
 */
struct SweepCell
{
    std::string bench;
    Policy policy = Policy::Baseline;
    core::ContextMode mode = core::ContextMode::LF;  ///< Profile only
    double d = 0.0;              ///< Profile/Offline threshold
    double aggressiveness = 1.0; ///< Online only

    static SweepCell baseline(std::string bench);
    static SweepCell profile(std::string bench, core::ContextMode mode,
                             double d);
    static SweepCell offline(std::string bench, double d);
    static SweepCell online(std::string bench, double aggressiveness);
    static SweepCell global(std::string bench);
};

/**
 * Memoizing, concurrency-safe experiment runner.
 *
 * The policy entry points (baseline/profile/offline/online/global)
 * may be called from any number of threads; runSweep() is the
 * batch interface the bench binaries use.
 */
class Runner
{
  public:
    explicit Runner(const ExpConfig &cfg = ExpConfig());
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /**
     * Run every cell, spreading them over a work-stealing pool of
     * @p jobs threads (0 = the config's `jobs`, which itself
     * defaults to hardware_concurrency()).  Results come back in
     * cell order regardless of the thread count, and with one job
     * the cells run inline, in order, on the calling thread — so
     * `--jobs 1` output is byte-identical to the old serial loops.
     */
    std::vector<Outcome> runSweep(const std::vector<SweepCell> &cells,
                                  unsigned jobs = 0);

    /** Run one cell (dispatches on its policy). */
    Outcome run(const SweepCell &cell);

    /** MCD baseline: all domains at maximum frequency. */
    Outcome baseline(const std::string &bench);

    /** Profile-driven reconfiguration (trained on the training set,
     *  measured on the reference set). */
    Outcome profile(const std::string &bench, core::ContextMode mode,
                    double d);

    /** Off-line perfect-knowledge oracle at threshold d. */
    Outcome offline(const std::string &bench, double d);

    /** On-line attack/decay at the given aggressiveness. */
    Outcome online(const std::string &bench, double aggressiveness);

    /** Global single-clock DVS matched to the off-line run time at
     *  the harness's default d. */
    Outcome global(const std::string &bench);

    const ExpConfig &config() const { return cfg; }

    /** Entries accepted from the CSV cache file at construction. */
    std::size_t loadedFromCache() const { return nLoaded; }

    /** Non-empty CSV lines rejected as malformed at construction. */
    std::size_t rejectedCacheLines() const { return nRejected; }

  private:
    class CacheWriter;

    /** One lock-sharded slice of the memo map.  Values are shared
     *  futures so concurrent requests for one key compute it once:
     *  the inserting thread computes, the others block on the
     *  future. */
    struct Shard
    {
        std::mutex m;
        std::unordered_map<std::string, std::shared_future<Outcome>>
            map;
    };
    static constexpr std::size_t NUM_SHARDS = 16;

    Shard &shardFor(const std::string &key);
    Outcome memoize(const std::string &key,
                    const std::function<Outcome()> &compute);
    void store(const std::string &key, const Outcome &o);
    void loadCache();
    Metrics vsBaseline(const std::string &bench, const Outcome &o);
    std::string keyPrefix() const;

    ExpConfig cfg;
    std::uint64_t fingerprint;
    std::array<Shard, NUM_SHARDS> shards;
    std::unique_ptr<CacheWriter> writer;
    std::size_t nLoaded = 0;
    std::size_t nRejected = 0;
};

} // namespace mcd::exp

#endif // MCD_EXP_EXPERIMENT_HH
