/**
 * @file
 * Experiment harness shared by the benchmark binaries: runs each
 * benchmark under any policy registered with
 * `control::PolicyRegistry` (the paper's five — baseline, profile,
 * off-line oracle, on-line attack/decay, global DVS — plus anything
 * added since, e.g. `hybrid`), computing the paper's metrics
 * (always relative to the MCD baseline, Section 4.1).
 *
 * Policies are addressed by `control::PolicySpec` strings
 * (`profile:mode=LF,d=10`, `online:aggr=1.5`, `global`); benchmarks
 * by `workload::WorkloadSpec` strings — a suite name (`gzip`), a
 * generator spec (`gen:phases=4,mem=0.4,seed=7`) or an
 * authored-program handle (`prog:name=...,hash=...`), resolved
 * through the `WorkloadRegistry`.  The canonical form of both specs
 * is the single source of truth for memo/CSV cache keys, CLI
 * selection and sweep construction.
 *
 * The harness is a parallel sweep engine: every {benchmark, spec}
 * cell of a figure is an independent job, and Runner::runSweep()
 * spreads the cells over a work-stealing thread pool (`--jobs N` in
 * the bench binaries; `--jobs 1` reproduces the old serial loops
 * exactly).
 *
 * Results are memoized in a sharded in-memory map and, optionally,
 * appended to a CSV cache file by a single writer thread so that the
 * per-figure bench binaries do not recompute shared sweeps.  Cache
 * keys embed a fingerprint of the active SimConfig/PowerConfig so
 * binaries run with different configurations can share one cache
 * file without reading each other's outcomes.
 */

#ifndef MCD_EXP_EXPERIMENT_HH
#define MCD_EXP_EXPERIMENT_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chip/chip.hh"
#include "chip/config.hh"
#include "control/policy.hh"
#include "core/pipeline.hh"
#include "power/power.hh"
#include "sim/processor.hh"
#include "util/stats.hh"

namespace mcd::exp
{

/** Harness configuration shared by all experiments. */
struct ExpConfig
{
    sim::SimConfig sim;
    power::PowerConfig power;
    /** Production-run window (instructions). */
    // mcd-lint: allow(fingerprint-complete): spelled into the
    // cache-key text by every policy's contextKey() (e.g. `w150000`),
    // so hashing it too would only split keys for policies that
    // never read it.
    std::uint64_t productionWindow = 150'000;
    /** Analysis-run window for the profile pipeline. */
    // mcd-lint: allow(fingerprint-complete): keyed via the profile
    // policies' contextKey() fragments; policies that skip the
    // analysis run are deliberately insensitive to it.
    std::uint64_t analysisWindow = 150'000;
    /** Profiling cap for phase 1 (functional run). */
    std::uint64_t profileMaxInstrs = 4'000'000;
    /**
     * Slowdown threshold d (percent) read ONLY by the deprecated
     * `Runner::global(bench)` shim.  Specs with an unset d default
     * through the parameter schema
     * (`control::DEFAULT_SLOWDOWN_PCT`, 5.0), never through this
     * field — spell d out in the spec when it must differ.
     */
    // mcd-lint: allow(fingerprint-complete): reaches an outcome only
    // through the canonical spec text (`d=...`), which is already in
    // the key.
    double d = control::DEFAULT_SLOWDOWN_PCT;
    /** Off-line oracle reconfiguration interval. */
    // mcd-lint: allow(fingerprint-complete): keyed via the offline
    // policy's contextKey() fragment (`i10000`); hashing it would
    // spuriously miss for policies that never run the oracle
    // (pinned by PolicyCacheKey.ContextKnobsAndConfigChangeTheKey).
    std::uint64_t offlineInterval = 10'000;
    /** CSV memo file; empty = in-memory only. */
    // mcd-lint: allow(fingerprint-complete): names where outcomes are
    // stored, never what they are.
    std::string cacheFile;
    /** Sweep parallelism; 0 = hardware_concurrency(). */
    // mcd-lint: allow(fingerprint-complete): scheduling only — cell
    // results are independent of the thread count (CI pins --jobs 1
    // vs --jobs N identity).
    unsigned jobs = 0;
    /** Shared-uncore knobs for chip cells (src/chip/config.hh); all
     *  of them join the fingerprint, so chip sweep cells run with a
     *  different uncore never share cache lines. */
    chip::ChipConfig chip;
    /** Training regime for the `learned` policy
     *  (src/control/learned.hh); both knobs join the fingerprint
     *  (prefix `ln`), so learned outcomes trained under different
     *  regimes never share cache lines. */
    control::LearnedConfig learned;

    ExpConfig()
    {
        // Our instruction windows are ~1000x shorter than the
        // paper's; scale the DVFS transition rate so ramps keep a
        // comparable (small but visible) share of a reconfigurable
        // phase.  See docs/ARCHITECTURE.md, "Time-scaled DVFS ramp".
        sim.rampNsPerMhz = 2.2;
    }
};

/**
 * 64-bit FNV-1a fingerprint of every SimConfig/PowerConfig knob (and
 * the profiling cap) that shapes an outcome but is not spelled out in
 * the cache-key text.  Folded into every memo-cache key so two
 * harnesses with different configurations never exchange outcomes
 * through a shared cache file.
 */
std::uint64_t configFingerprint(const ExpConfig &cfg);

/** Result of one policy run on one benchmark. */
using Outcome = control::Outcome;

/**
 * One independently-runnable {benchmark, policy spec} cell of a
 * sweep.  Build cells with `of()`; the named factories are thin
 * shims from the pre-registry enum days.
 */
struct SweepCell
{
    /** Any workload spec (suite name, `gen:...`, `prog:...`). */
    std::string bench;
    control::PolicySpec spec;

    static SweepCell of(std::string bench, control::PolicySpec spec);
    /** Parses @p spec_text; fatal on a malformed/unknown spec. */
    static SweepCell of(std::string bench,
                        const std::string &spec_text);

    // Deprecated shims for the old closed policy set; prefer of().
    // (Chip runs use ChipCell below, not SweepCell: a chip cell
    // produces one outcome per tile plus an uncore row, so it does
    // not fit the one-cell-one-outcome sweep contract.)
    // There is deliberately no global() shim: the enum-era global
    // cell read the runner's `ExpConfig::d` at run time, which a
    // spec built ahead of time cannot reproduce — build it
    // explicitly as `PolicySpec::of("global").set("d", cfg.d)` so
    // the threshold is visible at the call site.
    static SweepCell baseline(std::string bench);
    static SweepCell profile(std::string bench, core::ContextMode mode,
                             double d);
    static SweepCell offline(std::string bench, double d);
    static SweepCell online(std::string bench, double aggressiveness);
};

/**
 * One co-scheduled run of a tiled chip (chip::Chip): a co-schedule
 * (`multi:` or a plain spec replicated over @p tiles), the per-tile
 * policy every tile runs (must be tile-capable — see
 * `control::Policy::makeTileController()`), and an optional
 * `chip-coord:` coordinator spec for the shared uncore.
 */
struct ChipCell
{
    /** Co-schedule: `multi:t0=...,t1=...` or a plain workload spec
     *  replicated across the tiles. */
    std::string workload;
    /** Tile count; for a `multi:` workload 0 means "as named". */
    int tiles = 0;
    /** Per-tile policy (default: the MCD baseline, max speed). */
    control::PolicySpec tilePolicy = control::PolicySpec::of("baseline");
    /** Chip coordinator spec (`chip-coord:...`); "" = uncore pinned
     *  at its maximum frequency. */
    std::string coord;
};

/**
 * Memoizing, concurrency-safe experiment runner.
 *
 * run() may be called from any number of threads; runSweep() is the
 * batch interface the bench binaries use.
 */
class Runner
{
  public:
    explicit Runner(const ExpConfig &cfg = ExpConfig());
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /**
     * Run every cell, spreading them over a work-stealing pool of
     * @p jobs threads (0 = the config's `jobs`, which itself
     * defaults to hardware_concurrency()).  Results come back in
     * cell order regardless of the thread count, and with one job
     * the cells run inline, in order, on the calling thread — so
     * `--jobs 1` output is byte-identical to the old serial loops.
     */
    std::vector<Outcome> runSweep(const std::vector<SweepCell> &cells,
                                  unsigned jobs = 0);

    /** Run one cell. */
    Outcome run(const SweepCell &cell);

    /**
     * Run @p spec on @p bench: canonicalize against the registry
     * (fatal on an unknown policy/parameter), memoize under the
     * canonical cache key, and compute metrics vs the MCD baseline
     * where the policy asks for it.
     */
    Outcome run(const std::string &bench,
                const control::PolicySpec &spec);

    /**
     * Like run(bench, spec), but also reports whether the *outer*
     * cell was served from the memo (@p memo_hit = true) or computed
     * by this call (false).  Dependency cells the policy evaluates
     * internally (the baseline for metrics, offline for global) do
     * not affect the flag — they show up in the aggregate counters
     * below instead.
     */
    Outcome run(const std::string &bench,
                const control::PolicySpec &spec, bool *memo_hit);

    /**
     * Run a co-scheduled chip cell: N tiles under one per-tile
     * policy with the shared uncore coupling them.  Returns N+1
     * outcomes — index k < N is tile k, mirroring that policy's own
     * single-core Outcome mapping (timePs/energyNj/reconfigs), index
     * N is the uncore summary row (global end time, shared-fabric
     * energy, coordinator reconfig count, average uncore MHz in
     * globalFreq).  Each row memoizes under its own `tile=` cache
     * key (see chipCacheKeys()), so a chip cell whose rows are all
     * cached is served without simulating; a partial cache
     * recomputes the whole (deterministic) chip once.  When
     * @p row_hits is non-null it receives one memo-hit flag per row.
     * Throws workload::SpecError on a bad co-schedule or coordinator
     * spec, or a per-tile policy that is not tile-capable.
     */
    std::vector<Outcome> runChip(const ChipCell &cell,
                                 std::vector<bool> *row_hits =
                                     nullptr);

    /**
     * The N+1 memo/CSV cache keys of a chip cell, tile rows then the
     * uncore row: `v<CACHE_VERSION>|c<fingerprint>|chip:tiles=N,
     * tile=<k|u>|<coord spec or coord=off>|<tile policy spec>|
     * <canonical multi spec>|<tile policy context key>`.
     */
    std::vector<std::string> chipCacheKeys(const ChipCell &cell) const;

    // ------------------------------------------------------------ //
    // Deprecated entry points for the old closed policy set.  Thin  //
    // shims over run(bench, spec); kept so pre-registry call sites  //
    // compile, and pinned bit-identical by tests/test_policy.cc.    //
    // ------------------------------------------------------------ //

    /** @deprecated Use run(bench, PolicySpec::of("baseline")). */
    Outcome baseline(const std::string &bench);
    /** @deprecated Use run() with a "profile:mode=...,d=..." spec. */
    Outcome profile(const std::string &bench, core::ContextMode mode,
                    double d);
    /** @deprecated Use run() with an "offline:d=..." spec. */
    Outcome offline(const std::string &bench, double d);
    /** @deprecated Use run() with an "online:aggr=..." spec. */
    Outcome online(const std::string &bench, double aggressiveness);
    /** @deprecated Use run() with a "global" spec (the old entry
     *  matched the off-line run at `ExpConfig::d`, so the shim
     *  passes that as the spec's d). */
    Outcome global(const std::string &bench);

    const ExpConfig &config() const { return cfg; }

    /** Entries accepted from the CSV cache file at construction. */
    std::size_t loadedFromCache() const { return nLoaded; }

    /** Non-empty CSV lines rejected as malformed at construction. */
    std::size_t rejectedCacheLines() const { return nRejected; }

    /**
     * Memoized requests served without computing: duplicates of an
     * in-flight or finished cell, plus cells preloaded from the CSV
     * cache.  Counts every memo lookup, including the dependency
     * cells policies evaluate internally (metrics baselines, the
     * offline run behind global DVS).
     */
    std::uint64_t memoHits() const { return nHits.load(); }

    /** Memoized requests that computed their cell (the memo owner).
     *  `memoMisses()` of a sweep equals its number of distinct
     *  simulated cells — the server's duplicate-suppression tests
     *  key off exactly this. */
    std::uint64_t memoMisses() const { return nMisses.load(); }

    /**
     * The memo/CSV cache key of a canonical spec on this runner:
     * `v<CACHE_VERSION>|c<fingerprint>|<canonical policy spec>|
     * <canonical workload spec>|<policy context key>`.  The bench
     * field is canonicalized through the WorkloadRegistry, so
     * parameter order/formatting of a `gen:...` or `prog:...` spec
     * never splits a cell.  Exposed so tests can pin key stability;
     * fatal on a non-canonicalizable policy spec, throws
     * workload::SpecError on a bad workload spec.
     */
    std::string cacheKey(const std::string &bench,
                         const control::PolicySpec &spec) const;

  private:
    class CacheWriter;

    /** One lock-sharded slice of the memo map.  Values are shared
     *  futures so concurrent requests for one key compute it once:
     *  the inserting thread computes, the others block on the
     *  future. */
    struct Shard
    {
        std::mutex m;
        std::unordered_map<std::string, std::shared_future<Outcome>>
            map;
    };
    static constexpr std::size_t NUM_SHARDS = 16;

    Shard &shardFor(const std::string &key);
    /**
     * Memoized workload-spec canonicalization (throws
     * workload::SpecError on a bad spec).  A sweep re-resolves its
     * cells' bench strings constantly — every run() and every
     * dependency evaluation — and full canonicalization rebuilds the
     * workload just to print its spec, so each distinct bench string
     * is canonicalized once per Runner and served from this memo
     * afterwards.
     */
    std::string canonicalBenchCached(const std::string &bench) const;
    /**
     * Sampled mode: the shared per-benchmark checkpoint set
     * (sim/checkpoint.hh), built once per distinct canonical bench
     * at the production window and reused by every cell of the
     * sweep.  Concurrency-safe with the same future-based
     * compute-once protocol as the outcome memo.
     */
    std::shared_ptr<const sim::CheckpointSet>
    checkpointSetFor(const std::string &canon_bench);
    /** Canonicalize @p spec (fatal on error) and @p bench (throws
     *  workload::SpecError), resolve the policy and build the
     *  memo/CSV key — the single definition of the key layout,
     *  shared by run() and cacheKey(). */
    std::string resolve(const std::string &bench,
                        const control::PolicySpec &spec,
                        control::PolicySpec &canon,
                        std::string &canonBench,
                        const control::Policy *&policy) const;
    /** Canonicalize a chip cell — co-schedule, tile policy (must be
     *  tile-capable), coordinator — and build its N+1 keys.  Throws
     *  workload::SpecError on any bad part. */
    std::vector<std::string>
    resolveChip(const ChipCell &cell, control::PolicySpec &canon,
                std::vector<std::string> &tile_specs,
                chip::CoordConfig &coord,
                const control::Policy *&policy) const;
    Outcome memoize(const std::string &key,
                    const std::function<Outcome()> &compute,
                    bool *computed = nullptr);
    void store(const std::string &key, const Outcome &o);
    void loadCache();
    Metrics vsBaseline(const std::string &bench, const Outcome &o);
    std::string keyPrefix() const;

    ExpConfig cfg;
    control::PolicyContext ctx;
    std::uint64_t fingerprint;
    std::array<Shard, NUM_SHARDS> shards;
    mutable std::mutex canonBenchM;
    mutable std::unordered_map<std::string, std::string>
        canonBenchMemo;
    std::mutex ckptM;
    std::unordered_map<
        std::string,
        std::shared_future<std::shared_ptr<const sim::CheckpointSet>>>
        ckptMemo;
    std::unique_ptr<CacheWriter> writer;
    std::size_t nLoaded = 0;
    std::size_t nRejected = 0;
    std::atomic<std::uint64_t> nHits{0};
    std::atomic<std::uint64_t> nMisses{0};
};

} // namespace mcd::exp

#endif // MCD_EXP_EXPERIMENT_HH
