/**
 * @file
 * Experiment harness shared by the benchmark binaries: runs each
 * benchmark under the MCD baseline, the profile-driven pipeline, the
 * off-line oracle, the on-line attack/decay controller and the
 * global-DVS baseline, computing the paper's metrics (always
 * relative to the MCD baseline, Section 4.1).
 *
 * Results are memoized in an optional CSV cache file keyed by
 * benchmark/policy/parameters so that the per-figure bench binaries
 * do not recompute shared sweeps.
 */

#ifndef MCD_EXP_EXPERIMENT_HH
#define MCD_EXP_EXPERIMENT_HH

#include <map>
#include <string>

#include "core/pipeline.hh"
#include "power/power.hh"
#include "sim/processor.hh"
#include "util/stats.hh"

namespace mcd::exp
{

/** Harness configuration shared by all experiments. */
struct ExpConfig
{
    sim::SimConfig sim;
    power::PowerConfig power;
    /** Production-run window (instructions). */
    std::uint64_t productionWindow = 150'000;
    /** Analysis-run window for the profile pipeline. */
    std::uint64_t analysisWindow = 150'000;
    /** Profiling cap for phase 1 (functional run). */
    std::uint64_t profileMaxInstrs = 4'000'000;
    /** Default slowdown threshold d (percent). */
    double d = 5.0;
    /** Off-line oracle reconfiguration interval. */
    std::uint64_t offlineInterval = 10'000;
    /** On-line controller aggressiveness at the default point. */
    double onlineAggressiveness = 1.0;
    /** CSV memo file; empty = in-memory only. */
    std::string cacheFile;

    ExpConfig()
    {
        // Our instruction windows are ~1000x shorter than the
        // paper's; scale the DVFS transition rate so ramps keep a
        // comparable (small but visible) share of a reconfigurable
        // phase.  See docs/ARCHITECTURE.md, "Time-scaled DVFS ramp".
        sim.rampNsPerMhz = 2.2;
    }
};

/** Result of one policy run on one benchmark. */
struct Outcome
{
    double timePs = 0.0;
    double energyNj = 0.0;
    Metrics metrics;  ///< vs the MCD baseline
    double reconfigs = 0.0;
    double overheadCycles = 0.0;
    double feCycles = 0.0;
    // profile-policy extras
    double dynReconfigPoints = 0.0;
    double dynInstrPoints = 0.0;
    double staticReconfigPoints = 0.0;
    double staticInstrPoints = 0.0;
    double tableBytes = 0.0;
    // global-policy extras
    double globalFreq = 0.0;
};

/**
 * Memoizing experiment runner.
 */
class Runner
{
  public:
    explicit Runner(const ExpConfig &cfg = ExpConfig());

    /** MCD baseline: all domains at maximum frequency. */
    Outcome baseline(const std::string &bench);

    /** Profile-driven reconfiguration (trained on the training set,
     *  measured on the reference set). */
    Outcome profile(const std::string &bench, core::ContextMode mode,
                    double d);

    /** Off-line perfect-knowledge oracle at threshold d. */
    Outcome offline(const std::string &bench, double d);

    /** On-line attack/decay at the given aggressiveness. */
    Outcome online(const std::string &bench, double aggressiveness);

    /** Global single-clock DVS matched to the off-line run time at
     *  the harness's default d. */
    Outcome global(const std::string &bench);

    const ExpConfig &config() const { return cfg; }

  private:
    Outcome *lookup(const std::string &key);
    void store(const std::string &key, const Outcome &o);
    void loadCache();
    void appendCache(const std::string &key, const Outcome &o);
    Metrics vsBaseline(const std::string &bench, const Outcome &o);

    ExpConfig cfg;
    std::map<std::string, Outcome> memo;
};

} // namespace mcd::exp

#endif // MCD_EXP_EXPERIMENT_HH
