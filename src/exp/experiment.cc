#include "exp/experiment.hh"

#include <charconv>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <locale>
#include <sstream>
#include <thread>

#include "control/globaldvs.hh"
#include "control/offline.hh"
#include "control/online.hh"
#include "util/logging.hh"
#include "util/pool.hh"
#include "workload/suite.hh"

namespace mcd::exp
{

namespace
{

/** Cache schema version: bump when simulation physics or the key or
 *  line format change.  v2: config fingerprint in every key, strict
 *  line validation. */
constexpr int CACHE_VERSION = 2;

/** Numeric payload fields per cache line (after the key). */
constexpr std::size_t NUM_LINE_FIELDS = 11;

/** FNV-1a accumulator for configFingerprint(). */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ULL;

    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i)
            h = (h ^ b[i]) * 1099511628211ULL;
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof(v));
    }

    void
    i64(long long v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f64(double v)
    {
        std::uint64_t b;
        static_assert(sizeof(b) == sizeof(v));
        std::memcpy(&b, &v, sizeof(b));
        u64(b);
    }
};

std::string
outcomeToLine(const std::string &key, const Outcome &o)
{
    // The C locale, enforced via classic(), guarantees '.' decimal
    // points no matter what the embedding application did with
    // setlocale(); precision 17 round-trips doubles exactly.
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(17);
    os << key;
    const double fields[NUM_LINE_FIELDS] = {
        o.timePs, o.energyNj, o.reconfigs, o.overheadCycles,
        o.feCycles, o.dynReconfigPoints, o.dynInstrPoints,
        o.staticReconfigPoints, o.staticInstrPoints, o.tableBytes,
        o.globalFreq,
    };
    for (double f : fields)
        os << ',' << f;
    return os.str();
}

/** Locale-independent fixed-point format for cache-key parameters
 *  ('.' decimal separator no matter the global locale, which plain
 *  strprintf %f would follow). */
std::string
fmtFixed(double v, int prec)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << v;
    return os.str();
}

/** Locale-independent full-string double parse. */
bool
parseDouble(const std::string &cell, double &v)
{
    if (cell.empty())
        return false;
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    const char *first = cell.data();
    const char *last = first + cell.size();
    auto [ptr, ec] = std::from_chars(first, last, v);
    return ec == std::errc() && ptr == last;
#else
    // Fallback for standard libraries without floating-point
    // from_chars (libc++ < 20): classic-locale stream extraction,
    // rejecting partial consumption and leading whitespace.
    std::istringstream is(cell);
    is.imbue(std::locale::classic());
    is >> std::noskipws >> v;
    return !is.fail() && is.eof();
#endif
}

/**
 * Parse one cache line.  Rejects (returns false on) anything that is
 * not exactly key + NUM_LINE_FIELDS well-formed numbers: truncated
 * lines from interrupted runs, extra fields, non-numeric cells
 * (e.g. locale-mangled decimals).
 */
bool
lineToOutcome(const std::string &line, std::string &key, Outcome &o)
{
    std::vector<std::string> cells;
    std::size_t start = 0;
    for (;;) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            cells.push_back(line.substr(start));
            break;
        }
        cells.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
    if (cells.size() != 1 + NUM_LINE_FIELDS || cells[0].empty())
        return false;
    key = cells[0];
    double *fields[NUM_LINE_FIELDS] = {
        &o.timePs, &o.energyNj, &o.reconfigs, &o.overheadCycles,
        &o.feCycles, &o.dynReconfigPoints, &o.dynInstrPoints,
        &o.staticReconfigPoints, &o.staticInstrPoints, &o.tableBytes,
        &o.globalFreq,
    };
    for (std::size_t i = 0; i < NUM_LINE_FIELDS; ++i)
        if (!parseDouble(cells[1 + i], *fields[i]))
            return false;
    return true;
}

} // namespace

std::uint64_t
configFingerprint(const ExpConfig &cfg)
{
    // Every SimConfig/PowerConfig knob, plus the profiling cap; the
    // remaining ExpConfig parameters (windows, thresholds, intervals,
    // aggressiveness) are spelled out in the cache-key text itself.
    // Keep the field list in sync with sim/config.hh and
    // power/power.hh.
    Fnv f;
    const sim::SimConfig &s = cfg.sim;
    f.i64(s.fetchWidth);
    f.i64(s.dispatchWidth);
    f.i64(s.retireWidth);
    f.i64(s.robSize);
    f.i64(s.intIqSize);
    f.i64(s.fpIqSize);
    f.i64(s.lsqSize);
    f.i64(s.intRegs);
    f.i64(s.fpRegs);
    f.i64(s.intAlus);
    f.i64(s.intMulDiv);
    f.i64(s.fpAlus);
    f.i64(s.fpMulDiv);
    f.i64(s.memPorts);
    f.i64(s.intIssueWidth);
    f.i64(s.fpIssueWidth);
    f.i64(s.memIssueWidth);
    f.i64(s.latIntAlu);
    f.i64(s.latIntMul);
    f.i64(s.latIntDiv);
    f.i64(s.latFpAdd);
    f.i64(s.latFpMul);
    f.i64(s.latFpDiv);
    f.i64(s.latFpSqrt);
    f.i64(s.decodeDepth);
    f.i64(s.mispredictPenalty);
    f.i64(s.fetchQueueSize);
    f.u64(s.lineSize);
    f.u64(s.l1iSizeKb);
    f.i64(s.l1iWays);
    f.u64(s.l1dSizeKb);
    f.i64(s.l1dWays);
    f.i64(s.l1Latency);
    f.u64(s.l2SizeKb);
    f.i64(s.l2Ways);
    f.i64(s.l2Latency);
    f.u64(s.memLatencyPs);
    f.u64(s.memBusPs);
    f.f64(s.maxMhz);
    f.f64(s.minMhz);
    f.f64(s.maxVolt);
    f.f64(s.minVolt);
    f.f64(s.rampNsPerMhz);
    f.u64(s.jitterPs);
    f.f64(s.syncWindowFrac);
    f.u64(s.singleClock ? 1 : 0);
    f.u64(s.jitterSeed);
    f.u64(s.watchdogPs);

    const power::PowerConfig &p = cfg.power;
    for (double v : p.unitPj)
        f.f64(v);
    for (double v : p.clockPj)
        f.f64(v);
    for (double v : p.leakW)
        f.f64(v);
    f.f64(p.vMax);
    for (double v : p.domainWeight)
        f.f64(v);

    f.u64(cfg.profileMaxInstrs);
    return f.h;
}

/**
 * Single writer thread owning the cache CSV: one ofstream kept open
 * for the Runner's lifetime, fed by a queue, flushed on destruction.
 * store() from any number of sweep threads just enqueues a line.  An
 * unwritable path or a mid-run write failure is reported once via
 * warn() and disables further appends (the in-memory memo still
 * works).
 */
class Runner::CacheWriter
{
  public:
    explicit CacheWriter(const std::string &path)
    {
        out.imbue(std::locale::classic());
        out.open(path, std::ios::app);
        if (!out) {
            warn("result cache '%s' is not writable; "
                 "outcomes will not be persisted",
                 path.c_str());
            failed = true;
            return;
        }
        thr = std::thread(&CacheWriter::run, this);
    }

    ~CacheWriter()
    {
        if (!thr.joinable())
            return;
        {
            std::lock_guard<std::mutex> l(m);
            stop = true;
        }
        cv.notify_all();
        thr.join();
        out.flush();
    }

    void
    append(std::string line)
    {
        {
            std::lock_guard<std::mutex> l(m);
            if (failed)
                return;
            q.push_back(std::move(line));
        }
        cv.notify_one();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> l(m);
        for (;;) {
            cv.wait(l, [this] { return stop || !q.empty(); });
            while (!q.empty() && !failed) {
                std::string line = std::move(q.front());
                q.pop_front();
                l.unlock();
                out << line << '\n';
                bool bad = out.fail();
                l.lock();
                if (bad) {
                    warn("writing to the result cache failed; "
                         "disabling further appends");
                    failed = true;
                    q.clear();
                }
            }
            if (stop)
                return;
        }
    }

    std::ofstream out;
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::string> q;
    std::thread thr;
    bool stop = false;
    bool failed = false;
};

SweepCell
SweepCell::baseline(std::string bench)
{
    SweepCell c;
    c.bench = std::move(bench);
    c.policy = Policy::Baseline;
    return c;
}

SweepCell
SweepCell::profile(std::string bench, core::ContextMode mode, double d)
{
    SweepCell c;
    c.bench = std::move(bench);
    c.policy = Policy::Profile;
    c.mode = mode;
    c.d = d;
    return c;
}

SweepCell
SweepCell::offline(std::string bench, double d)
{
    SweepCell c;
    c.bench = std::move(bench);
    c.policy = Policy::Offline;
    c.d = d;
    return c;
}

SweepCell
SweepCell::online(std::string bench, double aggressiveness)
{
    SweepCell c;
    c.bench = std::move(bench);
    c.policy = Policy::Online;
    c.aggressiveness = aggressiveness;
    return c;
}

SweepCell
SweepCell::global(std::string bench)
{
    SweepCell c;
    c.bench = std::move(bench);
    c.policy = Policy::Global;
    return c;
}

Runner::Runner(const ExpConfig &c)
    : cfg(c), fingerprint(configFingerprint(c))
{
    loadCache();
    if (!cfg.cacheFile.empty())
        writer = std::make_unique<CacheWriter>(cfg.cacheFile);
}

Runner::~Runner() = default;

std::string
Runner::keyPrefix() const
{
    return strprintf("v%d|c%016llx", CACHE_VERSION,
                     (unsigned long long)fingerprint);
}

void
Runner::loadCache()
{
    if (cfg.cacheFile.empty())
        return;
    std::ifstream in;
    in.imbue(std::locale::classic());
    in.open(cfg.cacheFile);
    if (!in)
        return;
    constexpr std::size_t MAX_LINE_WARNINGS = 5;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string key;
        Outcome o;
        if (!lineToOutcome(line, key, o)) {
            ++nRejected;
            if (nRejected <= MAX_LINE_WARNINGS)
                warn("cache %s:%zu: malformed line ignored",
                     cfg.cacheFile.c_str(), lineno);
            continue;
        }
        std::promise<Outcome> p;
        p.set_value(o);
        Shard &s = shardFor(key);
        // Last occurrence wins, as with the old std::map overwrite.
        s.map[key] = p.get_future().share();
        ++nLoaded;
    }
    if (nRejected > MAX_LINE_WARNINGS)
        warn("cache %s: %zu malformed lines ignored in total",
             cfg.cacheFile.c_str(), nRejected);
}

Runner::Shard &
Runner::shardFor(const std::string &key)
{
    return shards[std::hash<std::string>{}(key) % NUM_SHARDS];
}

void
Runner::store(const std::string &key, const Outcome &o)
{
    if (writer)
        writer->append(outcomeToLine(key, o));
}

Outcome
Runner::memoize(const std::string &key,
                const std::function<Outcome()> &compute)
{
    Shard &s = shardFor(key);
    std::promise<Outcome> prom;
    std::shared_future<Outcome> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> l(s.m);
        auto it = s.map.find(key);
        if (it != s.map.end()) {
            fut = it->second;
        } else {
            fut = prom.get_future().share();
            s.map.emplace(key, fut);
            owner = true;
        }
    }
    if (!owner)
        return fut.get();
    try {
        Outcome o = compute();
        prom.set_value(o);
        store(key, o);
        return o;
    } catch (...) {
        // Unblock concurrent waiters with the exception, but drop
        // the entry so a later request recomputes instead of
        // rethrowing a stale failure forever.
        prom.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> l(s.m);
            s.map.erase(key);
        }
        throw;
    }
}

Metrics
Runner::vsBaseline(const std::string &bench, const Outcome &o)
{
    Outcome base = baseline(bench);
    return computeMetrics(o.timePs, o.energyNj, base.timePs,
                          base.energyNj);
}

std::vector<Outcome>
Runner::runSweep(const std::vector<SweepCell> &cells, unsigned jobs)
{
    std::vector<Outcome> out(cells.size());
    util::parallelFor(cells.size(), jobs ? jobs : cfg.jobs,
                      [&](std::size_t i) { out[i] = run(cells[i]); });
    return out;
}

Outcome
Runner::run(const SweepCell &cell)
{
    switch (cell.policy) {
      case Policy::Baseline:
        return baseline(cell.bench);
      case Policy::Profile:
        return profile(cell.bench, cell.mode, cell.d);
      case Policy::Offline:
        return offline(cell.bench, cell.d);
      case Policy::Online:
        return online(cell.bench, cell.aggressiveness);
      case Policy::Global:
        return global(cell.bench);
    }
    panic("unknown sweep policy %d", static_cast<int>(cell.policy));
}

Outcome
Runner::baseline(const std::string &bench)
{
    std::string key =
        strprintf("%s|base|%s|w%llu", keyPrefix().c_str(),
                  bench.c_str(),
                  (unsigned long long)cfg.productionWindow);
    return memoize(key, [&] {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        sim::Processor proc(cfg.sim, cfg.power, bm.program, bm.ref);
        sim::RunResult r = proc.run(cfg.productionWindow);
        Outcome o;
        o.timePs = static_cast<double>(r.timePs);
        o.energyNj = r.chipEnergyNj;
        return o;
    });
}

Outcome
Runner::profile(const std::string &bench, core::ContextMode mode,
                double d)
{
    std::string key = strprintf(
        "%s|profile|%s|%s|d%s|w%llu|a%llu", keyPrefix().c_str(),
        bench.c_str(), core::contextModeName(mode),
        fmtFixed(d, 3).c_str(),
        (unsigned long long)cfg.productionWindow,
        (unsigned long long)cfg.analysisWindow);
    Outcome o = memoize(key, [&] {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        core::PipelineConfig pc;
        pc.mode = mode;
        pc.slowdownPct = d;
        pc.profile.maxInstrs = cfg.profileMaxInstrs;
        pc.analysisWindow = cfg.analysisWindow;
        core::ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, cfg.sim, cfg.power);
        core::RuntimeStats rt;
        sim::RunResult r = pipe.runProduction(
            bm.ref, cfg.sim, cfg.power, cfg.productionWindow, &rt);
        Outcome res;
        res.timePs = static_cast<double>(r.timePs);
        res.energyNj = r.chipEnergyNj;
        res.reconfigs = static_cast<double>(r.reconfigs);
        res.overheadCycles = static_cast<double>(r.overheadCycles);
        res.feCycles = static_cast<double>(r.feCycles);
        res.dynReconfigPoints =
            static_cast<double>(rt.dynReconfigPoints);
        res.dynInstrPoints = static_cast<double>(rt.dynInstrPoints);
        res.staticReconfigPoints = pipe.plan().staticReconfigPoints;
        res.staticInstrPoints = pipe.plan().staticInstrPoints;
        res.tableBytes =
            static_cast<double>(pipe.plan().nextNodeTableBytes +
                                pipe.plan().freqTableBytes);
        return res;
    });
    o.metrics = vsBaseline(bench, o);
    return o;
}

Outcome
Runner::offline(const std::string &bench, double d)
{
    std::string key = strprintf(
        "%s|offline|%s|d%s|w%llu|i%llu", keyPrefix().c_str(),
        bench.c_str(), fmtFixed(d, 3).c_str(),
        (unsigned long long)cfg.productionWindow,
        (unsigned long long)cfg.offlineInterval);
    Outcome o = memoize(key, [&] {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        control::OfflineConfig oc;
        oc.intervalInstrs = cfg.offlineInterval;
        oc.slowdownPct = d;
        sim::RunResult r =
            control::offlineRun(oc, bm.program, bm.ref, cfg.sim,
                                cfg.power, cfg.productionWindow);
        Outcome res;
        res.timePs = static_cast<double>(r.timePs);
        res.energyNj = r.chipEnergyNj;
        res.reconfigs = static_cast<double>(r.reconfigs);
        return res;
    });
    o.metrics = vsBaseline(bench, o);
    return o;
}

Outcome
Runner::online(const std::string &bench, double aggressiveness)
{
    std::string key = strprintf(
        "%s|online|%s|a%s|w%llu", keyPrefix().c_str(),
        bench.c_str(), fmtFixed(aggressiveness, 3).c_str(),
        (unsigned long long)cfg.productionWindow);
    Outcome o = memoize(key, [&] {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        control::OnlineConfig oc;
        oc.aggressiveness = aggressiveness;
        oc.intIqSize = cfg.sim.intIqSize;
        oc.fpIqSize = cfg.sim.fpIqSize;
        oc.lsqSize = cfg.sim.lsqSize;
        oc.robSize = cfg.sim.robSize;
        control::AttackDecayController ctl(oc, cfg.sim);
        sim::Processor proc(cfg.sim, cfg.power, bm.program, bm.ref);
        proc.setIntervalHook(&ctl, oc.intervalInstrs);
        sim::RunResult r = proc.run(cfg.productionWindow);
        Outcome res;
        res.timePs = static_cast<double>(r.timePs);
        res.energyNj = r.chipEnergyNj;
        res.reconfigs = static_cast<double>(r.reconfigs);
        return res;
    });
    o.metrics = vsBaseline(bench, o);
    return o;
}

Outcome
Runner::global(const std::string &bench)
{
    // The interval is part of the key because the off-line run this
    // policy matches (below) depends on it.
    std::string key =
        strprintf("%s|global|%s|d%s|w%llu|i%llu", keyPrefix().c_str(),
                  bench.c_str(), fmtFixed(cfg.d, 3).c_str(),
                  (unsigned long long)cfg.productionWindow,
                  (unsigned long long)cfg.offlineInterval);
    Outcome o = memoize(key, [&] {
        // Target: match the off-line algorithm's run time
        // (Section 4.1).
        Outcome off = offline(bench, cfg.d);
        workload::Benchmark bm = workload::makeBenchmark(bench);
        control::GlobalDvsResult g = control::globalDvsMatch(
            bm.program, bm.ref, cfg.sim, cfg.power,
            cfg.productionWindow, static_cast<Tick>(off.timePs));
        Outcome res;
        res.timePs = static_cast<double>(g.run.timePs);
        res.energyNj = g.run.chipEnergyNj;
        res.globalFreq = g.freq;
        return res;
    });
    o.metrics = vsBaseline(bench, o);
    return o;
}

} // namespace mcd::exp
