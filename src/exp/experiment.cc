#include "exp/experiment.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "control/globaldvs.hh"
#include "control/offline.hh"
#include "control/online.hh"
#include "util/logging.hh"
#include "workload/suite.hh"

namespace mcd::exp
{

namespace
{

/** Cache schema version: bump when simulation physics change. */
constexpr int CACHE_VERSION = 1;

std::string
outcomeToLine(const std::string &key, const Outcome &o)
{
    return strprintf(
        "%s,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
        "%.17g,%.17g",
        key.c_str(), o.timePs, o.energyNj, o.reconfigs,
        o.overheadCycles, o.feCycles, o.dynReconfigPoints,
        o.dynInstrPoints, o.staticReconfigPoints, o.staticInstrPoints,
        o.tableBytes, o.globalFreq);
}

bool
lineToOutcome(const std::string &line, std::string &key, Outcome &o)
{
    std::istringstream is(line);
    std::string cell;
    if (!std::getline(is, key, ','))
        return false;
    double *fields[] = {
        &o.timePs, &o.energyNj, &o.reconfigs, &o.overheadCycles,
        &o.feCycles, &o.dynReconfigPoints, &o.dynInstrPoints,
        &o.staticReconfigPoints, &o.staticInstrPoints, &o.tableBytes,
        &o.globalFreq,
    };
    for (double *f : fields) {
        if (!std::getline(is, cell, ','))
            return false;
        *f = std::stod(cell);
    }
    return true;
}

} // namespace

Runner::Runner(const ExpConfig &c)
    : cfg(c)
{
    loadCache();
}

void
Runner::loadCache()
{
    if (cfg.cacheFile.empty())
        return;
    std::ifstream in(cfg.cacheFile);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        std::string key;
        Outcome o;
        if (lineToOutcome(line, key, o))
            memo[key] = o;
    }
}

void
Runner::appendCache(const std::string &key, const Outcome &o)
{
    if (cfg.cacheFile.empty())
        return;
    std::ofstream out(cfg.cacheFile, std::ios::app);
    out << outcomeToLine(key, o) << '\n';
}

Outcome *
Runner::lookup(const std::string &key)
{
    auto it = memo.find(key);
    return it == memo.end() ? nullptr : &it->second;
}

void
Runner::store(const std::string &key, const Outcome &o)
{
    memo[key] = o;
    appendCache(key, o);
}

Metrics
Runner::vsBaseline(const std::string &bench, const Outcome &o)
{
    Outcome base = baseline(bench);
    return computeMetrics(o.timePs, o.energyNj, base.timePs,
                          base.energyNj);
}

Outcome
Runner::baseline(const std::string &bench)
{
    std::string key = strprintf("v%d|base|%s|w%llu", CACHE_VERSION,
                                bench.c_str(),
                                (unsigned long long)cfg.productionWindow);
    if (Outcome *hit = lookup(key))
        return *hit;
    workload::Benchmark bm = workload::makeBenchmark(bench);
    sim::Processor proc(cfg.sim, cfg.power, bm.program, bm.ref);
    sim::RunResult r = proc.run(cfg.productionWindow);
    Outcome o;
    o.timePs = static_cast<double>(r.timePs);
    o.energyNj = r.chipEnergyNj;
    store(key, o);
    return o;
}

Outcome
Runner::profile(const std::string &bench, core::ContextMode mode,
                double d)
{
    std::string key = strprintf(
        "v%d|profile|%s|%s|d%.3f|w%llu|a%llu", CACHE_VERSION,
        bench.c_str(), core::contextModeName(mode), d,
        (unsigned long long)cfg.productionWindow,
        (unsigned long long)cfg.analysisWindow);
    if (Outcome *hit = lookup(key)) {
        Outcome o = *hit;
        o.metrics = vsBaseline(bench, o);
        return o;
    }
    workload::Benchmark bm = workload::makeBenchmark(bench);
    core::PipelineConfig pc;
    pc.mode = mode;
    pc.slowdownPct = d;
    pc.profile.maxInstrs = cfg.profileMaxInstrs;
    pc.analysisWindow = cfg.analysisWindow;
    core::ProfilePipeline pipe(bm.program, pc);
    pipe.train(bm.train, cfg.sim, cfg.power);
    core::RuntimeStats rt;
    sim::RunResult r = pipe.runProduction(bm.ref, cfg.sim, cfg.power,
                                          cfg.productionWindow, &rt);
    Outcome o;
    o.timePs = static_cast<double>(r.timePs);
    o.energyNj = r.chipEnergyNj;
    o.reconfigs = static_cast<double>(r.reconfigs);
    o.overheadCycles = static_cast<double>(r.overheadCycles);
    o.feCycles = static_cast<double>(r.feCycles);
    o.dynReconfigPoints = static_cast<double>(rt.dynReconfigPoints);
    o.dynInstrPoints = static_cast<double>(rt.dynInstrPoints);
    o.staticReconfigPoints = pipe.plan().staticReconfigPoints;
    o.staticInstrPoints = pipe.plan().staticInstrPoints;
    o.tableBytes = static_cast<double>(pipe.plan().nextNodeTableBytes +
                                       pipe.plan().freqTableBytes);
    store(key, o);
    o.metrics = vsBaseline(bench, o);
    return o;
}

Outcome
Runner::offline(const std::string &bench, double d)
{
    std::string key = strprintf("v%d|offline|%s|d%.3f|w%llu|i%llu",
                                CACHE_VERSION, bench.c_str(), d,
                                (unsigned long long)cfg.productionWindow,
                                (unsigned long long)cfg.offlineInterval);
    if (Outcome *hit = lookup(key)) {
        Outcome o = *hit;
        o.metrics = vsBaseline(bench, o);
        return o;
    }
    workload::Benchmark bm = workload::makeBenchmark(bench);
    control::OfflineConfig oc;
    oc.intervalInstrs = cfg.offlineInterval;
    oc.slowdownPct = d;
    sim::RunResult r =
        control::offlineRun(oc, bm.program, bm.ref, cfg.sim, cfg.power,
                            cfg.productionWindow);
    Outcome o;
    o.timePs = static_cast<double>(r.timePs);
    o.energyNj = r.chipEnergyNj;
    o.reconfigs = static_cast<double>(r.reconfigs);
    store(key, o);
    o.metrics = vsBaseline(bench, o);
    return o;
}

Outcome
Runner::online(const std::string &bench, double aggressiveness)
{
    std::string key = strprintf("v%d|online|%s|a%.3f|w%llu",
                                CACHE_VERSION, bench.c_str(),
                                aggressiveness,
                                (unsigned long long)cfg.productionWindow);
    if (Outcome *hit = lookup(key)) {
        Outcome o = *hit;
        o.metrics = vsBaseline(bench, o);
        return o;
    }
    workload::Benchmark bm = workload::makeBenchmark(bench);
    control::OnlineConfig oc;
    oc.aggressiveness = aggressiveness;
    oc.intIqSize = cfg.sim.intIqSize;
    oc.fpIqSize = cfg.sim.fpIqSize;
    oc.lsqSize = cfg.sim.lsqSize;
    oc.robSize = cfg.sim.robSize;
    control::AttackDecayController ctl(oc, cfg.sim);
    sim::Processor proc(cfg.sim, cfg.power, bm.program, bm.ref);
    proc.setIntervalHook(&ctl, oc.intervalInstrs);
    sim::RunResult r = proc.run(cfg.productionWindow);
    Outcome o;
    o.timePs = static_cast<double>(r.timePs);
    o.energyNj = r.chipEnergyNj;
    o.reconfigs = static_cast<double>(r.reconfigs);
    store(key, o);
    o.metrics = vsBaseline(bench, o);
    return o;
}

Outcome
Runner::global(const std::string &bench)
{
    std::string key = strprintf("v%d|global|%s|d%.3f|w%llu",
                                CACHE_VERSION, bench.c_str(), cfg.d,
                                (unsigned long long)cfg.productionWindow);
    if (Outcome *hit = lookup(key)) {
        Outcome o = *hit;
        o.metrics = vsBaseline(bench, o);
        return o;
    }
    // Target: match the off-line algorithm's run time (Section 4.1).
    Outcome off = offline(bench, cfg.d);
    workload::Benchmark bm = workload::makeBenchmark(bench);
    control::GlobalDvsResult g = control::globalDvsMatch(
        bm.program, bm.ref, cfg.sim, cfg.power, cfg.productionWindow,
        static_cast<Tick>(off.timePs));
    Outcome o;
    o.timePs = static_cast<double>(g.run.timePs);
    o.energyNj = g.run.chipEnergyNj;
    o.globalFreq = g.freq;
    store(key, o);
    o.metrics = vsBaseline(bench, o);
    return o;
}

} // namespace mcd::exp
