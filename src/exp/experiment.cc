#include "exp/experiment.hh"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <thread>

#include "chip/multi.hh"
#include "sim/checkpoint.hh"
#include "util/logging.hh"
#include "util/pool.hh"
#include "util/text.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"
#include "workload/suite.hh"

namespace mcd::exp
{

namespace
{

/** Cache schema version: bump when simulation physics or the key or
 *  line format change.  v3: keys carry the canonical PolicySpec
 *  string (policy:key=value,...) instead of per-policy ad-hoc
 *  fragments.  v4: SimConfig::fastForward joined the fingerprint
 *  (energy totals differ between kernel modes in their last bits,
 *  so outcomes from the two modes must never share a cache line).
 *  v5: the bench field is the canonical WorkloadSpec string from
 *  WorkloadRegistry::canonicalize() — bare suite names are
 *  unchanged, but generated (`gen:...`) and authored (`prog:...`)
 *  workloads now cache under a canonical, parameter-complete
 *  identity.  v6: SimConfig::watchdogPs left the fingerprint — a
 *  tripped watchdog aborts the process and never produces an
 *  outcome, so the knob cannot shape a cached line, and hashing it
 *  split the cache for a pure safety setting.  The fingerprint
 *  field list is now machine-checked: tools/mcd_lint.py rule
 *  `fingerprint-complete` walks the config structs, and rule
 *  `cache-version-pin` pins the hashed-field digest to this
 *  version (tools/mcd_lint_pins.json) so any fingerprint-affecting
 *  diff must bump CACHE_VERSION.  v7: the chip::ChipConfig uncore
 *  knobs joined the fingerprint (chip sweep cells — `tile=` keys —
 *  depend on the shared L2-port/DRAM servers and the coordinator
 *  interval; single-core keys pay a one-time re-shuffle).  v8: the
 *  sim::SamplingConfig knobs joined the fingerprint and the line
 *  payload grew the two CI fields (timeCiPs, energyCiNj) — sampled
 *  and exact cells must never exchange outcomes, and sampled lines
 *  must round-trip their confidence intervals.  v9: the
 *  control::LearnedConfig training knobs joined the fingerprint
 *  (learned outcomes are a function of the frozen weights, which
 *  are a function of the training regime; learned cells trained
 *  under different windows/passes must never share cache lines).
 *  (History table: docs/ARCHITECTURE.md, layer 7.) */
constexpr int CACHE_VERSION = 9;

/** Numeric payload fields per cache line (after the key). */
constexpr std::size_t NUM_LINE_FIELDS = 13;

std::string
outcomeToLine(const std::string &key, const Outcome &o)
{
    // util::fmtDouble17 is the sanctioned double formatter for
    // persisted lines: C-locale '.' decimal points regardless of
    // setlocale(), 17 significant digits so values round-trip
    // exactly.
    std::string line = key;
    const double fields[NUM_LINE_FIELDS] = {
        o.timePs, o.energyNj, o.reconfigs, o.overheadCycles,
        o.feCycles, o.dynReconfigPoints, o.dynInstrPoints,
        o.staticReconfigPoints, o.staticInstrPoints, o.tableBytes,
        o.globalFreq, o.timeCiPs, o.energyCiNj,
    };
    for (double f : fields) {
        line += ',';
        line += util::fmtDouble17(f);
    }
    return line;
}

/**
 * Parse one cache line.  The key is a canonical spec key and may
 * itself contain commas (`...|profile:mode=LF,d=10.000|...`), so the
 * payload is taken as the *last* NUM_LINE_FIELDS comma-separated
 * cells and everything before them is the key.  Rejects (returns
 * false on) anything without a non-empty key and exactly
 * NUM_LINE_FIELDS well-formed trailing numbers: truncated lines from
 * interrupted runs, non-numeric cells (e.g. locale-mangled
 * decimals).
 */
bool
lineToOutcome(const std::string &line, std::string &key, Outcome &o)
{
    std::size_t end = line.size();
    double *fields[NUM_LINE_FIELDS] = {
        &o.timePs, &o.energyNj, &o.reconfigs, &o.overheadCycles,
        &o.feCycles, &o.dynReconfigPoints, &o.dynInstrPoints,
        &o.staticReconfigPoints, &o.staticInstrPoints, &o.tableBytes,
        &o.globalFreq, &o.timeCiPs, &o.energyCiNj,
    };
    for (std::size_t i = NUM_LINE_FIELDS; i-- > 0;) {
        std::size_t comma = line.rfind(',', end == 0 ? 0 : end - 1);
        if (comma == std::string::npos)
            return false;
        if (!control::parseDouble(
                line.substr(comma + 1, end - comma - 1), *fields[i]))
            return false;
        end = comma;
    }
    if (end == 0)
        return false;
    key = line.substr(0, end);
    return true;
}

} // namespace

std::uint64_t
configFingerprint(const ExpConfig &cfg)
{
    /** FNV-1a accumulator. */
    struct Fnv
    {
        std::uint64_t h = 1469598103934665603ULL;

        void
        bytes(const void *p, std::size_t n)
        {
            const auto *b = static_cast<const unsigned char *>(p);
            for (std::size_t i = 0; i < n; ++i)
                h = (h ^ b[i]) * 1099511628211ULL;
        }

        void
        u64(std::uint64_t v)
        {
            bytes(&v, sizeof(v));
        }

        void
        i64(long long v)
        {
            u64(static_cast<std::uint64_t>(v));
        }

        void
        f64(double v)
        {
            std::uint64_t b;
            static_assert(sizeof(b) == sizeof(v));
            std::memcpy(&b, &v, sizeof(b));
            u64(b);
        }
    };

    // Every SimConfig/PowerConfig knob, plus the profiling cap; the
    // remaining ExpConfig parameters (windows, intervals) are
    // spelled out in the cache-key text itself via the policies'
    // contextKey() fragments.  The field list is machine-checked
    // against sim/config.hh, power/power.hh and exp/experiment.hh
    // by tools/mcd_lint.py (rule `fingerprint-complete`; fields
    // deliberately left out carry an allow annotation at their
    // declaration), and its digest is pinned to CACHE_VERSION by
    // rule `cache-version-pin`.
    Fnv f;
    const sim::SimConfig &s = cfg.sim;
    f.i64(s.fetchWidth);
    f.i64(s.dispatchWidth);
    f.i64(s.retireWidth);
    f.i64(s.robSize);
    f.i64(s.intIqSize);
    f.i64(s.fpIqSize);
    f.i64(s.lsqSize);
    f.i64(s.intRegs);
    f.i64(s.fpRegs);
    f.i64(s.intAlus);
    f.i64(s.intMulDiv);
    f.i64(s.fpAlus);
    f.i64(s.fpMulDiv);
    f.i64(s.memPorts);
    f.i64(s.intIssueWidth);
    f.i64(s.fpIssueWidth);
    f.i64(s.memIssueWidth);
    f.i64(s.latIntAlu);
    f.i64(s.latIntMul);
    f.i64(s.latIntDiv);
    f.i64(s.latFpAdd);
    f.i64(s.latFpMul);
    f.i64(s.latFpDiv);
    f.i64(s.latFpSqrt);
    f.i64(s.decodeDepth);
    f.i64(s.mispredictPenalty);
    f.i64(s.fetchQueueSize);
    f.u64(s.lineSize);
    f.u64(s.l1iSizeKb);
    f.i64(s.l1iWays);
    f.u64(s.l1dSizeKb);
    f.i64(s.l1dWays);
    f.i64(s.l1Latency);
    f.u64(s.l2SizeKb);
    f.i64(s.l2Ways);
    f.i64(s.l2Latency);
    f.u64(s.memLatencyPs);
    f.u64(s.memBusPs);
    f.f64(s.maxMhz);
    f.f64(s.minMhz);
    f.f64(s.maxVolt);
    f.f64(s.minVolt);
    f.f64(s.rampNsPerMhz);
    f.u64(s.jitterPs);
    f.f64(s.syncWindowFrac);
    f.u64(s.singleClock ? 1 : 0);
    f.u64(s.jitterSeed);
    f.u64(s.fastForward ? 1 : 0);

    const sim::SamplingConfig &sp = s.sampling;
    f.u64(static_cast<std::uint64_t>(sp.mode));
    f.u64(sp.intervalInstrs);
    f.u64(sp.sampleInstrs);
    f.u64(sp.warmupInstrs);
    f.f64(sp.ciBiasPct);

    const power::PowerConfig &p = cfg.power;
    for (double v : p.unitPj)
        f.f64(v);
    for (double v : p.clockPj)
        f.f64(v);
    for (double v : p.leakW)
        f.f64(v);
    f.f64(p.vMax);
    for (double v : p.domainWeight)
        f.f64(v);

    f.u64(cfg.profileMaxInstrs);

    const chip::ChipConfig &ch = cfg.chip;
    f.i64(ch.l2PortCycles);
    f.f64(ch.uncoreMaxMhz);
    f.f64(ch.uncoreMinMhz);
    f.u64(ch.coordIntervalPs);
    f.f64(ch.uncoreClockPj);
    f.f64(ch.uncoreLeakW);

    const control::LearnedConfig &ln = cfg.learned;
    f.u64(ln.trainWindow);
    f.u64(ln.trainPasses);
    return f.h;
}

/**
 * Single writer thread owning the cache CSV: one ofstream kept open
 * for the Runner's lifetime, fed by a queue, flushed on destruction.
 * store() from any number of sweep threads just enqueues a line.  An
 * unwritable path or a mid-run write failure is reported once via
 * warn() and disables further appends (the in-memory memo still
 * works).
 */
class Runner::CacheWriter
{
  public:
    explicit CacheWriter(const std::string &path)
    {
        // The writer only ever emits pre-formatted lines
        // (outcomeToLine routes doubles through util::fmtDouble17),
        // so the stream needs no locale fiddling of its own.
        out.open(path, std::ios::app);
        if (!out) {
            warn("result cache '%s' is not writable; "
                 "outcomes will not be persisted",
                 path.c_str());
            failed = true;
            return;
        }
        thr = std::thread(&CacheWriter::run, this);
    }

    ~CacheWriter()
    {
        if (!thr.joinable())
            return;
        {
            std::lock_guard<std::mutex> l(m);
            stop = true;
        }
        cv.notify_all();
        thr.join();
        out.flush();
    }

    void
    append(std::string line)
    {
        {
            std::lock_guard<std::mutex> l(m);
            if (failed)
                return;
            q.push_back(std::move(line));
        }
        cv.notify_one();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> l(m);
        for (;;) {
            cv.wait(l, [this] { return stop || !q.empty(); });
            while (!q.empty() && !failed) {
                std::string line = std::move(q.front());
                q.pop_front();
                l.unlock();
                out << line << '\n';
                bool bad = out.fail();
                l.lock();
                if (bad) {
                    warn("writing to the result cache failed; "
                         "disabling further appends");
                    failed = true;
                    q.clear();
                }
            }
            if (stop)
                return;
        }
    }

    std::ofstream out;
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::string> q;
    std::thread thr;
    bool stop = false;
    bool failed = false;
};

SweepCell
SweepCell::of(std::string bench, control::PolicySpec spec)
{
    SweepCell c;
    c.bench = std::move(bench);
    c.spec = std::move(spec);
    return c;
}

SweepCell
SweepCell::of(std::string bench, const std::string &spec_text)
{
    control::PolicySpec spec;
    std::string err;
    if (!control::parseSpec(spec_text, spec, err))
        fatal("%s", err.c_str());
    return of(std::move(bench), std::move(spec));
}

SweepCell
SweepCell::baseline(std::string bench)
{
    return of(std::move(bench), control::PolicySpec::of("baseline"));
}

SweepCell
SweepCell::profile(std::string bench, core::ContextMode mode, double d)
{
    return of(std::move(bench), control::PolicySpec::of("profile")
                                    .set("mode", mode)
                                    .set("d", d));
}

SweepCell
SweepCell::offline(std::string bench, double d)
{
    return of(std::move(bench),
              control::PolicySpec::of("offline").set("d", d));
}

SweepCell
SweepCell::online(std::string bench, double aggressiveness)
{
    return of(std::move(bench), control::PolicySpec::of("online")
                                    .set("aggr", aggressiveness));
}

Runner::Runner(const ExpConfig &c)
    : cfg(c), fingerprint(configFingerprint(c))
{
    ctx.sim = cfg.sim;
    ctx.power = cfg.power;
    ctx.productionWindow = cfg.productionWindow;
    ctx.analysisWindow = cfg.analysisWindow;
    ctx.profileMaxInstrs = cfg.profileMaxInstrs;
    ctx.offlineInterval = cfg.offlineInterval;
    ctx.learned = cfg.learned;
    // Cross-policy dependencies (global -> offline, metrics ->
    // baseline) resolve through the runner's memo, so shared
    // sub-runs are computed once no matter which thread or policy
    // asks first.
    ctx.evaluate = [this](const std::string &bench,
                          const control::PolicySpec &spec) {
        return run(bench, spec);
    };
    // Sampled mode: policies pull the shared per-benchmark
    // checkpoint set through the context, so every cell of a sweep
    // that runs one benchmark replays one functional walk.
    if (cfg.sim.sampling.sampled())
        ctx.checkpoints = [this](const std::string &bench) {
            return checkpointSetFor(bench);
        };
    loadCache();
    if (!cfg.cacheFile.empty())
        writer = std::make_unique<CacheWriter>(cfg.cacheFile);
}

Runner::~Runner() = default;

std::string
Runner::keyPrefix() const
{
    return strprintf("v%d|c%016llx", CACHE_VERSION,
                     (unsigned long long)fingerprint);
}

std::string
Runner::resolve(const std::string &bench,
                const control::PolicySpec &spec,
                control::PolicySpec &canon,
                std::string &canonBench,
                const control::Policy *&policy) const
{
    const control::PolicyRegistry &reg =
        control::PolicyRegistry::instance();
    canon = spec;
    std::string err;
    if (!reg.canonicalize(canon, err))
        fatal("%s", err.c_str());
    policy = reg.find(canon.policy);
    // The bench field of the key is the *canonical* workload spec:
    // `gen:seed=7,phases=4` and `gen:phases=4,seed=7` are one cell.
    // A bad spec throws workload::SpecError here — before anything
    // is simulated or memoized — and stays catchable, unlike policy
    // errors (the policy side of a cell is always built from
    // validated CLI/figure specs; workloads can arrive from cache
    // keys and user files).
    canonBench = canonicalBenchCached(bench);
    return keyPrefix() + '|' + canon.str() + '|' + canonBench +
           '|' + policy->contextKey(ctx);
}

std::string
Runner::cacheKey(const std::string &bench,
                 const control::PolicySpec &spec) const
{
    control::PolicySpec canon;
    std::string canonBench;
    const control::Policy *policy = nullptr;
    return resolve(bench, spec, canon, canonBench, policy);
}

void
Runner::loadCache()
{
    if (cfg.cacheFile.empty())
        return;
    // Lines are read whole (getline) and numbers parsed with the
    // locale-independent util::parseDouble, so the stream itself
    // performs no locale-sensitive conversions.
    std::ifstream in(cfg.cacheFile);
    if (!in)
        return;
    constexpr std::size_t MAX_LINE_WARNINGS = 5;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string key;
        Outcome o;
        if (!lineToOutcome(line, key, o)) {
            ++nRejected;
            if (nRejected <= MAX_LINE_WARNINGS)
                warn("cache %s:%zu: malformed line ignored",
                     cfg.cacheFile.c_str(), lineno);
            continue;
        }
        std::promise<Outcome> p;
        p.set_value(o);
        Shard &s = shardFor(key);
        // Last occurrence wins, as with the old std::map overwrite.
        s.map[key] = p.get_future().share();
        ++nLoaded;
    }
    if (nRejected > MAX_LINE_WARNINGS)
        warn("cache %s: %zu malformed lines ignored in total",
             cfg.cacheFile.c_str(), nRejected);
}

std::string
Runner::canonicalBenchCached(const std::string &bench) const
{
    {
        std::lock_guard<std::mutex> l(canonBenchM);
        auto it = canonBenchMemo.find(bench);
        if (it != canonBenchMemo.end())
            return it->second;
    }
    // Canonicalize outside the lock (it can build the workload);
    // concurrent first requests for one bench both compute, which is
    // harmless — the results are identical.
    std::string canon = workload::canonicalWorkloadSpec(bench);
    std::lock_guard<std::mutex> l(canonBenchM);
    canonBenchMemo.emplace(bench, canon);
    return canon;
}

std::shared_ptr<const sim::CheckpointSet>
Runner::checkpointSetFor(const std::string &canon_bench)
{
    std::promise<std::shared_ptr<const sim::CheckpointSet>> prom;
    std::shared_future<std::shared_ptr<const sim::CheckpointSet>> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> l(ckptM);
        auto it = ckptMemo.find(canon_bench);
        if (it != ckptMemo.end()) {
            fut = it->second;
        } else {
            fut = prom.get_future().share();
            ckptMemo.emplace(canon_bench, fut);
            owner = true;
        }
    }
    if (!owner)
        return fut.get();
    // The set's functional state points into the Program, so the set
    // keeps the whole Benchmark alive through an aliasing pointer.
    auto bm = std::make_shared<workload::Benchmark>(
        workload::makeBenchmark(canon_bench));
    std::shared_ptr<const workload::Program> prog(bm, &bm->program);
    auto set = sim::CheckpointSet::build(prog, bm->ref, cfg.sim,
                                         cfg.productionWindow);
    prom.set_value(set);
    return set;
}

Runner::Shard &
Runner::shardFor(const std::string &key)
{
    // mcd-lint: allow(determinism): in-memory lock-shard selection
    // only — the hash never reaches a persisted key or a wire
    // message, so an implementation-defined std::hash is fine here.
    return shards[std::hash<std::string>{}(key) % NUM_SHARDS];
}

void
Runner::store(const std::string &key, const Outcome &o)
{
    if (writer)
        writer->append(outcomeToLine(key, o));
}

Outcome
Runner::memoize(const std::string &key,
                const std::function<Outcome()> &compute,
                bool *computed)
{
    Shard &s = shardFor(key);
    std::promise<Outcome> prom;
    std::shared_future<Outcome> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> l(s.m);
        auto it = s.map.find(key);
        if (it != s.map.end()) {
            fut = it->second;
        } else {
            fut = prom.get_future().share();
            s.map.emplace(key, fut);
            owner = true;
        }
    }
    if (computed)
        *computed = owner;
    (owner ? nMisses : nHits).fetch_add(1, std::memory_order_relaxed);
    if (!owner)
        return fut.get();
    try {
        Outcome o = compute();
        prom.set_value(o);
        store(key, o);
        return o;
    } catch (...) {
        // Unblock concurrent waiters with the exception, but drop
        // the entry so a later request recomputes instead of
        // rethrowing a stale failure forever.
        prom.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> l(s.m);
            s.map.erase(key);
        }
        throw;
    }
}

Metrics
Runner::vsBaseline(const std::string &bench, const Outcome &o)
{
    Outcome base = baseline(bench);
    return computeMetrics(o.timePs, o.energyNj, base.timePs,
                          base.energyNj);
}

std::vector<Outcome>
Runner::runSweep(const std::vector<SweepCell> &cells, unsigned jobs)
{
    std::vector<Outcome> out(cells.size());
    util::parallelFor(cells.size(), jobs ? jobs : cfg.jobs,
                      [&](std::size_t i) { out[i] = run(cells[i]); });
    return out;
}

Outcome
Runner::run(const SweepCell &cell)
{
    return run(cell.bench, cell.spec);
}

Outcome
Runner::run(const std::string &bench,
            const control::PolicySpec &spec)
{
    return run(bench, spec, nullptr);
}

Outcome
Runner::run(const std::string &bench,
            const control::PolicySpec &spec, bool *memo_hit)
{
    control::PolicySpec canon;
    std::string canonBench;
    const control::Policy *policy = nullptr;
    std::string key = resolve(bench, spec, canon, canonBench, policy);
    // Policies see the canonical bench spec, so their own
    // makeBenchmark()/evaluate() calls resolve to the same cells.
    bool computed = false;
    Outcome o = memoize(
        key, [&] { return policy->run(canonBench, canon, ctx); },
        &computed);
    if (memo_hit)
        *memo_hit = !computed;
    // Metrics are intentionally outside the memo: they derive from
    // two cached raw outcomes and stay correct however either one
    // got here.
    if (policy->relativeToBaseline())
        o.metrics = vsBaseline(canonBench, o);
    return o;
}

std::vector<std::string>
Runner::resolveChip(const ChipCell &cell, control::PolicySpec &canon,
                    std::vector<std::string> &tile_specs,
                    chip::CoordConfig &coord,
                    const control::Policy *&policy) const
{
    // Chip cells always run exact: tiles advance in global time
    // order, and a per-tile functional skip would break the shared
    // L2-port/DRAM arbitration the chip model exists to capture.
    if (cfg.sim.sampling.sampled())
        throw workload::SpecError(
            "chip cells do not support sampled simulation; run chip "
            "sweeps with --sample exact");

    tile_specs = chip::parseMultiSpec(cell.workload, cell.tiles);
    coord = chip::parseCoordSpec(cell.coord);

    const control::PolicyRegistry &reg =
        control::PolicyRegistry::instance();
    canon = cell.tilePolicy;
    std::string err;
    // Chip cells can arrive over the wire (SWEEP tiles=...), so a
    // bad tile policy must stay catchable — throw instead of the
    // single-core resolve()'s fatal().
    if (!reg.canonicalize(canon, err))
        throw workload::SpecError(err);
    policy = reg.find(canon.policy);

    std::unique_ptr<sim::IntervalHook> probe;
    std::uint64_t probe_instrs = 0;
    if (!policy->makeTileController(canon, ctx, &probe,
                                    &probe_instrs)) {
        std::string capable;
        for (const control::Policy *p : reg.list()) {
            control::PolicySpec s =
                control::PolicySpec::of(p->name());
            std::string e2;
            std::unique_ptr<sim::IntervalHook> h;
            std::uint64_t ni = 0;
            if (reg.canonicalize(s, e2) &&
                p->makeTileController(s, ctx, &h, &ni)) {
                if (!capable.empty())
                    capable += ", ";
                capable += p->name();
            }
        }
        throw workload::SpecError(strprintf(
            "policy '%s' cannot drive chip tiles per-tile; "
            "tile-capable policies: %s",
            canon.policy.c_str(), capable.c_str()));
    }

    std::string multi = chip::multiSpecOf(tile_specs);
    std::string coord_part =
        coord.enabled ? coord.canonSpec : "coord=off";
    std::string context = policy->contextKey(ctx);
    std::size_t n = tile_specs.size();
    std::vector<std::string> keys;
    for (std::size_t k = 0; k <= n; ++k) {
        std::string row = k < n ? strprintf("tile=%zu", k)
                                : std::string("tile=u");
        keys.push_back(strprintf(
            "%s|chip:tiles=%zu,%s|%s|%s|%s|%s",
            keyPrefix().c_str(), n, row.c_str(), coord_part.c_str(),
            canon.str().c_str(), multi.c_str(), context.c_str()));
    }
    return keys;
}

std::vector<std::string>
Runner::chipCacheKeys(const ChipCell &cell) const
{
    control::PolicySpec canon;
    std::vector<std::string> tile_specs;
    chip::CoordConfig coord;
    const control::Policy *policy = nullptr;
    return resolveChip(cell, canon, tile_specs, coord, policy);
}

std::vector<Outcome>
Runner::runChip(const ChipCell &cell, std::vector<bool> *row_hits)
{
    control::PolicySpec canon;
    std::vector<std::string> tile_specs;
    chip::CoordConfig coord;
    const control::Policy *policy = nullptr;
    std::vector<std::string> keys =
        resolveChip(cell, canon, tile_specs, coord, policy);
    std::size_t n = tile_specs.size();

    // Lazy whole-chip simulation shared by all N+1 row keys: the
    // first row the memo misses runs the chip, later misses of this
    // call reuse the result, and a call whose rows are all cached
    // never simulates.  A partially-cached chip (e.g. a truncated
    // CSV) recomputes the whole chip once — it is deterministic, so
    // the recomputed rows equal the cached ones.
    std::shared_ptr<chip::ChipResult> res;
    auto chipResult = [&]() -> const chip::ChipResult & {
        if (!res) {
            chip::Chip c(cfg.chip, cfg.sim, cfg.power, tile_specs);
            std::vector<std::unique_ptr<sim::IntervalHook>> hooks(n);
            for (std::size_t k = 0; k < n; ++k) {
                std::uint64_t instrs = 0;
                if (!policy->makeTileController(canon, ctx, &hooks[k],
                                                &instrs))
                    fatal("policy '%s' lost its tile capability "
                          "between resolve and run",
                          canon.policy.c_str());
                if (hooks[k])
                    c.setTileHook(static_cast<int>(k),
                                  hooks[k].get(), instrs);
            }
            c.setCoordinator(coord);
            res = std::make_shared<chip::ChipResult>(
                c.run(ctx.productionWindow));
        }
        return *res;
    };

    std::vector<Outcome> out;
    if (row_hits)
        row_hits->clear();
    for (std::size_t k = 0; k <= n; ++k) {
        bool computed = false;
        out.push_back(memoize(keys[k], [&]() -> Outcome {
            const chip::ChipResult &r = chipResult();
            Outcome o;
            if (k < n) {
                // Mirror the tile policies' own single-core Outcome
                // mapping (timePs/energyNj/reconfigs), so an N=1
                // chip row prints byte-identically to the same
                // policy's single-core resultLine — the CI
                // equivalence gate diffs exactly that.
                const sim::RunResult &t = r.tiles[k];
                o.timePs = static_cast<double>(t.timePs);
                o.energyNj = t.chipEnergyNj;
                o.reconfigs = static_cast<double>(t.reconfigs);
            } else {
                o.timePs = static_cast<double>(r.timePs);
                o.energyNj = r.uncoreEnergyNj;
                o.reconfigs =
                    static_cast<double>(r.uncoreReconfigs);
                o.globalFreq = r.uncoreAvgMhz;
            }
            return o;
        }, &computed));
        if (row_hits)
            row_hits->push_back(!computed);
    }
    return out;
}

Outcome
Runner::baseline(const std::string &bench)
{
    return run(bench, control::PolicySpec::of("baseline"));
}

Outcome
Runner::profile(const std::string &bench, core::ContextMode mode,
                double d)
{
    return run(bench, control::PolicySpec::of("profile")
                          .set("mode", mode)
                          .set("d", d));
}

Outcome
Runner::offline(const std::string &bench, double d)
{
    return run(bench, control::PolicySpec::of("offline").set("d", d));
}

Outcome
Runner::online(const std::string &bench, double aggressiveness)
{
    return run(bench, control::PolicySpec::of("online")
                          .set("aggr", aggressiveness));
}

Outcome
Runner::global(const std::string &bench)
{
    return run(bench,
               control::PolicySpec::of("global").set("d", cfg.d));
}

} // namespace mcd::exp
