#include "power/power.hh"

namespace mcd::power
{

Domain
unitDomain(Unit u)
{
    switch (u) {
      case Unit::Icache:
      case Unit::Bpred:
      case Unit::Rename:
      case Unit::Rob:
        return Domain::FrontEnd;
      case Unit::IssueQueue:  // charged per owning queue via access site
      case Unit::RegFileInt:
      case Unit::IntAlu:
      case Unit::IntMul:
        return Domain::Integer;
      case Unit::RegFileFp:
      case Unit::FpAlu:
      case Unit::FpMul:
        return Domain::FloatingPoint;
      case Unit::Lsq:
      case Unit::Dcache:
      case Unit::L2:
        return Domain::Memory;
      case Unit::Dram:
        return Domain::External;
      default:
        return Domain::FrontEnd;
    }
}

PowerConfig::PowerConfig()
{
    // pJ per access at Vmax; relative magnitudes follow Wattch's
    // Alpha-like model (caches and FP units dominate per access,
    // clock trees dominate per cycle).
    unitPj.fill(0.0);
    unitPj[static_cast<int>(Unit::Icache)] = 380.0;
    unitPj[static_cast<int>(Unit::Bpred)] = 120.0;
    unitPj[static_cast<int>(Unit::Rename)] = 100.0;
    unitPj[static_cast<int>(Unit::Rob)] = 80.0;
    unitPj[static_cast<int>(Unit::IssueQueue)] = 90.0;
    unitPj[static_cast<int>(Unit::RegFileInt)] = 70.0;
    unitPj[static_cast<int>(Unit::RegFileFp)] = 90.0;
    unitPj[static_cast<int>(Unit::IntAlu)] = 160.0;
    unitPj[static_cast<int>(Unit::IntMul)] = 350.0;
    unitPj[static_cast<int>(Unit::FpAlu)] = 420.0;
    unitPj[static_cast<int>(Unit::FpMul)] = 520.0;
    unitPj[static_cast<int>(Unit::Lsq)] = 110.0;
    unitPj[static_cast<int>(Unit::Dcache)] = 460.0;
    unitPj[static_cast<int>(Unit::L2)] = 1900.0;
    unitPj[static_cast<int>(Unit::Dram)] = 4200.0;

    clockPj = {230.0, 190.0, 160.0, 210.0};
    leakW = {0.05, 0.04, 0.04, 0.05};
    domainWeight = {0.30, 0.25, 0.15, 0.30};
}

PowerModel::PowerModel(const PowerConfig &c)
    : cfg(c)
{
}

double
PowerModel::scaleV2(Volt v) const
{
    double r = v / cfg.vMax;
    return r * r;
}

void
PowerModel::access(Unit u, Volt v, int n)
{
    accessTo(u, unitDomain(u), v, n);
}

void
PowerModel::accessTo(Unit u, Domain d, Volt v, int n)
{
    double nj = cfg.unitPj[static_cast<int>(u)] * scaleV2(v) * n / 1000.0;
    unitNj[static_cast<int>(u)] += nj;
    if (d == Domain::External)
        dramNj += nj;
    else
        domainNj[domainIndex(d)] += nj;
}

void
PowerModel::clockCycle(Domain d, Volt v)
{
    if (d == Domain::External)
        return;
    domainNj[domainIndex(d)] +=
        cfg.clockPj[domainIndex(d)] * scaleV2(v) / 1000.0;
}

void
PowerModel::clockCycles(Domain d, Volt v, std::uint64_t n)
{
    if (d == Domain::External || n == 0)
        return;
    domainNj[domainIndex(d)] += cfg.clockPj[domainIndex(d)] *
                                scaleV2(v) / 1000.0 *
                                static_cast<double>(n);
}

void
PowerModel::leakage(Domain d, Volt v, Tick dt_ps)
{
    if (d == Domain::External)
        return;
    // W * ps = 1e-12 J = 1e-3 nJ
    domainNj[domainIndex(d)] +=
        cfg.leakW[domainIndex(d)] * (v / cfg.vMax) *
        static_cast<double>(dt_ps) * 1e-3;
}

void
PowerModel::extra(Domain d, double pj)
{
    if (d == Domain::External)
        dramNj += pj / 1000.0;
    else
        domainNj[domainIndex(d)] += pj / 1000.0;
}

double
PowerModel::chipEnergyNj() const
{
    double sum = 0.0;
    for (double e : domainNj)
        sum += e;
    return sum;
}

double
PowerModel::domainEnergyNj(Domain d) const
{
    if (d == Domain::External)
        return dramNj;
    return domainNj[domainIndex(d)];
}

} // namespace mcd::power
