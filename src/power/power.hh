/**
 * @file
 * Wattch-style activity-based power model (Brooks et al.), adapted to
 * per-domain voltage/frequency scaling as in the paper's modified
 * SimpleScalar/Wattch toolkit.
 *
 * Dynamic energy per unit access scales with V^2; per-cycle clock-tree
 * energy scales with V^2 and accrues on every domain clock edge (so it
 * also scales with f through elapsed cycles); leakage scales with V
 * and elapsed time.  Absolute joules are not calibrated to the Alpha
 * 21264 — all evaluation metrics are relative to the MCD baseline.
 */

#ifndef MCD_POWER_POWER_HH
#define MCD_POWER_POWER_HH

#include <array>
#include <cstdint>

#include "util/types.hh"

namespace mcd::power
{

/** Microarchitectural units with per-access energies. */
enum class Unit : std::uint8_t
{
    Icache = 0,
    Bpred,
    Rename,
    Rob,
    IssueQueue,
    RegFileInt,
    RegFileFp,
    IntAlu,
    IntMul,
    FpAlu,
    FpMul,
    Lsq,
    Dcache,
    L2,
    Dram,
    NumUnits,
};

constexpr int numUnits = static_cast<int>(Unit::NumUnits);

/** The domain a unit's activity is charged to. */
Domain unitDomain(Unit u);

/** Per-access / per-cycle energy constants (pJ at Vmax). */
struct PowerConfig
{
    std::array<double, numUnits> unitPj;
    /** Clock-tree energy per cycle per scaled domain (pJ at Vmax). */
    std::array<double, NUM_SCALED_DOMAINS> clockPj;
    /** Leakage power per scaled domain (W at Vmax). */
    std::array<double, NUM_SCALED_DOMAINS> leakW;
    Volt vMax = 1.20;
    /**
     * Relative domain power weights used to initialize shaker event
     * power factors (Section 3.2: "initial value based on the
     * relative power consumption of the corresponding clock domain").
     */
    std::array<double, NUM_SCALED_DOMAINS> domainWeight;

    PowerConfig();
};

/**
 * Accumulates energy per domain during a simulation run.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConfig &cfg);

    /** Charge @p n accesses of @p u at supply voltage @p v. */
    void access(Unit u, Volt v, int n = 1);

    /**
     * Charge accesses of @p u to an explicit domain @p d (used for
     * units that exist per domain, e.g. issue queues).
     */
    void accessTo(Unit u, Domain d, Volt v, int n = 1);

    /** Charge one clock cycle of domain @p d at voltage @p v. */
    void clockCycle(Domain d, Volt v);

    /**
     * Charge @p n clock cycles of domain @p d at the constant
     * voltage @p v in closed form.  Used by the simulation kernel to
     * account the clock-tree energy of fast-forwarded idle edges (a
     * parked domain never ramps, so one voltage covers the whole
     * span); identical to @p n clockCycle() calls up to
     * floating-point summation order.
     */
    void clockCycles(Domain d, Volt v, std::uint64_t n);

    /** Charge leakage of domain @p d over @p dt_ps at voltage @p v. */
    void leakage(Domain d, Volt v, Tick dt_ps);

    /** Charge an arbitrary extra energy (instrumentation) to @p d. */
    void extra(Domain d, double pj);

    /** Total on-chip energy (all scaled domains; excludes DRAM). */
    double chipEnergyNj() const;

    /** External DRAM energy (reported separately). */
    double dramEnergyNj() const { return dramNj; }

    /** Energy charged to one scaled domain so far. */
    double domainEnergyNj(Domain d) const;

    /** Per-unit energy totals (nJ), for breakdown reporting. */
    const std::array<double, numUnits> &unitEnergyNj() const
    {
        return unitNj;
    }

    const PowerConfig &config() const { return cfg; }

  private:
    double scaleV2(Volt v) const;

    PowerConfig cfg;
    std::array<double, numUnits> unitNj{};
    std::array<double, NUM_SCALED_DOMAINS> domainNj{};
    double dramNj = 0.0;
};

} // namespace mcd::power

#endif // MCD_POWER_POWER_HH
