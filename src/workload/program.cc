#include "workload/program.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace mcd::workload
{

InstructionMix &
InstructionMix::set(InstrClass c, double f)
{
    frac[static_cast<size_t>(c)] = f;
    return *this;
}

InstructionMix &
InstructionMix::mem(std::uint64_t ws, double stream_frac,
                    std::uint32_t stride)
{
    workingSetBytes = ws;
    streamFrac = stream_frac;
    strideBytes = stride;
    return *this;
}

InstructionMix &
InstructionMix::branches(double frac_branch, double noise)
{
    frac[static_cast<size_t>(InstrClass::Branch)] = frac_branch;
    branchNoise = noise;
    return *this;
}

InstructionMix &
InstructionMix::ilp(double short_prob, int max_dist)
{
    shortDepProb = short_prob;
    maxDepDist = max_dist;
    return *this;
}

const Function &
Program::function(std::uint16_t id) const
{
    if (id >= functions.size())
        panic("function id %u out of range", id);
    return functions[id];
}

const Function *
Program::findFunction(const std::string &fname) const
{
    for (const auto &f : functions)
        if (f.name == fname)
            return &f;
    return nullptr;
}

double
InputSet::knob(const std::string &key, double dflt) const
{
    for (const auto &kv : knobs)
        if (kv.first == key)
            return kv.second;
    return dflt;
}

InputSet &
InputSet::with(const std::string &key, double value)
{
    knobs.emplace_back(key, value);
    return *this;
}

ProgramBuilder::ProgramBuilder(std::string program_name)
{
    prog.name = std::move(program_name);
}

MixId
ProgramBuilder::mix(const InstructionMix &m)
{
    prog.mixes.push_back(m);
    return static_cast<MixId>(prog.mixes.size() - 1);
}

std::uint16_t
ProgramBuilder::func(const std::string &name)
{
    if (prog.findFunction(name))
        fatal("duplicate function name '%s'", name.c_str());
    Function f;
    f.id = static_cast<std::uint16_t>(prog.functions.size());
    f.name = name;
    f.argProfiles.push_back(ArgProfile{});
    prog.functions.push_back(std::move(f));
    currentFunc = prog.functions.back().id;
    listStack.clear();
    listStack.push_back(&prog.functions.back().body);
    return prog.functions.back().id;
}

void
ProgramBuilder::argProfiles(std::vector<ArgProfile> profiles)
{
    if (currentFunc < 0)
        fatal("argProfiles() outside a function");
    if (profiles.empty())
        profiles.push_back(ArgProfile{});
    prog.functions[static_cast<size_t>(currentFunc)].argProfiles =
        std::move(profiles);
}

std::vector<Stmt> *
ProgramBuilder::currentList()
{
    if (listStack.empty())
        fatal("statement outside a function body");
    return listStack.back();
}

void
ProgramBuilder::block(MixId m, std::uint32_t count)
{
    if (m >= prog.mixes.size())
        fatal("unregistered mix id %u", m);
    if (count == 0)
        fatal("empty block");
    Stmt s;
    s.kind = StmtKind::Block;
    s.block.mix = m;
    s.block.count = count;
    currentList()->push_back(std::move(s));
}

void
ProgramBuilder::loop(double base_trips, double scale_exp,
                     const std::function<void()> &fill)
{
    loopK(base_trips, scale_exp, "", fill);
}

void
ProgramBuilder::loopK(double base_trips, double scale_exp,
                      const std::string &trip_knob,
                      const std::function<void()> &fill)
{
    auto *list = currentList();
    Stmt s;
    s.kind = StmtKind::Loop;
    s.loop.baseTrips = base_trips;
    s.loop.scaleExp = scale_exp;
    s.loop.tripKnob = trip_knob;
    list->push_back(std::move(s));
    // Safe: while the loop body is being filled, only the loop's own
    // body vector grows, so the enclosing list cannot reallocate.
    listStack.push_back(&list->back().loop.body);
    fill();
    listStack.pop_back();
    if (list->back().loop.body.empty())
        fatal("loop with empty body in '%s'",
              prog.functions[static_cast<size_t>(currentFunc)].name.c_str());
}

void
ProgramBuilder::call(const std::string &callee_name, std::uint8_t arg,
                     double guard_prob, const std::string &guard_knob)
{
    const Function *callee = prog.findFunction(callee_name);
    if (!callee)
        fatal("call to undefined function '%s' (define callees first)",
              callee_name.c_str());
    Stmt s;
    s.kind = StmtKind::Call;
    s.call.callee = callee->id;
    s.call.arg = arg;
    s.call.guardProb = guard_prob;
    s.call.guardKnob = guard_knob;
    currentList()->push_back(std::move(s));
}

namespace
{

/** Generate the static instructions of one block from its mix. */
std::vector<StaticInstr>
makeLayout(const InstructionMix &m, std::uint32_t count, Rng &rng)
{
    // Cumulative class distribution; remainder of the budget is
    // IntAlu.
    std::array<double, numInstrClasses> cum{};
    double acc = 0.0;
    for (int c = 0; c < numInstrClasses; ++c) {
        acc += m.frac[static_cast<size_t>(c)];
        cum[static_cast<size_t>(c)] = acc;
    }

    auto pick_dist = [&](void) -> std::uint8_t {
        if (rng.chance(m.shortDepProb))
            return static_cast<std::uint8_t>(1 + rng.below(3));
        int span = m.maxDepDist > 4 ? m.maxDepDist - 3 : 1;
        return static_cast<std::uint8_t>(
            4 + rng.below(static_cast<std::uint64_t>(span)));
    };

    std::vector<StaticInstr> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        StaticInstr si;
        double u = rng.uniform() * std::max(acc, 1.0);
        si.cls = InstrClass::IntAlu;
        if (u < acc) {
            for (int c = 0; c < numInstrClasses; ++c) {
                if (u < cum[static_cast<size_t>(c)]) {
                    si.cls = static_cast<InstrClass>(c);
                    break;
                }
            }
        }
        // Dependence density: a realistic fraction of operands come
        // from values produced long ago (loop invariants, induction
        // variables, immediates), which the pipeline sees as ready.
        switch (si.cls) {
          case InstrClass::Load:
            // Addresses often derive from induction variables that
            // are available early.
            si.dep1 = rng.chance(0.5) ? pick_dist() : 0;
            si.dep2 = 0;
            break;
          case InstrClass::Store:
            si.dep1 = rng.chance(0.8) ? pick_dist() : 0;  // data
            si.dep2 = rng.chance(0.4) ? pick_dist() : 0;  // address
            break;
          case InstrClass::Branch:
            si.dep1 = rng.chance(0.7) ? pick_dist() : 0;  // condition
            si.dep2 = 0;
            // Most static branches are strongly biased (loop guards,
            // error checks); a minority are data-dependent and
            // harder to predict.
            si.takenBias = rng.chance(0.85)
                ? (rng.chance(0.6) ? 0.94f : 0.06f)
                : 0.62f;
            break;
          default:
            si.dep1 = rng.chance(0.7) ? pick_dist() : 0;
            si.dep2 = rng.chance(0.35) ? pick_dist() : 0;
            break;
        }
        out.push_back(si);
    }
    return out;
}

/** Recursive pc/ids assignment over a statement list. */
void
layoutStmts(Program &prog, std::vector<Stmt> &stmts, std::uint64_t &pc,
            std::uint64_t layout_seed)
{
    for (auto &s : stmts) {
        switch (s.kind) {
          case StmtKind::Block: {
            s.block.blockId =
                static_cast<std::uint32_t>(prog.blockLayouts.size());
            s.block.basePc = pc;
            pc += 4ULL * s.block.count;
            Rng rng(layout_seed ^
                    (0x517CC1B727220A95ULL * (s.block.blockId + 1)));
            prog.blockLayouts.push_back(
                makeLayout(prog.mixes[s.block.mix], s.block.count, rng));
            break;
          }
          case StmtKind::Loop:
            s.loop.loopId = prog.numLoops++;
            layoutStmts(prog, s.loop.body, pc, layout_seed);
            s.loop.branchPc = pc;
            pc += 4;
            break;
          case StmtKind::Call:
            s.call.siteId = prog.numCallSites++;
            s.call.callPc = pc;
            pc += 4;
            break;
        }
    }
}

} // namespace

void
finalizeLayout(Program &prog, std::uint64_t layout_seed)
{
    prog.layoutSeed = layout_seed;
    prog.numLoops = 0;
    prog.numCallSites = 0;
    std::uint64_t pc = 0x10000;
    for (auto &f : prog.functions) {
        pc = (pc + 63) & ~63ULL;  // align functions to cache lines
        f.basePc = pc;
        layoutStmts(prog, f.body, pc, layout_seed);
        f.retPc = pc;
        pc += 4;
    }
}

Program
ProgramBuilder::build(const std::string &entry_name,
                      std::uint64_t layout_seed)
{
    const Function *entry = prog.findFunction(entry_name);
    if (!entry)
        fatal("entry function '%s' not defined", entry_name.c_str());
    prog.entry = entry->id;
    finalizeLayout(prog, layout_seed);
    return std::move(prog);
}

} // namespace mcd::workload
