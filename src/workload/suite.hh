/**
 * @file
 * The 19-benchmark synthetic suite standing in for MediaBench and
 * SPEC CPU2000 (Table 2 of the paper).
 *
 * Each benchmark is a structured Program plus a training and a
 * reference InputSet.  Programs encode the phase structure, domain
 * imbalance and training/reference divergences that the paper's
 * evaluation depends on; see docs/ARCHITECTURE.md
 * ("Suite construction") for the per-benchmark behaviours and the
 * substitution rationale.
 */

#ifndef MCD_WORKLOAD_SUITE_HH
#define MCD_WORKLOAD_SUITE_HH

#include <string>
#include <vector>

#include "workload/program.hh"

namespace mcd::workload
{

/** A benchmark: program + training and reference inputs. */
struct Benchmark
{
    Program program;
    InputSet train;
    InputSet ref;
};

/** Names of all 19 benchmarks, in the paper's order. */
const std::vector<std::string> &suiteNames();

/**
 * Construct a benchmark from any workload spec — a suite name, a
 * `gen:...` generator spec, or a `prog:...` authored-program handle
 * (this is a compatibility alias for `workload::makeWorkload()`;
 * see workload/registry.hh).  Unknown names and malformed specs
 * throw a catchable `workload::SpecError` whose message lists every
 * registered workload.
 */
Benchmark makeBenchmark(const std::string &name);

/** True if @p name is one of the suite benchmarks. */
bool isSuiteBenchmark(const std::string &name);

namespace detail
{
/** The raw suite constructors, bypassing the registry; @p name must
 *  be a suiteNames() entry (panics otherwise).  Only the suite's
 *  registry factories should call this — everything else goes
 *  through makeBenchmark()/makeWorkload(). */
Benchmark buildSuiteBenchmark(const std::string &name);

/** One-line description of a suite benchmark for
 *  `--list-workloads`. */
const char *suiteDescription(const std::string &name);
} // namespace detail

} // namespace mcd::workload

#endif // MCD_WORKLOAD_SUITE_HH
