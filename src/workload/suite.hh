/**
 * @file
 * The 19-benchmark synthetic suite standing in for MediaBench and
 * SPEC CPU2000 (Table 2 of the paper).
 *
 * Each benchmark is a structured Program plus a training and a
 * reference InputSet.  Programs encode the phase structure, domain
 * imbalance and training/reference divergences that the paper's
 * evaluation depends on; see docs/ARCHITECTURE.md
 * ("Suite construction") for the per-benchmark behaviours and the
 * substitution rationale.
 */

#ifndef MCD_WORKLOAD_SUITE_HH
#define MCD_WORKLOAD_SUITE_HH

#include <string>
#include <vector>

#include "workload/program.hh"

namespace mcd::workload
{

/** A benchmark: program + training and reference inputs. */
struct Benchmark
{
    Program program;
    InputSet train;
    InputSet ref;
};

/** Names of all 19 benchmarks, in the paper's order. */
const std::vector<std::string> &suiteNames();

/** Construct a benchmark by name. Fatal on unknown name. */
Benchmark makeBenchmark(const std::string &name);

/** True if @p name is one of the suite benchmarks. */
bool isSuiteBenchmark(const std::string &name);

} // namespace mcd::workload

#endif // MCD_WORKLOAD_SUITE_HH
