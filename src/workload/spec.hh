/**
 * @file
 * The workload spec vocabulary: the `name[:key=value,...]` line
 * grammar (shared with `control::PolicySpec` in shape and
 * canonicalization rules) that addresses workloads everywhere a
 * benchmark name is accepted — registry lookup, `--workload` CLI
 * selection, sweep cells and memo-cache keys.
 *
 * Unlike policy specs, workload specs flow through code that must be
 * able to *recover* from a bad spec (a sweep cell naming an unloaded
 * authored program, a stale cache key), so errors here are a
 * catchable `SpecError`, not `fatal()`.
 */

#ifndef MCD_WORKLOAD_SPEC_HH
#define MCD_WORKLOAD_SPEC_HH

#include <stdexcept>
#include <string>
#include <vector>

namespace mcd::workload
{

/** A user-level workload spec error: bad grammar, unknown name or
 *  key, out-of-range value.  Thrown by the registry/authoring/
 *  generator entry points; `what()` is a complete, self-contained
 *  message (it lists what *is* known where that helps). */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Types a workload spec parameter can take. */
enum class SpecParamType
{
    Num,  ///< locale-independent decimal (canonical: 3 digits, or
          ///< plain integers for integer-flagged parameters)
    Str,  ///< restricted string ([A-Za-z0-9_.-]+)
};

/**
 * One entry of a workload factory's parameter schema: name, type,
 * documented default (what an unset spec parameter falls back to),
 * a one-line help string for `--list-workloads`, and an allowed
 * [min, max] range for Num parameters, enforced at canonicalization
 * so an out-of-range value fails at the CLI, not mid-sweep.
 */
struct SpecParamInfo
{
    std::string name;
    SpecParamType type = SpecParamType::Num;
    double defaultNum = 0.0;
    std::string defaultStr;
    std::string help;
    double minNum = -1e300;
    double maxNum = 1e300;
    /** Num parameters only: reject fractional values and print the
     *  canonical text without a decimal point. */
    bool integer = false;

    /** Named builders — schemas read better and cannot misorder the
     *  positional fields. */
    static SpecParamInfo num(std::string name, double def,
                             std::string help, double min = -1e300,
                             double max = 1e300);
    static SpecParamInfo integerNum(std::string name, double def,
                                    std::string help, double min,
                                    double max);
    static SpecParamInfo str(std::string name, std::string def,
                             std::string help);
};

/**
 * A parsed workload selection: registry name plus key=value
 * parameters.  Build from text with `parseWorkloadSpec()`; print
 * with `str()`.  A spec becomes *canonical* once validated against
 * its factory's schema (`WorkloadRegistry::canonicalize()`): every
 * schema parameter present in schema order with canonical value
 * formatting and the typed value cached.  parse -> print -> parse of
 * a canonical spec is the identity, and the canonical string is used
 * verbatim in memo-cache keys.
 */
struct WorkloadSpec
{
    /** One key=value parameter.  `num` is the typed value, valid
     *  once the spec is canonical (Num parameters). */
    struct Param
    {
        std::string name;
        std::string text;
        double num = 0.0;
    };

    std::string name;
    std::vector<Param> params;

    /** Start a spec for the named workload. */
    static WorkloadSpec of(std::string workload_name);

    /** Set a raw textual parameter (overwrites an existing key). */
    WorkloadSpec &set(const std::string &key, const std::string &value);
    /** Set a numeric parameter (canonical 3-digit fixed format). */
    WorkloadSpec &set(const std::string &key, double value);

    /** The spec as text, `name[:key=value,...]` (params as stored). */
    std::string str() const;

    /** Typed numeric accessor; throws SpecError if the key is absent
     *  (call only on canonical specs). */
    double num(const std::string &key) const;

    /** Textual accessor; throws SpecError if the key is absent. */
    const std::string &text(const std::string &key) const;

    /** Pointer to a parameter by name, or nullptr. */
    const Param *find(const std::string &key) const;
};

/**
 * Parse `name[:key=value,...]` into @p out (syntax only — the
 * registry does semantic validation).  On failure returns false and
 * sets @p err to a human-readable message.
 */
bool parseWorkloadSpec(const std::string &text, WorkloadSpec &out,
                       std::string &err);

} // namespace mcd::workload

#endif // MCD_WORKLOAD_SPEC_HH
