/**
 * @file
 * Deterministic execution streamer: walks a Program under an InputSet
 * and produces the dynamic instruction/marker stream.
 *
 * Two Stream instances constructed from the same (program, input)
 * pair produce bit-identical sequences — the offline oracle and the
 * profile-driven runtime rely on this reproducibility, exactly as the
 * paper relies on re-running the same binary on the same input.
 */

#ifndef MCD_WORKLOAD_STREAM_HH
#define MCD_WORKLOAD_STREAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.hh"
#include "workload/program.hh"

namespace mcd::workload
{

/**
 * A structure-of-arrays batch of decoded dynamic instructions, the
 * fast-path unit of the sampled simulator's functional warm-up
 * (sim/checkpoint.cc): one `Stream::nextBatch()` call amortizes the
 * streamer's per-item queue handling over up to CAP instructions, and
 * the consumer walks plain parallel arrays instead of pulling
 * StreamItems one at a time.
 *
 * Markers are interleaved by position: `markers[m]` occurs in program
 * order immediately before the instruction in slot `markerPos[m]`
 * (markerPos == n means after the last instruction of the batch,
 * which only happens at end of program).
 */
struct StreamBatch
{
    static constexpr std::size_t CAP = 256;

    std::size_t n = 0;                   ///< instructions in batch
    std::uint64_t pc[CAP];
    std::uint64_t addr[CAP];             ///< loads/stores only
    std::uint64_t target[CAP];           ///< branches only
    InstrClass cls[CAP];
    bool taken[CAP];                     ///< branches only

    std::vector<Marker> markers;         ///< interleaved markers
    std::vector<std::uint32_t> markerPos;
};

/**
 * Pull-based generator of the dynamic execution stream.
 *
 * Streams are copyable; a copy continues from the same position with
 * the same future sequence (the sampled simulator checkpoints stream
 * state this way).  The source Program must outlive every copy.
 */
class Stream
{
  public:
    /**
     * @param program finalized program (must outlive the stream)
     * @param input   input set controlling scale/seed/knobs
     */
    Stream(const Program &program, const InputSet &input);

    /**
     * Produce the next stream item.
     *
     * @return false when the program has run to completion.
     */
    bool next(StreamItem &out);

    /**
     * Fill @p out with up to min(CAP, @p max_instrs) instructions and
     * their interleaved markers; returns the instruction count (0 at
     * end of program).  Consumes exactly the returned instructions
     * plus the markers recorded before them — a marker that follows
     * the batch's last instruction is left in the stream, matching
     * the detailed fetch loop's budget-check-before-pull behaviour —
     * so interleaving next() and nextBatch() yields the same sequence
     * as either alone.
     */
    std::size_t nextBatch(StreamBatch &out, std::uint64_t max_instrs);

    /** Number of instructions (not markers) emitted so far. */
    std::uint64_t instrCount() const { return instrsEmitted; }

    /** True once the program has completed. */
    bool done() const { return queue.empty() && stack.empty(); }

  private:
    struct Task
    {
        enum class Kind : std::uint8_t
        {
            List,       ///< statement list being walked
            Loop,       ///< loop iteration control
            BackBranch, ///< emit the loop back-edge branch
            Block,      ///< straight-line block emission
            FrameExit,  ///< function epilogue sentinel
        };
        Kind kind = Kind::List;
        const std::vector<Stmt> *list = nullptr;
        std::size_t idx = 0;
        const LoopStmt *loop = nullptr;
        std::uint64_t remaining = 0;
        bool taken = false;
        const BlockStmt *blk = nullptr;
        std::uint32_t i = 0;
        const Function *fn = nullptr;
    };

    struct Frame
    {
        const Function *fn = nullptr;
        ArgProfile prof;
    };

    /** Per-block dynamic memory-stream state. */
    struct BlockState
    {
        std::uint64_t streamPos = 0;
    };

    void step();
    void pushInstr(const DynInstr &di);
    void pushMarker(MarkerKind kind, std::uint16_t func,
                    std::uint16_t loop, std::uint16_t site);
    void enterFunction(const Function &fn, const ArgProfile &prof,
                       std::uint16_t site);
    std::uint64_t loopTrips(const LoopStmt &l) const;
    std::uint64_t genAddress(const BlockStmt &blk);
    void emitBlockInstr(Task &t);

    /** Pointer (not reference) so streams are copy-assignable. */
    const Program *prog;
    InputSet input;
    Rng rng;
    std::deque<StreamItem> queue;
    std::vector<Task> stack;
    std::vector<Frame> frames;
    std::vector<BlockState> blockStates;
    std::uint64_t instrsEmitted = 0;
};

} // namespace mcd::workload

#endif // MCD_WORKLOAD_STREAM_HH
