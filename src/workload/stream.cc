#include "workload/stream.hh"

#include <cmath>

#include "util/logging.hh"

namespace mcd::workload
{

namespace
{

/** FNV-1a hash for deriving the behaviour seed from the program name. */
std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

} // namespace

Stream::Stream(const Program &program, const InputSet &in)
    : prog(&program), input(in),
      rng(in.seed * 0x9E3779B97F4A7C15ULL ^ hashName(program.name)),
      blockStates(program.blockLayouts.size())
{
    enterFunction(prog->function(prog->entry), ArgProfile{}, 0);
}

bool
Stream::next(StreamItem &out)
{
    while (queue.empty() && !stack.empty())
        step();
    if (queue.empty())
        return false;
    out = queue.front();
    queue.pop_front();
    return true;
}

std::size_t
Stream::nextBatch(StreamBatch &out, std::uint64_t max_instrs)
{
    out.n = 0;
    out.markers.clear();
    out.markerPos.clear();
    std::size_t lim = static_cast<std::size_t>(
        std::min<std::uint64_t>(StreamBatch::CAP, max_instrs));
    while (out.n < lim) {
        while (queue.empty() && !stack.empty())
            step();
        if (queue.empty())
            break;
        const StreamItem &it = queue.front();
        if (it.kind == StreamItem::Kind::Marker) {
            out.markers.push_back(it.marker);
            out.markerPos.push_back(
                static_cast<std::uint32_t>(out.n));
            queue.pop_front();
            continue;
        }
        const DynInstr &di = it.instr;
        out.pc[out.n] = di.pc;
        out.addr[out.n] = di.addr;
        out.target[out.n] = di.target;
        out.cls[out.n] = di.cls;
        out.taken[out.n] = di.taken;
        queue.pop_front();
        ++out.n;
    }
    return out.n;
}

void
Stream::pushInstr(const DynInstr &di)
{
    StreamItem item;
    item.kind = StreamItem::Kind::Instr;
    item.instr = di;
    queue.push_back(item);
    ++instrsEmitted;
}

void
Stream::pushMarker(MarkerKind kind, std::uint16_t func,
                   std::uint16_t loop, std::uint16_t site)
{
    StreamItem item;
    item.kind = StreamItem::Kind::Marker;
    item.marker = Marker{kind, func, loop, site};
    queue.push_back(item);
}

void
Stream::enterFunction(const Function &fn, const ArgProfile &prof,
                      std::uint16_t site)
{
    frames.push_back(Frame{&fn, prof});
    pushMarker(MarkerKind::FuncEnter, fn.id, 0, site);
    Task exit_task;
    exit_task.kind = Task::Kind::FrameExit;
    exit_task.fn = &fn;
    stack.push_back(exit_task);
    Task body;
    body.kind = Task::Kind::List;
    body.list = &fn.body;
    body.idx = 0;
    stack.push_back(body);
}

std::uint64_t
Stream::loopTrips(const LoopStmt &l) const
{
    double knob_mul =
        l.tripKnob.empty() ? 1.0 : input.knob(l.tripKnob, 1.0);
    double t = l.baseTrips * std::pow(input.scale, l.scaleExp) *
               knob_mul * frames.back().prof.tripMul;
    if (t < 1.0)
        return 1;
    return static_cast<std::uint64_t>(std::llround(t));
}

std::uint64_t
Stream::genAddress(const BlockStmt &blk)
{
    const InstructionMix &m = prog->mixes[blk.mix];
    const ArgProfile &prof = frames.back().prof;
    double ws_d = static_cast<double>(m.workingSetBytes) * prof.wsMul *
                  input.knob("ws_scale", 1.0);
    std::uint64_t ws = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(ws_d));
    std::uint64_t region =
        (static_cast<std::uint64_t>(blk.blockId) + 1) << 30;
    double stream_frac = std::min(1.0, m.streamFrac * prof.streamMul);
    BlockState &st = blockStates[blk.blockId];
    if (rng.chance(stream_frac)) {
        st.streamPos += m.strideBytes;
        if (st.streamPos >= ws)
            st.streamPos = 0;
        return region + st.streamPos;
    }
    return region + (rng.below(ws / 8) * 8);
}

void
Stream::emitBlockInstr(Task &t)
{
    const BlockStmt &blk = *t.blk;
    const StaticInstr &si = prog->blockLayouts[blk.blockId][t.i];
    const InstructionMix &m = prog->mixes[blk.mix];

    DynInstr di;
    di.pc = blk.basePc + 4ULL * t.i;
    di.cls = si.cls;
    di.dep1 = si.dep1;
    di.dep2 = si.dep2;
    if (si.cls == InstrClass::Load || si.cls == InstrClass::Store) {
        di.addr = genAddress(blk);
    } else if (si.cls == InstrClass::Branch) {
        double noise = std::min(
            0.5, m.branchNoise + frames.back().prof.noiseAdd);
        double p_taken = static_cast<double>(si.takenBias);
        double p_eff = p_taken * (1.0 - noise) + (1.0 - p_taken) * noise;
        di.taken = rng.chance(p_eff);
        di.target = di.pc + 32;  // stable per-static-branch target
    }
    pushInstr(di);
    ++t.i;
    if (t.i >= blk.count)
        stack.pop_back();
}

void
Stream::step()
{
    Task &t = stack.back();
    switch (t.kind) {
      case Task::Kind::Block:
        emitBlockInstr(t);
        return;

      case Task::Kind::List: {
        if (t.idx >= t.list->size()) {
            stack.pop_back();
            return;
        }
        const Stmt &s = (*t.list)[t.idx++];
        // NOTE: `t` may dangle after further pushes; do not touch it
        // below this point.
        switch (s.kind) {
          case StmtKind::Block: {
            Task nt;
            nt.kind = Task::Kind::Block;
            nt.blk = &s.block;
            nt.i = 0;
            stack.push_back(nt);
            return;
          }
          case StmtKind::Loop: {
            pushMarker(MarkerKind::LoopEnter, frames.back().fn->id,
                       s.loop.loopId, 0);
            Task nt;
            nt.kind = Task::Kind::Loop;
            nt.loop = &s.loop;
            nt.remaining = loopTrips(s.loop);
            stack.push_back(nt);
            return;
          }
          case StmtKind::Call: {
            double p = s.call.guardKnob.empty()
                ? s.call.guardProb
                : input.knob(s.call.guardKnob, s.call.guardProb);
            if (p < 1.0 && !rng.chance(p))
                return;  // guarded call not taken this time
            const Function &callee = prog->function(s.call.callee);
            pushMarker(MarkerKind::CallSite, frames.back().fn->id, 0,
                       s.call.siteId);
            DynInstr call_br;
            call_br.pc = s.call.callPc;
            call_br.cls = InstrClass::Branch;
            call_br.taken = true;
            call_br.target = callee.basePc;
            pushInstr(call_br);
            const ArgProfile &prof =
                s.call.arg < callee.argProfiles.size()
                    ? callee.argProfiles[s.call.arg]
                    : callee.argProfiles[0];
            enterFunction(callee, prof, s.call.siteId);
            return;
          }
        }
        return;
      }

      case Task::Kind::Loop: {
        if (t.remaining == 0) {
            pushMarker(MarkerKind::LoopExit, frames.back().fn->id,
                       t.loop->loopId, 0);
            stack.pop_back();
            return;
        }
        --t.remaining;
        bool more = t.remaining > 0;
        const LoopStmt *loop = t.loop;
        Task bb;
        bb.kind = Task::Kind::BackBranch;
        bb.loop = loop;
        bb.taken = more;
        stack.push_back(bb);
        Task body;
        body.kind = Task::Kind::List;
        body.list = &loop->body;
        body.idx = 0;
        stack.push_back(body);
        return;
      }

      case Task::Kind::BackBranch: {
        const std::uint64_t branch_pc = t.loop->branchPc;
        const bool taken = t.taken;
        stack.pop_back();  // `t` is dead from here on
        DynInstr br;
        br.pc = branch_pc;
        br.cls = InstrClass::Branch;
        br.taken = taken;
        br.target = branch_pc + 16;  // stable back-edge target
        br.dep1 = 1;
        pushInstr(br);
        return;
      }

      case Task::Kind::FrameExit: {
        const Function *fn = t.fn;
        stack.pop_back();
        pushMarker(MarkerKind::FuncExit, fn->id, 0, 0);
        DynInstr ret;
        ret.pc = fn->retPc;
        ret.cls = InstrClass::Branch;
        ret.taken = true;
        ret.target = fn->retPc + 16;
        pushInstr(ret);
        if (frames.empty())
            panic("frame stack underflow");
        frames.pop_back();
        return;
      }
    }
}

} // namespace mcd::workload
