#include "workload/author.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <locale>
#include <map>
#include <sstream>

#include "util/logging.hh"
#include "util/text.hh"

namespace mcd::workload
{

namespace
{

// ---------------------------------------------------------------- //
// Line tokenizer                                                   //
// ---------------------------------------------------------------- //

/** One tokenized authoring line: `section: key=value, ...` or the
 *  bare `end` keyword. */
struct Line
{
    int no = 0;
    bool isEnd = false;
    std::string section;
    std::vector<std::pair<std::string, std::string>> kvs;
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
err(int line_no, const std::string &msg)
{
    throw SpecError(strprintf("workload program text line %d: %s",
                              line_no, msg.c_str()));
}

std::vector<Line>
tokenize(const std::string &text)
{
    std::vector<Line> out;
    std::istringstream in(text);
    std::string raw;
    int no = 0;
    while (std::getline(in, raw)) {
        ++no;
        std::string s = trim(raw);
        if (s.empty() || s[0] == '#')
            continue;
        Line line;
        line.no = no;
        if (s == "end") {
            line.isEnd = true;
            out.push_back(std::move(line));
            continue;
        }
        std::size_t colon = s.find(':');
        if (colon == std::string::npos)
            err(no, "expected 'section: key=value, ...' or 'end', "
                    "got '" + s + "'");
        line.section = trim(s.substr(0, colon));
        if (!util::validSpecName(line.section))
            err(no, "'" + line.section +
                        "' is not a [a-z0-9_-]+ section name");
        std::string rest = trim(s.substr(colon + 1));
        std::size_t start = 0;
        while (start <= rest.size() && !rest.empty()) {
            std::size_t comma = rest.find(',', start);
            std::string item = trim(rest.substr(
                start, comma == std::string::npos
                           ? std::string::npos
                           : comma - start));
            std::size_t eq = item.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= item.size())
                err(no, "parameter '" + item +
                            "' is not of the form key=value");
            std::string key = item.substr(0, eq);
            std::string value = item.substr(eq + 1);
            for (const auto &kv : line.kvs)
                if (kv.first == key)
                    err(no, "parameter '" + key + "' given twice");
            if (!util::validSpecValue(value))
                err(no, "value '" + value + "' of '" + key +
                            "' is not a [A-Za-z0-9_.-]+ token");
            line.kvs.emplace_back(std::move(key), std::move(value));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        out.push_back(std::move(line));
    }
    return out;
}

// ---------------------------------------------------------------- //
// Typed key access                                                 //
// ---------------------------------------------------------------- //

/** Wraps one line's key=value list with typed, checked accessors
 *  and the unknown-key hard error. */
class Keys
{
  public:
    Keys(const Line &line, std::vector<std::string> allowed,
         bool allow_knobs = false)
        : line(line), allowed(std::move(allowed)),
          allowKnobs(allow_knobs)
    {
        for (const auto &kv : line.kvs) {
            bool known = isKnob(kv.first);
            for (const auto &a : this->allowed)
                known = known || a == kv.first;
            if (!known) {
                std::string msg = "section '" + line.section +
                                  "' has no key '" + kv.first +
                                  "' (takes:";
                for (const auto &a : this->allowed)
                    msg += ' ' + a;
                if (allowKnobs)
                    msg += " knob.<name>";
                msg += ')';
                err(line.no, msg);
            }
        }
    }

    const std::string *
    findText(const std::string &key) const
    {
        for (const auto &kv : line.kvs)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }

    std::string
    text(const std::string &key, const std::string &dflt) const
    {
        const std::string *v = findText(key);
        return v ? *v : dflt;
    }

    std::string
    requiredText(const std::string &key) const
    {
        const std::string *v = findText(key);
        if (!v)
            err(line.no, "section '" + line.section +
                             "' requires key '" + key + "'");
        return *v;
    }

    /**
     * Numeric value, quantized to the canonical 3-digit form as it
     * is read so the program a text builds and the canonical text
     * `printProgram()` emits can never disagree (the same rule
     * registry canonicalization applies to spec parameters).
     */
    double
    num(const std::string &key, double dflt, double min,
        double max) const
    {
        const std::string *t = findText(key);
        if (!t)
            return dflt;
        double v = 0.0;
        if (!util::parseDouble(*t, v))
            err(line.no, "'" + *t + "' of '" + key +
                             "' is not a number");
        if (!(v >= min && v <= max))
            err(line.no, "'" + key + "=" + *t +
                             "' is out of range [" +
                             util::fmtFixed(min, 3) + ", " +
                             util::fmtFixed(max, 3) + "]");
        double q = 0.0;
        util::parseDouble(util::fmtFixed(v, 3), q);
        return q;
    }

    std::uint64_t
    integer(const std::string &key, std::uint64_t dflt,
            std::uint64_t min, std::uint64_t max) const
    {
        const std::string *t = findText(key);
        if (!t)
            return dflt;
        // Exact unsigned parse — never through double, which would
        // silently round values above 2^53 (layout seeds use the
        // full 64 bits) and break the round-trip contract.
        if (t->empty() ||
            t->find_first_not_of("0123456789") != std::string::npos)
            err(line.no, "'" + *t + "' of '" + key +
                             "' is not a non-negative integer");
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(t->c_str(), &end, 10);
        if (errno == ERANGE || *end != '\0' || v < min || v > max)
            err(line.no, "'" + key + "=" + *t +
                             "' is out of range [" +
                             std::to_string(min) + ", " +
                             std::to_string(max) + "]");
        return v;
    }

    /** The knob.<name> entries, quantized, sorted by name. */
    std::vector<std::pair<std::string, double>>
    knobs() const
    {
        std::map<std::string, double> sorted;
        for (const auto &kv : line.kvs) {
            if (!isKnob(kv.first))
                continue;
            std::string name = kv.first.substr(5);
            if (!util::validSpecValue(name))
                err(line.no, "knob name '" + name +
                                 "' is not a [A-Za-z0-9_.-]+ token");
            double v = 0.0;
            if (!util::parseDouble(kv.second, v))
                err(line.no, "'" + kv.second + "' of '" + kv.first +
                                 "' is not a number");
            double q = 0.0;
            util::parseDouble(util::fmtFixed(v, 3), q);
            sorted[name] = q;
        }
        return {sorted.begin(), sorted.end()};
    }

  private:
    bool
    isKnob(const std::string &key) const
    {
        return allowKnobs && key.rfind("knob.", 0) == 0;
    }

    const Line &line;
    std::vector<std::string> allowed;
    bool allowKnobs;
};

// ---------------------------------------------------------------- //
// Parser                                                           //
// ---------------------------------------------------------------- //

/** The per-class mix keys, in InstrClass order. */
const char *const mixClassKeys[numInstrClasses] = {
    "ialu", "imul", "idiv", "fadd", "fmul",
    "fdiv", "fsqrt", "load", "store", "branch",
};

InstructionMix
parseMixLine(const Keys &k)
{
    InstructionMix m;
    for (int c = 0; c < numInstrClasses; ++c)
        m.frac[static_cast<std::size_t>(c)] =
            k.num(mixClassKeys[c], 0.0, 0.0, 1.0);
    m.workingSetBytes = k.integer("ws", 64 * 1024, 1, 1ULL << 40);
    m.streamFrac = k.num("stream", 0.7, 0.0, 1.0);
    m.strideBytes = static_cast<std::uint32_t>(
        k.integer("stride", 8, 1, 1ULL << 20));
    m.branchNoise = k.num("noise", 0.03, 0.0, 1.0);
    m.shortDepProb = k.num("short", 0.55, 0.0, 1.0);
    m.maxDepDist = static_cast<int>(k.integer("dep", 24, 1, 255));
    return m;
}

struct ParseState
{
    Program prog;
    std::map<std::string, MixId> mixIds;
    /** Statement-list stack: function body at the bottom, one entry
     *  per open loop above it. */
    std::vector<std::vector<Stmt> *> listStack;
    bool sawArgs = false;
    bool sawStmt = false;
};

} // namespace

Benchmark
parseProgram(const std::string &text)
{
    std::vector<Line> lines = tokenize(text);
    if (lines.empty() || lines[0].section != "program")
        throw SpecError(
            "workload program text must start with a 'program: "
            "name=...' line");

    ParseState st;
    std::string entryName;
    std::uint64_t layoutSeed = 12345;
    Benchmark bm;
    bool sawTrain = false, sawRef = false;

    {
        const Line &l = lines[0];
        Keys k(l, {"name", "entry", "seed"});
        st.prog.name = k.requiredText("name");
        entryName = k.text("entry", "main");
        layoutSeed = k.integer("seed", 12345, 0, ~0ULL);
    }

    auto inFunction = [&] { return !st.listStack.empty(); };
    auto closeFunction = [&](int line_no) {
        if (st.listStack.size() > 1)
            err(line_no, "missing 'end' for an open loop");
        st.listStack.clear();
        st.sawArgs = false;
        st.sawStmt = false;
    };

    for (std::size_t i = 1; i < lines.size(); ++i) {
        const Line &l = lines[i];
        if (l.isEnd) {
            if (st.listStack.size() < 2)
                err(l.no, "'end' without an open loop");
            if (st.listStack.back()->empty())
                err(l.no, "loop with an empty body");
            st.listStack.pop_back();
            continue;
        }
        if (l.section == "input") {
            closeFunction(l.no);
            Keys k(l, {"set", "seed", "scale"}, true);
            std::string role = k.requiredText("set");
            if (role != "train" && role != "ref")
                err(l.no, "input set must be 'train' or 'ref', got '" +
                              role + "'");
            InputSet s;
            s.name = role;
            s.seed = k.integer("seed", 1, 0, ~0ULL);
            s.scale = k.num("scale", 1.0, 0.001, 1e6);
            s.knobs = k.knobs();
            if (role == "train") {
                if (sawTrain)
                    err(l.no, "duplicate 'input: set=train'");
                sawTrain = true;
                bm.train = std::move(s);
            } else {
                if (sawRef)
                    err(l.no, "duplicate 'input: set=ref'");
                sawRef = true;
                bm.ref = std::move(s);
            }
        } else if (l.section == "mix") {
            closeFunction(l.no);
            std::vector<std::string> allowed = {"id",    "ws",
                                               "stream", "stride",
                                               "noise",  "short",
                                               "dep"};
            for (const char *c : mixClassKeys)
                allowed.push_back(c);
            Keys k(l, std::move(allowed));
            std::string id = k.requiredText("id");
            if (st.mixIds.count(id))
                err(l.no, "duplicate mix id '" + id + "'");
            st.mixIds[id] =
                static_cast<MixId>(st.prog.mixes.size());
            st.prog.mixes.push_back(parseMixLine(k));
        } else if (l.section == "func") {
            closeFunction(l.no);
            Keys k(l, {"name"});
            std::string name = k.requiredText("name");
            if (st.prog.findFunction(name))
                err(l.no, "duplicate function name '" + name + "'");
            Function f;
            f.id = static_cast<std::uint16_t>(
                st.prog.functions.size());
            f.name = name;
            f.argProfiles.push_back(ArgProfile{});
            st.prog.functions.push_back(std::move(f));
            st.listStack.push_back(
                &st.prog.functions.back().body);
        } else if (l.section == "args") {
            if (!inFunction())
                err(l.no, "'args:' outside a function");
            if (st.sawStmt)
                err(l.no, "'args:' must precede the function's "
                          "statements");
            Keys k(l, {"ws", "trips", "noise", "stream"});
            ArgProfile p;
            p.wsMul = k.num("ws", 1.0, 0.0, 1e6);
            p.tripMul = k.num("trips", 1.0, 0.0, 1e6);
            p.noiseAdd = k.num("noise", 0.0, 0.0, 1.0);
            p.streamMul = k.num("stream", 1.0, 0.0, 1e6);
            Function &f = st.prog.functions.back();
            if (!st.sawArgs) {
                // The first args: line replaces the implicit
                // default profile, as ProgramBuilder::argProfiles()
                // replaces the whole list.
                f.argProfiles.clear();
                st.sawArgs = true;
            }
            f.argProfiles.push_back(p);
        } else if (l.section == "block") {
            if (!inFunction())
                err(l.no, "'block:' outside a function");
            st.sawStmt = true;
            Keys k(l, {"mix", "n"});
            std::string mixId = k.requiredText("mix");
            auto it = st.mixIds.find(mixId);
            if (it == st.mixIds.end())
                err(l.no, "unknown mix id '" + mixId +
                              "' (mixes must be declared first)");
            if (!k.findText("n"))
                err(l.no, "section 'block' requires key 'n'");
            Stmt s;
            s.kind = StmtKind::Block;
            s.block.mix = it->second;
            s.block.count = static_cast<std::uint32_t>(
                k.integer("n", 0, 1, 1u << 20));
            st.listStack.back()->push_back(std::move(s));
        } else if (l.section == "loop") {
            if (!inFunction())
                err(l.no, "'loop:' outside a function");
            st.sawStmt = true;
            Keys k(l, {"trips", "scale", "knob"});
            Stmt s;
            s.kind = StmtKind::Loop;
            s.loop.baseTrips = k.num("trips", 1.0, 0.001, 1e9);
            s.loop.scaleExp = k.num("scale", 1.0, 0.0, 16.0);
            s.loop.tripKnob = k.text("knob", "");
            auto *list = st.listStack.back();
            list->push_back(std::move(s));
            // Safe, as in ProgramBuilder::loopK(): while the loop
            // body is being filled only the body vector grows, so
            // the enclosing list cannot reallocate.
            st.listStack.push_back(&list->back().loop.body);
        } else if (l.section == "call") {
            if (!inFunction())
                err(l.no, "'call:' outside a function");
            st.sawStmt = true;
            Keys k(l, {"f", "arg", "guard", "knob"});
            std::string callee = k.requiredText("f");
            const Function *cf = st.prog.findFunction(callee);
            if (!cf)
                err(l.no, "call to undefined function '" + callee +
                              "' (define callees first)");
            Stmt s;
            s.kind = StmtKind::Call;
            s.call.callee = cf->id;
            s.call.arg = static_cast<std::uint8_t>(
                k.integer("arg", 0, 0, 255));
            if (s.call.arg >= cf->argProfiles.size())
                err(l.no, strprintf(
                              "arg=%u selects a profile '%s' does "
                              "not have (it has %zu)",
                              s.call.arg, callee.c_str(),
                              cf->argProfiles.size()));
            s.call.guardProb = k.num("guard", 1.0, 0.0, 1.0);
            s.call.guardKnob = k.text("knob", "");
            st.listStack.back()->push_back(std::move(s));
        } else {
            err(l.no,
                "unknown section '" + l.section +
                    "' (takes: program input mix func args block "
                    "loop call end)");
        }
    }
    closeFunction(lines.back().no);

    if (st.prog.functions.empty())
        throw SpecError("workload program text defines no functions");
    if (!sawTrain || !sawRef)
        throw SpecError(
            "workload program text must define both 'input: "
            "set=train' and 'input: set=ref'");
    const Function *entry = st.prog.findFunction(entryName);
    if (!entry)
        throw SpecError("entry function '" + entryName +
                        "' is not defined");
    st.prog.entry = entry->id;
    finalizeLayout(st.prog, layoutSeed);
    bm.program = std::move(st.prog);
    return bm;
}

// ---------------------------------------------------------------- //
// Printer                                                          //
// ---------------------------------------------------------------- //

namespace
{

void
requireSpecSafe(const std::string &what, const std::string &s)
{
    if (!util::validSpecValue(s))
        throw SpecError(what + " '" + s +
                        "' is not authoring-safe ([A-Za-z0-9_.-]+)");
}

std::string
fmtNum(double v)
{
    return util::fmtFixed(v, 3);
}

void
printInput(std::ostringstream &os, const char *role,
           const InputSet &in)
{
    os << "input: set=" << role << ", seed=" << in.seed
       << ", scale=" << fmtNum(in.scale);
    std::map<std::string, double> sorted(in.knobs.begin(),
                                         in.knobs.end());
    for (const auto &kv : sorted) {
        requireSpecSafe("knob name", kv.first);
        os << ", knob." << kv.first << "=" << fmtNum(kv.second);
    }
    os << '\n';
}

void
printStmts(std::ostringstream &os, const Program &prog,
           const std::vector<Stmt> &stmts, int depth)
{
    std::string ind(static_cast<std::size_t>(2 * depth), ' ');
    for (const Stmt &s : stmts) {
        switch (s.kind) {
          case StmtKind::Block:
            os << ind << "block: mix=m" << s.block.mix
               << ", n=" << s.block.count << '\n';
            break;
          case StmtKind::Loop:
            os << ind << "loop: trips=" << fmtNum(s.loop.baseTrips)
               << ", scale=" << fmtNum(s.loop.scaleExp);
            if (!s.loop.tripKnob.empty()) {
                requireSpecSafe("knob name", s.loop.tripKnob);
                os << ", knob=" << s.loop.tripKnob;
            }
            os << '\n';
            printStmts(os, prog, s.loop.body, depth + 1);
            os << ind << "end\n";
            break;
          case StmtKind::Call: {
            const Function &callee = prog.function(s.call.callee);
            requireSpecSafe("function name", callee.name);
            os << ind << "call: f=" << callee.name
               << ", arg=" << static_cast<unsigned>(s.call.arg)
               << ", guard=" << fmtNum(s.call.guardProb);
            if (!s.call.guardKnob.empty()) {
                requireSpecSafe("knob name", s.call.guardKnob);
                os << ", knob=" << s.call.guardKnob;
            }
            os << '\n';
            break;
          }
        }
    }
}

bool
isDefaultProfile(const ArgProfile &p)
{
    return p.wsMul == 1.0 && p.tripMul == 1.0 && p.noiseAdd == 0.0 &&
           p.streamMul == 1.0;
}

} // namespace

std::string
printProgram(const Benchmark &bm)
{
    const Program &prog = bm.program;
    std::ostringstream os;
    os.imbue(std::locale::classic());
    requireSpecSafe("program name", prog.name);
    if (prog.entry >= prog.functions.size())
        throw SpecError("program '" + prog.name +
                        "' has no valid entry function");
    requireSpecSafe("function name",
                    prog.functions[prog.entry].name);
    os << "program: name=" << prog.name
       << ", entry=" << prog.functions[prog.entry].name
       << ", seed=" << prog.layoutSeed << '\n';
    printInput(os, "train", bm.train);
    printInput(os, "ref", bm.ref);
    for (std::size_t i = 0; i < prog.mixes.size(); ++i) {
        const InstructionMix &m = prog.mixes[i];
        os << "mix: id=m" << i;
        for (int c = 0; c < numInstrClasses; ++c)
            os << ", " << mixClassKeys[c] << "="
               << fmtNum(m.frac[static_cast<std::size_t>(c)]);
        os << ", ws=" << m.workingSetBytes
           << ", stream=" << fmtNum(m.streamFrac)
           << ", stride=" << m.strideBytes
           << ", noise=" << fmtNum(m.branchNoise)
           << ", short=" << fmtNum(m.shortDepProb)
           << ", dep=" << m.maxDepDist << '\n';
    }
    for (const Function &f : prog.functions) {
        requireSpecSafe("function name", f.name);
        os << "func: name=" << f.name << '\n';
        bool trivial = f.argProfiles.size() == 1 &&
                       isDefaultProfile(f.argProfiles[0]);
        if (!trivial) {
            for (const ArgProfile &p : f.argProfiles)
                os << "  args: ws=" << fmtNum(p.wsMul)
                   << ", trips=" << fmtNum(p.tripMul)
                   << ", noise=" << fmtNum(p.noiseAdd)
                   << ", stream=" << fmtNum(p.streamMul) << '\n';
        }
        printStmts(os, prog, f.body, 1);
    }
    return os.str();
}

std::string
readProgramFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SpecError("cannot read workload program file '" +
                        path + "'");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace mcd::workload
