/**
 * @file
 * Dynamic instruction representation produced by the workload
 * streamer and consumed by the cycle-level simulator.
 *
 * This plays the role of the (Alpha) instruction stream that the
 * paper's SimpleScalar-based simulator executes.  See
 * docs/ARCHITECTURE.md ("IR substitution") for the substitution
 * rationale.
 */

#ifndef MCD_WORKLOAD_INSTR_HH
#define MCD_WORKLOAD_INSTR_HH

#include <cstdint>

#include "util/types.hh"

namespace mcd::workload
{

/** Instruction classes modeled by the pipeline. */
enum class InstrClass : std::uint8_t
{
    IntAlu = 0,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    FpSqrt,
    Load,
    Store,
    Branch,
    NumClasses,
};

constexpr int numInstrClasses = static_cast<int>(InstrClass::NumClasses);

/** Name for printing ("ialu", "fadd", ...). */
const char *instrClassName(InstrClass c);

/** The clock domain whose issue queue / FUs execute this class. */
Domain execDomain(InstrClass c);

/** True for classes that produce a register value. */
bool producesValue(InstrClass c);

/**
 * One dynamic instruction.
 *
 * Register dependences are encoded positionally: depN gives the
 * distance, in value-producing instructions, back to the producer of
 * source operand N (1 = the most recent producer before this
 * instruction, 0 = no dependence).  The simulator resolves distances
 * against its in-flight window, which keeps the stream compact while
 * still exercising real wakeup/issue logic.
 */
struct DynInstr
{
    std::uint64_t pc = 0;       ///< static program counter (bytes)
    InstrClass cls = InstrClass::IntAlu;
    std::uint8_t dep1 = 0;      ///< producer distance of source 1
    std::uint8_t dep2 = 0;      ///< producer distance of source 2
    std::uint64_t addr = 0;     ///< effective address (Load/Store)
    std::uint64_t target = 0;   ///< branch target pc (Branch)
    bool taken = false;         ///< actual branch outcome (Branch)
};

/**
 * Marker kinds emitted by the streamer at program-structure
 * boundaries.  Markers are the IR-level stand-in for the subroutine
 * prologues/epilogues, loop headers/footers and call sites that the
 * paper instruments with ATOM (Section 3.4).
 */
enum class MarkerKind : std::uint8_t
{
    FuncEnter,
    FuncExit,
    LoopEnter,
    LoopExit,
    CallSite,
};

/** A structural marker. Ids are the static IR entity ids. */
struct Marker
{
    MarkerKind kind = MarkerKind::FuncEnter;
    std::uint16_t func = 0;  ///< function id (FuncEnter/FuncExit)
    std::uint16_t loop = 0;  ///< loop id (LoopEnter/LoopExit)
    std::uint16_t site = 0;  ///< call-site id (CallSite, FuncEnter)
};

/** One element of the execution stream: instruction or marker. */
struct StreamItem
{
    enum class Kind : std::uint8_t { Instr, Marker };
    Kind kind = Kind::Instr;
    DynInstr instr;
    Marker marker;
};

} // namespace mcd::workload

#endif // MCD_WORKLOAD_INSTR_HH
