#include "workload/split.hh"

namespace mcd::workload
{

const std::vector<std::string> &
trainingSplit()
{
    // A deliberate cross-section of the suite, not the whole of it:
    // two control-dense codecs, one encoder with a different phase
    // structure, and the memory-bound SPEC staple.  Keeping the
    // split small keeps tournament rows cheap and leaves the rest
    // of the suite untouched by any tuning loop.
    static const std::vector<std::string> names = {
        "gsm_decode",
        "adpcm_decode",
        "gsm_encode",
        "mcf",
    };
    return names;
}

const std::vector<std::string> &
holdoutSplit()
{
    // Canonical gen: specs (parameter-complete, fixed seeds) so the
    // holdout set is the same program everywhere.  Chosen to spread
    // the generator's space: memory-heavy, fp-heavy and
    // phase-imbalanced points no suite benchmark occupies.
    static const std::vector<std::string> names = {
        "gen:phases=2,mem=0.400,fp=0.300,depth=2,diverge=0.200,"
        "imbalance=0.500,refscale=1.400,seed=7",
        "gen:phases=3,mem=0.550,fp=0.100,depth=3,diverge=0.350,"
        "imbalance=0.650,refscale=1.200,seed=21",
        "gen:phases=4,mem=0.150,fp=0.600,depth=2,diverge=0.100,"
        "imbalance=0.300,refscale=1.000,seed=33",
    };
    return names;
}

std::vector<std::string>
tournamentWorkloads()
{
    std::vector<std::string> all = trainingSplit();
    const std::vector<std::string> &held = holdoutSplit();
    all.insert(all.end(), held.begin(), held.end());
    return all;
}

} // namespace mcd::workload
