#include "workload/spec.hh"

#include "util/text.hh"

namespace mcd::workload
{

SpecParamInfo
SpecParamInfo::num(std::string name, double def, std::string help,
                   double min, double max)
{
    SpecParamInfo p;
    p.name = std::move(name);
    p.type = SpecParamType::Num;
    p.defaultNum = def;
    p.help = std::move(help);
    p.minNum = min;
    p.maxNum = max;
    return p;
}

SpecParamInfo
SpecParamInfo::integerNum(std::string name, double def,
                          std::string help, double min, double max)
{
    SpecParamInfo p = num(std::move(name), def, std::move(help), min,
                          max);
    p.integer = true;
    return p;
}

SpecParamInfo
SpecParamInfo::str(std::string name, std::string def,
                   std::string help)
{
    SpecParamInfo p;
    p.name = std::move(name);
    p.type = SpecParamType::Str;
    p.defaultStr = std::move(def);
    p.help = std::move(help);
    return p;
}

WorkloadSpec
WorkloadSpec::of(std::string workload_name)
{
    WorkloadSpec s;
    s.name = std::move(workload_name);
    return s;
}

WorkloadSpec &
WorkloadSpec::set(const std::string &key, const std::string &value)
{
    auto assign = [&](Param &p) {
        p.text = value;
        // Keep the typed mirror in sync (best effort before
        // canonicalization pins it) so a set() on an already
        // canonical spec cannot leave num() returning a stale
        // previous value.
        p.num = 0.0;
        util::parseDouble(value, p.num);
    };
    for (Param &p : params) {
        if (p.name == key) {
            assign(p);
            return *this;
        }
    }
    Param p;
    p.name = key;
    assign(p);
    params.push_back(std::move(p));
    return *this;
}

WorkloadSpec &
WorkloadSpec::set(const std::string &key, double value)
{
    return set(key, util::fmtFixed(value, 3));
}

std::string
WorkloadSpec::str() const
{
    std::string s = name;
    for (std::size_t i = 0; i < params.size(); ++i) {
        s += i == 0 ? ':' : ',';
        s += params[i].name;
        s += '=';
        s += params[i].text;
    }
    return s;
}

const WorkloadSpec::Param *
WorkloadSpec::find(const std::string &key) const
{
    for (const Param &p : params)
        if (p.name == key)
            return &p;
    return nullptr;
}

double
WorkloadSpec::num(const std::string &key) const
{
    const Param *p = find(key);
    if (!p)
        throw SpecError("workload spec '" + str() +
                        "' has no parameter '" + key +
                        "' (not canonical?)");
    return p->num;
}

const std::string &
WorkloadSpec::text(const std::string &key) const
{
    const Param *p = find(key);
    if (!p)
        throw SpecError("workload spec '" + str() +
                        "' has no parameter '" + key +
                        "' (not canonical?)");
    return p->text;
}

bool
parseWorkloadSpec(const std::string &text, WorkloadSpec &out,
                  std::string &err)
{
    out = WorkloadSpec();
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!util::splitSpec(text, "workload spec", out.name, kvs, err))
        return false;
    for (auto &kv : kvs)
        out.set(kv.first, kv.second);
    return true;
}

} // namespace mcd::workload
