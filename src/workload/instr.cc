#include "workload/instr.hh"

namespace mcd::workload
{

const char *
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "ialu";
      case InstrClass::IntMul: return "imul";
      case InstrClass::IntDiv: return "idiv";
      case InstrClass::FpAdd: return "fadd";
      case InstrClass::FpMul: return "fmul";
      case InstrClass::FpDiv: return "fdiv";
      case InstrClass::FpSqrt: return "fsqrt";
      case InstrClass::Load: return "load";
      case InstrClass::Store: return "store";
      case InstrClass::Branch: return "branch";
      default: return "?";
    }
}

Domain
execDomain(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu:
      case InstrClass::IntMul:
      case InstrClass::IntDiv:
      case InstrClass::Branch:
        return Domain::Integer;
      case InstrClass::FpAdd:
      case InstrClass::FpMul:
      case InstrClass::FpDiv:
      case InstrClass::FpSqrt:
        return Domain::FloatingPoint;
      case InstrClass::Load:
      case InstrClass::Store:
        return Domain::Memory;
      default:
        return Domain::Integer;
    }
}

bool
producesValue(InstrClass c)
{
    switch (c) {
      case InstrClass::Store:
      case InstrClass::Branch:
        return false;
      default:
        return true;
    }
}

} // namespace mcd::workload
