/**
 * @file
 * The workload authoring text format: a line-oriented grammar whose
 * sections mirror the `name: key=value, ...` spec idiom and describe
 * a complete `Benchmark` — program structure (functions, loops, call
 * sites), per-block `InstructionMix` knobs, arg profiles, and the
 * training/reference input sets.  See docs/WORKLOADS.md for the full
 * grammar with units and defaults.
 *
 * Round-trip contract: `printProgram()` emits *canonical* text —
 * sections in fixed order, every key present, numbers in canonical
 * 3-digit fixed form — and `parseProgram()` quantizes every numeric
 * value to that same form as it reads, so
 *
 *     printProgram(parseProgram(text))
 *
 * is idempotent, canonical text is a fixed point, and the canonical
 * text is bijective with the benchmark it describes (which is what
 * lets `WorkloadRegistry::addProgram()` content-address programs by
 * a hash of their canonical text).  Unknown sections or keys are
 * hard `SpecError`s that list what is accepted.
 */

#ifndef MCD_WORKLOAD_AUTHOR_HH
#define MCD_WORKLOAD_AUTHOR_HH

#include <string>

#include "workload/spec.hh"
#include "workload/suite.hh"

namespace mcd::workload
{

/**
 * Parse authored program text into a benchmark.  Throws SpecError
 * with a line-numbered message on any grammar or semantic error
 * (unknown section/key, call to an undefined function, empty loop,
 * missing `program:` header, ...).
 */
Benchmark parseProgram(const std::string &text);

/** Canonical authored text of @p bm (see the round-trip contract
 *  above).  Requires spec-safe names ([A-Za-z0-9_.-]+) for the
 *  program and its functions/knobs; throws SpecError otherwise. */
std::string printProgram(const Benchmark &bm);

/** Read a whole file (for `--workload @path`).  Throws SpecError if
 *  the file cannot be read. */
std::string readProgramFile(const std::string &path);

} // namespace mcd::workload

#endif // MCD_WORKLOAD_AUTHOR_HH
