/**
 * @file
 * Registers the seeded procedural workload generator as the `gen`
 * workload family: `--workload gen:phases=4,mem=0.4,seed=7` (and the
 * same spec in sweep cells / cache keys) samples a phase-structured
 * program from workload/generate.cc.
 */

#include "workload/generate.hh"
#include "workload/registry.hh"

namespace mcd::workload
{
namespace
{

class GenWorkload final : public WorkloadFactory
{
  public:
    const char *
    name() const override
    {
        return "gen";
    }

    const char *
    description() const override
    {
        return "seeded procedural generator: phase structure, "
               "domain imbalance, train/ref divergence";
    }

    std::vector<SpecParamInfo>
    params() const override
    {
        return generatorParams();
    }

    Benchmark
    make(const WorkloadSpec &spec) const override
    {
        return generate(spec);
    }
};

MCD_REGISTER_WORKLOAD(GenWorkload);

} // namespace
} // namespace mcd::workload
