/**
 * @file
 * Registers the 19 suite benchmarks (the Table 2 MediaBench/SPEC
 * stand-ins built in workload/suite.cc) with the WorkloadRegistry,
 * one parameterless factory per name, so a bare suite name is a
 * valid workload spec everywhere (`--workload gzip`, sweep cells,
 * cache keys).
 */

#include "workload/registry.hh"

namespace mcd::workload
{
namespace
{

class SuiteWorkload final : public WorkloadFactory
{
  public:
    explicit SuiteWorkload(std::string name) : nm(std::move(name))
    {
    }

    const char *
    name() const override
    {
        return nm.c_str();
    }

    const char *
    description() const override
    {
        return detail::suiteDescription(nm);
    }

    Benchmark
    make(const WorkloadSpec &) const override
    {
        return detail::buildSuiteBenchmark(nm);
    }

  private:
    std::string nm;
};

/** One registrar covering the whole suite (the per-class
 *  MCD_REGISTER_WORKLOAD macro registers one factory; the suite is
 *  a family of 19 sharing one implementation). */
// mcd-lint: allow-file(registration): the SuiteRegistrar below
// registers all 19 factories from one static object; the file is in
// the mcd_workloads OBJECT library, so the registrar is never
// dropped.
struct SuiteRegistrar
{
    SuiteRegistrar()
    {
        for (const std::string &name : suiteNames())
            WorkloadRegistry::instance().add(
                std::make_unique<SuiteWorkload>(name));
    }
};

const SuiteRegistrar mcdSuiteWorkloadRegistrar;

} // namespace
} // namespace mcd::workload
