#include "workload/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <locale>
#include <map>
#include <mutex>
#include <sstream>

#include "util/logging.hh"
#include "util/text.hh"
#include "workload/author.hh"

namespace mcd::workload
{

struct WorkloadRegistry::Impl
{
    mutable std::mutex m;
    std::map<std::string, std::unique_ptr<const WorkloadFactory>>
        factories;
    /** Authored programs by (name, hash) — the `prog` factory's
     *  backing table (see addProgram()). */
    std::map<std::pair<std::string, std::string>, Benchmark> programs;
};

WorkloadRegistry &
WorkloadRegistry::instance()
{
    // Leaked singleton: factories registered from static
    // initializers must stay valid through program exit in any TU
    // order.
    static WorkloadRegistry *reg = new WorkloadRegistry();
    return *reg;
}

WorkloadRegistry::Impl &
WorkloadRegistry::impl() const
{
    static Impl *i = new Impl();
    return *i;
}

void
WorkloadRegistry::add(std::unique_ptr<const WorkloadFactory> f)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> l(i.m);
    std::string name = f->name();
    if (!util::validSpecName(name))
        panic("workload name '%s' is not [a-z0-9_-]+", name.c_str());
    if (!i.factories.emplace(name, std::move(f)).second)
        panic("duplicate workload registration '%s'", name.c_str());
}

const WorkloadFactory *
WorkloadRegistry::find(const std::string &name) const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> l(i.m);
    auto it = i.factories.find(name);
    return it == i.factories.end() ? nullptr : it->second.get();
}

std::vector<const WorkloadFactory *>
WorkloadRegistry::list() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> l(i.m);
    std::vector<const WorkloadFactory *> out;
    out.reserve(i.factories.size());
    for (const auto &kv : i.factories)
        out.push_back(kv.second.get());
    // The name-sorted order is a contract, not a side effect of the
    // Impl container: `--list-workloads` output, unknown-spec error
    // listings and docs pins all diff against it (see
    // tests/test_chip.cc, Registries.ListingsAreNameSorted).
    std::sort(out.begin(), out.end(),
              [](const WorkloadFactory *a, const WorkloadFactory *b) {
                  return std::strcmp(a->name(), b->name()) < 0;
              });
    return out;
}

bool
WorkloadRegistry::canonicalize(WorkloadSpec &spec,
                               std::string &err) const
{
    const WorkloadFactory *f = find(spec.name);
    if (!f) {
        err = "unknown workload '" + spec.name + "'";
        std::vector<const WorkloadFactory *> known = list();
        if (!known.empty()) {
            err += " (known:";
            for (const WorkloadFactory *k : known) {
                err += ' ';
                err += k->name();
            }
            err += ')';
        }
        return false;
    }
    std::vector<SpecParamInfo> schema = f->params();
    for (const WorkloadSpec::Param &given : spec.params) {
        bool known = std::any_of(
            schema.begin(), schema.end(),
            [&](const SpecParamInfo &pi) {
                return pi.name == given.name;
            });
        if (!known) {
            err = "workload '" + spec.name +
                  "' has no parameter '" + given.name + "'";
            if (!schema.empty()) {
                err += " (takes:";
                for (const SpecParamInfo &pi : schema) {
                    err += ' ';
                    err += pi.name;
                }
                err += ')';
            } else {
                err += " (takes none)";
            }
            return false;
        }
    }
    // Rebuild the parameter list in schema order, falling back to
    // the documented schema default for anything unset, and caching
    // the typed value next to its canonical text.
    std::vector<WorkloadSpec::Param> canon;
    canon.reserve(schema.size());
    for (const SpecParamInfo &pi : schema) {
        WorkloadSpec::Param out;
        out.name = pi.name;
        const WorkloadSpec::Param *given = spec.find(pi.name);
        switch (pi.type) {
          case SpecParamType::Num: {
            double v = pi.defaultNum;
            if (given && !util::parseDouble(given->text, v)) {
                err = "workload '" + spec.name + "' parameter '" +
                      pi.name + "': '" + given->text +
                      "' is not a number";
                return false;
            }
            // NaN fails both comparisons, so it is rejected too.
            if (!(v >= pi.minNum && v <= pi.maxNum)) {
                auto g = [](double x) {
                    std::ostringstream os;
                    os.imbue(std::locale::classic());
                    os << x;
                    return os.str();
                };
                err = "workload '" + spec.name + "' parameter '" +
                      pi.name + "': " + g(v) +
                      " is out of range [" + g(pi.minNum) + ", " +
                      g(pi.maxNum) + "]";
                return false;
            }
            if (pi.integer && v != std::floor(v)) {
                err = "workload '" + spec.name + "' parameter '" +
                      pi.name + "': '" +
                      (given ? given->text : std::string()) +
                      "' must be an integer";
                return false;
            }
            // Canonical text is the 3-digit fixed form (plain
            // integer form for integer parameters), and the typed
            // value is re-parsed from it so the cache key and the
            // computation can never disagree.
            out.text = pi.integer
                           ? strprintf("%lld", (long long)v)
                           : util::fmtFixed(v, 3);
            util::parseDouble(out.text, out.num);
            break;
          }
          case SpecParamType::Str: {
            std::string v = pi.defaultStr;
            if (given)
                v = given->text;
            if (v.empty()) {
                err = "workload '" + spec.name + "' parameter '" +
                      pi.name + "' is required";
                return false;
            }
            if (!util::validSpecValue(v)) {
                err = "workload '" + spec.name + "' parameter '" +
                      pi.name + "': '" + v +
                      "' is not a [A-Za-z0-9_.-]+ value";
                return false;
            }
            out.text = v;
            break;
          }
        }
        canon.push_back(std::move(out));
    }
    spec.params = std::move(canon);
    return true;
}

namespace
{

/** 16-hex content hash of a program's canonical text. */
std::string
programHash(const std::string &canonical_text)
{
    return strprintf("%016llx",
                     (unsigned long long)util::fnv1a64(
                         canonical_text));
}

} // namespace

/**
 * The handle factory behind authored programs: `prog:name=N,hash=H`
 * resolves against the registry's program table, which
 * `addProgram()` fills.  A handle whose program was never loaded in
 * this process is a catchable SpecError — the handle alone cannot
 * reconstruct the program.  (Named, not anonymous-namespaced, so the
 * registry can befriend it for table access.)
 */
class ProgFactory final : public WorkloadFactory
{
  public:
    const char *
    name() const override
    {
        return "prog";
    }

    const char *
    description() const override
    {
        return "authored program loaded via --workload @file "
               "(content-addressed handle; see docs/WORKLOADS.md)";
    }

    std::vector<SpecParamInfo>
    params() const override
    {
        return {
            SpecParamInfo::str("name", "",
                               "program name from the text's "
                               "program: section"),
            SpecParamInfo::str("hash", "",
                               "16-hex fnv1a of the canonical "
                               "program text"),
        };
    }

    Benchmark
    make(const WorkloadSpec &spec) const override
    {
        WorkloadRegistry &reg = WorkloadRegistry::instance();
        WorkloadRegistry::Impl &i = reg.impl();
        const Benchmark *found = nullptr;
        {
            std::lock_guard<std::mutex> l(i.m);
            auto it = i.programs.find(
                {spec.text("name"), spec.text("hash")});
            if (it != i.programs.end())
                found = &it->second;
        }
        if (!found)
            throw SpecError(
                "authored program '" + spec.str() +
                "' is not loaded in this process — pass the "
                "program text via --workload @file (or "
                "WorkloadRegistry::addProgram) first");
        // Copy outside the lock: std::map nodes are stable, table
        // entries are immutable and never erased, and the deep copy
        // of a large program must not serialize sweep threads on
        // the registry mutex.
        return *found;
    }
};

MCD_REGISTER_WORKLOAD(ProgFactory);

std::string
WorkloadRegistry::addProgram(const std::string &program_text)
{
    Benchmark bm = parseProgram(program_text);
    std::string canonical = printProgram(bm);
    std::string name = bm.program.name;
    std::string hash = programHash(canonical);
    {
        Impl &i = impl();
        std::lock_guard<std::mutex> l(i.m);
        // Content-addressed: re-loading the same text is idempotent.
        i.programs.emplace(std::make_pair(name, hash), bm);
    }
    return WorkloadSpec::of("prog")
        .set("name", name)
        .set("hash", hash)
        .str();
}

Benchmark
makeWorkload(const std::string &spec_text)
{
    WorkloadSpec spec;
    std::string err;
    if (!parseWorkloadSpec(spec_text, spec, err))
        throw SpecError(err);
    if (!WorkloadRegistry::instance().canonicalize(spec, err))
        throw SpecError(err);
    return WorkloadRegistry::instance().find(spec.name)->make(spec);
}

std::string
canonicalWorkloadSpec(const std::string &spec_text)
{
    WorkloadSpec spec;
    std::string err;
    if (!parseWorkloadSpec(spec_text, spec, err))
        throw SpecError(err);
    if (!WorkloadRegistry::instance().canonicalize(spec, err))
        throw SpecError(err);
    return spec.str();
}

std::string
describeWorkloads()
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    for (const WorkloadFactory *f :
         WorkloadRegistry::instance().list()) {
        os << "  " << f->name();
        for (std::size_t n = std::strlen(f->name()); n < 14; ++n)
            os << ' ';
        os << ' ' << f->description() << '\n';
        for (const SpecParamInfo &pi : f->params()) {
            os << "      " << pi.name << "=<"
               << (pi.type == SpecParamType::Str ? "string"
                                                 : "number")
               << ">";
            if (pi.type == SpecParamType::Str && pi.defaultStr.empty())
                os << " (required)";
            else
                os << " (default "
                   << (pi.type == SpecParamType::Str
                           ? pi.defaultStr
                           : pi.integer
                                 ? strprintf("%lld",
                                             (long long)pi.defaultNum)
                                 : util::fmtFixed(pi.defaultNum, 3))
                   << ")";
            os << ": " << pi.help << '\n';
        }
    }
    return os.str();
}

WorkloadRegistrar::WorkloadRegistrar(
    std::unique_ptr<const WorkloadFactory> f)
{
    WorkloadRegistry::instance().add(std::move(f));
}

} // namespace mcd::workload
