/**
 * @file
 * Seeded procedural workload generator: samples a phase-structured
 * program — per-phase instruction mixes (domain imbalance), loop
 * nests, input-gated train/reference divergence — from a small
 * parameter space, so sweeps can scale to hundreds of scenario
 * cells (`--workload gen:phases=4,mem=0.4,seed=7`) instead of the
 * 19 hand-built suite programs.
 *
 * Determinism contract: the same canonical spec produces a
 * bit-identical `Benchmark` in every process (the registry relies
 * on this to cache generated cells under their canonical spec
 * string).
 */

#ifndef MCD_WORKLOAD_GENERATE_HH
#define MCD_WORKLOAD_GENERATE_HH

#include <vector>

#include "workload/spec.hh"
#include "workload/suite.hh"

namespace mcd::workload
{

/** Parameter schema of the `gen` workload factory (single source of
 *  truth for defaults/ranges; documented in docs/WORKLOADS.md). */
std::vector<SpecParamInfo> generatorParams();

/**
 * Generate the benchmark described by @p spec, which must be
 * canonical against `generatorParams()` (the `gen` factory
 * canonicalizes; call through `makeWorkload()` when starting from
 * text).
 */
Benchmark generate(const WorkloadSpec &spec);

} // namespace mcd::workload

#endif // MCD_WORKLOAD_GENERATE_HH
