/**
 * @file
 * Structured workload IR: programs made of functions, loops, call
 * sites and instruction blocks.
 *
 * The IR is the stand-in for application binaries
 * (docs/ARCHITECTURE.md, "IR substitution"): it
 * exposes exactly the structural boundaries that the paper's ATOM
 * phase instruments — subroutine prologues/epilogues, loop
 * headers/footers (loops = SCCs of the CFG) and call sites — while the
 * blocks inside carry statistical behaviour (instruction mix, memory
 * locality, branch predictability, ILP) that drives the cycle-level
 * simulator.
 */

#ifndef MCD_WORKLOAD_PROGRAM_HH
#define MCD_WORKLOAD_PROGRAM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "workload/instr.hh"

namespace mcd::workload
{

/** Identifier of a registered instruction mix. */
using MixId = std::uint16_t;

/**
 * Statistical description of the instructions inside a block.
 *
 * Class fractions need not sum to one; the remainder is IntAlu.
 */
struct InstructionMix
{
    /** Fraction of each instruction class (see InstrClass order). */
    std::array<double, numInstrClasses> frac{};

    /** Data working-set size in bytes. */
    std::uint64_t workingSetBytes = 64 * 1024;
    /** Fraction of memory accesses that stream sequentially. */
    double streamFrac = 0.7;
    /** Stride of streaming accesses in bytes. */
    std::uint32_t strideBytes = 8;

    /** Probability that a conditional branch deviates from its bias. */
    double branchNoise = 0.03;

    /** Probability a source depends on a very recent producer. */
    double shortDepProb = 0.55;
    /** Maximum producer distance for long dependences. */
    int maxDepDist = 24;

    /** Convenience setters for fluent construction. */
    InstructionMix &set(InstrClass c, double f);
    InstructionMix &mem(std::uint64_t ws, double stream_frac,
                        std::uint32_t stride = 8);
    InstructionMix &branches(double frac_branch, double noise);
    InstructionMix &ilp(double short_prob, int max_dist);
};

/**
 * Per-call-argument behaviour modulation.  Models "the same code
 * called with different arguments behaves differently" (e.g. epic
 * encode's internal_filter, Section 4.2) without duplicating code:
 * instruction classes stay identical, data behaviour changes.
 */
struct ArgProfile
{
    double wsMul = 1.0;      ///< working-set multiplier
    double tripMul = 1.0;    ///< loop trip-count multiplier
    double noiseAdd = 0.0;   ///< extra branch noise
    double streamMul = 1.0;  ///< multiplier on streaming fraction
};

/** One static instruction inside a block layout. */
struct StaticInstr
{
    InstrClass cls = InstrClass::IntAlu;
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    float takenBias = 0.5f;  ///< bias for conditional branches
};

/** Statement kinds within a function body. */
enum class StmtKind : std::uint8_t { Block, Loop, Call };

struct Stmt;

/** A straight-line block of @p count instructions drawn from a mix. */
struct BlockStmt
{
    MixId mix = 0;
    std::uint32_t count = 0;
    std::uint32_t blockId = 0;  ///< assigned at finalize
    std::uint64_t basePc = 0;   ///< assigned at finalize
};

/**
 * A loop.  Trip count = max(1, round(baseTrips * input.scale^scaleExp
 * * knob)), where knob is the input-set knob @ref tripKnob (1.0 when
 * unset).
 */
struct LoopStmt
{
    std::uint16_t loopId = 0;   ///< assigned at finalize
    double baseTrips = 1.0;
    double scaleExp = 1.0;      ///< 0 = fixed trips, 1 = scale w/ input
    std::string tripKnob;       ///< optional input knob multiplier
    std::uint64_t branchPc = 0; ///< back-edge branch pc (finalize)
    std::vector<Stmt> body;
};

/**
 * A call site.  The call executes per dynamic encounter with
 * probability @ref guardProb, optionally overridden by input knob
 * @ref guardKnob — this is how input-dependent code paths (mpeg2
 * decode's reference-only paths, Section 4.4) are expressed.
 */
struct CallStmt
{
    std::uint16_t siteId = 0;   ///< assigned at finalize
    std::uint16_t callee = 0;
    std::uint8_t arg = 0;       ///< selects callee ArgProfile
    double guardProb = 1.0;
    std::string guardKnob;
    std::uint64_t callPc = 0;   ///< call branch pc (finalize)
};

/** Tagged statement union. */
struct Stmt
{
    StmtKind kind = StmtKind::Block;
    BlockStmt block;
    CallStmt call;
    LoopStmt loop;
};

/** A function (subroutine). */
struct Function
{
    std::uint16_t id = 0;
    std::string name;
    std::vector<Stmt> body;
    std::vector<ArgProfile> argProfiles;  ///< index 0 = default
    std::uint64_t basePc = 0;   ///< assigned at finalize
    std::uint64_t retPc = 0;    ///< return branch pc (finalize)
};

/**
 * A complete workload program.  Instances are immutable after
 * ProgramBuilder::build(); the streamer executes them.
 */
struct Program
{
    std::string name;
    std::vector<Function> functions;
    std::vector<InstructionMix> mixes;
    std::vector<std::vector<StaticInstr>> blockLayouts;
    std::uint16_t entry = 0;
    std::uint16_t numLoops = 0;
    std::uint16_t numCallSites = 0;
    /** Seed the static block layouts were materialized from; kept so
     *  the authoring format can round-trip a program exactly. */
    std::uint64_t layoutSeed = 0;

    const Function &function(std::uint16_t id) const;
    const Function *findFunction(const std::string &name) const;
};

/**
 * An input data set: global scale plus named behaviour knobs.
 * Training and reference sets of one benchmark share the program but
 * differ in scale/seed/knobs (Table 2 of the paper).
 */
struct InputSet
{
    std::string name = "train";
    std::uint64_t seed = 1;
    double scale = 1.0;
    std::vector<std::pair<std::string, double>> knobs;

    /** Look up a knob, returning @p dflt when absent. */
    double knob(const std::string &key, double dflt) const;

    InputSet &with(const std::string &key, double value);
};

/**
 * Fluent builder for Program.
 *
 * Function bodies are built with an implicit cursor; loop() takes a
 * callback that fills the loop body.  Entity ids (functions, loops,
 * call sites, blocks) are assigned automatically; pcs are laid out at
 * build() so that instruction fetch sees a stable, realistic code
 * footprint.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string program_name);

    /** Register an instruction mix, returning its id. */
    MixId mix(const InstructionMix &m);

    /**
     * Start a new function; subsequent block/loop/call statements are
     * appended to it.  Returns the function id.
     */
    std::uint16_t func(const std::string &name);

    /** Set per-arg behaviour profiles of the current function. */
    void argProfiles(std::vector<ArgProfile> profiles);

    /** Append a straight-line block of @p count instructions. */
    void block(MixId m, std::uint32_t count);

    /**
     * Append a loop. @p fill is invoked immediately to populate the
     * loop body through this same builder.
     */
    void loop(double base_trips, double scale_exp,
              const std::function<void()> &fill);

    /** Loop whose trip count is additionally scaled by a knob. */
    void loopK(double base_trips, double scale_exp,
               const std::string &trip_knob,
               const std::function<void()> &fill);

    /** Append a call to @p callee_name (must already exist). */
    void call(const std::string &callee_name, std::uint8_t arg = 0,
              double guard_prob = 1.0, const std::string &guard_knob = "");

    /**
     * Finalize: resolve entry function, assign ids and pcs, and
     * materialize static block layouts (deterministic in the layout
     * seed so the same program always has identical code).
     */
    Program build(const std::string &entry_name,
                  std::uint64_t layout_seed = 12345);

  private:
    std::vector<Stmt> *currentList();

    Program prog;
    std::vector<std::vector<Stmt> *> listStack;
    int currentFunc = -1;
};

/**
 * Finalize a hand-assembled program in place: assign block/loop/call
 * ids and pcs and materialize the static block layouts from
 * @p layout_seed (deterministic: the same structure and seed always
 * yield identical layouts).  `ProgramBuilder::build()` and the
 * authoring-format parser share this single definition.
 * @pre entry and mix indices are valid; blockLayouts is empty.
 */
void finalizeLayout(Program &prog, std::uint64_t layout_seed);

} // namespace mcd::workload

#endif // MCD_WORKLOAD_PROGRAM_HH
