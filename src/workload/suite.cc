#include "workload/suite.hh"

#include "util/logging.hh"
#include "workload/registry.hh"

namespace mcd::workload
{

namespace
{

using IC = InstrClass;

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/** Integer mix: no FP at all (FP domain idles). */
InstructionMix
intMix(double ld, double st, double br, std::uint64_t ws, double stream,
       double noise = 0.03)
{
    InstructionMix m;
    m.set(IC::Load, ld).set(IC::Store, st);
    m.branches(br, noise);
    m.mem(ws, stream);
    return m;
}

/** Integer DSP mix with multiplies (adpcm/gsm style). */
InstructionMix
dspMix(double ld, double st, double br, double mul, std::uint64_t ws,
       double stream, double noise = 0.02)
{
    InstructionMix m = intMix(ld, st, br, ws, stream, noise);
    m.set(IC::IntMul, mul);
    return m;
}

/** Floating-point mix (int domain only does bookkeeping). */
InstructionMix
fpMix(double fadd, double fmul, double ld, double st, double br,
      std::uint64_t ws, double stream, double noise = 0.01)
{
    InstructionMix m;
    m.set(IC::FpAdd, fadd).set(IC::FpMul, fmul);
    m.set(IC::Load, ld).set(IC::Store, st);
    m.branches(br, noise);
    m.mem(ws, stream);
    return m;
}

/** Memory-bound mix: large working set, mostly random accesses. */
InstructionMix
memMix(double ld, double st, double br, std::uint64_t ws,
       double stream = 0.15, double noise = 0.08)
{
    InstructionMix m = intMix(ld, st, br, ws, stream, noise);
    m.ilp(0.35, 32);
    return m;
}

InputSet
in(const std::string &name, std::uint64_t seed, double scale)
{
    InputSet s;
    s.name = name;
    s.seed = seed;
    s.scale = scale;
    return s;
}

// ---------------------------------------------------------------------
// MediaBench
// ---------------------------------------------------------------------

/**
 * adpcm: tiny working set, pure-integer DSP kernel dominated by one
 * sample loop.  Loop-level reconfiguration reduces both degradation
 * and savings relative to function level (Section 4.2).
 */
Benchmark
makeAdpcm(bool encode)
{
    ProgramBuilder b(encode ? "adpcm_encode" : "adpcm_decode");
    MixId kernel = b.mix(dspMix(0.22, 0.08, encode ? 0.18 : 0.14,
                                encode ? 0.03 : 0.02, 4 * KB, 0.85,
                                encode ? 0.05 : 0.03));
    MixId setup = b.mix(intMix(0.25, 0.15, 0.10, 8 * KB, 0.9));

    b.func("adpcm_coder");
    b.block(kernel, encode ? 68 : 52);

    b.func("main");
    b.block(setup, 180);
    b.loop(3200, 1.0, [&] { b.call("adpcm_coder"); });
    b.block(setup, 120);

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 11, 1.0);
    bm.ref = in("ref", 12, 1.6);
    return bm;
}

/**
 * epic decode: pyramid reconstruction — FP inverse filtering over a
 * streaming image, then integer write-out.
 */
Benchmark
makeEpicDecode()
{
    ProgramBuilder b("epic_decode");
    MixId huff = b.mix(intMix(0.24, 0.06, 0.20, 64 * KB, 0.6, 0.10));
    MixId filt = b.mix(fpMix(0.24, 0.18, 0.26, 0.10, 0.05, 512 * KB, 0.9));
    MixId emit = b.mix(intMix(0.18, 0.30, 0.08, 256 * KB, 0.95));

    b.func("collapse_pyr");
    b.loop(26, 0.6, [&] { b.block(filt, 450); });

    b.func("unquantize_image");
    b.loop(40, 0.6, [&] { b.block(huff, 300); });

    b.func("read_and_huffman_decode");
    b.loop(30, 0.6, [&] { b.block(huff, 380); });

    b.func("write_pgm_image");
    b.loop(24, 0.6, [&] { b.block(emit, 350); });

    b.func("main");
    b.call("read_and_huffman_decode");
    b.call("unquantize_image");
    b.loop(5, 0.8, [&] { b.call("collapse_pyr"); });
    b.call("write_pgm_image");

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 21, 1.0);
    bm.ref = in("ref", 22, 1.15);
    return bm;
}

/**
 * epic encode: build_level calls internal_filter from six different
 * call sites, each invocation with different behaviour — the paper's
 * example where call-site tracking (L+F+C+P / F+C+P) buys extra
 * energy (Section 4.2).
 */
Benchmark
makeEpicEncode()
{
    ProgramBuilder b("epic_encode");
    MixId conv = b.mix(fpMix(0.26, 0.20, 0.24, 0.08, 0.05, 1 * MB, 0.9));
    MixId quant = b.mix(intMix(0.22, 0.12, 0.14, 256 * KB, 0.8, 0.05));
    MixId huff = b.mix(intMix(0.22, 0.08, 0.22, 64 * KB, 0.5, 0.12));
    MixId setup = b.mix(intMix(0.22, 0.10, 0.10, 64 * KB, 0.9));

    b.func("internal_filter");
    // Six ArgProfiles: low-pass rows/cols, high-pass rows/cols,
    // diagonal, residual — different data shapes per call site.
    b.argProfiles({
        ArgProfile{1.0, 1.0, 0.00, 1.0},
        ArgProfile{0.5, 1.6, 0.00, 1.0},
        ArgProfile{2.0, 0.7, 0.02, 0.6},
        ArgProfile{1.0, 2.2, 0.00, 1.0},
        ArgProfile{4.0, 0.5, 0.04, 0.3},
        ArgProfile{0.25, 1.2, 0.00, 1.0},
    });
    b.loop(30, 0.5, [&] { b.block(conv, 420); });

    b.func("build_level");
    b.call("internal_filter", 0);
    b.call("internal_filter", 1);
    b.call("internal_filter", 2);
    b.call("internal_filter", 3);
    b.call("internal_filter", 4);
    b.call("internal_filter", 5);

    b.func("quantize_image");
    b.loop(35, 0.7, [&] { b.block(quant, 320); });

    b.func("run_length_encode_zeros");
    b.loop(28, 0.7, [&] { b.block(huff, 260); });

    b.func("main");
    b.block(setup, 400);
    b.loop(4, 0.7, [&] { b.call("build_level"); });
    b.call("quantize_image");
    b.call("run_length_encode_zeros");

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 31, 1.0);
    bm.ref = in("ref", 32, 1.1);
    return bm;
}

/**
 * g721: one dominant predictor-update kernel; the call tree has a
 * single long-running node (Table 3).
 */
Benchmark
makeG721(bool encode)
{
    ProgramBuilder b(encode ? "g721_encode" : "g721_decode");
    MixId kernel = b.mix(dspMix(0.24, 0.10, 0.16, 0.05, 8 * KB, 0.8,
                                0.04));
    b.func("main");
    b.loop(4000, 1.0, [&] { b.block(kernel, encode ? 95 : 80); });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", encode ? 41 : 42, 1.0);
    bm.ref = in("ref", encode ? 43 : 44, 1.0);
    return bm;
}

/**
 * gsm: frame loop calling the LPC/LTP filter kernels; very high
 * dynamic reconfiguration counts (Table 4).
 */
Benchmark
makeGsm(bool encode)
{
    ProgramBuilder b(encode ? "gsm_encode" : "gsm_decode");
    MixId lpc = b.mix(dspMix(0.24, 0.08, 0.12, 0.10, 16 * KB, 0.85));
    MixId ltp = b.mix(dspMix(0.26, 0.10, 0.14, 0.06, 32 * KB, 0.7,
                             0.05));
    MixId frame = b.mix(intMix(0.20, 0.12, 0.12, 16 * KB, 0.8));

    MixId rpe = b.mix(dspMix(0.22, 0.10, 0.10, 0.12, 8 * KB, 0.9));

    b.func("short_term_filter");
    b.loop(14, 0.0, [&] { b.block(lpc, 220); });

    b.func("long_term_predictor");
    b.loop(10, 0.0, [&] { b.block(ltp, 200); });

    b.func("rpe_decoding");
    b.loop(8, 0.0, [&] { b.block(rpe, 130); });

    if (encode) {
        b.func("preprocess");
        b.loop(8, 0.0, [&] { b.block(frame, 150); });
    }

    b.func("process_frame");
    if (encode)
        b.call("preprocess");
    b.call("rpe_decoding");
    b.call("long_term_predictor");
    b.call("short_term_filter");
    b.block(frame, 120);

    b.func("main");
    b.loop(55, 1.0, [&] { b.call("process_frame"); });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", encode ? 51 : 52, 1.0);
    bm.ref = in("ref", encode ? 53 : 54, 1.6);
    return bm;
}

/**
 * jpeg: block pipeline — DCT (integer multiplies), quantization,
 * entropy coding.
 */
Benchmark
makeJpeg(bool compress)
{
    ProgramBuilder b(compress ? "jpeg_compress" : "jpeg_decompress");
    MixId dct = b.mix(dspMix(0.22, 0.10, 0.06, 0.16, 32 * KB, 0.85));
    MixId quant = b.mix(intMix(0.24, 0.12, 0.10, 16 * KB, 0.9));
    MixId huff = b.mix(intMix(0.22, 0.08, 0.24, 32 * KB, 0.5, 0.12));
    MixId color = b.mix(dspMix(0.26, 0.14, 0.06, 0.10, 128 * KB, 0.95));

    MixId samp = b.mix(dspMix(0.24, 0.16, 0.08, 0.08, 64 * KB, 0.9));
    MixId marker = b.mix(intMix(0.22, 0.12, 0.14, 8 * KB, 0.8));

    b.func("emit_bits");
    b.block(huff, 70);

    b.func("forward_dct");
    b.loop(9, 0.0, [&] { b.block(dct, 160); });

    b.func("quantize_block");
    b.block(quant, 220);

    b.func("entropy_codec");
    b.block(huff, 120);
    b.call("emit_bits");
    b.block(huff, 80);

    b.func("color_convert_row");
    b.loop(6, 0.0, [&] { b.block(color, 180); });

    b.func("downsample_row");
    b.loop(4, 0.0, [&] { b.block(samp, 120); });

    b.func("process_mcu");
    if (compress) {
        b.call("color_convert_row");
        b.call("downsample_row");
        b.call("forward_dct");
        b.call("quantize_block");
        b.call("entropy_codec");
    } else {
        b.call("entropy_codec");
        b.call("quantize_block");  // dequantize: same code path
        b.call("forward_dct");     // inverse DCT: same kernel shape
        b.call("downsample_row");  // upsampling: same shape
        b.call("color_convert_row");
    }

    b.func("write_markers");
    b.block(marker, 100);

    b.func("main");
    b.call("write_markers");
    b.loop(compress ? 95 : 70, 1.0, [&] { b.call("process_mcu"); });
    b.call("write_markers");

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", compress ? 61 : 62, 1.0);
    bm.ref = in("ref", compress ? 63 : 64, compress ? 2.2 : 2.0);
    return bm;
}

/**
 * mpeg2 decode: the reference input decodes B-frames, exercising call
 * paths that never occur during training (coverage ~0.6 in Table 3;
 * L+F vs path-tracking divergence in Figures 8/9).  The idct helper
 * is reachable over multiple paths.
 */
Benchmark
makeMpeg2Decode()
{
    ProgramBuilder b("mpeg2_decode");
    MixId idctm = b.mix(dspMix(0.22, 0.10, 0.06, 0.15, 32 * KB, 0.85));
    MixId vlc = b.mix(intMix(0.24, 0.06, 0.24, 64 * KB, 0.5, 0.12));
    MixId mc = b.mix(memMix(0.30, 0.14, 0.10, 2 * MB, 0.6));
    MixId hdr = b.mix(intMix(0.20, 0.08, 0.16, 16 * KB, 0.7));

    b.func("idct_block");
    b.loop(8, 0.0, [&] { b.block(idctm, 150); });

    b.func("vlc_decode_block");
    b.block(vlc, 240);

    b.func("motion_compensate");
    b.loop(6, 0.0, [&] { b.block(mc, 180); });

    b.func("decode_intra_mb");
    b.call("vlc_decode_block");
    b.call("idct_block");

    b.func("decode_bpred_mb");
    b.call("vlc_decode_block");
    b.call("motion_compensate");
    b.call("idct_block");  // same helper, different path

    b.func("picture_data");
    b.block(hdr, 120);
    b.loop(22, 0.6, [&] { b.call("decode_intra_mb"); });
    // B-frame macroblocks: never during training, ~40% of reference.
    b.loopK(18, 0.6, "bframes",
            [&] { b.call("decode_bpred_mb", 0, 1.0, "bframe_mb"); });

    b.func("main");
    b.loop(10, 1.0, [&] { b.call("picture_data"); });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 71, 1.0);
    bm.train.with("bframes", 0.06).with("bframe_mb", 0.0);
    bm.ref = in("ref", 72, 1.3);
    bm.ref.with("bframes", 1.0).with("bframe_mb", 0.85);
    return bm;
}

/**
 * mpeg2 encode: motion estimation dominates; subroutines contain
 * multiple long-running loop nests (loop-level reconfiguration gains
 * energy at slight extra slowdown, Section 4.2).
 */
Benchmark
makeMpeg2Encode()
{
    ProgramBuilder b("mpeg2_encode");
    MixId sad = b.mix(memMix(0.34, 0.04, 0.12, 4 * MB, 0.55, 0.06));
    MixId dct = b.mix(dspMix(0.22, 0.10, 0.06, 0.15, 32 * KB, 0.85));
    MixId vlc = b.mix(intMix(0.22, 0.08, 0.22, 64 * KB, 0.5, 0.10));
    MixId pred = b.mix(fpMix(0.12, 0.10, 0.28, 0.10, 0.08, 1 * MB, 0.7));
    MixId hdr = b.mix(intMix(0.20, 0.08, 0.14, 16 * KB, 0.8));

    b.func("fullsearch");
    // Two separate long-running loop nests in one subroutine.
    b.loop(30, 0.5, [&] { b.block(sad, 260); });
    b.loop(22, 0.5, [&] { b.block(sad, 240); });

    b.func("transform_mb");
    b.loop(8, 0.0, [&] { b.block(dct, 150); });

    b.func("rate_control");
    b.block(pred, 200);

    b.func("putpict_vlc");
    b.loop(16, 0.5, [&] { b.block(vlc, 220); });

    b.func("encode_picture");
    b.block(hdr, 150);
    b.loop(9, 0.6, [&] { b.call("fullsearch"); });
    b.loop(14, 0.6, [&] { b.call("transform_mb"); });
    b.call("rate_control");
    b.call("putpict_vlc");

    b.func("main");
    b.loop(6, 1.0, [&] { b.call("encode_picture"); });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 81, 1.0);
    bm.ref = in("ref", 82, 1.25);
    return bm;
}

// ---------------------------------------------------------------------
// SPEC CPU2000
// ---------------------------------------------------------------------

/**
 * gzip: deflate with longest_match inner search; deep-ish call tree
 * with rare paths, training/reference coverage ~0.93.
 */
Benchmark
makeGzip()
{
    ProgramBuilder b("gzip");
    MixId match = b.mix(intMix(0.30, 0.04, 0.22, 256 * KB, 0.35, 0.10));
    MixId window = b.mix(intMix(0.26, 0.20, 0.08, 512 * KB, 0.95));
    MixId tree = b.mix(intMix(0.22, 0.10, 0.20, 64 * KB, 0.4, 0.10));
    MixId crc = b.mix(intMix(0.28, 0.06, 0.06, 32 * KB, 0.98));
    MixId io = b.mix(intMix(0.22, 0.22, 0.10, 128 * KB, 0.95));

    b.func("longest_match");
    b.loop(12, 0.3, [&] { b.block(match, 90); });

    b.func("fill_window");
    b.loop(8, 0.3, [&] { b.block(window, 160); });

    b.func("updcrc");
    b.block(crc, 140);

    b.func("build_tree");
    b.loop(6, 0.0, [&] { b.block(tree, 180); });

    b.func("compress_block");
    b.call("build_tree");
    b.loop(10, 0.4, [&] { b.block(tree, 150); });

    b.func("flush_block");
    b.call("compress_block");
    b.block(io, 120);

    b.func("deflate");
    b.loop(60, 1.0, [&] {
        b.call("longest_match");
        b.call("fill_window", 0, 0.45);
        b.call("updcrc", 0, 0.6);
        // Stored/ascii side paths occur rarely and differ by input.
        b.call("flush_block", 0, 0.3);
    });
    b.call("flush_block");

    b.func("file_read");
    b.loop(5, 0.5, [&] { b.block(io, 200); });

    b.func("main");
    b.call("file_read");
    b.call("deflate");
    b.call("file_read", 0, 0.5);
    b.call("deflate", 0, 0.5);

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 91, 1.0);
    bm.ref = in("ref", 92, 1.8);
    return bm;
}

/**
 * vpr: training exercises placement, reference mostly routing — the
 * two runs share almost no long-running nodes (coverage ~0.1 in
 * Table 3).
 */
Benchmark
makeVpr()
{
    ProgramBuilder b("vpr");
    MixId swap = b.mix(intMix(0.26, 0.10, 0.18, 1 * MB, 0.3, 0.10));
    MixId cost = b.mix(fpMix(0.18, 0.12, 0.24, 0.06, 0.10, 512 * KB,
                             0.4));
    MixId maze = b.mix(memMix(0.32, 0.12, 0.14, 8 * MB, 0.25, 0.08));
    MixId heap = b.mix(intMix(0.26, 0.14, 0.20, 256 * KB, 0.3, 0.10));
    MixId util = b.mix(intMix(0.22, 0.10, 0.12, 64 * KB, 0.7));

    b.func("check_graph");  // shared utility, long-running in both
    b.loop(18, 0.5, [&] { b.block(util, 160); });

    b.func("comp_delta_cost");
    b.loop(6, 0.0, [&] { b.block(cost, 120); });

    b.func("try_swap");
    b.block(swap, 180);
    b.call("comp_delta_cost");

    b.func("try_place");
    b.loopK(120, 1.0, "place_iters", [&] { b.call("try_swap"); });

    b.func("add_to_heap");
    b.block(heap, 90);

    b.func("expand_neighbours");
    b.loop(5, 0.0, [&] { b.block(maze, 110); });
    b.call("add_to_heap");

    b.func("route_net");
    b.loopK(90, 1.0, "route_iters", [&] { b.call("expand_neighbours"); });

    b.func("main");
    b.call("check_graph");
    // The two phases are input-gated: the training input places, the
    // reference input routes, so the two call trees share almost no
    // nodes (Table 3's vpr coverage ~0.1).
    b.loop(3, 0.0, [&] {
        b.call("try_place", 0, 1.0, "do_place");
        b.call("route_net", 0, 1.0, "do_route");
    });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 101, 1.0);
    bm.train.with("do_place", 1.0).with("do_route", 0.01)
        .with("place_iters", 0.4).with("route_iters", 0.4);
    bm.ref = in("ref", 102, 1.3);
    bm.ref.with("do_place", 0.01).with("do_route", 1.0)
        .with("place_iters", 0.4).with("route_iters", 0.6);
    return bm;
}

/**
 * mcf: network simplex — pointer chasing over a many-megabyte arc
 * array; heavily memory bound, FP idle.
 */
Benchmark
makeMcf()
{
    ProgramBuilder b("mcf");
    MixId chase = b.mix(memMix(0.38, 0.06, 0.16, 24 * MB, 0.1, 0.07));
    MixId price = b.mix(memMix(0.32, 0.12, 0.14, 16 * MB, 0.35));
    MixId basket = b.mix(intMix(0.24, 0.12, 0.18, 512 * KB, 0.5, 0.08));

    MixId tree_up = b.mix(memMix(0.34, 0.10, 0.14, 12 * MB, 0.2));
    MixId flow = b.mix(memMix(0.30, 0.16, 0.12, 8 * MB, 0.3));

    b.func("refresh_potential");
    b.loop(10, 0.5, [&] { b.block(chase, 200); });

    b.func("price_out_impl");
    b.loop(12, 0.5, [&] { b.block(price, 220); });

    b.func("primal_bea_mpp");
    b.loop(8, 0.5, [&] { b.block(basket, 180); });

    b.func("update_tree");
    b.loop(6, 0.4, [&] { b.block(tree_up, 160); });

    b.func("primal_iminus");
    b.block(flow, 140);

    b.func("flow_cost");
    b.loop(7, 0.5, [&] { b.block(flow, 150); });

    b.func("primal_net_simplex");
    b.loop(20, 1.0, [&] {
        b.call("primal_bea_mpp");
        b.call("primal_iminus", 0, 0.7);
        b.call("update_tree", 0, 0.7);
        b.call("refresh_potential", 0, 0.4);
        b.call("price_out_impl", 0, 0.6);
    });

    b.func("main");
    b.call("primal_net_simplex");
    b.call("flow_cost");

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 111, 1.0);
    bm.ref = in("ref", 112, 1.5);
    return bm;
}

/**
 * swim: shallow-water stencil loops; the reference grid promotes
 * extra loops over the 10k-instruction threshold, so training nodes
 * are a strict subset of reference nodes (Table 3).
 */
Benchmark
makeSwim()
{
    ProgramBuilder b("swim");
    MixId stencil = b.mix(fpMix(0.28, 0.18, 0.26, 0.10, 0.04, 8 * MB,
                                0.97));
    MixId small = b.mix(fpMix(0.24, 0.14, 0.24, 0.12, 0.06, 1 * MB,
                              0.95));

    b.func("calc1");
    b.loopK(40, 0.7, "grid", [&] { b.block(stencil, 300); });

    b.func("calc2");
    b.loopK(38, 0.7, "grid", [&] { b.block(stencil, 320); });

    b.func("calc3");
    // Two nests; the second is short on the training grid and only
    // crosses the 10k threshold on the reference grid.
    b.loopK(36, 0.7, "grid", [&] { b.block(stencil, 280); });
    b.loopK(14, 0.7, "grid", [&] { b.block(small, 60); });

    b.func("smooth");
    b.loopK(12, 0.7, "grid", [&] { b.block(small, 70); });

    b.func("main");
    b.loop(8, 1.0, [&] {
        b.call("calc1");
        b.call("calc2");
        b.call("calc3");
        b.call("smooth", 0, 0.5);
    });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 121, 1.0);
    bm.train.with("grid", 0.55);
    bm.ref = in("ref", 122, 1.2);
    bm.ref.with("grid", 1.5);
    return bm;
}

/**
 * applu: SSOR solver; five subroutines each with more than one
 * long-running loop nest — loop-level reconfiguration executes ~3
 * orders of magnitude more often than function level (Section 4.2).
 */
Benchmark
makeApplu()
{
    ProgramBuilder b("applu");
    MixId lower = b.mix(fpMix(0.30, 0.22, 0.24, 0.08, 0.03, 4 * MB,
                              0.95));
    MixId upper = b.mix(fpMix(0.28, 0.24, 0.24, 0.08, 0.03, 4 * MB,
                              0.95));
    MixId rhsm = b.mix(fpMix(0.26, 0.18, 0.28, 0.10, 0.04, 6 * MB,
                             0.96));

    MixId norm = b.mix(fpMix(0.30, 0.16, 0.26, 0.06, 0.04, 2 * MB,
                             0.96));
    MixId bc = b.mix(fpMix(0.22, 0.14, 0.26, 0.14, 0.05, 1 * MB,
                           0.95));

    b.func("exact");
    b.block(bc, 90);

    b.func("jacld");
    b.loop(26, 0.6, [&] { b.block(lower, 240); });
    b.loop(20, 0.6, [&] { b.block(lower, 200); });
    b.loop(12, 0.6, [&] { b.block(lower, 120); });

    b.func("blts");
    b.loop(24, 0.6, [&] { b.block(lower, 230); });
    b.loop(18, 0.6, [&] { b.block(lower, 190); });

    b.func("jacu");
    b.loop(26, 0.6, [&] { b.block(upper, 240); });
    b.loop(20, 0.6, [&] { b.block(upper, 200); });
    b.loop(12, 0.6, [&] { b.block(upper, 120); });

    b.func("buts");
    b.loop(24, 0.6, [&] { b.block(upper, 230); });
    b.loop(18, 0.6, [&] { b.block(upper, 190); });

    b.func("rhs");
    b.loop(22, 0.6, [&] { b.block(rhsm, 260); });
    b.loop(16, 0.6, [&] { b.block(rhsm, 210); });
    b.loop(14, 0.6, [&] { b.block(rhsm, 160); });

    b.func("l2norm");
    b.loop(10, 0.6, [&] { b.block(norm, 140); });

    b.func("setbv");
    b.loop(6, 0.4, [&] {
        b.block(bc, 80);
        b.call("exact");
    });

    b.func("ssor");
    b.call("jacld");
    b.call("blts");
    b.call("jacu");
    b.call("buts");
    b.call("rhs");
    b.call("l2norm", 0, 0.5);

    b.func("main");
    b.call("setbv");
    b.loop(5, 1.0, [&] { b.call("ssor"); });
    b.call("l2norm");

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 131, 1.0);
    bm.ref = in("ref", 132, 1.3);
    return bm;
}

/**
 * art: neural-net image matching; the core computation is one loop
 * with seven sub-loops (Section 4.2).
 */
Benchmark
makeArt()
{
    ProgramBuilder b("art");
    MixId f1 = b.mix(fpMix(0.26, 0.22, 0.28, 0.06, 0.04, 12 * MB,
                           0.9));
    MixId f2 = b.mix(fpMix(0.30, 0.16, 0.26, 0.08, 0.04, 8 * MB,
                           0.92));
    MixId cmp = b.mix(fpMix(0.20, 0.12, 0.30, 0.04, 0.10, 4 * MB,
                            0.85, 0.04));

    b.func("compute_train_match");
    b.loop(6, 0.7, [&] {
        b.loop(8, 0.4, [&] { b.block(f1, 180); });
        b.loop(7, 0.4, [&] { b.block(f1, 160); });
        b.loop(8, 0.4, [&] { b.block(f2, 170); });
        b.loop(6, 0.4, [&] { b.block(f2, 150); });
        b.loop(7, 0.4, [&] { b.block(f1, 140); });
        b.loop(6, 0.4, [&] { b.block(cmp, 130); });
        b.loop(5, 0.4, [&] { b.block(cmp, 120); });
    });

    b.func("reset_nodes");
    b.block(cmp, 90);

    b.func("compute_values_match");
    b.loop(5, 0.5, [&] {
        b.loop(6, 0.4, [&] { b.block(f1, 150); });
        b.loop(5, 0.4, [&] { b.block(f2, 140); });
    });

    b.func("match");
    b.call("reset_nodes");
    b.call("compute_train_match");
    b.call("compute_values_match");
    b.block(cmp, 100);

    b.func("main");
    b.loop(7, 1.0, [&] { b.call("match"); });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 141, 1.0);
    bm.ref = in("ref", 142, 1.4);
    return bm;
}

/**
 * equake: sparse matrix-vector product inside a time-step loop;
 * stable call tree across inputs.
 */
Benchmark
makeEquake()
{
    ProgramBuilder b("equake");
    MixId smvp = b.mix(fpMix(0.26, 0.20, 0.30, 0.06, 0.05, 10 * MB,
                             0.45));
    MixId tstep = b.mix(fpMix(0.28, 0.16, 0.24, 0.12, 0.04, 2 * MB,
                              0.9));

    MixId phi = b.mix(fpMix(0.26, 0.22, 0.22, 0.06, 0.06, 512 * KB,
                            0.8));
    MixId disp = b.mix(fpMix(0.24, 0.14, 0.28, 0.12, 0.04, 4 * MB,
                             0.92));

    b.func("phi0");
    b.block(phi, 60);
    b.func("phi1");
    b.block(phi, 70);
    b.func("phi2");
    b.block(phi, 65);

    b.func("smvp");
    b.loop(30, 0.7, [&] { b.block(smvp, 240); });

    b.func("time_integration");
    b.block(tstep, 130);
    b.call("phi0");
    b.call("phi1");
    b.call("phi2");
    b.block(tstep, 130);

    b.func("disp_update");
    b.loop(8, 0.6, [&] { b.block(disp, 150); });

    b.func("main");
    b.loop(12, 1.0, [&] {
        b.call("smvp");
        b.call("time_integration");
        b.call("disp_update");
    });

    Benchmark bm;
    bm.program = b.build("main");
    bm.train = in("train", 151, 1.0);
    bm.ref = in("ref", 152, 1.5);
    return bm;
}

} // namespace

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "adpcm_decode", "adpcm_encode",
        "epic_decode", "epic_encode",
        "g721_decode", "g721_encode",
        "gsm_decode", "gsm_encode",
        "jpeg_compress", "jpeg_decompress",
        "mpeg2_decode", "mpeg2_encode",
        "gzip", "vpr", "mcf",
        "swim", "applu", "art", "equake",
    };
    return names;
}

bool
isSuiteBenchmark(const std::string &name)
{
    for (const auto &n : suiteNames())
        if (n == name)
            return true;
    return false;
}

Benchmark
makeBenchmark(const std::string &name)
{
    // Route through the registry so a suite name, a generator spec
    // and an authored-program handle all resolve — and fail — the
    // same way: an unknown name is a catchable SpecError listing
    // every registered workload, not a fatal().
    return makeWorkload(name);
}

namespace detail
{

Benchmark
buildSuiteBenchmark(const std::string &name)
{
    if (name == "adpcm_decode") return makeAdpcm(false);
    if (name == "adpcm_encode") return makeAdpcm(true);
    if (name == "epic_decode") return makeEpicDecode();
    if (name == "epic_encode") return makeEpicEncode();
    if (name == "g721_decode") return makeG721(false);
    if (name == "g721_encode") return makeG721(true);
    if (name == "gsm_decode") return makeGsm(false);
    if (name == "gsm_encode") return makeGsm(true);
    if (name == "jpeg_compress") return makeJpeg(true);
    if (name == "jpeg_decompress") return makeJpeg(false);
    if (name == "mpeg2_decode") return makeMpeg2Decode();
    if (name == "mpeg2_encode") return makeMpeg2Encode();
    if (name == "gzip") return makeGzip();
    if (name == "vpr") return makeVpr();
    if (name == "mcf") return makeMcf();
    if (name == "swim") return makeSwim();
    if (name == "applu") return makeApplu();
    if (name == "art") return makeArt();
    if (name == "equake") return makeEquake();
    panic("'%s' is not a suite benchmark", name.c_str());
}

const char *
suiteDescription(const std::string &name)
{
    if (name == "adpcm_decode")
        return "MediaBench adpcm decode: tiny-footprint integer "
               "DSP sample loop";
    if (name == "adpcm_encode")
        return "MediaBench adpcm encode: tiny-footprint integer "
               "DSP sample loop";
    if (name == "epic_decode")
        return "MediaBench epic decode: FP pyramid reconstruction "
               "+ integer write-out";
    if (name == "epic_encode")
        return "MediaBench epic encode: internal_filter from six "
               "call sites (context-sensitive)";
    if (name == "g721_decode")
        return "MediaBench g721 decode: one dominant "
               "predictor-update kernel";
    if (name == "g721_encode")
        return "MediaBench g721 encode: one dominant "
               "predictor-update kernel";
    if (name == "gsm_decode")
        return "MediaBench gsm decode: per-frame LPC/LTP filter "
               "phases";
    if (name == "gsm_encode")
        return "MediaBench gsm encode: per-frame LPC/LTP filter "
               "phases";
    if (name == "jpeg_compress")
        return "MediaBench jpeg compress: DCT/quantize/entropy "
               "block pipeline";
    if (name == "jpeg_decompress")
        return "MediaBench jpeg decompress: entropy/dequantize/IDCT "
               "block pipeline";
    if (name == "mpeg2_decode")
        return "MediaBench mpeg2 decode: B-frame paths unseen "
               "during training";
    if (name == "mpeg2_encode")
        return "MediaBench mpeg2 encode: motion-estimation loop "
               "nests dominate";
    if (name == "gzip")
        return "SPEC gzip: deflate with longest_match search, rare "
               "side paths";
    if (name == "vpr")
        return "SPEC vpr: training places, reference routes "
               "(coverage ~0.1)";
    if (name == "mcf")
        return "SPEC mcf: pointer-chasing network simplex, memory "
               "bound";
    if (name == "swim")
        return "SPEC swim: FP shallow-water stencils, "
               "grid-dependent node set";
    if (name == "applu")
        return "SPEC applu: SSOR solver, multiple loop nests per "
               "subroutine";
    if (name == "art")
        return "SPEC art: neural-net matching, one loop with seven "
               "sub-loops";
    if (name == "equake")
        return "SPEC equake: sparse matrix-vector product, stable "
               "call tree";
    panic("'%s' is not a suite benchmark", name.c_str());
}

} // namespace detail

} // namespace mcd::workload
