#include "workload/generate.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace mcd::workload
{

std::vector<SpecParamInfo>
generatorParams()
{
    return {
        SpecParamInfo::integerNum(
            "phases", 4,
            "number of top-level phase functions", 1, 32),
        SpecParamInfo::num(
            "mem", 0.3,
            "memory-boundedness: grows working sets, lowers "
            "streaming fraction", 0.0, 1.0),
        SpecParamInfo::num(
            "fp", 0.3,
            "probability a phase is floating-point-dominated", 0.0,
            1.0),
        SpecParamInfo::integerNum(
            "depth", 2, "maximum loop-nest depth inside a phase", 1,
            3),
        SpecParamInfo::num(
            "diverge", 0.2,
            "train/reference divergence: probability a phase is "
            "input-gated to one of the two runs", 0.0, 1.0),
        SpecParamInfo::num(
            "imbalance", 0.5,
            "domain imbalance: how hard each phase's mix skews "
            "toward its dominant domain", 0.0, 1.0),
        SpecParamInfo::num(
            "refscale", 1.4,
            "reference input scale relative to training", 1.0, 8.0),
        SpecParamInfo::integerNum(
            "seed", 1,
            "generator seed: same canonical spec, bit-identical "
            "program", 0, 9007199254740992.0),
    };
}

namespace
{

/** Linear interpolation. */
double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

/** One phase's sampled character. */
struct PhaseShape
{
    MixId mix = 0;
    int depth = 1;
    /** "" = always runs; otherwise the gate knob name. */
    std::string gateKnob;
    /** true: reference-only phase; false: training-only phase. */
    bool refOnly = false;
};

} // namespace

Benchmark
generate(const WorkloadSpec &spec)
{
    const int phases = static_cast<int>(spec.num("phases"));
    const double mem = spec.num("mem");
    const double fp = spec.num("fp");
    const int maxDepth = static_cast<int>(spec.num("depth"));
    const double diverge = spec.num("diverge");
    const double imbalance = spec.num("imbalance");
    const double refscale = spec.num("refscale");
    const auto seed = static_cast<std::uint64_t>(spec.num("seed"));

    // One generator drives every draw, in a fixed order, so the
    // program is a pure function of the canonical spec.
    Rng rng(seed ^ 0xA24BAED4963EE407ULL);

    ProgramBuilder b(strprintf("gen_p%d_s%llu", phases,
                               (unsigned long long)seed));

    std::vector<PhaseShape> shapes;
    shapes.reserve(static_cast<std::size_t>(phases));
    for (int p = 0; p < phases; ++p) {
        PhaseShape shape;
        const bool isFp = rng.chance(fp);
        // Memory-boundedness of this phase: the mem knob sets the
        // center, imbalance widens the per-phase spread.
        const double memB = std::clamp(
            mem + imbalance * (rng.uniform() - 0.5), 0.0, 1.0);
        // Skew: with high imbalance the dominant class fractions
        // grow, idling the other domains (what per-domain DVFS
        // exploits).
        const double skew = lerp(0.6, 1.0, imbalance);

        InstructionMix m;
        const double ld = lerp(0.16, 0.34, memB) * skew +
                          0.08 * rng.uniform();
        const double st = lerp(0.04, 0.16, memB) * skew;
        m.set(InstrClass::Load, ld).set(InstrClass::Store, st);
        if (isFp) {
            m.set(InstrClass::FpAdd,
                  (0.14 + 0.12 * rng.uniform()) * skew);
            m.set(InstrClass::FpMul,
                  (0.08 + 0.10 * rng.uniform()) * skew);
            m.branches(0.04 + 0.04 * rng.uniform(),
                       0.01 + 0.03 * rng.uniform());
        } else {
            if (rng.chance(0.4))
                m.set(InstrClass::IntMul,
                      (0.03 + 0.10 * rng.uniform()) * skew);
            m.branches(0.08 + 0.12 * rng.uniform(),
                       0.02 + 0.08 * memB);
        }
        // Working set: 8 KB (compute-bound) up to ~16 MB
        // (cache-hostile), log-scaled in memB.
        const double wsLog = lerp(13.0, 24.0, memB) +
                             1.5 * (rng.uniform() - 0.5);
        m.mem(static_cast<std::uint64_t>(std::pow(2.0, wsLog)),
              std::clamp(lerp(0.95, 0.15, memB) +
                             0.1 * (rng.uniform() - 0.5),
                         0.05, 1.0));
        m.ilp(std::clamp(0.65 - 0.3 * memB, 0.2, 0.9),
              static_cast<int>(lerp(12.0, 32.0, memB)));
        shape.mix = b.mix(m);

        shape.depth =
            1 + static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(maxDepth)));
        if (rng.chance(diverge)) {
            shape.gateKnob = strprintf("ph%d", p);
            shape.refOnly = rng.chance(0.5);
        }
        shapes.push_back(std::move(shape));
    }

    // Phase bodies: a loop nest `depth` deep over one block, with
    // per-level trip counts and block sizes drawn once each.
    for (int p = 0; p < phases; ++p) {
        const PhaseShape &shape =
            shapes[static_cast<std::size_t>(p)];
        b.func(strprintf("phase%d", p));
        const std::uint32_t count =
            80 + static_cast<std::uint32_t>(rng.below(220));
        std::vector<double> trips;
        for (int d = 0; d < shape.depth; ++d)
            trips.push_back(
                4.0 + static_cast<double>(rng.below(28)));
        std::function<void(int)> nest = [&](int d) {
            if (d == shape.depth) {
                b.block(shape.mix, count);
                return;
            }
            // Outermost level scales with the input set; inner
            // levels are fixed-trip kernels.
            b.loop(trips[static_cast<std::size_t>(d)],
                   d == 0 ? 0.7 : 0.0, [&] { nest(d + 1); });
        };
        nest(0);
    }

    // main: an input-scaled outer loop visiting every phase;
    // diverging phases are guarded by their gate knob.
    const double iters = 3.0 + static_cast<double>(rng.below(6));
    b.func("main");
    b.loop(iters, 1.0, [&] {
        for (int p = 0; p < phases; ++p) {
            const PhaseShape &shape =
                shapes[static_cast<std::size_t>(p)];
            b.call(strprintf("phase%d", p), 0, 1.0,
                   shape.gateKnob);
        }
    });

    Benchmark bm;
    bm.program = b.build("main", seed ^ 0x94D049BB133111EBULL);
    bm.train.name = "train";
    bm.train.seed = rng.next() >> 12;
    bm.train.scale = 1.0;
    bm.ref.name = "ref";
    bm.ref.seed = rng.next() >> 12;
    bm.ref.scale = refscale;
    for (const PhaseShape &shape : shapes) {
        if (shape.gateKnob.empty())
            continue;
        // The gated phase mostly runs in one input set only — the
        // paper's mpeg2/vpr situation where training coverage of
        // the reference call tree is partial.
        const double rare = 0.04;
        bm.train.with(shape.gateKnob,
                      shape.refOnly ? rare : 1.0);
        bm.ref.with(shape.gateKnob, shape.refOnly ? 1.0 : rare);
    }
    return bm;
}

} // namespace mcd::workload
