/**
 * @file
 * Train/eval workload splits for learned policies and the policy
 * tournament (exp/tournament.hh).
 *
 * The split answers one question honestly: did a policy generalize,
 * or did it memorize?  `trainingSplit()` names the curated suite
 * benchmarks a learned policy may tune against; `holdoutSplit()`
 * names procedurally generated (`gen:`) workloads that no heuristic
 * in this repository was hand-tuned on — their canonical specs are
 * the identity, so the split is stable across machines and runs.
 * `tournamentWorkloads()` concatenates the two; tournament rankings
 * on the holdout rows are the generalization evidence.
 *
 * The membership of each split is part of the repository's
 * evaluation contract: tests/test_tournament.cc pins the sizes and
 * the canonical spellings.
 */

#ifndef MCD_WORKLOAD_SPLIT_HH
#define MCD_WORKLOAD_SPLIT_HH

#include <string>
#include <vector>

namespace mcd::workload
{

/** Curated suite benchmarks available for policy training/tuning
 *  (a cross-section of the suite: control-dense codecs, a memory
 *  hog, an integer staple). */
const std::vector<std::string> &trainingSplit();

/** Held-out generated workloads (canonical `gen:` specs) that
 *  heuristics and learned policies first meet at evaluation time. */
const std::vector<std::string> &holdoutSplit();

/** The tournament roster: trainingSplit() then holdoutSplit(). */
std::vector<std::string> tournamentWorkloads();

} // namespace mcd::workload

#endif // MCD_WORKLOAD_SPLIT_HH
