/**
 * @file
 * The open workload API: every benchmark the harness can run — the
 * 19 suite programs standing in for Table 2, the seeded procedural
 * generator, authored programs loaded from spec text — is produced
 * by a `workload::WorkloadFactory` registered with the
 * `WorkloadRegistry`, mirroring `control::PolicyRegistry`.
 *
 * A workload is addressed by a `WorkloadSpec` string,
 *
 *     name[:key=value[,key=value...]]
 *
 * e.g. `gzip`, `gen:phases=4,mem=0.4,seed=7`,
 * `prog:name=solver,hash=1f2e...`.  Specs canonicalize against the
 * factory's parameter schema (unset parameters take their documented
 * defaults, values are reformatted, parameters are put in schema
 * order), and the canonical string is the single source of truth for
 * memo/CSV cache keys, CLI selection (`--workload <spec>`) and sweep
 * construction — everywhere a suite name was accepted before, any
 * workload spec is accepted now.
 *
 * Adding a workload family is a one-file affair: subclass
 * `WorkloadFactory` in a new translation unit under
 * `src/workload/workloads/`, register it with
 * `MCD_REGISTER_WORKLOAD(...)`, and list the file in
 * `src/workload/CMakeLists.txt`.  No changes to `exp/` or `bench/`
 * are needed — the registry makes it selectable in every bench
 * binary and sweepable like any built-in.
 */

#ifndef MCD_WORKLOAD_REGISTRY_HH
#define MCD_WORKLOAD_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/spec.hh"
#include "workload/suite.hh"

namespace mcd::workload
{

/**
 * Abstract workload factory.  Implementations are stateless const
 * singletons owned by the registry; `make()` may be called
 * concurrently from any number of sweep threads and must be
 * deterministic in the canonical spec (same spec, bit-identical
 * Benchmark).
 */
class WorkloadFactory
{
  public:
    virtual ~WorkloadFactory() = default;

    /** Registry name, also the spec prefix (e.g. "gen"). */
    virtual const char *name() const = 0;

    /** One-line description for `--list-workloads`. */
    virtual const char *description() const = 0;

    /** Parameter schema (defaults documented per entry).  Str
     *  parameters with an empty default are required. */
    virtual std::vector<SpecParamInfo> params() const { return {}; }

    /**
     * Construct the benchmark.  @p spec is canonical (every schema
     * parameter present and typed).  Throws SpecError for
     * user-recoverable construction failures.
     */
    virtual Benchmark make(const WorkloadSpec &spec) const = 0;
};

/**
 * Global name -> WorkloadFactory table.  Factories register
 * themselves at static-initialization time via
 * `MCD_REGISTER_WORKLOAD`; lookups are thread-safe.
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &instance();

    /** Register @p f; fatal on a duplicate name. */
    void add(std::unique_ptr<const WorkloadFactory> f);

    /** The factory named @p name, or nullptr. */
    const WorkloadFactory *find(const std::string &name) const;

    /** Every registered factory, sorted by name. */
    std::vector<const WorkloadFactory *> list() const;

    /**
     * Validate @p spec against its factory's schema and rewrite it
     * in canonical form: unknown workload/parameter names and
     * malformed values fail (returns false, sets @p err; the
     * unknown-name message lists every registered name); unset
     * parameters take their schema defaults; parameters are ordered
     * as in the schema with canonical value formatting and typed
     * values cached.
     */
    bool canonicalize(WorkloadSpec &spec, std::string &err) const;

    /**
     * Load an authored program (the docs/WORKLOADS.md text format)
     * into the registry's program table and return its handle spec,
     * `prog:name=<name>,hash=<16-hex fnv1a of the canonical text>` —
     * usable anywhere a workload spec is (sweep cells, `--workload`,
     * cache keys).  The handle is content-addressed: the same
     * program text yields the same handle in every run, so memo/CSV
     * cache lines stay valid across processes that load the same
     * file.  Throws SpecError on malformed text.
     */
    std::string addProgram(const std::string &program_text);

  private:
    WorkloadRegistry() = default;
    struct Impl;
    Impl &impl() const;
    friend class ProgFactory;
};

/** Registers a workload factory at static-initialization time. */
struct WorkloadRegistrar
{
    explicit WorkloadRegistrar(
        std::unique_ptr<const WorkloadFactory> f);
};

/**
 * Place at namespace scope in a factory's translation unit.  The
 * factory objects under `src/workload/workloads/` are linked into
 * every executable unconditionally (see
 * src/workload/CMakeLists.txt), so registration cannot be
 * dead-stripped.
 */
#define MCD_REGISTER_WORKLOAD(cls)                                   \
    static const ::mcd::workload::WorkloadRegistrar                  \
        mcdWorkloadRegistrar_##cls { std::make_unique<cls>() }

/**
 * Resolve @p spec_text — a suite name, `gen:...` spec, or `prog:...`
 * handle — through the registry and construct the benchmark.
 * Throws SpecError on a malformed spec or unknown name (the message
 * lists every registered workload).
 */
Benchmark makeWorkload(const std::string &spec_text);

/**
 * Parse and canonicalize @p spec_text, returning the canonical spec
 * string (the memo-cache identity of the workload).  Throws
 * SpecError on failure.
 */
std::string canonicalWorkloadSpec(const std::string &spec_text);

/**
 * Human-readable listing of every registered workload — name,
 * description, and each parameter with its type and default — one
 * definition shared by `--list-workloads` and the explorer example.
 */
std::string describeWorkloads();

} // namespace mcd::workload

#endif // MCD_WORKLOAD_REGISTRY_HH
