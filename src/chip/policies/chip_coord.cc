/**
 * @file
 * The chip-level coordinator policy: arbitrates the shared
 * uncore/DRAM frequency of a chip::Chip from aggregated queue
 * occupancy.  Every coordinator interval the chip sums the L2-port
 * and DRAM queue wait accumulated by all tiles; when the occupancy
 * (queued time / interval) exceeds `hi` the uncore speeds up by
 * `step` of its range, below `lo` it slows down, in between it
 * holds.
 *
 * Unlike the per-tile policies this one cannot run a single-core
 * benchmark: it exists in the registry so `chip-coord:hi=...`
 * specs canonicalize, list, and cache-key exactly like every other
 * policy, but run() refuses with guidance.  chip::parseCoordSpec()
 * is the consumer.
 */

#include "control/policy.hh"
#include "util/logging.hh"

namespace mcd::chip
{
namespace
{

class ChipCoordPolicy final : public control::Policy
{
  public:
    const char *
    name() const override
    {
        return "chip-coord";
    }

    const char *
    description() const override
    {
        return "chip-level uncore/DRAM frequency coordinator "
               "(aggregated queue occupancy, chip runs only)";
    }

    std::vector<control::ParamInfo>
    params() const override
    {
        using control::ParamInfo;
        return {
            ParamInfo::dbl("hi", 0.25,
                           "occupancy above which the uncore speeds "
                           "up (queued ps per interval ps)",
                           0.0, 1000.0),
            ParamInfo::dbl("lo", 0.05,
                           "occupancy below which the uncore slows "
                           "down",
                           0.0, 1000.0),
            ParamInfo::dbl("step", 0.10,
                           "frequency move per decision, as a "
                           "fraction of the uncore range",
                           0.0, 1.0),
        };
    }

    bool
    relativeToBaseline() const override
    {
        return false;
    }

    bool
    sweepable() const override
    {
        // run() panics by design; all-policy sweeps (the tournament)
        // must not pick it up.
        return false;
    }

    control::Outcome
    run(const std::string &bench, const control::PolicySpec &spec,
        const control::PolicyContext &) const override
    {
        panic("chip-coord coordinates the shared uncore of a "
              "chip::Chip and cannot run the single-core benchmark "
              "'%s'; pass '%s' as the chip coordinator (mcd_client "
              "--coord, SWEEP coord=) and pick a per-tile policy "
              "(baseline, online) for the tiles",
              bench.c_str(), spec.str().c_str());
    }
};

} // namespace

MCD_REGISTER_POLICY(ChipCoordPolicy);

} // namespace mcd::chip
