/**
 * @file
 * The tiled many-core MCD chip (src/chip/): N tiles, each a full
 * four-domain MCD core (sim::Processor — Frontend/ExecDomain
 * components on per-domain DomainClocks under a sim::Kernel), plus
 * the shared uncore (chip/uncore.hh) that couples them.
 *
 * The Chip facade owns one global event-ordered schedule across all
 * tiles' clocks: at every step the tile with the earliest next clock
 * edge advances by exactly one edge, ties broken by tile index (and
 * by domain index inside a tile, as the kernel always has).  Each
 * tile is driven through the step-wise surface that
 * sim::Processor::run() itself is built on (beginRun / stepEdge /
 * finishRun), so a one-tile chip executes the same code path as a
 * bare Processor and its output is byte-identical by construction —
 * the shared uncore is only installed for N >= 2 (one tile has
 * nothing to contend with).
 *
 * Tile 0 uses SimConfig::jitterSeed unchanged; tile k derives its
 * jitter seed deterministically from it (k = 0 is the identity), so
 * a co-schedule is bit-reproducible from one seed and tile 0 of a
 * one-tile chip matches the single-core simulator exactly.
 */

#ifndef MCD_CHIP_CHIP_HH
#define MCD_CHIP_CHIP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chip/config.hh"
#include "chip/uncore.hh"
#include "power/power.hh"
#include "sim/processor.hh"
#include "workload/suite.hh"

namespace mcd::chip
{

/**
 * Chip-level coordinator parameters, parsed from a canonical
 * `chip-coord:` policy spec (the schema lives in
 * src/chip/policies/chip_coord.cc).  Default-constructed =
 * disabled: the uncore stays at its maximum frequency.
 */
struct CoordConfig
{
    bool enabled = false;
    double hi = 0.25;   ///< occupancy above which the uncore speeds up
    double lo = 0.05;   ///< occupancy below which it slows down
    double step = 0.10; ///< move, as a fraction of the uncore range
    std::string canonSpec;  ///< canonical spec text ("" = disabled)
};

/**
 * Canonicalize @p text as a `chip-coord:` spec through the
 * PolicyRegistry and extract the coordinator parameters.  An empty
 * @p text disables the coordinator.  Throws workload::SpecError on
 * an unknown policy name or malformed parameters, so servers can
 * reject bad requests instead of dying.
 */
CoordConfig parseCoordSpec(const std::string &text);

/** Aggregate results of one chip run. */
struct ChipResult
{
    /** Per-tile results, exactly what Processor::run returns. */
    std::vector<sim::RunResult> tiles;
    /** Global end time: the last processed edge on any tile. */
    Tick timePs = 0;
    /** Shared-fabric (uncore clock + leakage) energy; 0 for N=1. */
    double uncoreEnergyNj = 0.0;
    /** Time-weighted average uncore frequency over the run. */
    Mhz uncoreAvgMhz = 0.0;
    /** Coordinator frequency changes applied. */
    std::uint64_t uncoreReconfigs = 0;
    /** Whole-run shared-uncore counters (zeros for N=1). */
    UncoreStats uncore;
    /** DRAM requests issued per tile through the shared queue. */
    std::vector<std::uint64_t> tileDramAccesses;
};

class Chip
{
  public:
    /**
     * @param ccfg  shared-uncore knobs
     * @param scfg  per-tile core configuration (every tile identical
     *              up to the derived jitter seed)
     * @param pcfg  power model configuration (per tile + uncore)
     * @param tile_workloads one canonical workload spec per tile
     *              (see chip/multi.hh); the tile count is its size
     */
    Chip(const ChipConfig &ccfg, const sim::SimConfig &scfg,
         const power::PowerConfig &pcfg,
         const std::vector<std::string> &tile_workloads);

    int tiles() const { return static_cast<int>(tiles_.size()); }

    /** Tile @p k's core, for hooks and inspection. */
    sim::Processor &tile(int k)
    {
        return tiles_[static_cast<std::size_t>(k)]->proc;
    }

    /**
     * Install tile @p k's per-tile interval controller (fired from
     * that tile's commit stream, exactly as on a single core).
     */
    void setTileHook(int k, sim::IntervalHook *h,
                     std::uint64_t instrs);

    /** Install the chip-level uncore coordinator. */
    void setCoordinator(const CoordConfig &c) { coord = c; }

    /**
     * Run every tile to @p max_instrs_per_tile committed
     * instructions (or stream end) in one global event order.
     */
    ChipResult run(std::uint64_t max_instrs_per_tile);

  private:
    struct Tile
    {
        workload::Benchmark bm;
        sim::Processor proc;
        bool done = false;
        sim::RunResult result;

        Tile(const sim::SimConfig &scfg,
             const power::PowerConfig &pcfg, workload::Benchmark b)
            : bm(std::move(b)),
              proc(scfg, pcfg, bm.program, bm.ref)
        {
        }
    };

    void coordinate(Tick now);

    ChipConfig cfg;
    sim::SimConfig simCfg;
    power::PowerConfig powerCfg;
    power::PowerModel uncorePower;
    std::unique_ptr<Uncore> uncore;  ///< null for a one-tile chip
    std::vector<std::unique_ptr<Tile>> tiles_;
    CoordConfig coord;
    std::uint64_t coordReconfigs = 0;
};

} // namespace mcd::chip

#endif // MCD_CHIP_CHIP_HH
