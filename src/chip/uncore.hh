/**
 * @file
 * The chip-wide shared uncore: the single L2 port every tile's L2
 * lookups arbitrate for, and the DRAM queue their L2 misses share.
 * Both are fluid-frequency servers — the chip-level coordinator
 * policy moves one uncore frequency that scales the L2-port service
 * time and the DRAM bus slot together — and both are the coupling
 * that makes co-scheduled tiles interfere.
 *
 * Arbitration is first-come-first-served in global event order: the
 * chip steps tiles in global-time order with ties broken by tile
 * index (then domain index inside the tile), so same-instant
 * requests are granted in tile order and the grant sequence is
 * deterministic for a fixed seed.
 *
 * Energy: per-access L2/DRAM unit energy is charged by the
 * requesting tile's own PowerModel (same as single-core).  The
 * uncore adds only the shared-fabric energy — clock tree (f · V²)
 * and leakage (V · t) in closed form at frequency-change boundaries
 * — through its own power::PowerModel via extra().
 */

#ifndef MCD_CHIP_UNCORE_HH
#define MCD_CHIP_UNCORE_HH

#include <cstdint>
#include <vector>

#include "chip/config.hh"
#include "power/power.hh"
#include "sim/config.hh"
#include "sim/processor.hh"
#include "util/types.hh"

namespace mcd::chip
{

/** Occupancy counters the coordinator aggregates over an interval. */
struct UncoreStats
{
    std::uint64_t l2Grants = 0;
    Tick l2QueuedPs = 0;    ///< total grant-minus-arrival wait
    std::uint64_t dramAccesses = 0;
    Tick dramQueuedPs = 0;
};

class Uncore : public sim::SharedMemSide
{
  public:
    Uncore(const ChipConfig &ccfg, const sim::SimConfig &scfg,
           power::PowerModel &power, int tiles);

    Tick l2PortGrant(int tile, Tick t) override;
    Tick dramAccess(int tile, Tick t) override;

    /** Current uncore frequency. */
    Mhz freq() const { return mhz; }

    /**
     * Coordinator write: charge fabric energy up to @p now at the
     * old operating point, then switch to @p f (clamped to the
     * ChipConfig range).  Returns true if the frequency changed.
     */
    bool setFreq(Mhz f, Tick now);

    /** Charge fabric energy through the end of the run. */
    void finish(Tick now);

    /** Counters accumulated since the last snapshot (coordinator
     *  interval); @p reset starts the next interval. */
    UncoreStats intervalStats(bool reset);

    /** Whole-run counters. */
    const UncoreStats &totals() const { return total; }

    /** Whole-run per-tile DRAM request counts. */
    const std::vector<std::uint64_t> &tileDramAccesses() const
    {
        return tileDram;
    }

    /** Time-weighted average uncore frequency over the run (valid
     *  after finish()). */
    Mhz averageFreq() const;

  private:
    Tick l2ServicePs() const;
    Tick dramSlotPs() const;
    Volt voltage() const;
    void chargeTo(Tick now);

    ChipConfig cfg;
    const sim::SimConfig &sim;
    power::PowerModel &power;
    Mhz mhz;
    Tick l2PortFreeAt = 0;
    Tick dramFreeAt = 0;
    Tick lastChargeTime = 0;
    double freqTimeIntegral = 0.0;  ///< MHz * ps
    Tick endTime = 0;
    UncoreStats interval;
    UncoreStats total;
    std::vector<std::uint64_t> tileDram;
};

} // namespace mcd::chip

#endif // MCD_CHIP_UNCORE_HH
