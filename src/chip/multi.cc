#include "chip/multi.hh"

#include <cctype>

#include "util/logging.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"

namespace mcd::chip
{

namespace
{

/**
 * Position of the next `,t<digits>=` tile-entry boundary at or
 * after @p from, or npos.  This is what lets sub-specs contain `,`
 * and `:` freely: only a comma that starts another tile assignment
 * ends an entry.
 */
std::size_t
nextTileBoundary(const std::string &s, std::size_t from)
{
    for (std::size_t j = from; j + 2 < s.size(); ++j) {
        if (s[j] != ',' || s[j + 1] != 't')
            continue;
        std::size_t k = j + 2;
        while (k < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[k])))
            ++k;
        if (k > j + 2 && k < s.size() && s[k] == '=')
            return j;
    }
    return std::string::npos;
}

} // namespace

std::vector<std::string>
parseMultiSpec(const std::string &text, int tiles)
{
    const std::string prefix = "multi:";
    if (text.compare(0, prefix.size(), prefix) != 0) {
        // Plain workload spec: replicate across the tiles.
        std::string canon = workload::canonicalWorkloadSpec(text);
        int n = tiles > 0 ? tiles : 1;
        return std::vector<std::string>(
            static_cast<std::size_t>(n), canon);
    }

    std::string body = text.substr(prefix.size());
    if (body.empty())
        throw workload::SpecError(
            "empty multi: co-schedule (expected "
            "multi:t0=<workload>[,t1=...])");

    std::vector<std::string> by_tile;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        std::size_t end = nextTileBoundary(body, pos);
        std::string entry =
            end == std::string::npos
                ? body.substr(pos)
                : body.substr(pos, end - pos);
        pos = end == std::string::npos ? end : end + 1;

        if (entry.size() < 3 || entry[0] != 't')
            throw workload::SpecError(strprintf(
                "bad multi: entry '%s' (expected t<index>=<workload>)",
                entry.c_str()));
        std::size_t eq = 1;
        while (eq < entry.size() &&
               std::isdigit(static_cast<unsigned char>(entry[eq])))
            ++eq;
        if (eq == 1 || eq >= entry.size() || entry[eq] != '=')
            throw workload::SpecError(strprintf(
                "bad multi: entry '%s' (expected t<index>=<workload>)",
                entry.c_str()));
        int idx = 0;
        for (std::size_t i = 1; i < eq; ++i) {
            idx = idx * 10 + (entry[i] - '0');
            if (idx > 1024)
                throw workload::SpecError(strprintf(
                    "multi: tile index %s out of range",
                    entry.substr(1, eq - 1).c_str()));
        }
        std::string sub = entry.substr(eq + 1);
        if (sub.empty())
            throw workload::SpecError(strprintf(
                "multi: tile t%d has an empty workload spec", idx));

        auto u = static_cast<std::size_t>(idx);
        if (u >= by_tile.size())
            by_tile.resize(u + 1);
        if (!by_tile[u].empty())
            throw workload::SpecError(strprintf(
                "multi: tile t%d assigned twice", idx));
        // Canonicalize through the registry so unknown workloads
        // fail here with the registry listing, not mid-run.
        by_tile[u] = workload::canonicalWorkloadSpec(sub);
    }

    for (std::size_t k = 0; k < by_tile.size(); ++k) {
        if (by_tile[k].empty())
            throw workload::SpecError(strprintf(
                "multi: tile indices must be contiguous from t0 "
                "(t%zu is missing among %zu entries)",
                k, by_tile.size()));
    }
    if (tiles > 0 &&
        by_tile.size() != static_cast<std::size_t>(tiles))
        throw workload::SpecError(strprintf(
            "multi: co-schedule names %zu tiles but the request "
            "asks for %d",
            by_tile.size(), tiles));
    return by_tile;
}

std::string
multiSpecOf(const std::vector<std::string> &tile_specs)
{
    std::string out = "multi:";
    for (std::size_t k = 0; k < tile_specs.size(); ++k) {
        if (k)
            out += ',';
        out += strprintf("t%zu=", k);
        out += tile_specs[k];
    }
    return out;
}

std::string
canonicalMultiSpec(const std::string &text, int tiles)
{
    return multiSpecOf(parseMultiSpec(text, tiles));
}

} // namespace mcd::chip
