/**
 * @file
 * Chip-level configuration: the shared-uncore knobs of the tiled
 * many-core model (src/chip/).  Per-tile architectural parameters
 * stay in sim::SimConfig — every tile is a full MCD core — and the
 * tile count is not a knob at all: it is the length of the co-
 * schedule (the `multi:` workload list), spelled per-cell in chip
 * cache keys as `tiles=N`.
 *
 * Every field here shapes simulated outcomes, so every field joins
 * `exp::configFingerprint()` (prefix `ch`, CACHE_VERSION v7) —
 * enforced by tools/mcd_lint.py's fingerprint-complete rule.
 */

#ifndef MCD_CHIP_CONFIG_HH
#define MCD_CHIP_CONFIG_HH

#include "util/types.hh"

namespace mcd::chip
{

/** Shared uncore/DRAM parameters of the tiled chip. */
struct ChipConfig
{
    /**
     * Shared-L2 port occupancy per lookup, in uncore cycles: each
     * granted lookup holds the port for this long, so co-scheduled
     * tiles queue behind each other.
     */
    int l2PortCycles = 1;

    /** Uncore (shared-L2 port + DRAM queue) DVFS range, in MHz.
     *  The coordinator policy moves the uncore frequency inside it;
     *  without a coordinator the uncore runs at the maximum. */
    Mhz uncoreMaxMhz = 1000.0;
    Mhz uncoreMinMhz = 250.0;

    /** Coordinator evaluation interval, in global simulated ps. */
    Tick coordIntervalPs = 1'000'000;

    /** Uncore clock-tree energy per uncore cycle (pJ at vMax). */
    double uncoreClockPj = 200.0;

    /** Uncore leakage power (W at vMax). */
    double uncoreLeakW = 0.3;
};

} // namespace mcd::chip

#endif // MCD_CHIP_CONFIG_HH
