#include "chip/uncore.hh"

#include <algorithm>

namespace mcd::chip
{

Uncore::Uncore(const ChipConfig &c, const sim::SimConfig &s,
               power::PowerModel &p, int tiles)
    : cfg(c), sim(s), power(p), mhz(c.uncoreMaxMhz),
      tileDram(static_cast<std::size_t>(tiles), 0)
{
}

Tick
Uncore::l2ServicePs() const
{
    return static_cast<Tick>(cfg.l2PortCycles) * periodPs(mhz);
}

Tick
Uncore::dramSlotPs() const
{
    // The DRAM queue drains at the uncore frequency: the bus slot
    // stretches as the uncore slows (array latency stays fixed —
    // DRAM itself is external and unscaled, as in the paper).
    double scale = cfg.uncoreMaxMhz / mhz;
    return static_cast<Tick>(
        static_cast<double>(sim.memBusPs) * scale + 0.5);
}

Volt
Uncore::voltage() const
{
    // Linear XScale-like mapping over the uncore's own range,
    // mirroring SimConfig::voltageFor for the core domains.
    if (cfg.uncoreMaxMhz <= cfg.uncoreMinMhz)
        return sim.maxVolt;
    double fr = (mhz - cfg.uncoreMinMhz) /
                (cfg.uncoreMaxMhz - cfg.uncoreMinMhz);
    return sim.minVolt + fr * (sim.maxVolt - sim.minVolt);
}

void
Uncore::chargeTo(Tick now)
{
    if (now <= lastChargeTime)
        return;
    Tick dt = now - lastChargeTime;
    Volt v = voltage();
    double vr = v / power.config().vMax;
    // Clock tree: cycles over the span at the (constant) frequency,
    // each at V^2-scaled per-cycle energy.
    double cycles = static_cast<double>(dt) * mhz * 1e-6;
    double pj = cfg.uncoreClockPj * vr * vr * cycles;
    // Leakage: W at vMax, linear in V, over dt ps (1 W = 1 pJ/ps).
    pj += cfg.uncoreLeakW * vr * static_cast<double>(dt);
    power.extra(Domain::Memory, pj);
    freqTimeIntegral += mhz * static_cast<double>(dt);
    lastChargeTime = now;
}

Tick
Uncore::l2PortGrant(int tile, Tick t)
{
    (void)tile;
    Tick grant = std::max(t, l2PortFreeAt);
    l2PortFreeAt = grant + l2ServicePs();
    ++interval.l2Grants;
    ++total.l2Grants;
    interval.l2QueuedPs += grant - t;
    total.l2QueuedPs += grant - t;
    return grant;
}

Tick
Uncore::dramAccess(int tile, Tick t)
{
    Tick grant = std::max(t, dramFreeAt);
    dramFreeAt = grant + dramSlotPs();
    ++interval.dramAccesses;
    ++total.dramAccesses;
    interval.dramQueuedPs += grant - t;
    total.dramQueuedPs += grant - t;
    ++tileDram[static_cast<std::size_t>(tile)];
    return grant + sim.memLatencyPs;
}

bool
Uncore::setFreq(Mhz f, Tick now)
{
    f = std::min(cfg.uncoreMaxMhz, std::max(cfg.uncoreMinMhz, f));
    if (f == mhz)
        return false;
    chargeTo(now);
    mhz = f;
    return true;
}

void
Uncore::finish(Tick now)
{
    chargeTo(now);
    endTime = now;
}

UncoreStats
Uncore::intervalStats(bool reset)
{
    UncoreStats s = interval;
    if (reset)
        interval = UncoreStats();
    return s;
}

Mhz
Uncore::averageFreq() const
{
    if (endTime == 0)
        return mhz;
    return freqTimeIntegral / static_cast<double>(endTime);
}

} // namespace mcd::chip
