/**
 * @file
 * The `multi:` co-schedule grammar: one workload spec per tile,
 *
 *     multi:t0=<spec>,t1=<spec>[,t2=...]
 *
 * where each `<spec>` is any registered workload spec
 * (`gsm_decode`, `gen:phases=4,seed=7`, `prog:...`).  Because
 * nested specs themselves contain `:` and `,`, tile entries are
 * delimited by the next `,t<digits>=` boundary rather than by bare
 * commas.  Tile indices must be exactly 0..N-1 (any order, no
 * duplicates); the canonical form lists them in tile order with
 * each sub-spec canonicalized through the WorkloadRegistry, and is
 * used verbatim in chip cache keys and on the wire.
 *
 * A plain (non-`multi:`) workload spec is also accepted wherever a
 * co-schedule is: it replicates across all N tiles (a homogeneous
 * co-schedule).
 */

#ifndef MCD_CHIP_MULTI_HH
#define MCD_CHIP_MULTI_HH

#include <string>
#include <vector>

namespace mcd::chip
{

/**
 * Parse @p text into per-tile canonical workload specs.
 *
 * For a `multi:` spec, @p tiles must be 0 (derive the tile count
 * from the entries) or equal to the entry count.  For a plain spec,
 * @p tiles (>= 1; 0 means 1) copies of its canonical form are
 * returned.  Throws workload::SpecError on malformed text, an
 * unknown sub-workload, duplicate or non-contiguous tile indices,
 * or a tile-count mismatch.
 */
std::vector<std::string> parseMultiSpec(const std::string &text,
                                        int tiles = 0);

/**
 * Canonical co-schedule string for @p text at @p tiles tiles:
 * `multi:t0=...,t1=...` (always the `multi:` form, even for one
 * tile, so chip keys never collide with single-core keys).  Throws
 * workload::SpecError as parseMultiSpec does.
 */
std::string canonicalMultiSpec(const std::string &text,
                               int tiles = 0);

/** Rebuild the canonical `multi:` string from per-tile canonical
 *  specs (the inverse of parseMultiSpec). */
std::string multiSpecOf(const std::vector<std::string> &tile_specs);

} // namespace mcd::chip

#endif // MCD_CHIP_MULTI_HH
