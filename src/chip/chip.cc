#include "chip/chip.hh"

#include <limits>

#include "chip/multi.hh"
#include "control/policy.hh"
#include "util/logging.hh"
#include "workload/spec.hh"

namespace mcd::chip
{

CoordConfig
parseCoordSpec(const std::string &text)
{
    CoordConfig c;
    if (text.empty())
        return c;

    control::PolicySpec spec;
    std::string err;
    if (!control::parseSpec(text, spec, err))
        throw workload::SpecError(
            strprintf("bad coordinator spec '%s': %s", text.c_str(),
                      err.c_str()));
    if (spec.policy != "chip-coord")
        throw workload::SpecError(strprintf(
            "coordinator spec '%s' must name the chip-coord policy",
            text.c_str()));
    if (!control::PolicyRegistry::instance().canonicalize(spec, err))
        throw workload::SpecError(
            strprintf("bad coordinator spec '%s': %s", text.c_str(),
                      err.c_str()));

    c.enabled = true;
    c.hi = spec.num("hi");
    c.lo = spec.num("lo");
    c.step = spec.num("step");
    c.canonSpec = spec.str();
    if (c.lo > c.hi)
        throw workload::SpecError(strprintf(
            "coordinator spec '%s': lo=%g exceeds hi=%g",
            text.c_str(), c.lo, c.hi));
    return c;
}

Chip::Chip(const ChipConfig &ccfg, const sim::SimConfig &scfg,
           const power::PowerConfig &pcfg,
           const std::vector<std::string> &tile_workloads)
    : cfg(ccfg), simCfg(scfg), powerCfg(pcfg), uncorePower(pcfg)
{
    if (tile_workloads.empty())
        fatal("chip::Chip needs at least one tile workload");

    int n = static_cast<int>(tile_workloads.size());
    for (int k = 0; k < n; ++k) {
        sim::SimConfig tile_cfg = simCfg;
        // Tile 0 keeps the seed unchanged so a one-tile chip is
        // bit-identical to the single-core simulator; the golden
        // ratio multiplier decorrelates the other tiles' jitter
        // deterministically.
        constexpr std::uint64_t golden = 0x9E3779B97F4A7C15ULL;
        tile_cfg.jitterSeed =
            simCfg.jitterSeed ^
            (golden * static_cast<std::uint64_t>(k));
        tiles_.push_back(std::make_unique<Tile>(
            tile_cfg, powerCfg,
            workload::makeBenchmark(
                tile_workloads[static_cast<std::size_t>(k)])));
    }

    // The shared uncore only exists with someone to share it with:
    // a one-tile chip keeps the core's private memory path, which is
    // what makes N=1 byte-identical to sim::Processor.
    if (n >= 2) {
        uncore = std::make_unique<Uncore>(cfg, simCfg, uncorePower, n);
        for (int k = 0; k < n; ++k)
            tiles_[static_cast<std::size_t>(k)]->proc
                .setSharedMemSide(uncore.get(), k);
    }
}

void
Chip::setTileHook(int k, sim::IntervalHook *h, std::uint64_t instrs)
{
    tiles_[static_cast<std::size_t>(k)]->proc.setIntervalHook(
        h, instrs);
}

void
Chip::coordinate(Tick now)
{
    UncoreStats s = uncore->intervalStats(true);
    double interval = static_cast<double>(cfg.coordIntervalPs);
    double occ =
        static_cast<double>(s.l2QueuedPs + s.dramQueuedPs) / interval;
    double range = cfg.uncoreMaxMhz - cfg.uncoreMinMhz;
    Mhz f = uncore->freq();
    if (occ > coord.hi)
        f += coord.step * range;
    else if (occ < coord.lo)
        f -= coord.step * range;
    else
        return;
    if (uncore->setFreq(f, now))
        ++coordReconfigs;
}

ChipResult
Chip::run(std::uint64_t max_instrs_per_tile)
{
    std::size_t alive = 0;
    for (auto &t : tiles_) {
        t->proc.beginRun(max_instrs_per_tile);
        if (t->proc.runDone()) {
            // Empty stream: finish immediately, as run() would.
            t->result = t->proc.finishRun();
            t->done = true;
        } else {
            ++alive;
        }
    }

    Tick now = 0;
    Tick next_coord = (coord.enabled && uncore)
                          ? cfg.coordIntervalPs
                          : std::numeric_limits<Tick>::max();

    // Global event order: the earliest pending clock edge across
    // all tiles goes next; on a tie the lowest tile index wins (the
    // kernel already breaks intra-tile ties by domain index).
    while (alive > 0) {
        int best = -1;
        Tick best_t = std::numeric_limits<Tick>::max();
        for (std::size_t k = 0; k < tiles_.size(); ++k) {
            if (tiles_[k]->done)
                continue;
            Tick e = tiles_[k]->proc.nextEventTime();
            if (e < best_t) {
                best_t = e;
                best = static_cast<int>(k);
            }
        }

        Tile &t = *tiles_[static_cast<std::size_t>(best)];
        t.proc.stepEdge();
        now = best_t;
        if (t.proc.runDone()) {
            t.result = t.proc.finishRun();
            t.done = true;
            --alive;
        }

        if (now >= next_coord) {
            coordinate(now);
            while (next_coord <= now)
                next_coord += cfg.coordIntervalPs;
        }
    }

    ChipResult r;
    r.timePs = now;
    for (auto &t : tiles_)
        r.tiles.push_back(t->result);
    if (uncore) {
        uncore->finish(now);
        r.uncoreEnergyNj = uncorePower.chipEnergyNj();
        r.uncoreAvgMhz = uncore->averageFreq();
        r.uncore = uncore->totals();
        r.tileDramAccesses = uncore->tileDramAccesses();
    } else {
        r.tileDramAccesses.assign(tiles_.size(), 0);
        for (std::size_t k = 0; k < tiles_.size(); ++k)
            r.tileDramAccesses[k] = r.tiles[k].dramAccesses;
        r.uncoreAvgMhz = cfg.uncoreMaxMhz;
    }
    r.uncoreReconfigs = coordReconfigs;
    return r;
}

} // namespace mcd::chip
