/**
 * @file
 * The cycle-level MCD out-of-order processor model.
 *
 * Four on-chip clock domains (front end, integer, floating point,
 * memory) tick on independent jittered clocks; values crossing domain
 * boundaries pay the Sjogren-Myers synchronization cost (one extra
 * consumer cycle when produced within the synchronization window of
 * the consuming edge).  Main memory is external and always full
 * speed.  The microarchitecture follows Table 1 of the paper:
 * 4-wide fetch/dispatch, 80-entry ROB, 20/15/64-entry issue queues,
 * 72+72 physical registers, combined bimodal+PAg branch prediction,
 * 64KB 2-way L1s, 1MB direct-mapped L2.
 *
 * The Processor itself is a facade: it owns the shared pipeline
 * state (instruction window, rename resources, caches, power model)
 * and the public run/control surface, while the per-edge stage logic
 * lives in the per-domain components (Frontend, ExecDomain) and the
 * edge scheduling in the Kernel (see sim/kernel.hh).
 */

#ifndef MCD_SIM_PROCESSOR_HH
#define MCD_SIM_PROCESSOR_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "power/power.hh"
#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/clock.hh"
#include "sim/config.hh"
#include "sim/exec_domain.hh"
#include "sim/frontend.hh"
#include "sim/kernel.hh"
#include "sim/trace.hh"
#include "workload/program.hh"
#include "workload/stream.hh"

namespace mcd::sim
{

class CheckpointSet;
class FuncState;

/**
 * Chip-level shared memory side.  When installed (by the chip layer,
 * src/chip/), a core's L2 lookups first win the shared L2 port and
 * its L2 misses go through the shared DRAM queue, so co-scheduled
 * cores contend for both.  When not installed — the default, and
 * always for a single core — the core owns its memory side privately
 * and the timing below is byte-identical to the pre-chip simulator.
 */
class SharedMemSide
{
  public:
    virtual ~SharedMemSide() = default;

    /**
     * Arbitrate the shared L2 port for @p tile's lookup arriving at
     * @p t; returns the grant time (>= t) at which the lookup starts.
     */
    virtual Tick l2PortGrant(int tile, Tick t) = 0;

    /**
     * Enqueue a DRAM request from @p tile at time @p t; returns the
     * data-return time.
     */
    virtual Tick dramAccess(int tile, Tick t) = 0;
};

/**
 * Processor facade: constructs the microarchitecture, runs a
 * workload stream under optional observation/control hooks, and
 * reports time and energy.
 */
class Processor : public DvfsControl
{
  public:
    /**
     * @param cfg     architectural configuration
     * @param pcfg    power model configuration
     * @param program workload to execute (must outlive the processor)
     * @param input   input set for the workload
     */
    Processor(const SimConfig &cfg, const power::PowerConfig &pcfg,
              const workload::Program &program,
              const workload::InputSet &input);

    /** Install the marker handler (profile runtime / tree builder). */
    void setMarkerHandler(MarkerHandler *h) { markerHandler = h; }

    /** Install a sink for committed-instruction timing records. */
    void setTraceSink(TraceSink *s) { traceSink = s; }

    /** Install an interval controller fired every @p instrs commits. */
    void setIntervalHook(IntervalHook *h, std::uint64_t instrs);

    /** Install a precomputed frequency schedule (sorted by atInstr). */
    void setSchedule(std::vector<SchedulePoint> sched);

    /** Set initial frequencies (applied instantly, before cycle 0). */
    void setInitialFreqs(const FreqSet &freqs);

    /**
     * Install a prebuilt checkpoint set for sampled runs (see
     * sim/checkpoint.hh).  Used only when SimConfig::sampling is in
     * sampled mode and the set matches its geometry and the run
     * window; otherwise the sampler walks the functional state
     * inline.  Must be called before the run starts; the set is
     * retained for the processor's lifetime.
     */
    void
    setCheckpoints(std::shared_ptr<const CheckpointSet> set)
    {
        checkpoints_ = std::move(set);
    }

    /**
     * Run until @p max_instrs instructions commit (or the program
     * ends), then drain the pipeline.  In sampled mode @p max_instrs
     * counts *virtual* instructions (detailed + functionally
     * skipped) and the result carries CI fields (RunResult::sampled).
     */
    RunResult run(std::uint64_t max_instrs);

    // --- step-wise run surface ---
    //
    // run() is exactly beginRun(n); while (!runDone()) stepEdge();
    // finishRun().  The chip layer drives several cores through
    // these calls in global time order, so one core under a chip
    // executes the same code path as run() — the N=1 equivalence is
    // structural, not maintained in parallel.

    /** Arm a run: set the commit budget and reset the watchdog. */
    void beginRun(std::uint64_t max_instrs);

    /** Stop condition: fetch exhausted and the pipeline drained. */
    bool
    runDone() const
    {
        bool fetch_exhausted =
            streamEnded || fetchedInstrs >= maxInstrs_;
        return fetch_exhausted && rob.empty() && fetchQueue.empty();
    }

    /** Time of this core's next edge (never consumes it). */
    Tick nextEventTime() { return kernel.peekNextTime(); }

    /** Process exactly one edge, then run the watchdog check. */
    void stepEdge();

    /** Drain parked clocks and assemble the result. */
    RunResult finishRun();

    /**
     * Join a chip: route L2-port and DRAM traffic through @p side as
     * tile @p tile.  Must be called before the run starts.
     */
    void
    setSharedMemSide(SharedMemSide *side, int tile)
    {
        sharedMem = side;
        tileId_ = tile;
    }

    /** Edges consumed so far by one domain's clock (edge schedule). */
    std::uint64_t
    domainEdges(Domain d) const
    {
        return clock(d).edges();
    }

    // DvfsControl interface
    void setTarget(Domain d, Mhz f) override;
    Mhz freq(Domain d) const override;
    Mhz targetFreq(Domain d) const override;

    const SimConfig &config() const { return cfg; }

  private:
    friend class Frontend;
    friend class ExecDomain;

    // --- sampled-mode machinery (sim/sampling.cc) ---

    /** The sampled counterpart of run(): detailed probes separated
     *  by functional skips, extrapolated with confidence intervals. */
    RunResult runSampled(std::uint64_t max_instrs);
    /** Overwrite the warm microarchitectural state from @p f at a
     *  probe start (stream, caches, predictor, fetch line). */
    void copyInFuncState(const FuncState &f);
    /** Apply schedule points with atInstr <= @p v (virtual index). */
    void applyScheduleUpTo(std::uint64_t v);
    /** Deliver a skip-span marker: the handler sees it (call-tree
     *  position, reconfig decisions) and only the *state* effect of
     *  its action (reconfig) is applied — transient stall/energy
     *  costs are captured statistically by the probes. */
    void deliverSkipMarker(const workload::Marker &m);

    /** In-flight instruction state. */
    struct Uop
    {
        workload::DynInstr di;
        std::uint64_t seq = 0;
        std::uint32_t node = 0;
        Domain domain = Domain::Integer;
        bool inIq = false;
        bool issued = false;
        bool completed = false;   ///< result available (execDone set)
        bool isLoad = false;
        bool isStore = false;
        bool l1Miss = false;
        bool l2Miss = false;
        bool mispredicted = false;
        std::uint64_t depSeq1 = 0;
        std::uint64_t depSeq2 = 0;
        /** Edge count in the exec domain at which the result is
         *  available; used for exact same-domain back-to-back timing
         *  (jittered edge times make period arithmetic inexact). */
        std::uint64_t execDoneEdge = 0;
        Tick fetchTime = 0;
        Tick dispatchTime = 0;
        Tick issueTime = 0;
        Tick execDone = 0;   ///< FU done (loads: address generation)
        Tick memStart = 0;
        Tick memDone = 0;    ///< loads: data return time
    };

    struct FetchEntry
    {
        Uop uop;
        std::uint64_t readyFeTick = 0;
    };

    /** Retired-producer value-ready times (small ring by seq). */
    static constexpr std::uint32_t VALUE_RING = 1024;
    struct ValueEntry
    {
        std::uint64_t seq = 0;
        Tick ready = 0;
    };

    // --- shared helpers used by the domain components ---
    Uop *findUop(std::uint64_t seq);
    const Uop *findUop(std::uint64_t seq) const;
    /** Operand readiness: ready time as seen from domain @p d. */
    bool operandReady(std::uint64_t producer_seq, Domain d,
                      Tick now) const;
    Tick syncMargin(Domain src, Domain dst) const;
    /** L2 lookup start: shared-port grant under a chip, else @p t. */
    Tick
    l2PortGrant(Tick t)
    {
        return sharedMem ? sharedMem->l2PortGrant(tileId_, t) : t;
    }
    /** Main-memory access: shared DRAM queue under a chip, else the
     *  core-private memory model. */
    Tick
    memAccess(Tick t)
    {
        ++dramAccessCount;
        return sharedMem ? sharedMem->dramAccess(tileId_, t)
                         : memory.access(t);
    }
    DomainClock &clock(Domain d) { return kernel.clock(d); }
    const DomainClock &clock(Domain d) const
    {
        return kernel.clock(d);
    }

    // --- configuration ---
    SimConfig cfg;
    const workload::Program &program;
    workload::InputSet input;

    // --- components ---
    power::PowerModel power_;
    Cache l1i;
    Cache l1d;
    Cache l2;
    MainMemory memory;
    BranchPredictor bpred;
    workload::Stream stream;
    Kernel kernel;
    Frontend frontend;
    std::array<ExecDomain, NUM_SCALED_DOMAINS - 1> execDomains;

    // --- hooks ---
    MarkerHandler *markerHandler = nullptr;
    TraceSink *traceSink = nullptr;
    SharedMemSide *sharedMem = nullptr;
    int tileId_ = 0;
    IntervalHook *intervalHook = nullptr;
    std::uint64_t intervalInstrs = 0;
    std::vector<SchedulePoint> schedule;
    std::size_t schedulePos = 0;
    std::shared_ptr<const CheckpointSet> checkpoints_;

    // --- pipeline state ---
    std::deque<Uop> rob;
    std::deque<FetchEntry> fetchQueue;
    std::array<std::vector<std::uint64_t>, NUM_SCALED_DOMAINS> iq;
    std::array<ValueEntry, VALUE_RING> valueRing{};
    std::vector<std::uint64_t> producerRing;  ///< recent producer seqs
    std::size_t producerHead = 0;
    std::uint64_t producerCount = 0;
    std::deque<std::uint64_t> storeSeqs;  ///< in-flight stores (age order)
    int intRegsFree = 0;
    int fpRegsFree = 0;

    // FU occupancy
    std::vector<Tick> intAluBusy;
    std::vector<Tick> intMulBusy;
    std::vector<Tick> fpAluBusy;
    std::vector<Tick> fpMulBusy;
    std::vector<Tick> memPortBusy;

    // fetch state
    bool streamEnded = false;
    bool haveHoldover = false;
    workload::StreamItem holdover;
    Tick fetchStallUntil = 0;       ///< instrumentation stalls
    Tick icacheBlockedUntil = 0;
    std::uint64_t blockedBranchSeq = 0;  ///< mispredict in flight
    Tick redirectAt = 0;
    std::uint64_t lastFetchLine = ~0ULL;
    std::uint64_t feTickCount = 0;
    std::uint64_t fetchedInstrs = 0;
    std::uint64_t nextSeq = 1;
    std::uint64_t maxInstrs_ = 0;

    // watchdog (reset by beginRun, advanced by stepEdge)
    Tick watchdogLastCheck = 0;
    std::uint64_t watchdogLastInstrs = 0;

    // interval accounting.  intervalStartInstrs counts *virtual*
    // instructions (committed + skipped) so sampled runs fire hooks
    // and schedules at the same program positions as exact runs; in
    // exact mode skippedInstrs is always 0 and the arithmetic is
    // identical to the pre-sampling simulator.
    std::array<double, NUM_SCALED_DOMAINS> occSum{};
    std::array<std::uint64_t, NUM_SCALED_DOMAINS> occSamples{};
    double robOccSum = 0.0;
    std::uint64_t intervalStartInstrs = 0;
    Tick intervalStartTime = 0;
    std::uint64_t intervalStartFeCycles = 0;
    std::uint64_t intervalStartDetailedInstrs = 0;

    // stats
    std::uint64_t committedInstrs = 0;
    std::uint64_t skippedInstrs = 0;  ///< sampled mode: func-skipped
    Tick lastCommitTime = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t l1dAccessCount = 0;
    std::uint64_t l1dMissCount = 0;
    std::uint64_t l2MissCount = 0;
    std::uint64_t icacheMissCount = 0;
    std::uint64_t dramAccessCount = 0;
    std::uint64_t reconfigCount = 0;
    std::uint64_t overheadCycleCount = 0;
};

} // namespace mcd::sim

#endif // MCD_SIM_PROCESSOR_HH
