/**
 * @file
 * The front-end clock domain component: fetch (with markers, branch
 * prediction and the I-cache), decode/dispatch into the per-domain
 * issue queues, and in-order commit from the ROB — the stage logic
 * that runs on every front-end clock edge.
 *
 * State lives on the owning Processor (the instruction window is
 * shared with the exec domains); this class is the front-end *logic*
 * plus its scheduling contract with the Kernel: it is idle exactly
 * when the window is drained and fetch is blocked until a known
 * time, and an idle front end implies the whole pipeline is empty,
 * so the kernel can jump straight to the unblock time.
 */

#ifndef MCD_SIM_FRONTEND_HH
#define MCD_SIM_FRONTEND_HH

#include "sim/kernel.hh"
#include "sim/trace.hh"
#include "util/types.hh"

namespace mcd::sim
{

class Processor;

class Frontend final : public DomainComponent
{
  public:
    explicit Frontend(Processor &p) : p(p) {}

    /** One front-end edge: commit, dispatch, fetch (in that order,
     *  so a dispatch slot freed by commit is usable this cycle). */
    void tick(Tick now) override;

    /**
     * Busy whenever anything is in flight (ROB or fetch queue
     * non-empty) or fetch can proceed; otherwise idle until the
     * latest of the fetch-blocking horizons (instrumentation stall,
     * I-cache miss, mispredict redirect), all of which are known
     * once the window has drained.
     */
    Tick idleHorizon() const override;

    /** Skipped edges advance the front-end cycle counter and its
     *  occupancy sample count (the sums gain only zeros). */
    void skipped(std::uint64_t n) override;

    /** Apply a marker action to the pipeline (stall, injected-code
     *  energy, reconfiguration register write).  Public so the
     *  sampled-mode skip replay (sim/sampling.cc) reuses the one
     *  implementation for reconfig actions. */
    void applyMarker(const MarkerAction &a, Tick now);

  private:
    void fetch(Tick now);
    void dispatch(Tick now);
    void commit(Tick now);
    bool streamFetchBlocked(Tick now);

    Processor &p;
};

} // namespace mcd::sim

#endif // MCD_SIM_FRONTEND_HH
