/**
 * @file
 * An execution clock domain component (integer, floating point or
 * memory): issue-queue wakeup/select and functional-unit execution,
 * including the load/store timing through the L1D/L2/DRAM hierarchy
 * for the memory domain — the stage logic that runs on every edge of
 * that domain's clock.
 *
 * State lives on the owning Processor (the issue queues feed from
 * the shared ROB); this class is the per-domain *logic* plus its
 * scheduling contract with the Kernel: an exec domain is idle
 * exactly while its issue queue is empty, and only a front-end
 * dispatch can end that, so the kernel parks it until the front end
 * wakes it.
 */

#ifndef MCD_SIM_EXEC_DOMAIN_HH
#define MCD_SIM_EXEC_DOMAIN_HH

#include <cstdint>

#include "sim/kernel.hh"
#include "util/types.hh"

namespace mcd::sim
{

class Processor;

class ExecDomain final : public DomainComponent
{
  public:
    ExecDomain(Processor &p, Domain d, int issue_width)
        : p(p), dom(d), width(issue_width)
    {
    }

    /** One domain edge: sample queue occupancy, then issue up to
     *  the domain's width of ready instructions in age order. */
    void tick(Tick now) override;

    /** Idle (until woken by a dispatch) iff the issue queue is
     *  empty. */
    Tick idleHorizon() const override;

    /** Skipped edges advance the occupancy sample count only (the
     *  occupancy sum gains zeros while the queue is empty). */
    void skipped(std::uint64_t n) override;

  private:
    bool tryIssue(Tick now, std::uint64_t seq);

    Processor &p;
    Domain dom;
    int width;
};

} // namespace mcd::sim

#endif // MCD_SIM_EXEC_DOMAIN_HH
