#include "sim/exec_domain.hh"

#include <algorithm>

#include "sim/processor.hh"
#include "util/logging.hh"

namespace mcd::sim
{

using workload::InstrClass;

void
ExecDomain::tick(Tick now)
{
    auto &queue = p.iq[domainIndex(dom)];
    p.occSum[domainIndex(dom)] += static_cast<double>(queue.size());
    ++p.occSamples[domainIndex(dom)];

    int issued = 0;
    for (auto it = queue.begin();
         it != queue.end() && issued < width;) {
        if (tryIssue(now, *it)) {
            it = queue.erase(it);
            ++issued;
        } else {
            ++it;
        }
    }
}

Tick
ExecDomain::idleHorizon() const
{
    // Only a front-end dispatch can put work in the issue queue, and
    // dispatch wakes this domain explicitly.
    return p.iq[domainIndex(dom)].empty() ? Kernel::NEVER : 0;
}

void
ExecDomain::skipped(std::uint64_t n)
{
    p.occSamples[domainIndex(dom)] += n;
}

bool
ExecDomain::tryIssue(Tick now, std::uint64_t seq)
{
    Processor::Uop *up = p.findUop(seq);
    if (!up)
        panic("IQ entry %llu missing from ROB",
              static_cast<unsigned long long>(seq));
    Processor::Uop &u = *up;

    // Dispatch-to-issue-queue synchronization (front end -> domain).
    if (now < u.dispatchTime + p.syncMargin(Domain::FrontEnd, dom))
        return false;
    if (!p.operandReady(u.depSeq1, dom, now) ||
        !p.operandReady(u.depSeq2, dom, now))
        return false;

    // Loads: memory ordering against older in-flight stores to the
    // same address (conservative exact-address disambiguation with
    // store-to-load forwarding).
    bool forwarded = false;
    Tick forward_ready = 0;
    if (u.isLoad) {
        for (auto it = p.storeSeqs.rbegin(); it != p.storeSeqs.rend();
             ++it) {
            if (*it >= u.seq)
                continue;
            const Processor::Uop *s = p.findUop(*it);
            if (!s)
                break;  // older stores retired: no conflict possible
            if (s->di.addr != u.di.addr)
                continue;
            if (!s->completed)
                return false;  // data not ready yet
            forwarded = true;
            forward_ready = s->execDone;
            break;
        }
    }

    // Functional unit allocation, in domain edge counts (exact under
    // jitter).
    Tick period = p.clock(dom).period();
    std::uint64_t cur_edge = p.clock(dom).edges();
    auto take_pipelined = [&](std::vector<Tick> &units) -> bool {
        for (auto &busy : units) {
            if (busy <= cur_edge) {
                busy = cur_edge + 1;
                return true;
            }
        }
        return false;
    };
    auto take_blocking = [&](std::vector<Tick> &units,
                             std::uint64_t lat_edges) -> bool {
        for (auto &busy : units) {
            if (busy <= cur_edge) {
                busy = cur_edge + lat_edges;
                return true;
            }
        }
        return false;
    };

    Volt v = p.clock(dom).voltage();
    int lat = 0;
    switch (u.di.cls) {
      case InstrClass::IntAlu:
      case InstrClass::Branch:
        if (!take_pipelined(p.intAluBusy))
            return false;
        lat = p.cfg.latIntAlu;
        p.power_.access(power::Unit::IntAlu, v);
        break;
      case InstrClass::IntMul:
        if (!take_pipelined(p.intMulBusy))
            return false;
        lat = p.cfg.latIntMul;
        p.power_.access(power::Unit::IntMul, v);
        break;
      case InstrClass::IntDiv:
        lat = p.cfg.latIntDiv;
        if (!take_blocking(p.intMulBusy,
                           static_cast<std::uint64_t>(lat)))
            return false;
        p.power_.access(power::Unit::IntMul, v);
        break;
      case InstrClass::FpAdd:
        if (!take_pipelined(p.fpAluBusy))
            return false;
        lat = p.cfg.latFpAdd;
        p.power_.access(power::Unit::FpAlu, v);
        break;
      case InstrClass::FpMul:
        if (!take_pipelined(p.fpMulBusy))
            return false;
        lat = p.cfg.latFpMul;
        p.power_.access(power::Unit::FpMul, v);
        break;
      case InstrClass::FpDiv:
      case InstrClass::FpSqrt:
        lat = u.di.cls == InstrClass::FpDiv ? p.cfg.latFpDiv
                                            : p.cfg.latFpSqrt;
        if (!take_blocking(p.fpMulBusy,
                           static_cast<std::uint64_t>(lat)))
            return false;
        p.power_.access(power::Unit::FpMul, v);
        break;
      case InstrClass::Load:
      case InstrClass::Store:
        if (!take_pipelined(p.memPortBusy))
            return false;
        lat = 1;
        p.power_.access(power::Unit::Lsq, v);
        break;
      default:
        return false;
    }

    // Register file reads for the source operands.
    int n_src = (u.depSeq1 ? 1 : 0) + (u.depSeq2 ? 1 : 0);
    if (n_src > 0) {
        power::Unit rf = dom == Domain::FloatingPoint
                             ? power::Unit::RegFileFp
                             : power::Unit::RegFileInt;
        p.power_.accessTo(rf, dom, v, n_src);
    }

    u.issueTime = now;
    u.issued = true;
    u.inIq = false;
    u.execDone = now + static_cast<Tick>(lat) * period;
    u.execDoneEdge = cur_edge + static_cast<std::uint64_t>(lat);
    u.completed = true;

    if (u.isLoad) {
        u.memStart = u.execDone;
        Volt mem_v = p.clock(Domain::Memory).voltage();
        if (forwarded) {
            Tick data = std::max(u.memStart, forward_ready);
            u.memDone =
                data + static_cast<Tick>(p.cfg.l1Latency) * period;
        } else {
            p.power_.access(power::Unit::Dcache, mem_v);
            ++p.l1dAccessCount;
            Tick t = u.memStart +
                     static_cast<Tick>(p.cfg.l1Latency) * period;
            if (!p.l1d.access(u.di.addr)) {
                u.l1Miss = true;
                ++p.l1dMissCount;
                p.power_.access(power::Unit::L2, mem_v);
                t = p.l2PortGrant(t) +
                    static_cast<Tick>(p.cfg.l2Latency) * period;
                if (!p.l2.access(u.di.addr)) {
                    u.l2Miss = true;
                    ++p.l2MissCount;
                    p.power_.access(power::Unit::Dram,
                                    p.power_.config().vMax);
                    t = p.memAccess(t) +
                        p.syncMargin(Domain::External, Domain::Memory);
                }
            }
            u.memDone = t;
        }
    }
    return true;
}

} // namespace mcd::sim
