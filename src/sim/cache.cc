#include "sim/cache.hh"

#include "util/logging.hh"

namespace mcd::sim
{

namespace
{

int
log2u(std::uint32_t v)
{
    int s = 0;
    while ((1U << s) < v)
        ++s;
    return s;
}

} // namespace

Cache::Cache(std::uint32_t size_kb, int ways, std::uint32_t line_size)
    : ways_(ways), lineShift(log2u(line_size))
{
    if (ways < 1 || size_kb == 0 || line_size == 0)
        fatal("bad cache geometry (%u KB, %d ways, %u B lines)",
              size_kb, ways, line_size);
    std::uint64_t capacity = static_cast<std::uint64_t>(size_kb) * 1024;
    std::uint64_t n_lines = capacity / line_size;
    if (n_lines % static_cast<std::uint64_t>(ways) != 0)
        fatal("cache capacity not divisible by associativity");
    sets = static_cast<std::uint32_t>(
        n_lines / static_cast<std::uint64_t>(ways));
    lines.resize(n_lines);
}

bool
Cache::access(std::uint64_t addr)
{
    std::uint64_t line_addr = addr >> lineShift;
    std::uint32_t set = static_cast<std::uint32_t>(line_addr % sets);
    std::uint64_t tag = line_addr / sets;
    Line *base = &lines[static_cast<std::size_t>(set) *
                        static_cast<std::size_t>(ways_)];
    ++useCounter;
    int victim = 0;
    std::uint64_t oldest = ~0ULL;
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = useCounter;
            ++nHits;
            return true;
        }
        std::uint64_t age = base[w].valid ? base[w].lastUse : 0;
        if (age < oldest) {
            oldest = age;
            victim = w;
        }
    }
    ++nMisses;
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lastUse = useCounter;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    std::uint64_t line_addr = addr >> lineShift;
    std::uint32_t set = static_cast<std::uint32_t>(line_addr % sets);
    std::uint64_t tag = line_addr / sets;
    const Line *base = &lines[static_cast<std::size_t>(set) *
                              static_cast<std::size_t>(ways_)];
    for (int w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

MainMemory::MainMemory(Tick latency_ps, Tick bus_ps)
    : latencyPs(latency_ps), busPs(bus_ps)
{
}

Tick
MainMemory::access(Tick t)
{
    ++nRequests;
    Tick start = t > busFreeAt ? t : busFreeAt;
    busFreeAt = start + busPs;
    return start + latencyPs;
}

} // namespace mcd::sim
