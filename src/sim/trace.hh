/**
 * @file
 * Simulator observation and control interfaces: primitive-event
 * timing records (for the shaker's dependence DAG), marker handlers
 * (for the profile-driven runtime), interval hooks (for the on-line
 * controller) and frequency schedules (for the off-line oracle).
 */

#ifndef MCD_SIM_TRACE_HH
#define MCD_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/types.hh"
#include "workload/instr.hh"

namespace mcd::sim
{

/**
 * Per-committed-instruction timing record: the stage timestamps from
 * which the analysis phase reconstructs the paper's "primitive
 * events" (fetch, execute, memory access, commit) and their
 * functional/data dependences.  All times in ps.
 */
struct InstrTiming
{
    std::uint64_t seq = 0;      ///< dynamic sequence (1-based)
    std::uint32_t node = 0;     ///< call-tree node at fetch (0 = none)
    workload::InstrClass cls = workload::InstrClass::IntAlu;
    Domain domain = Domain::Integer;  ///< execution domain
    std::uint64_t dep1 = 0;     ///< producer seq of source 1 (0=none)
    std::uint64_t dep2 = 0;     ///< producer seq of source 2 (0=none)
    Tick fetch = 0;
    Tick dispatch = 0;
    Tick issue = 0;
    Tick execDone = 0;          ///< FU result ready (loads: addr done)
    Tick memStart = 0;          ///< loads only
    Tick memDone = 0;           ///< loads only: data return
    Tick commit = 0;
    bool l1Miss = false;
    bool l2Miss = false;
    bool mispredict = false;
};

/** Receiver of committed-instruction timing records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void onInstr(const InstrTiming &t) = 0;
};

/** Frequencies for the four scaled domains, in MHz. */
using FreqSet = std::array<Mhz, NUM_SCALED_DOMAINS>;

/**
 * Effect of a structural marker on the pipeline, as computed by the
 * instrumentation runtime (Section 3.4): possible front-end stall
 * cycles and energy for the injected instructions, and possibly a
 * write to the MCD reconfiguration register.
 */
struct MarkerAction
{
    int stallCycles = 0;   ///< front-end cycles of overhead
    double energyPj = 0.0; ///< energy of injected instructions
    bool reconfig = false; ///< write the reconfiguration register
    FreqSet freqs{};       ///< target frequencies when reconfig
};

/**
 * Consumer of structural markers during simulation.  The
 * profile-driven runtime implements this; the profiler's tree builder
 * implements it with a no-op action.
 */
class MarkerHandler
{
  public:
    virtual ~MarkerHandler() = default;

    /** Called at fetch of each marker, in program order. */
    virtual MarkerAction onMarker(const workload::Marker &m) = 0;

    /**
     * Current call-tree node id, stamped into InstrTiming records of
     * subsequently fetched instructions (0 = untracked).
     */
    virtual std::uint32_t currentNode() const { return 0; }
};

/** Frequency control interface exposed to interval controllers. */
class DvfsControl
{
  public:
    virtual ~DvfsControl() = default;
    virtual void setTarget(Domain d, Mhz f) = 0;
    virtual Mhz freq(Domain d) const = 0;
    virtual Mhz targetFreq(Domain d) const = 0;
};

/** Per-interval statistics handed to interval controllers. */
struct IntervalStats
{
    std::uint64_t instrs = 0;   ///< committed in this interval
    Tick timePs = 0;            ///< wall time of the interval
    double ipc = 0.0;           ///< committed instrs per front-end cycle
    /** Average issue-queue occupancy (entries) per scaled domain;
     *  index by Domain. FrontEnd slot holds fetch-queue occupancy. */
    std::array<double, NUM_SCALED_DOMAINS> queueOcc{};
    /** Average reorder-buffer occupancy (entries). */
    double robOcc = 0.0;
};

/**
 * Interval callback (the hardware mechanism of the on-line
 * attack/decay controller polls counters at fixed intervals).
 */
class IntervalHook
{
  public:
    virtual ~IntervalHook() = default;
    virtual void onInterval(const IntervalStats &s, DvfsControl &ctl) = 0;
};

/** One point of a precomputed frequency schedule (off-line oracle). */
struct SchedulePoint
{
    std::uint64_t atInstr = 0;  ///< apply when this many instrs committed
    FreqSet freqs{};
};

/** Aggregate results of one simulation run. */
struct RunResult
{
    Tick timePs = 0;
    double chipEnergyNj = 0.0;
    double dramEnergyNj = 0.0;
    std::uint64_t instrs = 0;
    std::uint64_t feCycles = 0;
    double ipc = 0.0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t reconfigs = 0;
    std::uint64_t overheadCycles = 0;  ///< instrumentation stalls
    /** Clock edges the kernel fast-forwarded instead of processing
     *  (0 when SimConfig::fastForward is off). */
    std::uint64_t ffEdges = 0;
    /** Sampled-mode reporting (sim/sampling.hh); all zero/false in
     *  exact mode.  timePs/energies are then detailed measurements
     *  plus the per-instruction extrapolation over skipped spans,
     *  and the CI fields carry the 95% half-width of that estimate
     *  (never below the SamplingConfig::ciBiasPct floor). */
    bool sampled = false;
    std::uint64_t sampleIntervals = 0;  ///< measured probes (K)
    std::uint64_t skippedInstrs = 0;    ///< functionally skipped
    Tick timeCiPs = 0;
    double energyCiNj = 0.0;
    FreqSet avgFreq{};
    std::array<double, NUM_DOMAINS> domainEnergyNj{};
    /** Energy * delay product (nJ * ps), convenience. */
    double energyDelay() const
    {
        return chipEnergyNj * static_cast<double>(timePs);
    }
};

} // namespace mcd::sim

#endif // MCD_SIM_TRACE_HH
