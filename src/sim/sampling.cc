/**
 * @file
 * The `--sample` spec grammar and the sampled-mode run loop:
 * detailed probes separated by functional skips, extrapolated to
 * whole-run time/energy with 95% confidence intervals.  See
 * docs/SAMPLING.md for the error model and sim/checkpoint.hh for the
 * functional-state machinery.
 */

#include "sim/sampling.hh"

#include <cmath>
#include <utility>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/processor.hh"
#include "util/stats.hh"
#include "util/text.hh"
#include "workload/spec.hh"

namespace mcd::sim
{

namespace
{

[[noreturn]] void
badSpec(const std::string &text, const std::string &why)
{
    throw workload::SpecError("bad sampling spec '" + text +
                              "': " + why);
}

std::uint64_t
countValue(const std::string &text, const std::string &key,
           const std::string &value)
{
    double d = 0.0;
    if (!util::parseDouble(value, d) || d < 1.0 || d > 1e12 ||
        d != std::floor(d))
        badSpec(text, "parameter '" + key +
                          "' must be an integer in [1, 1e12], got '" +
                          value + "'");
    return static_cast<std::uint64_t>(d);
}

} // namespace

SamplingConfig
parseSamplingSpec(const std::string &text)
{
    std::string name;
    std::string err;
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!util::splitSpec(text, "sampling spec", name, kvs, err))
        throw workload::SpecError(err);

    SamplingConfig cfg;
    if (name == "exact") {
        if (!kvs.empty())
            badSpec(text, "'exact' takes no parameters");
        return cfg;
    }
    if (name != "sampled")
        badSpec(text, "mode must be 'exact' or 'sampled'");
    cfg.mode = SamplingMode::Sampled;
    for (const auto &[key, value] : kvs) {
        if (key == "interval") {
            cfg.intervalInstrs = countValue(text, key, value);
        } else if (key == "sample") {
            cfg.sampleInstrs = countValue(text, key, value);
        } else if (key == "warmup") {
            cfg.warmupInstrs = countValue(text, key, value);
        } else if (key == "ci") {
            double d = 0.0;
            if (!util::parseDouble(value, d) || d < 0.0 || d > 100.0)
                badSpec(text, "parameter 'ci' must be a percentage "
                              "in [0, 100], got '" +
                                  value + "'");
            cfg.ciBiasPct = d;
        } else {
            badSpec(text, "unknown parameter '" + key +
                              "' (known: interval, sample, warmup, "
                              "ci)");
        }
    }
    if (cfg.probeInstrs() >= cfg.intervalInstrs)
        badSpec(text,
                "warmup + sample must be smaller than interval "
                "(probe " +
                    std::to_string(cfg.probeInstrs()) +
                    " >= interval " +
                    std::to_string(cfg.intervalInstrs) + ")");
    return cfg;
}

std::string
canonicalSamplingSpec(const SamplingConfig &cfg)
{
    if (!cfg.sampled())
        return "exact";
    return "sampled:interval=" + std::to_string(cfg.intervalInstrs) +
           ",sample=" + std::to_string(cfg.sampleInstrs) +
           ",warmup=" + std::to_string(cfg.warmupInstrs) +
           ",ci=" + util::fmtFixed(cfg.ciBiasPct, 3);
}

// --- sampled run loop --------------------------------------------------

void
Processor::copyInFuncState(const FuncState &f)
{
    stream = f.stream;
    l1i = f.l1i;
    l1d = f.l1d;
    l2 = f.l2;
    bpred = f.bpred;
    lastFetchLine = f.lastLine;
    streamEnded = f.streamEnded;
    // A holdover item from the previous probe's final fetch group
    // belongs to the discarded detailed trajectory; the functional
    // stream position is authoritative.
    haveHoldover = false;
}

void
Processor::applyScheduleUpTo(std::uint64_t v)
{
    while (schedulePos < schedule.size() &&
           schedule[schedulePos].atInstr <= v) {
        for (Domain d : scaledDomains())
            kernel.setTarget(
                d, schedule[schedulePos].freqs[domainIndex(d)]);
        ++reconfigCount;
        ++schedulePos;
    }
}

void
Processor::deliverSkipMarker(const workload::Marker &m)
{
    if (!markerHandler)
        return;
    MarkerAction a = markerHandler->onMarker(m);
    if (a.reconfig) {
        // Only the persistent state effect of the action is applied
        // during a skip: frequency targets shape everything that
        // follows.  Transient stall/energy costs of instrumentation
        // are already represented, at probe marker density, in the
        // per-instruction estimates the probes measure.
        MarkerAction reconfig_only;
        reconfig_only.reconfig = true;
        reconfig_only.freqs = a.freqs;
        frontend.applyMarker(reconfig_only, kernel.now());
    }
}

RunResult
Processor::runSampled(std::uint64_t max_instrs)
{
    const SamplingConfig &sp = cfg.sampling;
    const std::uint64_t probe_len = sp.probeInstrs();

    // Degenerate geometry (rejected by parseSamplingSpec, but the
    // struct can be built directly): run exact.
    if (probe_len == 0 || sp.intervalInstrs <= probe_len) {
        beginRun(max_instrs);
        while (!runDone())
            stepEdge();
        return finishRun();
    }

    const CheckpointSet *cps = nullptr;
    if (checkpoints_ && checkpoints_->matches(sp, max_instrs))
        cps = checkpoints_.get();

    // Inline mode: walk the functional trajectory live.
    std::unique_ptr<FuncState> live;
    if (!cps)
        live = std::make_unique<FuncState>(cfg, program, input);

    auto add_deltas = [this](const FuncDeltas &d) {
        branches += d.branches;
        mispredicts += d.mispredicts;
        icacheMissCount += d.icacheMisses;
        l1dAccessCount += d.l1dAccesses;
        l1dMissCount += d.l1dMisses;
        l2MissCount += d.l2Misses;
        dramAccessCount += d.dramAccesses;
    };

    std::vector<double> cpi;       // ps per instr, per interval
    std::vector<double> epi_chip;  // nJ per instr, per interval
    std::vector<double> epi_dram;
    const std::uint64_t interval = sp.intervalInstrs;
    std::uint64_t k = 0;  // interval index


    for (;;) {
        std::uint64_t v = committedInstrs + skippedInstrs;
        if (v >= max_instrs)
            break;

        // Probe placement for interval k: jittered offset inside
        // [k*interval, k*interval + len).  Past the last interval the
        // target degenerates to the window end (tail skip, no probe).
        std::uint64_t interval_start = k * interval;
        std::uint64_t target = max_instrs;
        std::uint64_t this_probe = 0;
        if (interval_start < max_instrs) {
            std::uint64_t len =
                std::min(interval, max_instrs - interval_start);
            std::uint64_t off = std::min(
                sampleProbeOffset(k, interval - probe_len),
                len > probe_len ? len - probe_len : 0);
            target = interval_start + off;
            this_probe = std::min(probe_len, len - off);
        }

        const FuncState *fs;
        if (cps) {
            if (k >= cps->points().size())
                break;
            const CheckpointSet::Point &pt = cps->points()[k];
            // Replay the recorded pre-skip span up to probe start.
            for (const CheckpointSet::SpanEvent &e :
                 pt.skipMarkers) {
                applyScheduleUpTo(e.index);
                deliverSkipMarker(e.marker);
            }
            skippedInstrs += pt.skipLen;
            add_deltas(pt.skipDeltas);
            applyScheduleUpTo(committedInstrs + skippedInstrs);
            if (pt.probeLen == 0)
                break;  // tail point: window or program end
            this_probe = pt.probeLen;
            fs = &pt.state;
        } else {
            // Functional pre-skip from v to the probe position.
            if (target > v) {
                std::uint64_t span_start = v;
                FuncDeltas sd = live->advance(
                    target - v, [&](const workload::Marker &mk,
                                    std::uint64_t idx) {
                        applyScheduleUpTo(span_start + idx);
                        deliverSkipMarker(mk);
                    });
                skippedInstrs += sd.instrs;
                add_deltas(sd);
                applyScheduleUpTo(committedInstrs + skippedInstrs);
                if (sd.instrs < target - span_start)
                    break;  // program ended inside the pre-skip
            }
            if (this_probe == 0)
                break;  // tail skip done
            fs = live.get();
        }
        if (fs->streamEnded)
            break;
        copyInFuncState(*fs);

        // --- detailed probe: warm-up commits, then measurement ---
        std::uint64_t probe_start = committedInstrs;
        std::uint64_t warm_target = probe_start + sp.warmupInstrs;
        bool measuring = this_probe > sp.warmupInstrs;
        beginRun(fetchedInstrs + this_probe);
        bool have0 = false;
        Tick t0 = 0;
        double e0_chip = 0.0;
        double e0_dram = 0.0;
        while (!runDone()) {
            stepEdge();
            if (measuring && !have0 &&
                committedInstrs >= warm_target) {
                // Fold parked domains' clock-tree energy up to now
                // so both snapshots see the same accounting state.
                kernel.syncStats();
                t0 = lastCommitTime;
                e0_chip = power_.chipEnergyNj();
                e0_dram = power_.dramEnergyNj();
                have0 = true;
            }
        }
        if (have0 && committedInstrs > warm_target) {
            kernel.syncStats();
            double dn =
                static_cast<double>(committedInstrs - warm_target);
            cpi.push_back(
                static_cast<double>(lastCommitTime - t0) / dn);
            epi_chip.push_back(
                (power_.chipEnergyNj() - e0_chip) / dn);
            epi_dram.push_back(
                (power_.dramEnergyNj() - e0_dram) / dn);
        }
        if (committedInstrs - probe_start < this_probe)
            break;  // program ran to completion inside the probe

        // Advance the live walk over the probe span (markers there
        // were delivered by the detailed probe); the next iteration's
        // pre-skip covers the rest of the interval.
        if (!cps)
            live->advance(this_probe, FuncState::MarkerFn{});
        applyScheduleUpTo(committedInstrs + skippedInstrs);
        ++k;
    }

    RunResult r = finishRun();
    r.sampled = true;
    r.sampleIntervals = cpi.size();
    r.skippedInstrs = skippedInstrs;
    r.instrs = committedInstrs + skippedInstrs;

    if (skippedInstrs > 0) {
        double skipped = static_cast<double>(skippedInstrs);
        MeanCi t_est = meanCi95(cpi);
        MeanCi ec_est = meanCi95(epi_chip);
        MeanCi ed_est = meanCi95(epi_dram);
        if (t_est.n == 0 && committedInstrs > 0) {
            // No probe completed a measurement span (tiny window):
            // fall back to the overall detailed averages.
            double dn = static_cast<double>(committedInstrs);
            t_est.mean = static_cast<double>(r.timePs) / dn;
            ec_est.mean = r.chipEnergyNj / dn;
            ed_est.mean = r.dramEnergyNj / dn;
        }
        double raw_chip = r.chipEnergyNj;
        r.timePs += static_cast<Tick>(
            std::llround(t_est.mean * skipped));
        r.chipEnergyNj += ec_est.mean * skipped;
        r.dramEnergyNj += ed_est.mean * skipped;
        // Per-domain energies scale with the chip total (the probes
        // fix the split; the extrapolation preserves it).
        if (raw_chip > 0.0) {
            double scale = r.chipEnergyNj / raw_chip;
            for (Domain d : scaledDomains())
                r.domainEnergyNj[domainIndex(d)] *= scale;
        }
        r.domainEnergyNj[domainIndex(Domain::External)] =
            r.dramEnergyNj;

        double bias = sp.ciBiasPct / 100.0;
        r.timeCiPs = static_cast<Tick>(std::llround(
            std::max(t_est.ci95 * skipped,
                     bias * static_cast<double>(r.timePs))));
        r.energyCiNj = std::max(ec_est.ci95 * skipped,
                                bias * r.chipEnergyNj);
    }
    return r;
}

} // namespace mcd::sim
