#include "sim/clock.hh"

#include <algorithm>

namespace mcd::sim
{

Volt
SimConfig::voltageFor(Mhz f) const
{
    if (f <= minMhz)
        return minVolt;
    if (f >= maxMhz)
        return maxVolt;
    double t = (f - minMhz) / (maxMhz - minMhz);
    return minVolt + t * (maxVolt - minVolt);
}

DomainClock::DomainClock(const SimConfig &c, Domain d, bool jitter,
                         Rng r)
    : cfg(c), domain(d), jitterOn(jitter), rng(r),
      curMhz(c.maxMhz), targetMhz(c.maxMhz),
      volt(c.voltageFor(c.maxMhz)),
      nominalNext(periodPs(c.maxMhz)), jitteredNext(nominalNext),
      lastEdge(0), edgeCount(0), freqTimeIntegral(0.0), startTime(0)
{
    if (jitterOn) {
        double j = rng.clampedNormal(
            0.0, static_cast<double>(cfg.jitterPs) / 3.0,
            static_cast<double>(cfg.jitterPs));
        jitteredNext = static_cast<Tick>(
            std::max<double>(1.0, static_cast<double>(nominalNext) + j));
    }
}

void
DomainClock::advance()
{
    Tick now = jitteredNext;
    freqTimeIntegral += curMhz * static_cast<double>(now - lastEdge);
    lastEdge = now;
    ++edgeCount;

    // Ramp the effective frequency toward the target: 1 MHz per
    // rampNsPerMhz nanoseconds of elapsed time.
    if (curMhz != targetMhz) {
        double elapsed_ns =
            static_cast<double>(periodPs(curMhz)) / 1000.0;
        double delta = elapsed_ns / cfg.rampNsPerMhz;
        if (curMhz < targetMhz)
            curMhz = std::min(targetMhz, curMhz + delta);
        else
            curMhz = std::max(targetMhz, curMhz - delta);
        volt = cfg.voltageFor(curMhz);
    }

    // The nominal grid advances jitter-free; jitter perturbs each
    // edge independently (no random-walk drift).
    nominalNext += periodPs(curMhz);
    jitteredNext = nominalNext;
    if (jitterOn) {
        double j = rng.clampedNormal(
            0.0, static_cast<double>(cfg.jitterPs) / 3.0,
            static_cast<double>(cfg.jitterPs));
        double cand = static_cast<double>(nominalNext) + j;
        double floor_t = static_cast<double>(now) + 1.0;
        jitteredNext = static_cast<Tick>(std::max(cand, floor_t));
    }
}

std::uint64_t
DomainClock::fastForwardTo(Tick t)
{
    // Consuming each edge through advance() keeps the edge schedule
    // bit-identical to stepping by construction: one jitter draw per
    // edge, the same arithmetic.  (A hand-specialized loop saves
    // nothing measurable — the Box-Muller jitter draw dominates.)
    std::uint64_t n = 0;
    while (jitteredNext < t) {
        advance();
        ++n;
    }
    return n;
}

Mhz
DomainClock::averageFreq() const
{
    Tick span = lastEdge - startTime;
    if (span == 0)
        return curMhz;
    return freqTimeIntegral / static_cast<double>(span);
}

void
DomainClock::setTarget(Mhz f)
{
    targetMhz = std::clamp(f, cfg.minMhz, cfg.maxMhz);
}

void
DomainClock::jumpTo(Mhz f)
{
    targetMhz = std::clamp(f, cfg.minMhz, cfg.maxMhz);
    curMhz = targetMhz;
    volt = cfg.voltageFor(curMhz);
    nominalNext = lastEdge + periodPs(curMhz);
    jitteredNext = nominalNext;
}

Tick
syncMarginPs(const SimConfig &cfg, Domain src, Domain dst,
             Tick src_period, Tick dst_period)
{
    if (cfg.singleClock || src == dst)
        return 0;
    Tick faster = std::min(src_period, dst_period);
    return static_cast<Tick>(cfg.syncWindowFrac *
                             static_cast<double>(faster));
}

} // namespace mcd::sim
