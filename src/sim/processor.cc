#include "sim/processor.hh"

#include "util/logging.hh"

namespace mcd::sim
{

Processor::Processor(const SimConfig &c, const power::PowerConfig &pc,
                     const workload::Program &prog,
                     const workload::InputSet &in)
    : cfg(c), program(prog), input(in),
      power_(pc),
      l1i(c.l1iSizeKb, c.l1iWays, c.lineSize),
      l1d(c.l1dSizeKb, c.l1dWays, c.lineSize),
      l2(c.l2SizeKb, c.l2Ways, c.lineSize),
      memory(c.memLatencyPs, c.memBusPs),
      bpred(),
      stream(prog, in),
      kernel(cfg, power_),
      frontend(*this),
      execDomains{{ExecDomain(*this, Domain::Integer, c.intIssueWidth),
                   ExecDomain(*this, Domain::FloatingPoint,
                              c.fpIssueWidth),
                   ExecDomain(*this, Domain::Memory, c.memIssueWidth)}},
      intRegsFree(c.intRegs),
      fpRegsFree(c.fpRegs),
      intAluBusy(static_cast<size_t>(c.intAlus), 0),
      intMulBusy(static_cast<size_t>(c.intMulDiv), 0),
      fpAluBusy(static_cast<size_t>(c.fpAlus), 0),
      fpMulBusy(static_cast<size_t>(c.fpMulDiv), 0),
      memPortBusy(static_cast<size_t>(c.memPorts), 0)
{
    kernel.attach(Domain::FrontEnd, &frontend);
    kernel.attach(Domain::Integer, &execDomains[0]);
    kernel.attach(Domain::FloatingPoint, &execDomains[1]);
    kernel.attach(Domain::Memory, &execDomains[2]);
    producerRing.assign(256, 0);
}

void
Processor::setIntervalHook(IntervalHook *h, std::uint64_t instrs)
{
    intervalHook = h;
    intervalInstrs = instrs;
}

void
Processor::setSchedule(std::vector<SchedulePoint> sched)
{
    schedule = std::move(sched);
    schedulePos = 0;
}

void
Processor::setInitialFreqs(const FreqSet &freqs)
{
    for (Domain d : scaledDomains())
        kernel.jumpTo(d, freqs[domainIndex(d)]);
}

void
Processor::setTarget(Domain d, Mhz f)
{
    kernel.setTarget(d, f);
}

Mhz
Processor::freq(Domain d) const
{
    return clock(d).freq();
}

Mhz
Processor::targetFreq(Domain d) const
{
    return clock(d).target();
}

Tick
Processor::syncMargin(Domain src, Domain dst) const
{
    if (cfg.singleClock || src == dst)
        return 0;
    // External memory runs at the (fixed) maximum frequency.
    Tick sp = src == Domain::External ? periodPs(cfg.maxMhz)
                                      : clock(src).period();
    Tick dp = dst == Domain::External ? periodPs(cfg.maxMhz)
                                      : clock(dst).period();
    return syncMarginPs(cfg, src, dst, sp, dp);
}

Processor::Uop *
Processor::findUop(std::uint64_t seq)
{
    if (rob.empty())
        return nullptr;
    std::uint64_t front = rob.front().seq;
    if (seq < front || seq >= front + rob.size())
        return nullptr;
    return &rob[seq - front];
}

const Processor::Uop *
Processor::findUop(std::uint64_t seq) const
{
    return const_cast<Processor *>(this)->findUop(seq);
}

bool
Processor::operandReady(std::uint64_t producer_seq, Domain d,
                        Tick now) const
{
    if (producer_seq == 0)
        return true;
    if (const Uop *p = findUop(producer_seq)) {
        if (!p->completed)
            return false;
        // Same-domain, non-memory producers: compare edge counts so
        // that back-to-back dependent issue is exact under jitter.
        if (p->domain == d && !p->isLoad)
            return clock(d).edges() >= p->execDoneEdge;
        Tick t = p->isLoad ? p->memDone : p->execDone;
        return now >= t + syncMargin(p->domain, d);
    }
    // Producer has retired; the value ring remembers recent ones.
    const ValueEntry &e = valueRing[producer_seq % VALUE_RING];
    if (e.seq == producer_seq)
        return now >= e.ready;
    return true;  // retired long ago
}

RunResult
Processor::run(std::uint64_t max_instrs)
{
    if (cfg.sampling.sampled())
        return runSampled(max_instrs);
    beginRun(max_instrs);
    while (!runDone())
        stepEdge();
    return finishRun();
}

void
Processor::beginRun(std::uint64_t max_instrs)
{
    maxInstrs_ = max_instrs;
    watchdogLastCheck = 0;
    watchdogLastInstrs = 0;
    kernel.prologue();
}

void
Processor::stepEdge()
{
    Tick now = kernel.stepOne();
    if (now - watchdogLastCheck > cfg.watchdogPs) {
        if (committedInstrs == watchdogLastInstrs)
            panic("no commit progress for %llu ps at t=%llu "
                  "(rob=%zu fq=%zu committed=%llu)",
                  static_cast<unsigned long long>(cfg.watchdogPs),
                  static_cast<unsigned long long>(now),
                  rob.size(), fetchQueue.size(),
                  static_cast<unsigned long long>(committedInstrs));
        watchdogLastCheck = now;
        watchdogLastInstrs = committedInstrs;
    }
}

RunResult
Processor::finishRun()
{
    kernel.finish();
    Tick end = kernel.now();

    RunResult r;
    r.timePs = lastCommitTime ? lastCommitTime : end;
    r.chipEnergyNj = power_.chipEnergyNj();
    r.dramEnergyNj = power_.dramEnergyNj();
    r.instrs = committedInstrs;
    r.feCycles = feTickCount;
    r.ipc = feTickCount ? static_cast<double>(committedInstrs) /
                              static_cast<double>(feTickCount)
                        : 0.0;
    r.branches = branches;
    r.mispredicts = mispredicts;
    r.l1dAccesses = l1dAccessCount;
    r.l1dMisses = l1dMissCount;
    r.l2Misses = l2MissCount;
    r.icacheMisses = icacheMissCount;
    r.dramAccesses = dramAccessCount;
    r.reconfigs = reconfigCount;
    r.overheadCycles = overheadCycleCount;
    r.ffEdges = kernel.fastForwardedEdges();
    for (Domain d : scaledDomains()) {
        r.avgFreq[domainIndex(d)] = clock(d).averageFreq();
        r.domainEnergyNj[domainIndex(d)] = power_.domainEnergyNj(d);
    }
    r.domainEnergyNj[domainIndex(Domain::External)] =
        power_.dramEnergyNj();
    return r;
}

} // namespace mcd::sim
