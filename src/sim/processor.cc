#include "sim/processor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mcd::sim
{

using workload::InstrClass;
using workload::MarkerKind;
using workload::StreamItem;

Processor::Processor(const SimConfig &c, const power::PowerConfig &pc,
                     const workload::Program &prog,
                     const workload::InputSet &in)
    : cfg(c), program(prog), input(in),
      power_(pc),
      l1i(c.l1iSizeKb, c.l1iWays, c.lineSize),
      l1d(c.l1dSizeKb, c.l1dWays, c.lineSize),
      l2(c.l2SizeKb, c.l2Ways, c.lineSize),
      memory(c.memLatencyPs, c.memBusPs),
      bpred(),
      stream(prog, in),
      intRegsFree(c.intRegs),
      fpRegsFree(c.fpRegs),
      intAluBusy(static_cast<size_t>(c.intAlus), 0),
      intMulBusy(static_cast<size_t>(c.intMulDiv), 0),
      fpAluBusy(static_cast<size_t>(c.fpAlus), 0),
      fpMulBusy(static_cast<size_t>(c.fpMulDiv), 0),
      memPortBusy(static_cast<size_t>(c.memPorts), 0)
{
    Rng seed_rng(cfg.jitterSeed);
    bool jitter = !cfg.singleClock;
    for (int d = 0; d < NUM_SCALED_DOMAINS; ++d) {
        clocks[d] = std::make_unique<DomainClock>(
            cfg, static_cast<Domain>(d), jitter, seed_rng.fork());
    }
    producerRing.assign(256, 0);
}

void
Processor::setIntervalHook(IntervalHook *h, std::uint64_t instrs)
{
    intervalHook = h;
    intervalInstrs = instrs;
}

void
Processor::setSchedule(std::vector<SchedulePoint> sched)
{
    schedule = std::move(sched);
    schedulePos = 0;
}

void
Processor::setInitialFreqs(const FreqSet &freqs)
{
    for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
        clocks[d]->jumpTo(freqs[static_cast<size_t>(d)]);
}

void
Processor::setTarget(Domain d, Mhz f)
{
    clock(d).setTarget(f);
}

Mhz
Processor::freq(Domain d) const
{
    return clock(d).freq();
}

Mhz
Processor::targetFreq(Domain d) const
{
    return clock(d).target();
}

Tick
Processor::syncMargin(Domain src, Domain dst) const
{
    if (cfg.singleClock || src == dst)
        return 0;
    // External memory runs at the (fixed) maximum frequency.
    Tick sp = src == Domain::External ? periodPs(cfg.maxMhz)
                                      : clock(src).period();
    Tick dp = dst == Domain::External ? periodPs(cfg.maxMhz)
                                      : clock(dst).period();
    return syncMarginPs(cfg, src, dst, sp, dp);
}

Processor::Uop *
Processor::findUop(std::uint64_t seq)
{
    if (rob.empty())
        return nullptr;
    std::uint64_t front = rob.front().seq;
    if (seq < front || seq >= front + rob.size())
        return nullptr;
    return &rob[seq - front];
}

const Processor::Uop *
Processor::findUop(std::uint64_t seq) const
{
    return const_cast<Processor *>(this)->findUop(seq);
}

bool
Processor::operandReady(std::uint64_t producer_seq, Domain d,
                        Tick now) const
{
    if (producer_seq == 0)
        return true;
    if (const Uop *p = findUop(producer_seq)) {
        if (!p->completed)
            return false;
        // Same-domain, non-memory producers: compare edge counts so
        // that back-to-back dependent issue is exact under jitter.
        if (p->domain == d && !p->isLoad)
            return clock(d).edges() >= p->execDoneEdge;
        Tick t = p->isLoad ? p->memDone : p->execDone;
        return now >= t + syncMargin(p->domain, d);
    }
    // Producer has retired; the value ring remembers recent ones.
    const ValueEntry &e = valueRing[producer_seq % VALUE_RING];
    if (e.seq == producer_seq)
        return now >= e.ready;
    return true;  // retired long ago
}

void
Processor::chargeLeakage(Tick now)
{
    Tick dt = now - lastLeakTime;
    if (dt == 0)
        return;
    for (int d = 0; d < NUM_SCALED_DOMAINS; ++d) {
        power_.leakage(static_cast<Domain>(d),
                       clocks[d]->voltage(), dt);
    }
    lastLeakTime = now;
}

void
Processor::applyMarker(const MarkerAction &a, Tick now)
{
    if (a.stallCycles > 0) {
        Tick stall = static_cast<Tick>(a.stallCycles) *
                     clock(Domain::FrontEnd).period();
        Tick until = now + stall;
        if (until > fetchStallUntil)
            fetchStallUntil = until;
        overheadCycleCount += static_cast<std::uint64_t>(a.stallCycles);
    }
    if (a.energyPj > 0.0) {
        Volt v = clock(Domain::FrontEnd).voltage();
        double r = v / power_.config().vMax;
        power_.extra(Domain::FrontEnd, a.energyPj * r * r);
    }
    if (a.reconfig) {
        for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
            clocks[d]->setTarget(a.freqs[static_cast<size_t>(d)]);
        ++reconfigCount;
    }
}

bool
Processor::streamFetchBlocked(Tick now)
{
    if (now < fetchStallUntil || now < icacheBlockedUntil)
        return true;
    if (blockedBranchSeq != 0) {
        if (redirectAt == 0) {
            const Uop *u = findUop(blockedBranchSeq);
            if (u && u->completed) {
                redirectAt = u->execDone +
                             syncMargin(u->domain, Domain::FrontEnd) +
                             static_cast<Tick>(cfg.mispredictPenalty) *
                                 clock(Domain::FrontEnd).period();
            }
        }
        if (redirectAt != 0 && now >= redirectAt) {
            blockedBranchSeq = 0;
            redirectAt = 0;
            return false;
        }
        return true;
    }
    return false;
}

void
Processor::fetch(Tick now)
{
    if (streamEnded || fetchedInstrs >= maxInstrs_)
        return;
    if (streamFetchBlocked(now))
        return;

    Volt fe_v = clock(Domain::FrontEnd).voltage();
    int slots = cfg.fetchWidth;
    while (slots > 0 && fetchedInstrs < maxInstrs_ &&
           fetchQueue.size() <
               static_cast<std::size_t>(cfg.fetchQueueSize)) {
        StreamItem item;
        if (haveHoldover) {
            item = holdover;
            haveHoldover = false;
        } else if (!stream.next(item)) {
            streamEnded = true;
            break;
        }

        if (item.kind == StreamItem::Kind::Marker) {
            MarkerAction action;
            if (markerHandler)
                action = markerHandler->onMarker(item.marker);
            applyMarker(action, now);
            if (action.stallCycles > 0)
                break;  // instrumentation ends this fetch group
            continue;   // markers consume no fetch slot
        }

        const workload::DynInstr &di = item.instr;
        std::uint64_t line = di.pc / cfg.lineSize;
        if (line != lastFetchLine) {
            power_.access(power::Unit::Icache, fe_v);
            if (!l1i.access(di.pc)) {
                ++icacheMissCount;
                Tick lat = syncMargin(Domain::FrontEnd, Domain::Memory);
                Volt mem_v = clock(Domain::Memory).voltage();
                power_.access(power::Unit::L2, mem_v);
                lat += static_cast<Tick>(cfg.l2Latency) *
                       clock(Domain::Memory).period();
                if (!l2.access(di.pc)) {
                    power_.access(power::Unit::Dram, power_.config().vMax);
                    Tick t_mem = memory.access(now + lat);
                    lat = (t_mem - now);
                }
                lat += syncMargin(Domain::Memory, Domain::FrontEnd);
                icacheBlockedUntil = now + lat;
                lastFetchLine = line;
                holdover = item;
                haveHoldover = true;
                break;
            }
            lastFetchLine = line;
        }

        Uop u;
        u.di = di;
        u.seq = nextSeq++;
        u.node = markerHandler ? markerHandler->currentNode() : 0;
        u.domain = workload::execDomain(di.cls);
        u.isLoad = di.cls == InstrClass::Load;
        u.isStore = di.cls == InstrClass::Store;
        u.fetchTime = now;

        bool stop_group = false;
        if (di.cls == InstrClass::Branch) {
            power_.access(power::Unit::Bpred, fe_v);
            BranchPrediction p = bpred.predict(di.pc);
            bool mis = (p.taken != di.taken) ||
                       (di.taken && (!p.btbHit || p.target != di.target));
            u.mispredicted = mis;
            if (mis) {
                blockedBranchSeq = u.seq;
                redirectAt = 0;
                stop_group = true;
            } else if (di.taken) {
                stop_group = true;  // taken branch ends fetch group
            }
        }

        FetchEntry fe;
        fe.uop = u;
        fe.readyFeTick = feTickCount +
                         static_cast<std::uint64_t>(cfg.decodeDepth);
        fetchQueue.push_back(fe);
        ++fetchedInstrs;
        --slots;
        if (stop_group)
            break;
    }
}

void
Processor::dispatch(Tick now)
{
    Volt fe_v = clock(Domain::FrontEnd).voltage();
    int n = 0;
    while (n < cfg.dispatchWidth && !fetchQueue.empty()) {
        FetchEntry &fe = fetchQueue.front();
        if (fe.readyFeTick > feTickCount)
            break;
        Uop &u = fe.uop;
        if (rob.size() >= static_cast<std::size_t>(cfg.robSize))
            break;
        int d = static_cast<int>(u.domain);
        std::size_t cap = 0;
        switch (u.domain) {
          case Domain::Integer:
            cap = static_cast<std::size_t>(cfg.intIqSize);
            break;
          case Domain::FloatingPoint:
            cap = static_cast<std::size_t>(cfg.fpIqSize);
            break;
          case Domain::Memory:
            cap = static_cast<std::size_t>(cfg.lsqSize);
            break;
          default:
            cap = 0;
            break;
        }
        if (iq[static_cast<size_t>(d)].size() >= cap)
            break;
        bool needs_reg = workload::producesValue(u.di.cls);
        bool fp_reg = u.domain == Domain::FloatingPoint;
        if (needs_reg) {
            if (fp_reg && fpRegsFree == 0)
                break;
            if (!fp_reg && intRegsFree == 0)
                break;
        }

        // Resolve positional dependences against the producer ring
        // (program order).
        auto resolve = [&](std::uint8_t dist) -> std::uint64_t {
            if (dist == 0)
                return 0;
            std::uint64_t produced =
                producerCount >= producerRing.size()
                    ? producerRing.size()
                    : producerCount;
            if (dist > produced)
                return 0;
            std::size_t idx =
                (producerHead + producerRing.size() - dist) %
                producerRing.size();
            return producerRing[idx];
        };
        u.depSeq1 = resolve(u.di.dep1);
        u.depSeq2 = resolve(u.di.dep2);

        if (needs_reg) {
            if (fp_reg)
                --fpRegsFree;
            else
                --intRegsFree;
            producerRing[producerHead] = u.seq;
            producerHead = (producerHead + 1) % producerRing.size();
            ++producerCount;
        }

        u.dispatchTime = now;
        u.inIq = true;
        if (u.isStore)
            storeSeqs.push_back(u.seq);
        rob.push_back(u);
        iq[static_cast<size_t>(d)].push_back(u.seq);

        power_.access(power::Unit::Rename, fe_v);
        power_.access(power::Unit::Rob, fe_v);
        power_.accessTo(power::Unit::IssueQueue, u.domain,
                        clock(u.domain).voltage());

        fetchQueue.pop_front();
        ++n;
    }
}

void
Processor::commit(Tick now)
{
    Volt fe_v = clock(Domain::FrontEnd).voltage();
    int n = 0;
    while (n < cfg.retireWidth && !rob.empty()) {
        Uop &u = rob.front();
        if (!u.completed)
            break;
        Tick done = u.isLoad ? u.memDone : u.execDone;
        if (now < done + syncMargin(u.domain, Domain::FrontEnd))
            break;

        // A mispredicted branch may retire before the fetch stage has
        // computed its redirect time; do it here so the information
        // survives the ROB entry.
        if (u.seq == blockedBranchSeq && redirectAt == 0) {
            redirectAt = u.execDone +
                         syncMargin(u.domain, Domain::FrontEnd) +
                         static_cast<Tick>(cfg.mispredictPenalty) *
                             clock(Domain::FrontEnd).period();
        }

        if (u.di.cls == InstrClass::Branch) {
            ++branches;
            if (u.mispredicted)
                ++mispredicts;
            bpred.update(u.di.pc, u.di.taken, u.di.target);
        }

        if (u.isStore) {
            // Write the cache at commit; timing is not blocking.
            Volt mem_v = clock(Domain::Memory).voltage();
            power_.access(power::Unit::Dcache, mem_v);
            ++l1dAccessCount;
            if (!l1d.access(u.di.addr)) {
                ++l1dMissCount;
                power_.access(power::Unit::L2, mem_v);
                if (!l2.access(u.di.addr)) {
                    ++l2MissCount;
                    power_.access(power::Unit::Dram,
                                  power_.config().vMax);
                    memory.access(now);
                }
            }
            if (!storeSeqs.empty() && storeSeqs.front() == u.seq)
                storeSeqs.pop_front();
        }

        power_.access(power::Unit::Rob, fe_v);

        if (workload::producesValue(u.di.cls)) {
            Tick ready = u.isLoad ? u.memDone : u.execDone;
            valueRing[u.seq % VALUE_RING] = ValueEntry{u.seq, ready};
            if (u.domain == Domain::FloatingPoint)
                ++fpRegsFree;
            else
                ++intRegsFree;
        }

        if (traceSink) {
            InstrTiming t;
            t.seq = u.seq;
            t.node = u.node;
            t.cls = u.di.cls;
            t.domain = u.domain;
            t.dep1 = u.depSeq1;
            t.dep2 = u.depSeq2;
            t.fetch = u.fetchTime;
            t.dispatch = u.dispatchTime;
            t.issue = u.issueTime;
            t.execDone = u.execDone;
            t.memStart = u.memStart;
            t.memDone = u.memDone;
            t.commit = now;
            t.l1Miss = u.l1Miss;
            t.l2Miss = u.l2Miss;
            t.mispredict = u.mispredicted;
            traceSink->onInstr(t);
        }

        rob.pop_front();
        ++committedInstrs;
        lastCommitTime = now;
        ++n;

        while (schedulePos < schedule.size() &&
               committedInstrs >= schedule[schedulePos].atInstr) {
            for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
                clocks[d]->setTarget(
                    schedule[schedulePos].freqs[static_cast<size_t>(d)]);
            ++reconfigCount;
            ++schedulePos;
        }

        if (intervalHook && intervalInstrs > 0 &&
            committedInstrs - intervalStartInstrs >= intervalInstrs) {
            IntervalStats s;
            s.instrs = committedInstrs - intervalStartInstrs;
            s.timePs = now - intervalStartTime;
            std::uint64_t fe_cyc = feTickCount - intervalStartFeCycles;
            s.ipc = fe_cyc ? static_cast<double>(s.instrs) /
                                 static_cast<double>(fe_cyc)
                           : 0.0;
            for (int d = 0; d < NUM_SCALED_DOMAINS; ++d) {
                std::uint64_t samples =
                    occSamples[static_cast<size_t>(d)];
                s.queueOcc[static_cast<size_t>(d)] =
                    samples ? occSum[static_cast<size_t>(d)] /
                                  static_cast<double>(samples)
                            : 0.0;
            }
            std::uint64_t fe_samples =
                occSamples[static_cast<size_t>(Domain::FrontEnd)];
            s.robOcc = fe_samples
                           ? robOccSum / static_cast<double>(fe_samples)
                           : 0.0;
            intervalHook->onInterval(s, *this);
            occSum.fill(0.0);
            occSamples.fill(0);
            robOccSum = 0.0;
            intervalStartInstrs = committedInstrs;
            intervalStartTime = now;
            intervalStartFeCycles = feTickCount;
        }
    }
}

void
Processor::feTick(Tick now)
{
    ++feTickCount;
    occSum[static_cast<size_t>(Domain::FrontEnd)] +=
        static_cast<double>(fetchQueue.size());
    robOccSum += static_cast<double>(rob.size());
    ++occSamples[static_cast<size_t>(Domain::FrontEnd)];
    commit(now);
    dispatch(now);
    fetch(now);
}

bool
Processor::tryIssue(Domain d, Tick now, std::uint64_t seq)
{
    Uop *up = findUop(seq);
    if (!up)
        panic("IQ entry %llu missing from ROB",
              static_cast<unsigned long long>(seq));
    Uop &u = *up;

    // Dispatch-to-issue-queue synchronization (front end -> domain).
    if (now < u.dispatchTime + syncMargin(Domain::FrontEnd, d))
        return false;
    if (!operandReady(u.depSeq1, d, now) ||
        !operandReady(u.depSeq2, d, now))
        return false;

    // Loads: memory ordering against older in-flight stores to the
    // same address (conservative exact-address disambiguation with
    // store-to-load forwarding).
    bool forwarded = false;
    Tick forward_ready = 0;
    if (u.isLoad) {
        for (auto it = storeSeqs.rbegin(); it != storeSeqs.rend();
             ++it) {
            if (*it >= u.seq)
                continue;
            const Uop *s = findUop(*it);
            if (!s)
                break;  // older stores retired: no conflict possible
            if (s->di.addr != u.di.addr)
                continue;
            if (!s->completed)
                return false;  // data not ready yet
            forwarded = true;
            forward_ready = s->execDone;
            break;
        }
    }

    // Functional unit allocation, in domain edge counts (exact under
    // jitter).
    Tick period = clock(d).period();
    std::uint64_t cur_edge = clock(d).edges();
    auto take_pipelined = [&](std::vector<Tick> &units) -> bool {
        for (auto &busy : units) {
            if (busy <= cur_edge) {
                busy = cur_edge + 1;
                return true;
            }
        }
        return false;
    };
    auto take_blocking = [&](std::vector<Tick> &units,
                             std::uint64_t lat_edges) -> bool {
        for (auto &busy : units) {
            if (busy <= cur_edge) {
                busy = cur_edge + lat_edges;
                return true;
            }
        }
        return false;
    };

    Volt v = clock(d).voltage();
    int lat = 0;
    switch (u.di.cls) {
      case InstrClass::IntAlu:
      case InstrClass::Branch:
        if (!take_pipelined(intAluBusy))
            return false;
        lat = cfg.latIntAlu;
        power_.access(power::Unit::IntAlu, v);
        break;
      case InstrClass::IntMul:
        if (!take_pipelined(intMulBusy))
            return false;
        lat = cfg.latIntMul;
        power_.access(power::Unit::IntMul, v);
        break;
      case InstrClass::IntDiv:
        lat = cfg.latIntDiv;
        if (!take_blocking(intMulBusy, static_cast<std::uint64_t>(lat)))
            return false;
        power_.access(power::Unit::IntMul, v);
        break;
      case InstrClass::FpAdd:
        if (!take_pipelined(fpAluBusy))
            return false;
        lat = cfg.latFpAdd;
        power_.access(power::Unit::FpAlu, v);
        break;
      case InstrClass::FpMul:
        if (!take_pipelined(fpMulBusy))
            return false;
        lat = cfg.latFpMul;
        power_.access(power::Unit::FpMul, v);
        break;
      case InstrClass::FpDiv:
      case InstrClass::FpSqrt:
        lat = u.di.cls == InstrClass::FpDiv ? cfg.latFpDiv
                                            : cfg.latFpSqrt;
        if (!take_blocking(fpMulBusy, static_cast<std::uint64_t>(lat)))
            return false;
        power_.access(power::Unit::FpMul, v);
        break;
      case InstrClass::Load:
      case InstrClass::Store:
        if (!take_pipelined(memPortBusy))
            return false;
        lat = 1;
        power_.access(power::Unit::Lsq, v);
        break;
      default:
        return false;
    }

    // Register file reads for the source operands.
    int n_src = (u.depSeq1 ? 1 : 0) + (u.depSeq2 ? 1 : 0);
    if (n_src > 0) {
        power::Unit rf = d == Domain::FloatingPoint
                             ? power::Unit::RegFileFp
                             : power::Unit::RegFileInt;
        power_.accessTo(rf, d, v, n_src);
    }

    u.issueTime = now;
    u.issued = true;
    u.inIq = false;
    u.execDone = now + static_cast<Tick>(lat) * period;
    u.execDoneEdge = cur_edge + static_cast<std::uint64_t>(lat);
    u.completed = true;

    if (u.isLoad) {
        u.memStart = u.execDone;
        Volt mem_v = clock(Domain::Memory).voltage();
        if (forwarded) {
            Tick data = std::max(u.memStart, forward_ready);
            u.memDone = data + static_cast<Tick>(cfg.l1Latency) * period;
        } else {
            power_.access(power::Unit::Dcache, mem_v);
            ++l1dAccessCount;
            Tick t = u.memStart +
                     static_cast<Tick>(cfg.l1Latency) * period;
            if (!l1d.access(u.di.addr)) {
                u.l1Miss = true;
                ++l1dMissCount;
                power_.access(power::Unit::L2, mem_v);
                t += static_cast<Tick>(cfg.l2Latency) * period;
                if (!l2.access(u.di.addr)) {
                    u.l2Miss = true;
                    ++l2MissCount;
                    power_.access(power::Unit::Dram,
                                  power_.config().vMax);
                    t = memory.access(t) +
                        syncMargin(Domain::External, Domain::Memory);
                }
            }
            u.memDone = t;
        }
    }
    return true;
}

void
Processor::execTick(Domain d, Tick now)
{
    auto &queue = iq[static_cast<size_t>(d)];
    occSum[static_cast<size_t>(d)] += static_cast<double>(queue.size());
    ++occSamples[static_cast<size_t>(d)];

    int width = 0;
    switch (d) {
      case Domain::Integer:
        width = cfg.intIssueWidth;
        break;
      case Domain::FloatingPoint:
        width = cfg.fpIssueWidth;
        break;
      case Domain::Memory:
        width = cfg.memIssueWidth;
        break;
      default:
        return;
    }

    int issued = 0;
    for (auto it = queue.begin(); it != queue.end() && issued < width;) {
        if (tryIssue(d, now, *it)) {
            it = queue.erase(it);
            ++issued;
        } else {
            ++it;
        }
    }
}

RunResult
Processor::run(std::uint64_t max_instrs)
{
    maxInstrs_ = max_instrs;
    Tick now = 0;
    Tick last_progress_check = 0;
    std::uint64_t last_progress_instrs = 0;

    while (true) {
        bool fetch_exhausted = streamEnded ||
                               fetchedInstrs >= maxInstrs_;
        if (fetch_exhausted && rob.empty() && fetchQueue.empty())
            break;

        int best = 0;
        Tick best_t = clocks[0]->nextEdge();
        for (int d = 1; d < NUM_SCALED_DOMAINS; ++d) {
            if (clocks[d]->nextEdge() < best_t) {
                best_t = clocks[d]->nextEdge();
                best = d;
            }
        }
        now = best_t;
        clocks[best]->advance();
        Domain dom = static_cast<Domain>(best);
        power_.clockCycle(dom, clocks[best]->voltage());
        chargeLeakage(now);

        if (dom == Domain::FrontEnd)
            feTick(now);
        else
            execTick(dom, now);

        if (now - last_progress_check > cfg.watchdogPs) {
            if (committedInstrs == last_progress_instrs)
                panic("no commit progress for %llu ps at t=%llu "
                      "(rob=%zu fq=%zu committed=%llu)",
                      static_cast<unsigned long long>(cfg.watchdogPs),
                      static_cast<unsigned long long>(now),
                      rob.size(), fetchQueue.size(),
                      static_cast<unsigned long long>(committedInstrs));
            last_progress_check = now;
            last_progress_instrs = committedInstrs;
        }
    }

    RunResult r;
    r.timePs = lastCommitTime ? lastCommitTime : now;
    r.chipEnergyNj = power_.chipEnergyNj();
    r.dramEnergyNj = power_.dramEnergyNj();
    r.instrs = committedInstrs;
    r.feCycles = feTickCount;
    r.ipc = feTickCount ? static_cast<double>(committedInstrs) /
                              static_cast<double>(feTickCount)
                        : 0.0;
    r.branches = branches;
    r.mispredicts = mispredicts;
    r.l1dAccesses = l1dAccessCount;
    r.l1dMisses = l1dMissCount;
    r.l2Misses = l2MissCount;
    r.icacheMisses = icacheMissCount;
    r.dramAccesses = memory.requests();
    r.reconfigs = reconfigCount;
    r.overheadCycles = overheadCycleCount;
    for (int d = 0; d < NUM_SCALED_DOMAINS; ++d) {
        r.avgFreq[static_cast<size_t>(d)] = clocks[d]->averageFreq();
        r.domainEnergyNj[static_cast<size_t>(d)] =
            power_.domainEnergyNj(static_cast<Domain>(d));
    }
    r.domainEnergyNj[static_cast<size_t>(Domain::External)] =
        power_.dramEnergyNj();
    return r;
}

} // namespace mcd::sim
