/**
 * @file
 * Simulator configuration: the architectural parameters of Table 1 of
 * the paper (Alpha 21264-like core, XScale-like voltage/frequency
 * scaling), plus modeling knobs.
 */

#ifndef MCD_SIM_CONFIG_HH
#define MCD_SIM_CONFIG_HH

#include <cstdint>

#include "sim/sampling.hh"
#include "util/types.hh"

namespace mcd::sim
{

/** Architectural and DVFS parameters (defaults = paper's Table 1). */
struct SimConfig
{
    // --- pipeline widths ---
    int fetchWidth = 4;
    int dispatchWidth = 4;   ///< decode/dispatch width ("Decode 4")
    int retireWidth = 11;

    // --- window sizes ---
    int robSize = 80;
    int intIqSize = 20;
    int fpIqSize = 15;
    int lsqSize = 64;
    int intRegs = 72;
    int fpRegs = 72;

    // --- functional units ---
    int intAlus = 4;
    int intMulDiv = 1;
    int fpAlus = 2;
    int fpMulDiv = 1;
    int memPorts = 2;

    // --- per-domain issue widths (sum ~ Table 1's issue width 6) ---
    int intIssueWidth = 4;
    int fpIssueWidth = 2;
    int memIssueWidth = 2;

    // --- execution latencies (cycles in the owning domain) ---
    int latIntAlu = 1;
    int latIntMul = 3;
    int latIntDiv = 12;
    int latFpAdd = 2;
    int latFpMul = 4;
    int latFpDiv = 12;
    int latFpSqrt = 18;

    // --- front end ---
    int decodeDepth = 2;       ///< fetch-to-dispatch stages
    int mispredictPenalty = 7; ///< extra front-end cycles on redirect
    int fetchQueueSize = 16;

    // --- memory hierarchy ---
    std::uint32_t lineSize = 64;
    std::uint32_t l1iSizeKb = 64;
    int l1iWays = 2;
    std::uint32_t l1dSizeKb = 64;
    int l1dWays = 2;
    int l1Latency = 2;          ///< cycles (memory domain)
    std::uint32_t l2SizeKb = 1024;
    int l2Ways = 1;             ///< direct mapped
    int l2Latency = 12;         ///< cycles (memory domain)
    Tick memLatencyPs = 60000;  ///< main-memory access (external, fixed)
    Tick memBusPs = 4000;       ///< per-request bus occupancy

    // --- clocking / DVFS (XScale-like) ---
    Mhz maxMhz = 1000.0;
    Mhz minMhz = 250.0;
    Volt maxVolt = 1.20;
    Volt minVolt = 0.65;
    double rampNsPerMhz = 73.3;    ///< frequency change speed
    Tick jitterPs = 110;           ///< clock jitter bound (normal)
    double syncWindowFrac = 0.3;   ///< fraction of faster clock period

    /**
     * Single-clock mode: all domains share aligned edges and no
     * synchronization penalties apply (used for the MCD-penalty
     * experiment and the global-DVS baseline).
     */
    bool singleClock = false;

    /** Seed for clock jitter randomization. */
    std::uint64_t jitterSeed = 7777;

    /**
     * Idle-edge fast-forward: the simulation kernel parks domains
     * that provably have no work (empty issue queue, stable
     * frequency) and replays their skipped edges in batch when they
     * wake.  Edge times, instruction timing and every counter are
     * bit-identical to the slow path — each skipped edge still draws
     * its jitter sample and the ramp never runs while parked — only
     * the floating-point summation order of energy totals differs
     * (below any reported precision).  Part of the memo-cache
     * fingerprint so outcomes from the two modes never mix.
     */
    bool fastForward = true;

    /**
     * Sampling mode and geometry (sim/sampling.hh): exact by default;
     * sampled mode trades bounded error for 10-100x per-cell speed.
     * All fields fingerprinted (CACHE_VERSION v8).
     */
    SamplingConfig sampling;

    /** Safety: abort if no instruction commits for this many ps. */
    // mcd-lint: allow(fingerprint-complete): a tripped watchdog
    // aborts the process before any outcome exists, so the threshold
    // can never shape a cached line (CACHE_VERSION v6 note,
    // src/exp/experiment.cc).
    Tick watchdogPs = 400ULL * 1000 * 1000;

    /** Supply voltage for frequency @p f (linear XScale-like model). */
    Volt voltageFor(Mhz f) const;
};

} // namespace mcd::sim

#endif // MCD_SIM_CONFIG_HH
