#include "sim/kernel.hh"

#include "util/rng.hh"

namespace mcd::sim
{

Kernel::Kernel(const SimConfig &c, power::PowerModel &p)
    : cfg(c), power(p), ff(c.fastForward)
{
    Rng seed_rng(cfg.jitterSeed);
    bool jitter = !cfg.singleClock;
    for (Domain d : scaledDomains()) {
        clocks[domainIndex(d)] = std::make_unique<DomainClock>(
            cfg, d, jitter, seed_rng.fork());
    }
}

void
Kernel::setTarget(Domain d, Mhz f)
{
    // Replay any skipped edges *before* the target moves: they
    // happened under the old, stable frequency, and fastForwardTo()
    // runs the ramp model on every edge it consumes.
    wake(d);
    clock(d).setTarget(f);
    // While any clock ramps, every domain must process every edge:
    // chip-wide leakage is sliced at each processed edge using the
    // ramping domain's per-edge voltage, so merging slices across a
    // ramp would charge the wrong voltage.  tryPark() refuses to
    // park during a ramp; here we also wake anyone already parked.
    if (clock(d).ramping())
        syncStats();
}

void
Kernel::jumpTo(Domain d, Mhz f)
{
    wake(d);
    clock(d).jumpTo(f);
}

void
Kernel::tryPark(std::size_t d)
{
    // No parking while any clock ramps: a ramping clock updates
    // frequency and voltage at every edge, and chip-wide leakage
    // slices read every domain's instantaneous voltage at every
    // processed edge, so every edge must be a slice boundary until
    // all ramps complete.
    if (parked_[d] || anyRamping())
        return;
    Tick h = comps[d]->idleHorizon();
    if (h != NEVER && h <= now_)
        return;
    parked_[d] = true;
    wakeAt_[d] = h;
}

void
Kernel::replay(std::size_t d, Tick t)
{
    DomainClock &c = *clocks[d];
    // Parked domains never ramp, so one voltage covers the span.
    Volt v = c.voltage();
    std::uint64_t n = c.fastForwardTo(t);
    if (n) {
        power.clockCycles(static_cast<Domain>(d), v, n);
        comps[d]->skipped(n);
        ffEdges += n;
    }
    parked_[d] = false;
}

void
Kernel::chargeLeakage(Tick now)
{
    Tick dt = now - lastLeakTime;
    if (dt == 0)
        return;
    for (Domain d : scaledDomains())
        power.leakage(d, clock(d).voltage(), dt);
    lastLeakTime = now;
}

void
Kernel::finish()
{
    for (std::size_t d = 0; d < clocks.size(); ++d) {
        if (parked_[d])
            replay(d, now_);
    }
}

} // namespace mcd::sim
