/**
 * @file
 * Functional microarchitectural state and serializable checkpoints
 * for sampled simulation (sim/sampling.hh).
 *
 * `FuncState` is the authoritative between-probe trajectory of a
 * sampled run: the stream position plus the long-lived
 * microarchitectural structures (caches, branch predictor, last
 * fetched line) advanced *functionally* — architectural effects in
 * program order, no per-edge scheduling — over both probe and skip
 * spans.  At each probe start the sampler copies the functional
 * state into the Processor and runs the probe detailed; the probe's
 * own mutations are overwritten at the next copy-in, which makes the
 * trajectory independent of frequencies, policies and schedules.
 * That independence is what `CheckpointSet` exploits: one functional
 * walk of a benchmark (probe-start states + recorded skip-span
 * markers and counter deltas) is shared by every policy cell of a
 * sweep, so per-cell cost drops to the detailed probes alone.
 *
 * Checkpoint sets serialize to a compact binary blob (stream state
 * as the instruction index, rebuilt by deterministic replay;
 * cache/predictor arrays verbatim) — see serialize()/deserialize().
 */

#ifndef MCD_SIM_CHECKPOINT_HH
#define MCD_SIM_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "workload/stream.hh"

namespace mcd::sim
{

/**
 * Counter deltas accumulated by one functional advance: the same
 * event counts the detailed pipeline would have bumped over the span
 * (with the same asymmetry — instruction-fetch L2 misses count only
 * as DRAM accesses, mirroring Frontend::fetch).
 */
struct FuncDeltas
{
    std::uint64_t instrs = 0;        ///< instructions consumed
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramAccesses = 0;
};

/**
 * The functional microarchitectural state of a sampled run, advanced
 * in program order at batch-decode speed (workload::StreamBatch).
 *
 * Copyable: probe-start snapshots are plain copies, and the sampler
 * copy-assigns the members into the Processor.
 */
class FuncState
{
  public:
    FuncState(const SimConfig &cfg, const workload::Program &program,
              const workload::InputSet &input);

    /**
     * Marker callback: the marker plus the span-relative index of
     * the instruction it precedes (0 = before the span's first
     * instruction; == consumed count for end-of-program trailers).
     */
    using MarkerFn =
        std::function<void(const workload::Marker &, std::uint64_t)>;

    /**
     * Advance exactly @p n instructions (or to end of program),
     * updating caches/predictor/stream and accumulating deltas.
     * Markers interleaved with the span are reported to @p on_marker
     * (pass an empty function to suppress — probe spans deliver
     * their markers through the detailed pipeline instead).  Markers
     * that follow the span's last instruction are left in the stream
     * unless the program ends, matching the detailed fetch loop's
     * budget-check-before-pull order.
     */
    FuncDeltas advance(std::uint64_t n, const MarkerFn &on_marker);

    /** Instructions consumed since construction (virtual index). */
    std::uint64_t index() const { return index_; }

    // State bundle, copied into the Processor at probe start.
    workload::Stream stream;
    Cache l1i;
    Cache l1d;
    Cache l2;
    BranchPredictor bpred;
    std::uint64_t lastLine = ~0ULL;  ///< last fetched I-cache line
    bool streamEnded = false;        ///< program ran to completion

  private:
    std::uint32_t lineSize;
    std::uint64_t index_ = 0;
    workload::StreamBatch batch;     ///< decode scratch
};

/**
 * Per-benchmark precomputed sampling trajectory: the functional
 * state at every probe start plus each skip span's markers and
 * counter deltas, built once by a pure functional walk and shared
 * (frequency- and policy-independent) across every cell of a sweep
 * that runs the same benchmark, window and sampling geometry.
 */
class CheckpointSet
{
  public:
    /** A marker inside a skip span, at its global virtual index
     *  (the index of the instruction it precedes). */
    struct SpanEvent
    {
        std::uint64_t index = 0;
        workload::Marker marker;
    };

    /**
     * One sampling interval: the functional pre-skip from the
     * previous probe's end to this interval's jittered probe
     * position (sim::sampleProbeOffset), then the probe itself.
     * The final point is a tail (probeLen == 0): its pre-skip runs
     * to the window end (or wherever the program ended).
     */
    struct Point
    {
        std::uint64_t startIndex = 0;  ///< virtual index at point start
        std::uint64_t probeLen = 0;    ///< detailed instrs (0 = tail)
        std::uint64_t skipLen = 0;     ///< pre-skip instrs before probe
        FuncDeltas skipDeltas;         ///< counters over the pre-skip
        std::vector<SpanEvent> skipMarkers;  ///< markers in the pre-skip
        FuncState state;               ///< functional state at probe start
    };

    /**
     * Build by walking [0, @p window) virtual instructions of
     * (@p program, @p input) under @p cfg's sampling geometry (which
     * must be sampled mode).  @p keepalive owns the Program's storage
     * (stream state points into it) and is retained by the set.
     */
    static std::shared_ptr<const CheckpointSet>
    build(std::shared_ptr<const workload::Program> keepalive,
          const workload::InputSet &input, const SimConfig &cfg,
          std::uint64_t window);

    /** True when this set was built for the same sampling geometry
     *  and run window (the sampler falls back to an inline
     *  functional walk otherwise). */
    bool matches(const SamplingConfig &sp, std::uint64_t window) const;

    const std::vector<Point> &points() const { return points_; }
    std::uint64_t window() const { return window_; }
    const SamplingConfig &sampling() const { return sampling_; }

    /** Append the binary form to @p out. */
    void serialize(std::string &out) const;

    /**
     * Rebuild from serialize() output: array state is restored
     * verbatim, stream state by deterministic replay of a fresh
     * stream to each recorded index.  Returns nullptr (never throws)
     * on truncated or mismatched input — the caller rebuilds.
     */
    static std::shared_ptr<const CheckpointSet>
    deserialize(const std::string &bytes,
                std::shared_ptr<const workload::Program> keepalive,
                const workload::InputSet &input, const SimConfig &cfg);

  private:
    friend class CheckpointIo;

    CheckpointSet() = default;

    std::shared_ptr<const workload::Program> keepalive_;
    SamplingConfig sampling_;
    std::uint64_t window_ = 0;
    std::vector<Point> points_;
};

} // namespace mcd::sim

#endif // MCD_SIM_CHECKPOINT_HH
