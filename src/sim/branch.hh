/**
 * @file
 * Branch prediction: combination of a bimodal predictor and a 2-level
 * PAg predictor with a meta chooser, plus a set-associative BTB
 * (Table 1 of the paper).
 */

#ifndef MCD_SIM_BRANCH_HH
#define MCD_SIM_BRANCH_HH

#include <cstdint>
#include <vector>

namespace mcd::sim
{

/** Prediction outcome. */
struct BranchPrediction
{
    bool taken = false;
    bool btbHit = false;
    std::uint64_t target = 0;
};

/**
 * Combined (bimodal + PAg) direction predictor with BTB.
 */
class BranchPredictor
{
  public:
    struct Config
    {
        std::uint32_t bimodalSize = 1024;
        std::uint32_t l1Size = 1024;   ///< per-branch history table
        int historyBits = 10;
        std::uint32_t l2Size = 1024;   ///< pattern history table
        std::uint32_t metaSize = 4096;
        std::uint32_t btbSets = 4096;
        int btbWays = 2;
    };

    BranchPredictor() : BranchPredictor(Config{}) {}
    explicit BranchPredictor(const Config &cfg);

    /** Predict direction/target for the branch at @p pc. */
    BranchPrediction predict(std::uint64_t pc) const;

    /**
     * Train with the actual outcome.
     *
     * @param pc     branch pc
     * @param taken  actual direction
     * @param target actual target (installed in BTB when taken)
     */
    void update(std::uint64_t pc, bool taken, std::uint64_t target);

    std::uint64_t lookups() const { return nLookups; }

  private:
    /** Checkpoint serialization reads/writes the raw arrays. */
    friend class CheckpointIo;

    struct BtbEntry
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static std::uint8_t bump(std::uint8_t c, bool up);

    Config cfg;
    std::vector<std::uint8_t> bimodal;   ///< 2-bit counters
    std::vector<std::uint16_t> history;  ///< per-branch histories
    std::vector<std::uint8_t> pht;       ///< PAg level 2
    std::vector<std::uint8_t> meta;      ///< chooser (>=2 -> PAg)
    std::vector<BtbEntry> btb;
    std::uint64_t useCounter = 0;
    mutable std::uint64_t nLookups = 0;
};

} // namespace mcd::sim

#endif // MCD_SIM_BRANCH_HH
