/**
 * @file
 * Per-domain clocks with jitter and ramped dynamic frequency/voltage
 * scaling (Section 2 of the paper).
 *
 * A running program initiates reconfiguration by writing the target
 * frequencies; the clock then ramps its effective frequency linearly
 * at the XScale-like rate (73.3 ns/MHz) while execution continues.
 */

#ifndef MCD_SIM_CLOCK_HH
#define MCD_SIM_CLOCK_HH

#include "sim/config.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace mcd::sim
{

/**
 * One clock domain's clock generator.
 *
 * Edges are produced one at a time: nextEdge() peeks the upcoming
 * rising edge (with jitter applied); advance() consumes it.  The
 * effective frequency is updated at each consumed edge according to
 * the ramp model.
 */
class DomainClock
{
  public:
    /**
     * @param cfg     shared configuration
     * @param d       which domain this clock drives
     * @param jitter  whether to apply jitter (off in single-clock mode)
     * @param rng     jitter random stream (owned by caller semantics:
     *                copied in)
     */
    DomainClock(const SimConfig &cfg, Domain d, bool jitter, Rng rng);

    /** Time of the next rising edge (jittered), in ps. */
    Tick nextEdge() const { return jitteredNext; }

    /** Consume the pending edge and schedule the following one. */
    void advance();

    /** Effective frequency at the last consumed edge. */
    Mhz freq() const { return curMhz; }

    /** Supply voltage tracking the effective frequency. */
    Volt voltage() const { return volt; }

    /** Current period in ps at the effective frequency. */
    Tick period() const { return periodPs(curMhz); }

    /** Request a new target frequency (clamped to legal range). */
    void setTarget(Mhz f);

    /**
     * Jump instantly to frequency @p f (clamped); used to establish
     * initial conditions before simulated time begins, not during a
     * run (real reconfigurations ramp).
     */
    void jumpTo(Mhz f);

    Mhz target() const { return targetMhz; }

    /** Whether the effective frequency is still moving to target. */
    bool ramping() const { return curMhz != targetMhz; }

    /** Number of edges consumed so far. */
    std::uint64_t edges() const { return edgeCount; }

    /**
     * Consume every edge strictly before time @p t and return how
     * many were consumed.  Each edge goes through advance(), so the
     * jitter stream sees exactly one draw per edge and the resulting
     * edge times are bit-identical to stepping edge by edge — this
     * is what makes the kernel's idle-domain fast-forward
     * deterministic.  Callers only fast-forward non-ramping clocks
     * (the kernel parks a domain only when ramping() is false), so
     * frequency and voltage are constant across the span.
     */
    std::uint64_t fastForwardTo(Tick t);

    /**
     * Time-weighted average frequency since construction (for
     * reporting).
     */
    Mhz averageFreq() const;

  private:
    const SimConfig &cfg;
    Domain domain;
    bool jitterOn;
    Rng rng;
    Mhz curMhz;
    Mhz targetMhz;
    Volt volt;
    Tick nominalNext;    ///< unjittered next edge
    Tick jitteredNext;
    Tick lastEdge;
    std::uint64_t edgeCount;
    double freqTimeIntegral;  ///< MHz * ps, for averageFreq()
    Tick startTime;
};

/**
 * Synchronization margin between two domains: a value produced at
 * time t in @p src is usable in @p dst only at a dst edge at least
 * this much later (Sjogren-Myers synchronizer; within the window the
 * consumer waits one extra cycle).  Zero for same-domain or
 * single-clock operation.
 */
Tick syncMarginPs(const SimConfig &cfg, Domain src, Domain dst,
                  Tick src_period, Tick dst_period);

} // namespace mcd::sim

#endif // MCD_SIM_CLOCK_HH
