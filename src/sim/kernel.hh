/**
 * @file
 * The event-driven simulation kernel: per-domain clocks, the edge
 * scheduler that replaces the old min-scan-every-iteration main
 * loop, and the idle-edge fast-forward machinery.
 *
 * The kernel owns the four scaled-domain clocks and dispatches each
 * consumed rising edge to the DomainComponent attached to that
 * domain.  Edges are processed in global time order with ties broken
 * by domain index (front end first), exactly as the monolithic loop
 * did, and each processed edge accrues its clock-tree energy and
 * advances chip-wide leakage before the component runs.
 *
 * Fast-forward (SimConfig::fastForward, default on): a component
 * that reports no work (empty issue queue; or a drained, blocked
 * front end with a known unblock time) is *parked* while its clock
 * is not ramping.  Parked domains drop out of the per-iteration edge
 * scan entirely; when something wakes them — a dispatch into their
 * queue, a frequency-target write, or their known wake time
 * arriving — the skipped edges are replayed in batch: the clock
 * consumes them one at a time (one jitter draw per edge, so the edge
 * schedule is bit-identical to the slow path), while their dynamic
 * clock-tree energy is charged in closed form and the component
 * batch-accounts its per-edge counters.  Because a parked domain
 * never ramps, its voltage and frequency are constant across the
 * skipped span, and because leakage is charged per *processed* edge
 * over elapsed wall time, skipping edges only merges adjacent
 * leakage slices.  The only difference from the slow path is the
 * floating-point summation order of energy totals.
 */

#ifndef MCD_SIM_KERNEL_HH
#define MCD_SIM_KERNEL_HH

#include <array>
#include <cstdint>
#include <memory>

#include "power/power.hh"
#include "sim/clock.hh"
#include "sim/config.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace mcd::sim
{

/**
 * One clock domain's stage machinery, as seen by the kernel.
 */
class DomainComponent
{
  public:
    virtual ~DomainComponent() = default;

    /** Process the edge just consumed, at time @p now. */
    virtual void tick(Tick now) = 0;

    /**
     * How long this domain provably has no work: 0 = busy (schedule
     * every edge); Kernel::NEVER = idle until another domain calls
     * Kernel::wake(); any other value = idle until that time
     * arrives (edges strictly before it are no-ops).
     */
    virtual Tick idleHorizon() const = 0;

    /**
     * Account @p n fast-forwarded edges in batch: exactly the
     * counters a no-work tick() would have bumped (edge-count and
     * occupancy-sample statistics; the occupancy *sums* gain only
     * zeros while idle, so they need no update).  Energy is
     * accounted by the kernel.
     */
    virtual void skipped(std::uint64_t n) = 0;
};

/**
 * Edge scheduler and clock owner.  Construct, attach() one component
 * per scaled domain, then run().
 */
class Kernel
{
  public:
    /** idleHorizon() value meaning "until somebody wakes me". */
    static constexpr Tick NEVER = ~static_cast<Tick>(0);

    Kernel(const SimConfig &cfg, power::PowerModel &power);

    void attach(Domain d, DomainComponent *c)
    {
        comps[domainIndex(d)] = c;
    }

    DomainClock &clock(Domain d) { return *clocks[domainIndex(d)]; }
    const DomainClock &clock(Domain d) const
    {
        return *clocks[domainIndex(d)];
    }

    /** Time of the last processed edge (0 before the first). */
    Tick now() const { return now_; }

    /** Edges consumed through fast-forward rather than processed. */
    std::uint64_t fastForwardedEdges() const { return ffEdges; }

    /**
     * Ramp domain @p d toward @p f, waking it if parked: a ramping
     * clock updates frequency and voltage at every edge, so its
     * edges must be processed until the ramp completes.
     */
    void setTarget(Domain d, Mhz f);

    /** Jump domain @p d to @p f instantly (pre-run initial state). */
    void jumpTo(Domain d, Mhz f);

    /**
     * Wake a parked domain: replay its skipped edges up to the
     * current time and return it to the edge scan.  Called by the
     * front end when it dispatches into an exec domain's queue (the
     * woken domain's edge *at* the current time, if any, is kept for
     * normal processing — ties run front end first, matching the
     * slow path).  No-op for domains that are not parked.
     */
    void wake(Domain d)
    {
        if (parked_[domainIndex(d)])
            replay(domainIndex(d), now_);
    }

    /**
     * Catch every parked domain's batch accounting (edge counts,
     * occupancy samples, clock-tree energy) up to the current time.
     * Called before shared per-interval statistics are read, so a
     * domain parked across an interval boundary cannot report its
     * idle edges into the wrong interval.  Woken domains simply
     * re-park after their next edge.
     */
    void syncStats()
    {
        for (Domain d : scaledDomains())
            wake(d);
    }

    /**
     * Run the edge loop until @p stop returns true.  @p stop is
     * evaluated before each edge is chosen (with the time of the
     * last processed edge); @p post runs after each processed edge
     * (the watchdog hook).  On return every parked clock has been
     * fast-forwarded to the final time, so per-clock statistics
     * (edge counts, average frequency) match the slow path.
     */
    template <typename StopFn, typename PostFn>
    Tick
    run(StopFn &&stop, PostFn &&post)
    {
        prologue();
        while (!stop(now_)) {
            stepOne();
            post(now_);
        }
        finish();
        return now_;
    }

    // --- step-wise driving surface ---
    //
    // run() is implemented on exactly these four calls; an external
    // scheduler (the chip layer interleaves several cores' kernels
    // in global time order) that drives prologue / stepOne / finish
    // in the same order is therefore bit-identical to run().

    /** Prologue of run(): park every idle domain (fast-forward on). */
    void
    prologue()
    {
        if (ff) {
            for (Domain d : scaledDomains())
                tryPark(domainIndex(d));
        }
    }

    /**
     * Time of the globally next edge, without consuming it.  May
     * replay a parked domain whose known wake time arrives before
     * any live edge — that replay is pure catch-up accounting and
     * would happen identically inside the next stepOne(), so peeking
     * early never changes the edge schedule or any counter.
     */
    Tick peekNextTime() { return clocks[nextEventDomain()]->nextEdge(); }

    /** Consume and process exactly one edge; returns the new time. */
    Tick
    stepOne()
    {
        std::size_t best = nextEventDomain();
        DomainClock &c = *clocks[best];
        now_ = c.nextEdge();
        c.advance();
        Domain dom = static_cast<Domain>(best);
        power.clockCycle(dom, c.voltage());
        chargeLeakage(now_);
        comps[best]->tick(now_);
        if (ff)
            tryPark(best);
        return now_;
    }

    /** Epilogue of run(): catch parked clocks up to the final time. */
    void finish();

  private:
    /**
     * The domain whose edge is globally next, unparking any domain
     * whose known wake time arrives first.  Ties go to the lowest
     * index, as in the monolithic min-scan.
     */
    std::size_t
    nextEventDomain()
    {
        for (;;) {
            std::size_t best = 0;
            Tick best_t = scanKey(0);
            for (std::size_t d = 1; d < clocks.size(); ++d) {
                Tick t = scanKey(d);
                if (t < best_t) {
                    best = d;
                    best_t = t;
                }
            }
            if (!parked_[best])
                return best;
            if (best_t == NEVER)
                panic("kernel deadlock: every domain is parked "
                      "with no wake time");
            // A known wake time arrived: replay the skipped edges
            // and rescan.  The woken domain's next real edge may
            // still be later than another domain's.
            replay(best, best_t);
        }
    }

    Tick
    scanKey(std::size_t d) const
    {
        return parked_[d] ? wakeAt_[d] : clocks[d]->nextEdge();
    }

    bool
    anyRamping() const
    {
        for (const auto &c : clocks)
            if (c->ramping())
                return true;
        return false;
    }

    void tryPark(std::size_t d);
    /** Fast-forward a parked domain's clock to @p t and unpark it. */
    void replay(std::size_t d, Tick t);
    void chargeLeakage(Tick now);

    const SimConfig &cfg;
    power::PowerModel &power;
    std::array<std::unique_ptr<DomainClock>, NUM_SCALED_DOMAINS>
        clocks;
    std::array<DomainComponent *, NUM_SCALED_DOMAINS> comps{};
    std::array<bool, NUM_SCALED_DOMAINS> parked_{};
    std::array<Tick, NUM_SCALED_DOMAINS> wakeAt_{};
    bool ff;
    Tick now_ = 0;
    Tick lastLeakTime = 0;
    std::uint64_t ffEdges = 0;
};

} // namespace mcd::sim

#endif // MCD_SIM_KERNEL_HH
