/**
 * @file
 * SMARTS-style interval sampling configuration for the simulator
 * core: detailed probes separated by fast functional warm-up, with
 * per-run confidence intervals on the extrapolated time and energy.
 *
 * The default mode is `exact` — every instruction runs through the
 * detailed pipeline and results are byte-identical to the pre-sampling
 * simulator.  In `sampled` mode the run is tiled into intervals of
 * `intervalInstrs` instructions; the first `warmupInstrs +
 * sampleInstrs` of each interval run detailed (the probe: warm-up
 * commits are discarded, sample commits are measured), and the rest
 * of the interval advances only the functional microarchitectural
 * state (stream position, caches, branch predictor, markers) at
 * batch-decode speed.  Total time and energy are then estimated as
 * measured-detailed plus mean-per-instruction times the skipped
 * count, with a 95% confidence interval over the per-interval
 * samples (see docs/SAMPLING.md for the error model).
 *
 * Every field here shapes sampled outcomes and is part of the
 * memo-cache fingerprint (`exp::configFingerprint`, CACHE_VERSION v8)
 * so cached exact and sampled results can never mix.
 */

#ifndef MCD_SIM_SAMPLING_HH
#define MCD_SIM_SAMPLING_HH

#include <cstdint>
#include <string>

namespace mcd::sim
{

/** Simulation fidelity mode. */
enum class SamplingMode : std::uint8_t
{
    Exact = 0,   ///< detailed simulation of every instruction
    Sampled,     ///< detailed probes + functional warm-up between them
};

/**
 * Sampling knobs (`--sample SPEC` on every bench binary).
 *
 * Invariants (enforced by parseSamplingSpec): in sampled mode
 * `warmupInstrs >= 1`, `sampleInstrs >= 1` and
 * `warmupInstrs + sampleInstrs < intervalInstrs`.
 */
struct SamplingConfig
{
    SamplingMode mode = SamplingMode::Exact;

    /** Virtual instructions per sampling interval (probe + skip). */
    std::uint64_t intervalInstrs = 10000;

    /** Detailed commits measured per interval (after warm-up). */
    std::uint64_t sampleInstrs = 600;

    /** Detailed commits discarded at the head of each probe so the
     *  pipeline/queues refill before measurement starts. */
    std::uint64_t warmupInstrs = 400;

    /**
     * Floor on the reported 95% CI, as a percentage of the estimate:
     * covers non-sampling bias (functional warm-up approximates
     * program-order cache/predictor state) that the between-interval
     * variance cannot see.
     */
    double ciBiasPct = 1.0;

    /** Instructions run detailed per interval. */
    std::uint64_t probeInstrs() const
    {
        return warmupInstrs + sampleInstrs;
    }

    bool sampled() const { return mode == SamplingMode::Sampled; }
};

/**
 * Deterministic per-interval probe offset: a splitmix64 hash of the
 * interval index mapped to [0, @p max_off].  Stratified (jittered)
 * probe placement breaks the aliasing between a fixed probe stride
 * and periodic program phases whose period divides `intervalInstrs`
 * — with a fixed stride the bias does not shrink as intervals are
 * added, with jitter it averages out.  Pure and seedless, so the
 * inline functional walk and `CheckpointSet::build` place probes at
 * identical positions and sampled runs stay bit-reproducible.
 */
inline std::uint64_t
sampleProbeOffset(std::uint64_t k, std::uint64_t max_off)
{
    if (max_off == 0)
        return 0;
    std::uint64_t z = (k + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return z % (max_off + 1);
}

/**
 * Parse a `--sample` spec: `exact`, `sampled`, or
 * `sampled:interval=N,sample=N,warmup=N,ci=PCT` (any subset of keys;
 * the rest keep their defaults).  Throws workload::SpecError on bad
 * grammar, unknown keys, or invariant-violating values.
 */
SamplingConfig parseSamplingSpec(const std::string &text);

/**
 * Canonical spec text for @p cfg: `exact`, or
 * `sampled:interval=N,sample=N,warmup=N,ci=PCT` with every key
 * present in that order.  parse(canonical(cfg)) == cfg; the string
 * appears in `bench_throughput --json` rows and docs examples.
 */
std::string canonicalSamplingSpec(const SamplingConfig &cfg);

} // namespace mcd::sim

#endif // MCD_SIM_SAMPLING_HH
