/**
 * @file
 * Set-associative cache models (L1I, L1D, unified L2) with LRU
 * replacement, plus the fixed-latency external main memory.
 *
 * Caches are trace-driven: an access updates state and reports
 * hit/miss immediately; the caller converts the result into timing
 * using the owning domain's clock.
 */

#ifndef MCD_SIM_CACHE_HH
#define MCD_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace mcd::sim
{

/** Result of a cache hierarchy access. */
struct MemAccessResult
{
    bool l1Hit = false;
    bool l2Hit = false;   ///< meaningful only when !l1Hit
};

/**
 * One level of set-associative cache with LRU replacement.
 */
class Cache
{
  public:
    /**
     * @param size_kb   capacity in KB
     * @param ways      associativity (1 = direct mapped)
     * @param line_size line size in bytes (power of two)
     */
    Cache(std::uint32_t size_kb, int ways, std::uint32_t line_size);

    /**
     * Access the line containing @p addr; allocate on miss.
     *
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Probe without updating state. */
    bool probe(std::uint64_t addr) const;

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint32_t numSets() const { return sets; }

  private:
    /** Checkpoint serialization reads/writes the raw arrays. */
    friend class CheckpointIo;

    struct Line
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t sets;
    int ways_;
    int lineShift;
    std::vector<Line> lines;  ///< sets * ways, row-major by set
    std::uint64_t useCounter = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

/**
 * Main memory in the always-full-speed external domain: fixed access
 * latency plus a simple bus-occupancy queue.
 */
class MainMemory
{
  public:
    /**
     * @param latency_ps access latency
     * @param bus_ps     per-request channel occupancy
     */
    MainMemory(Tick latency_ps, Tick bus_ps);

    /**
     * Issue a request at time @p t; returns data-return time.
     */
    Tick access(Tick t);

    std::uint64_t requests() const { return nRequests; }

  private:
    Tick latencyPs;
    Tick busPs;
    Tick busFreeAt = 0;
    std::uint64_t nRequests = 0;
};

} // namespace mcd::sim

#endif // MCD_SIM_CACHE_HH
