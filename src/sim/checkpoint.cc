#include "sim/checkpoint.hh"

#include <cstring>

namespace mcd::sim
{

using workload::InstrClass;

FuncState::FuncState(const SimConfig &cfg,
                     const workload::Program &program,
                     const workload::InputSet &input)
    : stream(program, input),
      l1i(cfg.l1iSizeKb, cfg.l1iWays, cfg.lineSize),
      l1d(cfg.l1dSizeKb, cfg.l1dWays, cfg.lineSize),
      l2(cfg.l2SizeKb, cfg.l2Ways, cfg.lineSize),
      bpred(),
      lineSize(cfg.lineSize)
{
}

FuncDeltas
FuncState::advance(std::uint64_t n, const MarkerFn &on_marker)
{
    FuncDeltas d;
    while (d.instrs < n) {
        std::size_t got = stream.nextBatch(batch, n - d.instrs);
        std::size_t m = 0;
        for (std::size_t i = 0; i < got; ++i) {
            while (m < batch.markers.size() &&
                   batch.markerPos[m] == i) {
                if (on_marker)
                    on_marker(batch.markers[m], d.instrs);
                ++m;
            }
            std::uint64_t pc = batch.pc[i];
            std::uint64_t line = pc / lineSize;
            if (line != lastLine) {
                lastLine = line;
                if (!l1i.access(pc)) {
                    ++d.icacheMisses;
                    // Fetch-path L2 misses count only as DRAM
                    // accesses (Frontend::fetch does not bump the
                    // L2-miss counter for instruction lines).
                    if (!l2.access(pc))
                        ++d.dramAccesses;
                }
            }
            InstrClass c = batch.cls[i];
            if (c == InstrClass::Load || c == InstrClass::Store) {
                ++d.l1dAccesses;
                if (!l1d.access(batch.addr[i])) {
                    ++d.l1dMisses;
                    if (!l2.access(batch.addr[i])) {
                        ++d.l2Misses;
                        ++d.dramAccesses;
                    }
                }
            } else if (c == InstrClass::Branch) {
                ++d.branches;
                BranchPrediction pr = bpred.predict(pc);
                bool mis = pr.taken != batch.taken[i] ||
                           (batch.taken[i] &&
                            (!pr.btbHit ||
                             pr.target != batch.target[i]));
                if (mis)
                    ++d.mispredicts;
                bpred.update(pc, batch.taken[i], batch.target[i]);
            }
            ++d.instrs;
        }
        // Trailing markers (markerPos == n) only occur at end of
        // program; deliver them so the handler sees the full stream.
        while (m < batch.markers.size()) {
            if (on_marker)
                on_marker(batch.markers[m], d.instrs);
            ++m;
        }
        if (got == 0)
            break;  // end of program
    }
    index_ += d.instrs;
    streamEnded = stream.done();
    return d;
}

std::shared_ptr<const CheckpointSet>
CheckpointSet::build(std::shared_ptr<const workload::Program> keepalive,
                     const workload::InputSet &input,
                     const SimConfig &cfg, std::uint64_t window)
{
    auto set = std::shared_ptr<CheckpointSet>(new CheckpointSet);
    set->keepalive_ = keepalive;
    set->sampling_ = cfg.sampling;
    set->window_ = window;

    const SamplingConfig &sp = cfg.sampling;
    const std::uint64_t probe = sp.probeInstrs();
    const std::uint64_t interval = sp.intervalInstrs;
    FuncState f(cfg, *keepalive, input);
    std::uint64_t v = 0;
    std::uint64_t k = 0;
    for (;;) {
        // Mirror of Processor::runSampled's probe placement: interval
        // k's probe sits at a jittered offset inside the interval;
        // past the last interval the walk degenerates to a tail skip
        // to the window end (probeLen == 0 marks it).
        std::uint64_t interval_start = k * interval;
        std::uint64_t target = window;
        std::uint64_t probe_want = 0;
        if (interval_start < window) {
            std::uint64_t len =
                std::min(interval, window - interval_start);
            std::uint64_t off = std::min(
                sampleProbeOffset(k, interval - probe),
                len > probe ? len - probe : 0);
            target = interval_start + off;
            probe_want = std::min(probe, len - off);
        }

        std::uint64_t span_start = v;
        std::vector<SpanEvent> pre_markers;
        FuncDeltas sd;
        if (target > v) {
            sd = f.advance(
                target - v, [&](const workload::Marker &mk,
                                std::uint64_t idx) {
                    pre_markers.push_back(
                        SpanEvent{span_start + idx, mk});
                });
            v += sd.instrs;
        }
        bool ended = sd.instrs < target - span_start;

        // Aggregate-init: FuncState has no default constructor, so
        // the probe-start snapshot doubles as the member initializer.
        Point p{span_start, 0, sd.instrs, sd,
                std::move(pre_markers), f};
        if (!ended && probe_want > 0) {
            FuncDeltas pd =
                f.advance(probe_want, FuncState::MarkerFn{});
            p.probeLen = pd.instrs;
            v += pd.instrs;
            ended = pd.instrs < probe_want;
        }
        set->points_.push_back(std::move(p));
        if (ended || probe_want == 0)
            break;
        ++k;
    }
    return set;
}

bool
CheckpointSet::matches(const SamplingConfig &sp,
                       std::uint64_t window) const
{
    return sampling_.mode == sp.mode &&
           sampling_.intervalInstrs == sp.intervalInstrs &&
           sampling_.sampleInstrs == sp.sampleInstrs &&
           sampling_.warmupInstrs == sp.warmupInstrs &&
           window_ == window;
}

// --- binary serialization ----------------------------------------------

/**
 * Raw little-endian-of-host binary reader/writer over std::string.
 * Befriended by Cache and BranchPredictor for their private arrays.
 * The format is an in-process/persisted-artifact format, not a wire
 * protocol: no locale, no text formatting, fixed-width fields.
 */
class CheckpointIo
{
  public:
    // writer
    static void
    putU64(std::string &o, std::uint64_t v)
    {
        char b[8];
        std::memcpy(b, &v, 8);
        o.append(b, 8);
    }
    static void
    putU16(std::string &o, std::uint16_t v)
    {
        char b[2];
        std::memcpy(b, &v, 2);
        o.append(b, 2);
    }
    static void putU8(std::string &o, std::uint8_t v)
    {
        o.push_back(static_cast<char>(v));
    }
    static void
    putF64(std::string &o, double v)
    {
        char b[8];
        std::memcpy(b, &v, 8);
        o.append(b, 8);
    }

    // reader (cursor + bounds flag)
    struct In
    {
        const std::string &s;
        std::size_t pos = 0;
        bool ok = true;

        bool
        take(void *dst, std::size_t n)
        {
            if (!ok || pos + n > s.size()) {
                ok = false;
                return false;
            }
            std::memcpy(dst, s.data() + pos, n);
            pos += n;
            return true;
        }
        std::uint64_t
        u64()
        {
            std::uint64_t v = 0;
            take(&v, 8);
            return v;
        }
        std::uint16_t
        u16()
        {
            std::uint16_t v = 0;
            take(&v, 2);
            return v;
        }
        std::uint8_t
        u8()
        {
            std::uint8_t v = 0;
            take(&v, 1);
            return v;
        }
        double
        f64()
        {
            double v = 0.0;
            take(&v, 8);
            return v;
        }
    };

    static void
    put(std::string &o, const Cache &c)
    {
        putU64(o, c.useCounter);
        putU64(o, c.nHits);
        putU64(o, c.nMisses);
        putU64(o, c.lines.size());
        for (const Cache::Line &l : c.lines) {
            putU64(o, l.tag);
            putU64(o, l.lastUse);
            putU8(o, l.valid ? 1 : 0);
        }
    }

    static bool
    get(In &in, Cache &c)
    {
        c.useCounter = in.u64();
        c.nHits = in.u64();
        c.nMisses = in.u64();
        std::uint64_t n = in.u64();
        if (!in.ok || n != c.lines.size())
            return false;
        for (Cache::Line &l : c.lines) {
            l.tag = in.u64();
            l.lastUse = in.u64();
            l.valid = in.u8() != 0;
        }
        return in.ok;
    }

    static void
    put(std::string &o, const BranchPredictor &b)
    {
        putU64(o, b.useCounter);
        putU64(o, b.nLookups);
        putU64(o, b.bimodal.size());
        for (std::uint8_t v : b.bimodal)
            putU8(o, v);
        putU64(o, b.history.size());
        for (std::uint16_t v : b.history)
            putU16(o, v);
        putU64(o, b.pht.size());
        for (std::uint8_t v : b.pht)
            putU8(o, v);
        putU64(o, b.meta.size());
        for (std::uint8_t v : b.meta)
            putU8(o, v);
        putU64(o, b.btb.size());
        for (const BranchPredictor::BtbEntry &e : b.btb) {
            putU64(o, e.tag);
            putU64(o, e.target);
            putU64(o, e.lastUse);
            putU8(o, e.valid ? 1 : 0);
        }
    }

    static bool
    get(In &in, BranchPredictor &b)
    {
        b.useCounter = in.u64();
        b.nLookups = in.u64();
        if (in.u64() != b.bimodal.size())
            return false;
        for (std::uint8_t &v : b.bimodal)
            v = in.u8();
        if (in.u64() != b.history.size())
            return false;
        for (std::uint16_t &v : b.history)
            v = in.u16();
        if (in.u64() != b.pht.size())
            return false;
        for (std::uint8_t &v : b.pht)
            v = in.u8();
        if (in.u64() != b.meta.size())
            return false;
        for (std::uint8_t &v : b.meta)
            v = in.u8();
        if (in.u64() != b.btb.size())
            return false;
        for (BranchPredictor::BtbEntry &e : b.btb) {
            e.tag = in.u64();
            e.target = in.u64();
            e.lastUse = in.u64();
            e.valid = in.u8() != 0;
        }
        return in.ok;
    }

    static void
    put(std::string &o, const FuncDeltas &d)
    {
        putU64(o, d.instrs);
        putU64(o, d.branches);
        putU64(o, d.mispredicts);
        putU64(o, d.icacheMisses);
        putU64(o, d.l1dAccesses);
        putU64(o, d.l1dMisses);
        putU64(o, d.l2Misses);
        putU64(o, d.dramAccesses);
    }

    static void
    get(In &in, FuncDeltas &d)
    {
        d.instrs = in.u64();
        d.branches = in.u64();
        d.mispredicts = in.u64();
        d.icacheMisses = in.u64();
        d.l1dAccesses = in.u64();
        d.l1dMisses = in.u64();
        d.l2Misses = in.u64();
        d.dramAccesses = in.u64();
    }
};

namespace
{
constexpr char CKPT_MAGIC[8] = {'M', 'C', 'D', 'C',
                                'K', 'P', 'T', '1'};
} // namespace

void
CheckpointSet::serialize(std::string &out) const
{
    using Io = CheckpointIo;
    out.append(CKPT_MAGIC, sizeof(CKPT_MAGIC));
    Io::putU8(out, static_cast<std::uint8_t>(sampling_.mode));
    Io::putU64(out, sampling_.intervalInstrs);
    Io::putU64(out, sampling_.sampleInstrs);
    Io::putU64(out, sampling_.warmupInstrs);
    Io::putF64(out, sampling_.ciBiasPct);
    Io::putU64(out, window_);
    Io::putU64(out, points_.size());
    for (const Point &p : points_) {
        Io::putU64(out, p.startIndex);
        Io::putU64(out, p.probeLen);
        Io::putU64(out, p.skipLen);
        Io::put(out, p.skipDeltas);
        Io::putU64(out, p.skipMarkers.size());
        for (const SpanEvent &e : p.skipMarkers) {
            Io::putU64(out, e.index);
            Io::putU8(out, static_cast<std::uint8_t>(e.marker.kind));
            Io::putU16(out, e.marker.func);
            Io::putU16(out, e.marker.loop);
            Io::putU16(out, e.marker.site);
        }
        // Stream state is its instruction index (rebuilt by replay);
        // array state is verbatim.
        Io::putU64(out, p.state.index());
        Io::putU8(out, p.state.streamEnded ? 1 : 0);
        Io::putU64(out, p.state.lastLine);
        Io::put(out, p.state.l1i);
        Io::put(out, p.state.l1d);
        Io::put(out, p.state.l2);
        Io::put(out, p.state.bpred);
    }
}

std::shared_ptr<const CheckpointSet>
CheckpointSet::deserialize(
    const std::string &bytes,
    std::shared_ptr<const workload::Program> keepalive,
    const workload::InputSet &input, const SimConfig &cfg)
{
    using Io = CheckpointIo;
    Io::In in{bytes};
    char magic[8];
    if (!in.take(magic, 8) ||
        std::memcmp(magic, CKPT_MAGIC, 8) != 0)
        return nullptr;

    auto set = std::shared_ptr<CheckpointSet>(new CheckpointSet);
    set->keepalive_ = keepalive;
    set->sampling_.mode = static_cast<SamplingMode>(in.u8());
    set->sampling_.intervalInstrs = in.u64();
    set->sampling_.sampleInstrs = in.u64();
    set->sampling_.warmupInstrs = in.u64();
    set->sampling_.ciBiasPct = in.f64();
    set->window_ = in.u64();
    std::uint64_t n_points = in.u64();
    if (!in.ok || n_points > set->window_ + 1)
        return nullptr;

    // One forward walker rebuilds every point's stream position in a
    // single O(window) pass (points are in increasing index order).
    FuncState walker(cfg, *keepalive, input);
    for (std::uint64_t i = 0; i < n_points; ++i) {
        Point p{0, 0, 0, {}, {}, walker};
        p.startIndex = in.u64();
        p.probeLen = in.u64();
        p.skipLen = in.u64();
        Io::get(in, p.skipDeltas);
        std::uint64_t n_mk = in.u64();
        if (!in.ok || n_mk > bytes.size())
            return nullptr;
        p.skipMarkers.resize(n_mk);
        for (SpanEvent &e : p.skipMarkers) {
            e.index = in.u64();
            e.marker.kind =
                static_cast<workload::MarkerKind>(in.u8());
            e.marker.func = in.u16();
            e.marker.loop = in.u16();
            e.marker.site = in.u16();
        }
        std::uint64_t stream_index = in.u64();
        bool stream_ended = in.u8() != 0;
        std::uint64_t last_line = in.u64();
        if (!in.ok || stream_index < walker.index())
            return nullptr;
        walker.advance(stream_index - walker.index(),
                       FuncState::MarkerFn{});
        if (walker.index() != stream_index)
            return nullptr;
        p.state = walker;
        p.state.lastLine = last_line;
        p.state.streamEnded = stream_ended;
        if (!Io::get(in, p.state.l1i) || !Io::get(in, p.state.l1d) ||
            !Io::get(in, p.state.l2) || !Io::get(in, p.state.bpred))
            return nullptr;
        set->points_.push_back(std::move(p));
    }
    if (!in.ok)
        return nullptr;
    return set;
}

} // namespace mcd::sim
