#include "sim/frontend.hh"

#include <algorithm>

#include "sim/processor.hh"
#include "util/logging.hh"

namespace mcd::sim
{

using workload::InstrClass;
using workload::StreamItem;

void
Frontend::tick(Tick now)
{
    ++p.feTickCount;
    p.occSum[domainIndex(Domain::FrontEnd)] +=
        static_cast<double>(p.fetchQueue.size());
    p.robOccSum += static_cast<double>(p.rob.size());
    ++p.occSamples[domainIndex(Domain::FrontEnd)];
    commit(now);
    dispatch(now);
    fetch(now);
}

Tick
Frontend::idleHorizon() const
{
    // Anything in flight keeps the front end busy: commit drains the
    // ROB and dispatch drains the fetch queue on its edges.
    if (!p.rob.empty() || !p.fetchQueue.empty())
        return 0;
    // A drained window with fetch exhausted means the run is about
    // to stop; stay busy and let the stop condition fire.
    if (p.streamEnded || p.fetchedInstrs >= p.maxInstrs_)
        return 0;
    // Fetch is live: every blocking condition is a known time once
    // the window has drained (a retired mispredict always has its
    // redirect time computed at commit).
    Tick h = std::max(p.fetchStallUntil, p.icacheBlockedUntil);
    if (p.blockedBranchSeq != 0) {
        if (p.redirectAt == 0)
            return 0;  // defensive: unknown redirect, stay busy
        h = std::max(h, p.redirectAt);
    }
    return h;
}

void
Frontend::skipped(std::uint64_t n)
{
    p.feTickCount += n;
    p.occSamples[domainIndex(Domain::FrontEnd)] += n;
}

void
Frontend::applyMarker(const MarkerAction &a, Tick now)
{
    if (a.stallCycles > 0) {
        Tick stall = static_cast<Tick>(a.stallCycles) *
                     p.clock(Domain::FrontEnd).period();
        Tick until = now + stall;
        if (until > p.fetchStallUntil)
            p.fetchStallUntil = until;
        p.overheadCycleCount +=
            static_cast<std::uint64_t>(a.stallCycles);
    }
    if (a.energyPj > 0.0) {
        Volt v = p.clock(Domain::FrontEnd).voltage();
        double r = v / p.power_.config().vMax;
        p.power_.extra(Domain::FrontEnd, a.energyPj * r * r);
    }
    if (a.reconfig) {
        for (Domain d : scaledDomains())
            p.kernel.setTarget(d, a.freqs[domainIndex(d)]);
        ++p.reconfigCount;
    }
}

bool
Frontend::streamFetchBlocked(Tick now)
{
    if (now < p.fetchStallUntil || now < p.icacheBlockedUntil)
        return true;
    if (p.blockedBranchSeq != 0) {
        if (p.redirectAt == 0) {
            const Processor::Uop *u = p.findUop(p.blockedBranchSeq);
            if (u && u->completed) {
                p.redirectAt =
                    u->execDone +
                    p.syncMargin(u->domain, Domain::FrontEnd) +
                    static_cast<Tick>(p.cfg.mispredictPenalty) *
                        p.clock(Domain::FrontEnd).period();
            }
        }
        if (p.redirectAt != 0 && now >= p.redirectAt) {
            p.blockedBranchSeq = 0;
            p.redirectAt = 0;
            return false;
        }
        return true;
    }
    return false;
}

void
Frontend::fetch(Tick now)
{
    if (p.streamEnded || p.fetchedInstrs >= p.maxInstrs_)
        return;
    if (streamFetchBlocked(now))
        return;

    Volt fe_v = p.clock(Domain::FrontEnd).voltage();
    int slots = p.cfg.fetchWidth;
    while (slots > 0 && p.fetchedInstrs < p.maxInstrs_ &&
           p.fetchQueue.size() <
               static_cast<std::size_t>(p.cfg.fetchQueueSize)) {
        StreamItem item;
        if (p.haveHoldover) {
            item = p.holdover;
            p.haveHoldover = false;
        } else if (!p.stream.next(item)) {
            p.streamEnded = true;
            break;
        }

        if (item.kind == StreamItem::Kind::Marker) {
            MarkerAction action;
            if (p.markerHandler)
                action = p.markerHandler->onMarker(item.marker);
            applyMarker(action, now);
            if (action.stallCycles > 0)
                break;  // instrumentation ends this fetch group
            continue;   // markers consume no fetch slot
        }

        const workload::DynInstr &di = item.instr;
        std::uint64_t line = di.pc / p.cfg.lineSize;
        if (line != p.lastFetchLine) {
            p.power_.access(power::Unit::Icache, fe_v);
            if (!p.l1i.access(di.pc)) {
                ++p.icacheMissCount;
                Tick lat =
                    p.syncMargin(Domain::FrontEnd, Domain::Memory);
                Volt mem_v = p.clock(Domain::Memory).voltage();
                p.power_.access(power::Unit::L2, mem_v);
                lat = (p.l2PortGrant(now + lat) - now) +
                      static_cast<Tick>(p.cfg.l2Latency) *
                          p.clock(Domain::Memory).period();
                if (!p.l2.access(di.pc)) {
                    p.power_.access(power::Unit::Dram,
                                    p.power_.config().vMax);
                    Tick t_mem = p.memAccess(now + lat);
                    lat = (t_mem - now);
                }
                lat += p.syncMargin(Domain::Memory, Domain::FrontEnd);
                p.icacheBlockedUntil = now + lat;
                p.lastFetchLine = line;
                p.holdover = item;
                p.haveHoldover = true;
                break;
            }
            p.lastFetchLine = line;
        }

        Processor::Uop u;
        u.di = di;
        u.seq = p.nextSeq++;
        u.node = p.markerHandler ? p.markerHandler->currentNode() : 0;
        u.domain = workload::execDomain(di.cls);
        u.isLoad = di.cls == InstrClass::Load;
        u.isStore = di.cls == InstrClass::Store;
        u.fetchTime = now;

        bool stop_group = false;
        if (di.cls == InstrClass::Branch) {
            p.power_.access(power::Unit::Bpred, fe_v);
            BranchPrediction pr = p.bpred.predict(di.pc);
            bool mis = (pr.taken != di.taken) ||
                       (di.taken &&
                        (!pr.btbHit || pr.target != di.target));
            u.mispredicted = mis;
            if (mis) {
                p.blockedBranchSeq = u.seq;
                p.redirectAt = 0;
                stop_group = true;
            } else if (di.taken) {
                stop_group = true;  // taken branch ends fetch group
            }
        }

        Processor::FetchEntry fe;
        fe.uop = u;
        fe.readyFeTick = p.feTickCount +
                         static_cast<std::uint64_t>(p.cfg.decodeDepth);
        p.fetchQueue.push_back(fe);
        ++p.fetchedInstrs;
        --slots;
        if (stop_group)
            break;
    }
}

void
Frontend::dispatch(Tick now)
{
    Volt fe_v = p.clock(Domain::FrontEnd).voltage();
    int n = 0;
    while (n < p.cfg.dispatchWidth && !p.fetchQueue.empty()) {
        Processor::FetchEntry &fe = p.fetchQueue.front();
        if (fe.readyFeTick > p.feTickCount)
            break;
        Processor::Uop &u = fe.uop;
        if (p.rob.size() >= static_cast<std::size_t>(p.cfg.robSize))
            break;
        std::size_t di = domainIndex(u.domain);
        std::size_t cap = 0;
        switch (u.domain) {
          case Domain::Integer:
            cap = static_cast<std::size_t>(p.cfg.intIqSize);
            break;
          case Domain::FloatingPoint:
            cap = static_cast<std::size_t>(p.cfg.fpIqSize);
            break;
          case Domain::Memory:
            cap = static_cast<std::size_t>(p.cfg.lsqSize);
            break;
          default:
            cap = 0;
            break;
        }
        if (p.iq[di].size() >= cap)
            break;
        bool needs_reg = workload::producesValue(u.di.cls);
        bool fp_reg = u.domain == Domain::FloatingPoint;
        if (needs_reg) {
            if (fp_reg && p.fpRegsFree == 0)
                break;
            if (!fp_reg && p.intRegsFree == 0)
                break;
        }

        // Resolve positional dependences against the producer ring
        // (program order).
        auto resolve = [&](std::uint8_t dist) -> std::uint64_t {
            if (dist == 0)
                return 0;
            std::uint64_t produced =
                p.producerCount >= p.producerRing.size()
                    ? p.producerRing.size()
                    : p.producerCount;
            if (dist > produced)
                return 0;
            std::size_t idx =
                (p.producerHead + p.producerRing.size() - dist) %
                p.producerRing.size();
            return p.producerRing[idx];
        };
        u.depSeq1 = resolve(u.di.dep1);
        u.depSeq2 = resolve(u.di.dep2);

        if (needs_reg) {
            if (fp_reg)
                --p.fpRegsFree;
            else
                --p.intRegsFree;
            p.producerRing[p.producerHead] = u.seq;
            p.producerHead =
                (p.producerHead + 1) % p.producerRing.size();
            ++p.producerCount;
        }

        u.dispatchTime = now;
        u.inIq = true;
        if (u.isStore)
            p.storeSeqs.push_back(u.seq);
        p.rob.push_back(u);
        p.iq[di].push_back(u.seq);
        // The consuming domain may be parked on an empty queue; it
        // has work now.  Waking replays its idle edges up to `now`,
        // so an edge exactly at `now` still issues this cycle.
        p.kernel.wake(u.domain);

        p.power_.access(power::Unit::Rename, fe_v);
        p.power_.access(power::Unit::Rob, fe_v);
        p.power_.accessTo(power::Unit::IssueQueue, u.domain,
                          p.clock(u.domain).voltage());

        p.fetchQueue.pop_front();
        ++n;
    }
}

void
Frontend::commit(Tick now)
{
    Volt fe_v = p.clock(Domain::FrontEnd).voltage();
    int n = 0;
    while (n < p.cfg.retireWidth && !p.rob.empty()) {
        Processor::Uop &u = p.rob.front();
        if (!u.completed)
            break;
        Tick done = u.isLoad ? u.memDone : u.execDone;
        if (now < done + p.syncMargin(u.domain, Domain::FrontEnd))
            break;

        // A mispredicted branch may retire before the fetch stage has
        // computed its redirect time; do it here so the information
        // survives the ROB entry.
        if (u.seq == p.blockedBranchSeq && p.redirectAt == 0) {
            p.redirectAt =
                u.execDone +
                p.syncMargin(u.domain, Domain::FrontEnd) +
                static_cast<Tick>(p.cfg.mispredictPenalty) *
                    p.clock(Domain::FrontEnd).period();
        }

        if (u.di.cls == InstrClass::Branch) {
            ++p.branches;
            if (u.mispredicted)
                ++p.mispredicts;
            p.bpred.update(u.di.pc, u.di.taken, u.di.target);
        }

        if (u.isStore) {
            // Write the cache at commit; timing is not blocking.
            Volt mem_v = p.clock(Domain::Memory).voltage();
            p.power_.access(power::Unit::Dcache, mem_v);
            ++p.l1dAccessCount;
            if (!p.l1d.access(u.di.addr)) {
                ++p.l1dMissCount;
                p.power_.access(power::Unit::L2, mem_v);
                Tick l2_start = p.l2PortGrant(now);
                if (!p.l2.access(u.di.addr)) {
                    ++p.l2MissCount;
                    p.power_.access(power::Unit::Dram,
                                    p.power_.config().vMax);
                    p.memAccess(l2_start);
                }
            }
            if (!p.storeSeqs.empty() && p.storeSeqs.front() == u.seq)
                p.storeSeqs.pop_front();
        }

        p.power_.access(power::Unit::Rob, fe_v);

        if (workload::producesValue(u.di.cls)) {
            Tick ready = u.isLoad ? u.memDone : u.execDone;
            p.valueRing[u.seq % Processor::VALUE_RING] =
                Processor::ValueEntry{u.seq, ready};
            if (u.domain == Domain::FloatingPoint)
                ++p.fpRegsFree;
            else
                ++p.intRegsFree;
        }

        if (p.traceSink) {
            InstrTiming t;
            t.seq = u.seq;
            t.node = u.node;
            t.cls = u.di.cls;
            t.domain = u.domain;
            t.dep1 = u.depSeq1;
            t.dep2 = u.depSeq2;
            t.fetch = u.fetchTime;
            t.dispatch = u.dispatchTime;
            t.issue = u.issueTime;
            t.execDone = u.execDone;
            t.memStart = u.memStart;
            t.memDone = u.memDone;
            t.commit = now;
            t.l1Miss = u.l1Miss;
            t.l2Miss = u.l2Miss;
            t.mispredict = u.mispredicted;
            p.traceSink->onInstr(t);
        }

        p.rob.pop_front();
        ++p.committedInstrs;
        p.lastCommitTime = now;
        ++n;

        // Schedule points and interval boundaries are positioned by
        // *virtual* instruction index — committed plus functionally
        // skipped (sampled mode; always equal to committed in exact
        // mode, where skippedInstrs stays 0).
        while (p.schedulePos < p.schedule.size() &&
               p.committedInstrs + p.skippedInstrs >=
                   p.schedule[p.schedulePos].atInstr) {
            for (Domain d : scaledDomains())
                p.kernel.setTarget(
                    d, p.schedule[p.schedulePos].freqs[domainIndex(d)]);
            ++p.reconfigCount;
            ++p.schedulePos;
        }

        if (p.intervalHook && p.intervalInstrs > 0 &&
            p.committedInstrs + p.skippedInstrs -
                    p.intervalStartInstrs >=
                p.intervalInstrs) {
            // Occupancy denominators must include parked domains'
            // idle edges up to this commit.
            p.kernel.syncStats();
            IntervalStats s;
            s.instrs = p.committedInstrs + p.skippedInstrs -
                       p.intervalStartInstrs;
            // IPC is measured over the *detailed* commits of the
            // interval (a sampled estimate of the true IPC); skipped
            // instructions advance no front-end cycles.
            std::uint64_t det_instrs =
                p.committedInstrs - p.intervalStartDetailedInstrs;
            s.timePs = now - p.intervalStartTime;
            std::uint64_t fe_cyc =
                p.feTickCount - p.intervalStartFeCycles;
            s.ipc = fe_cyc ? static_cast<double>(det_instrs) /
                                 static_cast<double>(fe_cyc)
                           : 0.0;
            for (Domain d : scaledDomains()) {
                std::uint64_t samples = p.occSamples[domainIndex(d)];
                s.queueOcc[domainIndex(d)] =
                    samples ? p.occSum[domainIndex(d)] /
                                  static_cast<double>(samples)
                            : 0.0;
            }
            std::uint64_t fe_samples =
                p.occSamples[domainIndex(Domain::FrontEnd)];
            s.robOcc = fe_samples ? p.robOccSum /
                                        static_cast<double>(fe_samples)
                                  : 0.0;
            p.intervalHook->onInterval(s, p);
            p.occSum.fill(0.0);
            p.occSamples.fill(0);
            p.robOccSum = 0.0;
            p.intervalStartInstrs =
                p.committedInstrs + p.skippedInstrs;
            p.intervalStartDetailedInstrs = p.committedInstrs;
            p.intervalStartTime = now;
            p.intervalStartFeCycles = p.feTickCount;
        }
    }
}

} // namespace mcd::sim
