#include "sim/branch.hh"

namespace mcd::sim
{

BranchPredictor::BranchPredictor(const Config &c)
    : cfg(c),
      bimodal(c.bimodalSize, 1),
      history(c.l1Size, 0),
      pht(c.l2Size, 1),
      meta(c.metaSize, 2),
      btb(static_cast<std::size_t>(c.btbSets) *
          static_cast<std::size_t>(c.btbWays))
{
}

std::uint8_t
BranchPredictor::bump(std::uint8_t c, bool up)
{
    if (up)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

BranchPrediction
BranchPredictor::predict(std::uint64_t pc) const
{
    ++nLookups;
    std::uint64_t idx = pc >> 2;
    std::uint8_t bi = bimodal[idx % cfg.bimodalSize];
    std::uint16_t hist = history[idx % cfg.l1Size];
    std::uint8_t pa = pht[hist % cfg.l2Size];
    std::uint8_t mt = meta[idx % cfg.metaSize];

    BranchPrediction p;
    p.taken = counterTaken(mt) ? counterTaken(pa) : counterTaken(bi);

    std::uint32_t set = static_cast<std::uint32_t>(idx % cfg.btbSets);
    const BtbEntry *base =
        &btb[static_cast<std::size_t>(set) *
             static_cast<std::size_t>(cfg.btbWays)];
    for (int w = 0; w < cfg.btbWays; ++w) {
        if (base[w].valid && base[w].tag == idx) {
            p.btbHit = true;
            p.target = base[w].target;
            break;
        }
    }
    return p;
}

void
BranchPredictor::update(std::uint64_t pc, bool taken,
                        std::uint64_t target)
{
    std::uint64_t idx = pc >> 2;
    std::uint8_t &bi = bimodal[idx % cfg.bimodalSize];
    std::uint16_t &hist = history[idx % cfg.l1Size];
    std::uint8_t &pa = pht[hist % cfg.l2Size];
    std::uint8_t &mt = meta[idx % cfg.metaSize];

    bool bi_correct = counterTaken(bi) == taken;
    bool pa_correct = counterTaken(pa) == taken;
    if (bi_correct != pa_correct)
        mt = bump(mt, pa_correct);

    bi = bump(bi, taken);
    pa = bump(pa, taken);
    hist = static_cast<std::uint16_t>(
        ((hist << 1) | (taken ? 1 : 0)) &
        ((1U << cfg.historyBits) - 1));

    if (taken) {
        std::uint32_t set =
            static_cast<std::uint32_t>(idx % cfg.btbSets);
        BtbEntry *base =
            &btb[static_cast<std::size_t>(set) *
                 static_cast<std::size_t>(cfg.btbWays)];
        ++useCounter;
        int victim = 0;
        std::uint64_t oldest = ~0ULL;
        for (int w = 0; w < cfg.btbWays; ++w) {
            if (base[w].valid && base[w].tag == idx) {
                base[w].target = target;
                base[w].lastUse = useCounter;
                return;
            }
            std::uint64_t age = base[w].valid ? base[w].lastUse : 0;
            if (age < oldest) {
                oldest = age;
                victim = w;
            }
        }
        base[victim] = BtbEntry{idx, target, useCounter, true};
    }
}

} // namespace mcd::sim
