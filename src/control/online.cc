#include "control/online.hh"

#include <algorithm>

namespace mcd::control
{

AttackDecayController::AttackDecayController(const OnlineConfig &c,
                                             const sim::SimConfig &sc)
    : cfg(c), fMin(sc.minMhz), fMax(sc.maxMhz)
{
}

void
AttackDecayController::onInterval(const sim::IntervalStats &s,
                                  sim::DvfsControl &ctl)
{
    // Utilizations: issue queues for the execution domains, reorder
    // buffer for the front end (an empty ROB means the front end is
    // the bottleneck).
    std::array<double, NUM_SCALED_DOMAINS> util{};
    util[static_cast<size_t>(Domain::Integer)] =
        s.queueOcc[static_cast<size_t>(Domain::Integer)] /
        cfg.intIqSize;
    util[static_cast<size_t>(Domain::FloatingPoint)] =
        s.queueOcc[static_cast<size_t>(Domain::FloatingPoint)] /
        cfg.fpIqSize;
    util[static_cast<size_t>(Domain::Memory)] =
        s.queueOcc[static_cast<size_t>(Domain::Memory)] / cfg.lsqSize;
    util[static_cast<size_t>(Domain::FrontEnd)] =
        s.robOcc / cfg.robSize;

    double decay = cfg.decayStep * cfg.aggressiveness;
    double guard = cfg.ipcGuard * (1.0 + 0.5 * cfg.aggressiveness);

    // Performance guard: if IPC collapsed relative to the best seen
    // recently, return everything to full speed.  The reference
    // decays very slowly so a gradual decline cannot drag it down
    // with itself (that failure mode is a death spiral).
    bestIpc = std::max(bestIpc * 0.998, s.ipc);
    if (!first && s.ipc < bestIpc * (1.0 - guard)) {
        for (Domain d : scaledDomains())
            ctl.setTarget(d, fMax);
        ++nRecoveries;
        // Repeated recoveries relax the reference a little so a
        // permanent phase change cannot pin the chip at full speed.
        bestIpc *= 0.99;
        prevUtil = util;
        first = false;
        return;
    }

    for (Domain dom : scaledDomains()) {
        double u = util[domainIndex(dom)];
        double pu = prevUtil[domainIndex(dom)];
        Mhz f = ctl.targetFreq(dom);

        if (dom == Domain::FrontEnd) {
            // Front end: a drained ROB means fetch/dispatch cannot
            // keep up -> attack up (on level or on change); a full
            // ROB tolerates decay.
            if (u < 0.15 || (!first && u < pu - cfg.changeThresh)) {
                f += cfg.attackStep * (fMax - fMin);
                ++nAttacks;
            } else {
                f *= 1.0 - decay;
            }
        } else if (u < cfg.idleThresh) {
            // Idle domain: decay fast toward the floor.
            f *= 1.0 - 4.0 * decay;
        } else if (u > 0.6 ||
                   (!first && u - pu > cfg.changeThresh)) {
            // Backlog high or growing: the domain fell behind.
            f += cfg.attackStep * (fMax - fMin);
            ++nAttacks;
        } else if (!first && pu - u > 2.0 * cfg.changeThresh) {
            // Backlog draining sharply: the domain runs well ahead.
            f -= cfg.attackStep * (fMax - fMin) * 0.5;
            ++nAttacks;
        } else {
            f *= 1.0 - decay;
        }
        ctl.setTarget(dom, std::clamp(f, fMin, fMax));
    }
    prevUtil = util;
    first = false;
}

} // namespace mcd::control
