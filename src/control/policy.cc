#include "control/policy.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <locale>
#include <map>
#include <mutex>
#include <sstream>

#include "util/logging.hh"

namespace mcd::control
{

// ---------------------------------------------------------------- //
// Formatting / parsing helpers                                     //
// ---------------------------------------------------------------- //

const char *
compactModeName(core::ContextMode m)
{
    switch (m) {
      case core::ContextMode::LFCP: return "LFCP";
      case core::ContextMode::LFP: return "LFP";
      case core::ContextMode::FCP: return "FCP";
      case core::ContextMode::FP: return "FP";
      case core::ContextMode::LF: return "LF";
      case core::ContextMode::F: return "F";
    }
    return "?";
}

bool
parseContextMode(const std::string &text, core::ContextMode &m)
{
    // Accept the compact form case-insensitively and the printable
    // "L+F+C+P" form.
    std::string t;
    for (char c : text)
        if (c != '+')
            t.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
    const core::ContextMode all[] = {
        core::ContextMode::LFCP, core::ContextMode::LFP,
        core::ContextMode::FCP,  core::ContextMode::FP,
        core::ContextMode::LF,   core::ContextMode::F,
    };
    for (core::ContextMode cand : all) {
        if (t == compactModeName(cand)) {
            m = cand;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------- //
// ParamInfo                                                        //
// ---------------------------------------------------------------- //

ParamInfo
ParamInfo::dbl(std::string name, double def, std::string help,
               double min, double max, bool integer)
{
    ParamInfo p;
    p.name = std::move(name);
    p.type = ParamType::Double;
    p.defaultDouble = def;
    p.help = std::move(help);
    p.minDouble = min;
    p.maxDouble = max;
    p.integer = integer;
    return p;
}

ParamInfo
ParamInfo::mode(std::string name, core::ContextMode def,
                std::string help)
{
    ParamInfo p;
    p.name = std::move(name);
    p.type = ParamType::Mode;
    p.defaultMode = def;
    p.help = std::move(help);
    return p;
}

// ---------------------------------------------------------------- //
// PolicySpec                                                       //
// ---------------------------------------------------------------- //

PolicySpec
PolicySpec::of(std::string policy_name)
{
    PolicySpec s;
    s.policy = std::move(policy_name);
    return s;
}

PolicySpec &
PolicySpec::set(const std::string &key, const std::string &value)
{
    auto assign = [&](Param &p) {
        p.text = value;
        // Keep the typed mirrors in sync (best effort before
        // canonicalization pins them) so a set() on an already
        // canonical spec cannot leave num()/mode() returning a
        // stale previous value.
        p.num = 0.0;
        p.mode = core::ContextMode::LF;
        parseDouble(value, p.num);
        parseContextMode(value, p.mode);
    };
    for (Param &p : params) {
        if (p.name == key) {
            assign(p);
            return *this;
        }
    }
    Param p;
    p.name = key;
    assign(p);
    params.push_back(std::move(p));
    return *this;
}

PolicySpec &
PolicySpec::set(const std::string &key, double value)
{
    return set(key, fmtFixed(value, 3));
}

PolicySpec &
PolicySpec::set(const std::string &key, core::ContextMode mode)
{
    return set(key, std::string(compactModeName(mode)));
}

std::string
PolicySpec::str() const
{
    std::string s = policy;
    for (std::size_t i = 0; i < params.size(); ++i) {
        s += i == 0 ? ':' : ',';
        s += params[i].name;
        s += '=';
        s += params[i].text;
    }
    return s;
}

const PolicySpec::Param *
PolicySpec::find(const std::string &key) const
{
    for (const Param &p : params)
        if (p.name == key)
            return &p;
    return nullptr;
}

double
PolicySpec::num(const std::string &key) const
{
    const Param *p = find(key);
    if (!p)
        panic("spec '%s' has no parameter '%s' (not canonical?)",
              str().c_str(), key.c_str());
    return p->num;
}

core::ContextMode
PolicySpec::mode(const std::string &key) const
{
    const Param *p = find(key);
    if (!p)
        panic("spec '%s' has no parameter '%s' (not canonical?)",
              str().c_str(), key.c_str());
    return p->mode;
}

bool
parseSpec(const std::string &text, PolicySpec &out, std::string &err)
{
    out = PolicySpec();
    std::vector<std::pair<std::string, std::string>> kvs;
    if (!util::splitSpec(text, "policy spec", out.policy, kvs, err))
        return false;
    for (auto &kv : kvs)
        out.set(kv.first, kv.second);
    return true;
}

// ---------------------------------------------------------------- //
// Policy                                                           //
// ---------------------------------------------------------------- //

std::string
Policy::contextKey(const PolicyContext &ctx) const
{
    return strprintf("w%llu",
                     (unsigned long long)ctx.productionWindow);
}

// ---------------------------------------------------------------- //
// PolicyRegistry                                                   //
// ---------------------------------------------------------------- //

struct PolicyRegistry::Impl
{
    mutable std::mutex m;
    std::map<std::string, std::unique_ptr<const Policy>> policies;
};

PolicyRegistry &
PolicyRegistry::instance()
{
    // Leaked singleton: policies registered from static initializers
    // must stay valid through program exit in any TU order.
    static PolicyRegistry *reg = new PolicyRegistry();
    return *reg;
}

PolicyRegistry::Impl &
PolicyRegistry::impl() const
{
    static Impl *i = new Impl();
    return *i;
}

void
PolicyRegistry::add(std::unique_ptr<const Policy> p)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> l(i.m);
    std::string name = p->name();
    if (!util::validSpecName(name))
        panic("policy name '%s' is not [a-z0-9_-]+", name.c_str());
    if (!i.policies.emplace(name, std::move(p)).second)
        panic("duplicate policy registration '%s'", name.c_str());
}

const Policy *
PolicyRegistry::find(const std::string &name) const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> l(i.m);
    auto it = i.policies.find(name);
    return it == i.policies.end() ? nullptr : it->second.get();
}

std::vector<const Policy *>
PolicyRegistry::list() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> l(i.m);
    std::vector<const Policy *> out;
    out.reserve(i.policies.size());
    for (const auto &kv : i.policies)
        out.push_back(kv.second.get());
    // The name-sorted order is a contract, not a side effect of the
    // Impl container: `--list-policies` output, unknown-spec error
    // listings and docs pins all diff against it (see
    // tests/test_chip.cc, Registries.ListingsAreNameSorted).
    std::sort(out.begin(), out.end(),
              [](const Policy *a, const Policy *b) {
                  return std::strcmp(a->name(), b->name()) < 0;
              });
    return out;
}

bool
PolicyRegistry::canonicalize(PolicySpec &spec, std::string &err) const
{
    const Policy *p = find(spec.policy);
    if (!p) {
        err = "unknown policy '" + spec.policy + "'";
        std::vector<const Policy *> known = list();
        if (!known.empty()) {
            err += " (known:";
            for (const Policy *k : known) {
                err += ' ';
                err += k->name();
            }
            err += ')';
        }
        return false;
    }
    std::vector<ParamInfo> schema = p->params();
    for (const PolicySpec::Param &given : spec.params) {
        bool known = std::any_of(
            schema.begin(), schema.end(),
            [&](const ParamInfo &pi) { return pi.name == given.name; });
        if (!known) {
            err = "policy '" + spec.policy +
                  "' has no parameter '" + given.name + "'";
            if (!schema.empty()) {
                err += " (takes:";
                for (const ParamInfo &pi : schema) {
                    err += ' ';
                    err += pi.name;
                }
                err += ')';
            } else {
                err += " (takes none)";
            }
            return false;
        }
    }
    // Rebuild the parameter list in schema order, falling back to
    // the documented schema default for anything unset, and caching
    // the typed value next to its canonical text.
    std::vector<PolicySpec::Param> canon;
    canon.reserve(schema.size());
    for (const ParamInfo &pi : schema) {
        PolicySpec::Param out;
        out.name = pi.name;
        const PolicySpec::Param *given = spec.find(pi.name);
        switch (pi.type) {
          case ParamType::Double: {
            double v = pi.defaultDouble;
            if (given && !parseDouble(given->text, v)) {
                err = "policy '" + spec.policy + "' parameter '" +
                      pi.name + "': '" + given->text +
                      "' is not a number";
                return false;
            }
            // NaN fails both comparisons, so it is rejected too.
            if (!(v >= pi.minDouble && v <= pi.maxDouble)) {
                auto g = [](double x) {
                    std::ostringstream os;
                    os.imbue(std::locale::classic());
                    os << x;
                    return os.str();
                };
                err = "policy '" + spec.policy + "' parameter '" +
                      pi.name + "': " + g(v) + " is out of range [" +
                      g(pi.minDouble) + ", " + g(pi.maxDouble) + "]";
                return false;
            }
            if (pi.integer && v != std::floor(v)) {
                err = "policy '" + spec.policy + "' parameter '" +
                      pi.name + "': '" +
                      (given ? given->text : std::string()) +
                      "' must be an integer";
                return false;
            }
            // Canonical text is the 3-digit fixed form, and the
            // typed value is re-parsed from it so the cache key and
            // the computation can never disagree.
            out.text = fmtFixed(v, 3);
            parseDouble(out.text, out.num);
            break;
          }
          case ParamType::Mode: {
            core::ContextMode m = pi.defaultMode;
            if (given && !parseContextMode(given->text, m)) {
                err = "policy '" + spec.policy + "' parameter '" +
                      pi.name + "': '" + given->text +
                      "' is not a context mode "
                      "(LFCP|LFP|FCP|FP|LF|F)";
                return false;
            }
            out.mode = m;
            out.text = compactModeName(m);
            break;
          }
        }
        canon.push_back(std::move(out));
    }
    spec.params = std::move(canon);
    return true;
}

PolicyRegistrar::PolicyRegistrar(std::unique_ptr<const Policy> p)
{
    PolicyRegistry::instance().add(std::move(p));
}

std::string
describePolicies()
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    for (const Policy *p : PolicyRegistry::instance().list()) {
        os << "  " << p->name();
        for (std::size_t n = std::strlen(p->name()); n < 10; ++n)
            os << ' ';
        os << ' ' << p->description() << '\n';
        for (const ParamInfo &pi : p->params()) {
            os << "      " << pi.name << "=<"
               << (pi.type == ParamType::Mode ? "mode" : "number")
               << "> (default "
               << (pi.type == ParamType::Mode
                       ? std::string(compactModeName(pi.defaultMode))
                       : fmtFixed(pi.defaultDouble, 3))
               << "): " << pi.help << '\n';
        }
    }
    return os.str();
}

} // namespace mcd::control
