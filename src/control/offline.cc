#include "control/offline.hh"

namespace mcd::control
{

namespace
{

/** Slices the trace into fixed instruction intervals. */
class IntervalCollector : public sim::TraceSink
{
  public:
    IntervalCollector(const core::ShakerConfig &shaker_cfg,
                      const core::ThresholdConfig &threshold_cfg,
                      std::uint64_t interval_instrs)
        : analyzer(shaker_cfg), tcfg(threshold_cfg),
          interval(interval_instrs)
    {
    }

    void
    onInstr(const sim::InstrTiming &t) override
    {
        segment.push_back(t);
        if (segment.size() >= interval)
            flush();
    }

    void
    flush()
    {
        if (segment.empty())
            return;
        core::NodeHistograms h;
        analyzer.analyze(segment, h);
        sim::SchedulePoint pt;
        pt.atInstr = startInstr;
        pt.freqs = core::chooseFrequencies(h, tcfg);
        points.push_back(pt);
        startInstr += segment.size();
        segment.clear();
    }

    std::vector<sim::SchedulePoint> points;

  private:
    core::SegmentAnalyzer analyzer;
    core::ThresholdConfig tcfg;
    std::uint64_t interval;
    std::uint64_t startInstr = 0;
    std::vector<sim::InstrTiming> segment;
};

core::ShakerConfig
configureShaker(const OfflineConfig &cfg, const sim::SimConfig &scfg,
                const power::PowerConfig &pcfg)
{
    core::ShakerConfig sc = cfg.shaker;
    sc.domainPowerWeight = pcfg.domainWeight;
    sc.nominalMhz = scfg.maxMhz;
    sc.l1LatencyCycles = scfg.l1Latency;
    sc.l2LatencyCycles = scfg.l2Latency;
    sc.robSize = scfg.robSize;
    sc.lsqSize = scfg.lsqSize;
    sc.intIqSize = scfg.intIqSize;
    sc.fpIqSize = scfg.fpIqSize;
    sc.fetchWidth = scfg.fetchWidth;
    sc.retireWidth = scfg.retireWidth;
    sc.intIssueWidth = scfg.intIssueWidth;
    sc.fpIssueWidth = scfg.fpIssueWidth;
    sc.memIssueWidth = scfg.memIssueWidth;
    sc.mispredictPenalty = scfg.mispredictPenalty;
    return sc;
}

} // namespace

std::vector<sim::SchedulePoint>
offlineAnalyze(const OfflineConfig &cfg,
               const workload::Program &program,
               const workload::InputSet &input,
               const sim::SimConfig &scfg,
               const power::PowerConfig &pcfg, std::uint64_t window)
{
    core::ThresholdConfig tcfg = cfg.threshold;
    tcfg.slowdownPct = cfg.slowdownPct;

    IntervalCollector collector(configureShaker(cfg, scfg, pcfg), tcfg,
                                cfg.intervalInstrs);
    // The shaker consumes every committed instruction's timing
    // record; sampled probes would leave holes in the dependence
    // DAG, so the analysis run is always exact.
    sim::SimConfig acfg = scfg;
    acfg.sampling = sim::SamplingConfig{};
    sim::Processor analysis(acfg, pcfg, program, input);
    analysis.setTraceSink(&collector);
    analysis.run(window);
    collector.flush();

    // Apply each interval's setting slightly early: the oracle knows
    // the future and hides the ramp.
    std::vector<sim::SchedulePoint> sched = collector.points;
    for (auto &pt : sched)
        pt.atInstr = pt.atInstr > cfg.leadInstrs
                         ? pt.atInstr - cfg.leadInstrs
                         : 0;
    return sched;
}

sim::RunResult
offlineRun(const OfflineConfig &cfg, const workload::Program &program,
           const workload::InputSet &input, const sim::SimConfig &scfg,
           const power::PowerConfig &pcfg, std::uint64_t window,
           std::shared_ptr<const sim::CheckpointSet> checkpoints)
{
    auto sched = offlineAnalyze(cfg, program, input, scfg, pcfg,
                                window);
    sim::Processor proc(scfg, pcfg, program, input);
    proc.setSchedule(std::move(sched));
    proc.setCheckpoints(std::move(checkpoints));
    return proc.run(window);
}

} // namespace mcd::control
