/**
 * @file
 * The on-line hardware attack/decay controller of Semeraro et
 * al. [29] (MICRO 2002), used by the paper as its on-line baseline.
 *
 * At fixed instruction intervals, per-domain queue utilization is
 * examined: a significant change triggers an "attack" (a large
 * frequency step in the direction of the change); otherwise the
 * frequency "decays" slowly downward.  An IPC guard returns all
 * domains to speed when performance collapses.  The `aggressiveness`
 * knob scales the decay (and relaxes the guard), producing the
 * energy-versus-slowdown trade-off curve of Figures 10/11.
 */

#ifndef MCD_CONTROL_ONLINE_HH
#define MCD_CONTROL_ONLINE_HH

#include <array>
#include <cstdint>

#include "sim/config.hh"
#include "sim/trace.hh"

namespace mcd::control
{

/** Attack/decay parameters. */
struct OnlineConfig
{
    /** Controller evaluation interval (committed instructions). */
    std::uint64_t intervalInstrs = 2'000;
    /** Attack step as a fraction of the full frequency range. */
    double attackStep = 0.10;
    /** Decay per interval (multiplicative). */
    double decayStep = 0.03;
    /** Relative utilization change that triggers an attack. */
    double changeThresh = 0.12;
    /** Utilization below which a domain is considered idle. */
    double idleThresh = 0.02;
    /** IPC drop (fraction of recent best) that triggers recovery. */
    double ipcGuard = 0.10;
    /** Scales decay and relaxes the guard (the trade-off knob). */
    double aggressiveness = 1.0;

    /** Queue capacities (match the simulated core). */
    int intIqSize = 20;
    int fpIqSize = 15;
    int lsqSize = 64;
    int robSize = 80;
};

/**
 * IntervalHook implementation of the attack/decay algorithm.
 */
class AttackDecayController : public sim::IntervalHook
{
  public:
    explicit AttackDecayController(
        const OnlineConfig &cfg = OnlineConfig(),
        const sim::SimConfig &sim_cfg = sim::SimConfig());

    void onInterval(const sim::IntervalStats &s,
                    sim::DvfsControl &ctl) override;

    /** Number of attack events so far (diagnostics). */
    std::uint64_t attacks() const { return nAttacks; }
    /** Number of IPC-guard recoveries so far. */
    std::uint64_t recoveries() const { return nRecoveries; }

  private:
    OnlineConfig cfg;
    Mhz fMin;
    Mhz fMax;
    std::array<double, NUM_SCALED_DOMAINS> prevUtil{};
    double bestIpc = 0.0;
    bool first = true;
    std::uint64_t nAttacks = 0;
    std::uint64_t nRecoveries = 0;
};

} // namespace mcd::control

#endif // MCD_CONTROL_ONLINE_HH
