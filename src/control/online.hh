/**
 * @file
 * The on-line hardware attack/decay controller of Semeraro et
 * al. [29] (MICRO 2002), used by the paper as its on-line baseline.
 *
 * At fixed instruction intervals, per-domain queue utilization is
 * examined: a significant change triggers an "attack" (a large
 * frequency step in the direction of the change); otherwise the
 * frequency "decays" slowly downward.  An IPC guard returns all
 * domains to speed when performance collapses.  The `aggressiveness`
 * knob scales the decay (and relaxes the guard), producing the
 * energy-versus-slowdown trade-off curve of Figures 10/11.
 */

#ifndef MCD_CONTROL_ONLINE_HH
#define MCD_CONTROL_ONLINE_HH

#include <array>
#include <cstdint>

#include "sim/config.hh"
#include "sim/trace.hh"

namespace mcd::control
{

/**
 * Attack/decay parameters.
 *
 * All frequency moves are expressed relative to the hardware range
 * [`sim::SimConfig::minMhz`, `maxMhz`] (250–1000 MHz by default);
 * the resulting per-domain frequency request is in MHz and voltage
 * follows it via `SimConfig::voltageFor()` (650–1200 mV).  Queue
 * utilizations are occupancy fractions in [0, 1] averaged over the
 * evaluation interval.
 */
struct OnlineConfig
{
    /**
     * Controller evaluation interval, in committed instructions.
     * Each interval the controller inspects per-domain queue
     * utilization and adjusts that domain's frequency.
     */
    std::uint64_t intervalInstrs = 2'000;
    /**
     * Attack step, as a fraction of the full MHz range
     * (0.10 = 75 MHz with the default 250–1000 MHz range): the jump
     * applied when utilization changes significantly.
     */
    double attackStep = 0.10;
    /**
     * Decay per interval, multiplicative (0.03 = frequency drifts
     * down 3% per quiet interval, scaled by `aggressiveness`).
     */
    double decayStep = 0.03;
    /**
     * Utilization change, in absolute occupancy-fraction units
     * (0.12 = twelve points of queue occupancy), between consecutive
     * intervals that triggers an attack instead of decay.
     */
    double changeThresh = 0.12;
    /**
     * Utilization (fraction of queue capacity) below which a domain
     * is considered idle and dropped toward `minMhz`.
     */
    double idleThresh = 0.02;
    /**
     * IPC drop, as a fraction of the best recent interval IPC, that
     * triggers recovery: all domains return to `maxMhz`.
     */
    double ipcGuard = 0.10;
    /**
     * The energy-versus-slowdown trade-off knob of Figures 10/11
     * (dimensionless, 1.0 = the paper's default operating point):
     * scales `decayStep` and relaxes `ipcGuard`, so larger values
     * save more energy at more slowdown.
     */
    double aggressiveness = 1.0;

    /**
     * Queue capacities, in entries; must match the simulated core
     * (`sim::SimConfig`) so occupancy fractions are meaningful.
     */
    int intIqSize = 20;
    int fpIqSize = 15;
    int lsqSize = 64;
    int robSize = 80;
};

/**
 * IntervalHook implementation of the attack/decay algorithm.
 */
class AttackDecayController : public sim::IntervalHook
{
  public:
    explicit AttackDecayController(
        const OnlineConfig &cfg = OnlineConfig(),
        const sim::SimConfig &sim_cfg = sim::SimConfig());

    void onInterval(const sim::IntervalStats &s,
                    sim::DvfsControl &ctl) override;

    /** Number of attack events so far (diagnostics). */
    std::uint64_t attacks() const { return nAttacks; }
    /** Number of IPC-guard recoveries so far. */
    std::uint64_t recoveries() const { return nRecoveries; }

  private:
    OnlineConfig cfg;
    Mhz fMin;
    Mhz fMax;
    std::array<double, NUM_SCALED_DOMAINS> prevUtil{};
    double bestIpc = 0.0;
    bool first = true;
    std::uint64_t nAttacks = 0;
    std::uint64_t nRecoveries = 0;
};

} // namespace mcd::control

#endif // MCD_CONTROL_ONLINE_HH
