/**
 * @file
 * The off-line "perfect future knowledge" baseline [30]: the shaker
 * and slowdown-thresholding algorithms applied per fixed instruction
 * interval of the *production* run itself, yielding a frequency
 * schedule that a re-run applies with no instrumentation cost.
 */

#ifndef MCD_CONTROL_OFFLINE_HH
#define MCD_CONTROL_OFFLINE_HH

#include <cstdint>
#include <vector>

#include "core/shaker.hh"
#include "core/threshold.hh"
#include "power/power.hh"
#include "sim/processor.hh"
#include "workload/program.hh"

namespace mcd::control
{

/** Off-line oracle parameters. */
struct OfflineConfig
{
    /** Reconfiguration interval (the paper uses fixed intervals). */
    std::uint64_t intervalInstrs = 10'000;
    /** Slowdown threshold d (percent). */
    double slowdownPct = 5.0;
    /**
     * Schedule lead: frequencies are requested this many
     * instructions before the interval starts, hiding ramp time —
     * the oracle knows the future.
     */
    std::uint64_t leadInstrs = 2'000;
    core::ShakerConfig shaker;
    core::ThresholdConfig threshold;
};

/**
 * Analyze a production run with future knowledge and produce the
 * frequency schedule to apply on the re-run.
 *
 * @param cfg     oracle parameters
 * @param program workload
 * @param input   production input set
 * @param scfg    simulator configuration
 * @param pcfg    power configuration
 * @param window  instructions to analyze/schedule
 */
std::vector<sim::SchedulePoint>
offlineAnalyze(const OfflineConfig &cfg,
               const workload::Program &program,
               const workload::InputSet &input,
               const sim::SimConfig &scfg,
               const power::PowerConfig &pcfg, std::uint64_t window);

/**
 * Convenience: analyze, then re-run the production input under the
 * schedule and return the result.
 */
sim::RunResult offlineRun(const OfflineConfig &cfg,
                          const workload::Program &program,
                          const workload::InputSet &input,
                          const sim::SimConfig &scfg,
                          const power::PowerConfig &pcfg,
                          std::uint64_t window);

} // namespace mcd::control

#endif // MCD_CONTROL_OFFLINE_HH
