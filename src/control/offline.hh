/**
 * @file
 * The off-line "perfect future knowledge" baseline [30]: the shaker
 * and slowdown-thresholding algorithms applied per fixed instruction
 * interval of the *production* run itself, yielding a frequency
 * schedule that a re-run applies with no instrumentation cost.
 */

#ifndef MCD_CONTROL_OFFLINE_HH
#define MCD_CONTROL_OFFLINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/shaker.hh"
#include "core/threshold.hh"
#include "power/power.hh"
#include "sim/processor.hh"
#include "workload/program.hh"

namespace mcd::control
{

/**
 * Off-line oracle parameters.
 *
 * The controller emits a `sim::SchedulePoint` list: per-domain
 * target frequencies in MHz, keyed by simulated time in picoseconds.
 * Voltage is not a separate knob — each domain's supply follows its
 * frequency through `sim::SimConfig::voltageFor()` (the linear
 * XScale-like curve, 0.65 V / 650 mV at `minMhz` up to 1.20 V /
 * 1200 mV at `maxMhz`).
 */
struct OfflineConfig
{
    /**
     * Reconfiguration interval, in committed instructions (the paper
     * uses fixed intervals; its main results use 10,000).  Smaller
     * intervals track phase changes more closely but amplify ramp
     * overhead.
     */
    std::uint64_t intervalInstrs = 10'000;
    /**
     * Slowdown target d, in percent of baseline run time: the oracle
     * picks per-interval frequencies so the estimated run-time
     * increase stays within d%.  This is the x-axis knob of the
     * Figure 10/11 trade-off curves (paper default: 5%).
     */
    double slowdownPct = 5.0;
    /**
     * Schedule lead, in committed instructions: frequencies are
     * requested this many instructions before the interval starts,
     * hiding the DVFS ramp time — the oracle knows the future.
     */
    std::uint64_t leadInstrs = 2'000;
    /** Phase-2 slack analysis knobs (see core/shaker.hh). */
    core::ShakerConfig shaker;
    /** Phase-3 frequency selection knobs (see core/threshold.hh). */
    core::ThresholdConfig threshold;
};

/**
 * Analyze a production run with future knowledge and produce the
 * frequency schedule to apply on the re-run.
 *
 * The analysis run always executes in exact mode: the shaker needs
 * the complete per-instruction event trace, which sampled probes
 * cannot provide.  Only the production re-run (offlineRun) honours
 * SimConfig::sampling.
 *
 * @param cfg     oracle parameters
 * @param program workload
 * @param input   production input set
 * @param scfg    simulator configuration
 * @param pcfg    power configuration
 * @param window  instructions to analyze/schedule
 */
std::vector<sim::SchedulePoint>
offlineAnalyze(const OfflineConfig &cfg,
               const workload::Program &program,
               const workload::InputSet &input,
               const sim::SimConfig &scfg,
               const power::PowerConfig &pcfg, std::uint64_t window);

/**
 * Convenience: analyze, then re-run the production input under the
 * schedule and return the result.  @p checkpoints (optional) is a
 * prebuilt sampled-mode checkpoint set for the production re-run
 * (sim/checkpoint.hh); ignored in exact mode.
 */
sim::RunResult
offlineRun(const OfflineConfig &cfg, const workload::Program &program,
           const workload::InputSet &input, const sim::SimConfig &scfg,
           const power::PowerConfig &pcfg, std::uint64_t window,
           std::shared_ptr<const sim::CheckpointSet> checkpoints =
               nullptr);

} // namespace mcd::control

#endif // MCD_CONTROL_OFFLINE_HH
