/**
 * @file
 * Implementation of the learned DVFS controller (control/learned.hh):
 * the per-domain linear model, the seeded exploration trainer, the
 * frozen production controller and the multi-pass training driver.
 */

#include "control/learned.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/processor.hh"
#include "workload/program.hh"

namespace mcd::control
{

namespace
{

/** IPC drop, as a fraction of the best recent interval IPC, that
 *  labels an action unsafe (training) or forces full speed
 *  (production).  Matches the hybrid guard's default operating
 *  point. */
constexpr double IPC_GUARD = 0.10;

/** Floor of explored/predicted frequency fractions: the controller
 *  never requests below 25% of the range on its own — the paper's
 *  hardware range itself bottoms out at minMhz, and exploring the
 *  extreme floor mostly teaches the guard, not the model. */
constexpr double FRACTION_FLOOR = 0.25;

/** Frequency moves smaller than this (MHz) are not written: an
 *  untrained model predicting full speed must produce a run
 *  bit-identical to the baseline, not a stream of no-op targets. */
constexpr double TARGET_EPS_MHZ = 0.5;

double
occupancyFraction(Domain d, const sim::IntervalStats &s,
                  const sim::SimConfig &sim)
{
    double occ = s.queueOcc[domainIndex(d)];
    double cap = 1.0;
    switch (d) {
    case Domain::FrontEnd:
        cap = sim.fetchQueueSize;
        break;
    case Domain::Integer:
        cap = sim.intIqSize;
        break;
    case Domain::FloatingPoint:
        cap = sim.fpIqSize;
        break;
    case Domain::Memory:
        cap = sim.lsqSize;
        break;
    default:
        break;
    }
    return cap > 0.0 ? std::clamp(occ / cap, 0.0, 1.0) : 0.0;
}

} // namespace

LearnedModel::LearnedModel()
{
    // Bias-only full-speed prediction: an untrained model is the
    // baseline by construction.
    for (auto &wd : w) {
        wd.fill(0.0);
        wd[0] = 1.0;
    }
}

double
LearnedModel::predict(Domain d, const LearnedFeatures &x) const
{
    const LearnedFeatures &wd = w[domainIndex(d)];
    double y = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        y += wd[i] * x[i];
    return std::clamp(y, 0.0, 1.0);
}

void
LearnedModel::update(Domain d, const LearnedFeatures &x,
                     double label, double lr)
{
    LearnedFeatures &wd = w[domainIndex(d)];
    double err = label - predict(d, x);
    for (std::size_t i = 0; i < x.size(); ++i)
        wd[i] += lr * err * x[i];
    ++samples;
}

std::uint64_t
LearnedModel::digest() const
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h = (h ^ (v & 0xffu)) * 1099511628211ULL;
            v >>= 8;
        }
    };
    for (const LearnedFeatures &wd : w)
        for (double v : wd) {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(v));
            std::memcpy(&bits, &v, sizeof(bits));
            mix(bits);
        }
    mix(samples);
    return h;
}

LearnedFeatures
learnedFeatures(Domain d, const sim::IntervalStats &s,
                const sim::SimConfig &sim)
{
    LearnedFeatures x{};
    x[0] = 1.0;
    x[1] = occupancyFraction(d, s, sim);
    x[2] = sim.fetchWidth > 0
               ? std::clamp(s.ipc / sim.fetchWidth, 0.0, 1.0)
               : 0.0;
    x[3] = sim.robSize > 0
               ? std::clamp(s.robOcc / sim.robSize, 0.0, 1.0)
               : 0.0;
    return x;
}

LearnedTrainer::LearnedTrainer(LearnedModel *m,
                               const sim::SimConfig &sim,
                               const LearnedParams &p, Rng r)
    : model(m), simCfg(sim), params(p), rng(r)
{
}

void
LearnedTrainer::onInterval(const sim::IntervalStats &s,
                           sim::DvfsControl &ctl)
{
    // 1. Credit assignment for the previous interval's action: if
    //    IPC held within the guard of the best recent interval, the
    //    applied fraction was safe — regress toward it; if IPC
    //    collapsed, the domain needed full speed.
    if (!first) {
        bestIpc = std::max(bestIpc * 0.998, s.ipc);
        bool safe = s.ipc >= bestIpc * (1.0 - IPC_GUARD);
        for (Domain d : scaledDomains()) {
            double label = safe ? prevAction[domainIndex(d)] : 1.0;
            model->update(d, prevFeat[domainIndex(d)], label,
                          params.lr);
        }
    } else {
        bestIpc = s.ipc;
    }

    // 2. Pick this interval's per-domain actions: seeded exploration
    //    with probability `explore`, model prediction otherwise.
    //    One uniform draw per domain per interval, in domain order —
    //    the draw sequence (and so the whole trajectory) is a pure
    //    function of the seed.
    Mhz fMin = simCfg.minMhz;
    Mhz fMax = simCfg.maxMhz;
    for (Domain d : scaledDomains()) {
        LearnedFeatures x = learnedFeatures(d, s, simCfg);
        double gate = rng.uniform();
        double u;
        if (gate < params.explore)
            u = FRACTION_FLOOR +
                rng.uniform() * (1.0 - FRACTION_FLOOR);
        else
            u = std::max(model->predict(d, x), FRACTION_FLOOR);
        ctl.setTarget(d, fMin + u * (fMax - fMin));
        prevFeat[domainIndex(d)] = x;
        prevAction[domainIndex(d)] = u;
    }
    first = false;
}

LearnedController::LearnedController(const LearnedModel &m,
                                     const sim::SimConfig &sim)
    : model(m), simCfg(sim), fMin(sim.minMhz), fMax(sim.maxMhz)
{
}

void
LearnedController::onInterval(const sim::IntervalStats &s,
                              sim::DvfsControl &ctl)
{
    // IPC guard: a collapse forces every domain back to full speed
    // (the mpeg2/vpr situation the hybrid guard exists for).
    bestIpc = std::max(bestIpc * 0.998, s.ipc);
    if (!first && s.ipc < bestIpc * (1.0 - IPC_GUARD)) {
        for (Domain d : scaledDomains())
            if (std::abs(ctl.targetFreq(d) - fMax) > TARGET_EPS_MHZ)
                ctl.setTarget(d, fMax);
        bestIpc *= 0.99;
        first = false;
        return;
    }
    first = false;

    for (Domain d : scaledDomains()) {
        LearnedFeatures x = learnedFeatures(d, s, simCfg);
        double u = std::max(model.predict(d, x), FRACTION_FLOOR);
        Mhz f = fMin + u * (fMax - fMin);
        if (std::abs(f - ctl.targetFreq(d)) > TARGET_EPS_MHZ)
            ctl.setTarget(d, f);
    }
}

LearnedModel
trainLearnedModel(const workload::Program &program,
                  const workload::InputSet &train,
                  const sim::SimConfig &sim,
                  const power::PowerConfig &power,
                  const LearnedConfig &cfg, const LearnedParams &params)
{
    LearnedModel model;
    if (cfg.trainWindow == 0 || cfg.trainPasses == 0)
        return model;

    // Training is an analysis run: it needs the full per-interval
    // feedback loop, so it forces exact mode regardless of the
    // harness sampling spec (docs/SAMPLING.md, "Analysis runs").
    sim::SimConfig exact = sim;
    exact.sampling = sim::SamplingConfig();

    Rng rng(params.seed);
    for (std::uint64_t pass = 0; pass < cfg.trainPasses; ++pass) {
        LearnedTrainer trainer(&model, exact, params, rng);
        sim::Processor proc(exact, power, program, train);
        proc.setIntervalHook(&trainer, params.intervalInstrs);
        proc.run(cfg.trainWindow);
        // Continue the exploration stream into the next pass.
        rng = trainer.takeRng();
    }
    return model;
}

} // namespace mcd::control
