/**
 * @file
 * The learned DVFS controller: an online per-domain regressor/bandit
 * trained on interval statistics (queue occupancies, IPC, ROB
 * pressure) harvested from seeded exploration runs of the *training*
 * input, then frozen and used to predict per-domain frequencies on
 * the production run.
 *
 * Training is bit-deterministic: exploration draws come from a
 * `mcd::Rng` seeded by the spec's `seed` knob, the training
 * trajectory is a pure function of (benchmark, SimConfig,
 * PowerConfig, LearnedConfig, spec knobs), and the model weights are
 * plain doubles updated in a fixed order — the same seed always
 * yields the same weights, the same production schedule and the same
 * outcome.  The harness-level training knobs (`LearnedConfig`) join
 * the experiment cache fingerprint under prefix `ln` (see
 * exp::configFingerprint and CACHE_VERSION v9), the per-run knobs
 * travel in the canonical spec text, so cached learned outcomes can
 * never be served across differing training regimes.
 */

#ifndef MCD_CONTROL_LEARNED_HH
#define MCD_CONTROL_LEARNED_HH

#include <array>
#include <cstdint>

#include "power/power.hh"
#include "sim/config.hh"
#include "sim/trace.hh"
#include "util/rng.hh"

namespace mcd::workload
{
struct Program;
struct InputSet;
} // namespace mcd::workload

namespace mcd::control
{

/**
 * Harness-level training knobs for the `learned` policy, set on
 * `exp::ExpConfig` (and mirrored into `PolicyContext`).  Every field
 * joins the experiment cache fingerprint (prefix `ln`): the training
 * regime shapes the learned weights and therefore every cached
 * learned outcome.
 */
struct LearnedConfig
{
    /**
     * Instructions simulated per training pass over the training
     * input.  0 disables training entirely: the untrained model
     * predicts full speed everywhere, so the policy degrades to the
     * MCD baseline instead of acting on garbage weights.
     */
    std::uint64_t trainWindow = 40'000;
    /** Training passes over the training input; the model carries
     *  its weights (and the exploration RNG stream) across passes. */
    std::uint64_t trainPasses = 2;
};

/** Feature vector length: bias, domain queue occupancy, IPC, ROB
 *  occupancy (all normalized to [0, 1]-ish ranges). */
constexpr int LEARNED_FEATURES = 4;

using LearnedFeatures = std::array<double, LEARNED_FEATURES>;

/** Per-run knobs carried in the canonical `learned:` spec text. */
struct LearnedParams
{
    std::uint64_t seed = 1;          ///< exploration RNG seed
    double lr = 0.08;                ///< SGD learning rate
    double explore = 0.25;           ///< exploration probability
    std::uint64_t intervalInstrs = 2'000;  ///< control interval
};

/**
 * Per-domain linear model mapping interval features to a frequency
 * fraction in [0, 1] of the [minMhz, maxMhz] range.  Initial weights
 * predict 1.0 (full speed) for every input, so an untrained model is
 * behaviorally the baseline.
 */
struct LearnedModel
{
    std::array<LearnedFeatures, NUM_SCALED_DOMAINS> w{};
    /** Training updates applied; 0 = untrained (baseline). */
    std::uint64_t samples = 0;

    LearnedModel();

    /** Predicted frequency fraction for @p d, clamped to [0, 1]. */
    double predict(Domain d, const LearnedFeatures &x) const;

    /** One SGD step toward @p label for domain @p d. */
    void update(Domain d, const LearnedFeatures &x, double label,
                double lr);

    /** FNV-1a over the weight bits and the sample count — the
     *  bit-identity fingerprint of a training trajectory. */
    std::uint64_t digest() const;

    bool trained() const { return samples > 0; }
};

/**
 * Normalized feature vector of domain @p d for one interval:
 * {1, occupancy(d)/capacity(d), ipc/fetchWidth, robOcc/robSize}.
 * The FrontEnd slot of `IntervalStats::queueOcc` carries fetch-queue
 * occupancy and is normalized by `SimConfig::fetchQueueSize`.
 */
LearnedFeatures learnedFeatures(Domain d,
                                const sim::IntervalStats &s,
                                const sim::SimConfig &sim);

/**
 * Training hook: each interval it (1) labels the previous interval's
 * action — the applied fraction if IPC held up, full speed if IPC
 * collapsed — and applies one SGD step per domain, then (2) picks
 * this interval's per-domain fractions (seeded exploration with
 * probability `explore`, model prediction otherwise) and programs
 * them.  All state is owned here; the model survives the run.
 */
class LearnedTrainer : public sim::IntervalHook
{
  public:
    LearnedTrainer(LearnedModel *model, const sim::SimConfig &sim,
                   const LearnedParams &params, Rng rng);

    void onInterval(const sim::IntervalStats &s,
                    sim::DvfsControl &ctl) override;

    /** The exploration RNG, handed back so multi-pass training
     *  continues one stream instead of replaying pass 1. */
    Rng takeRng() const { return rng; }

  private:
    LearnedModel *model;
    sim::SimConfig simCfg;
    LearnedParams params;
    Rng rng;
    std::array<LearnedFeatures, NUM_SCALED_DOMAINS> prevFeat{};
    std::array<double, NUM_SCALED_DOMAINS> prevAction{};
    double bestIpc = 0.0;
    bool first = true;
};

/**
 * Production hook: predicts per-domain fractions from the frozen
 * model each interval, with the same style of IPC guard as `hybrid`
 * (a collapse forces full speed).  Frequency targets are only
 * written when they move, so an untrained model (predicting full
 * speed) never reconfigures and the run is bit-identical to the
 * baseline.
 */
class LearnedController : public sim::IntervalHook
{
  public:
    LearnedController(const LearnedModel &model,
                      const sim::SimConfig &sim);

    void onInterval(const sim::IntervalStats &s,
                    sim::DvfsControl &ctl) override;

  private:
    LearnedModel model;
    sim::SimConfig simCfg;
    Mhz fMin;
    Mhz fMax;
    double bestIpc = 0.0;
    bool first = true;
};

/**
 * Train a model on @p train: `cfg.trainPasses` exact-mode simulation
 * passes of `cfg.trainWindow` instructions each, under a
 * LearnedTrainer at `params.intervalInstrs`.  Deterministic for
 * fixed inputs; returns an untrained model when `cfg.trainWindow`
 * is 0.
 */
LearnedModel trainLearnedModel(const workload::Program &program,
                               const workload::InputSet &train,
                               const sim::SimConfig &sim,
                               const power::PowerConfig &power,
                               const LearnedConfig &cfg,
                               const LearnedParams &params);

} // namespace mcd::control

#endif // MCD_CONTROL_LEARNED_HH
