/**
 * @file
 * The off-line "perfect future knowledge" oracle as a policy:
 * shaker + thresholding applied to the production run itself per
 * fixed instruction interval, re-run under the resulting schedule.
 */

#include "control/offline.hh"
#include "control/policy.hh"
#include "util/logging.hh"
#include "workload/suite.hh"

namespace mcd::control
{
namespace
{

class OfflinePolicy final : public Policy
{
  public:
    const char *
    name() const override
    {
        return "offline";
    }

    const char *
    description() const override
    {
        return "off-line oracle: perfect-knowledge per-interval "
               "schedule, the profile method's upper bound";
    }

    std::vector<ParamInfo>
    params() const override
    {
        return {
            ParamInfo::dbl(
                "d", DEFAULT_SLOWDOWN_PCT,
                "slowdown threshold, percent of baseline run time",
                0.0, 1000.0),
        };
    }

    std::string
    contextKey(const PolicyContext &ctx) const override
    {
        return strprintf("w%llu|i%llu",
                         (unsigned long long)ctx.productionWindow,
                         (unsigned long long)ctx.offlineInterval);
    }

    Outcome
    run(const std::string &bench, const PolicySpec &spec,
        const PolicyContext &ctx) const override
    {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        OfflineConfig oc;
        oc.intervalInstrs = ctx.offlineInterval;
        oc.slowdownPct = spec.num("d");
        sim::RunResult r =
            offlineRun(oc, bm.program, bm.ref, ctx.sim, ctx.power,
                       ctx.productionWindow,
                       checkpointsFor(ctx, bench));
        Outcome res;
        res.timePs = static_cast<double>(r.timePs);
        res.energyNj = r.chipEnergyNj;
        res.reconfigs = static_cast<double>(r.reconfigs);
        res.timeCiPs = static_cast<double>(r.timeCiPs);
        res.energyCiNj = r.energyCiNj;
        return res;
    }
};

} // namespace

MCD_REGISTER_POLICY(OfflinePolicy);

} // namespace mcd::control
