/**
 * @file
 * The MCD baseline policy: all domains at maximum frequency.  Every
 * other policy's metrics are computed relative to this run
 * (Section 4.1).
 */

#include "control/policy.hh"
#include "sim/processor.hh"
#include "workload/suite.hh"

namespace mcd::control
{
namespace
{

class BaselinePolicy final : public Policy
{
  public:
    const char *
    name() const override
    {
        return "baseline";
    }

    const char *
    description() const override
    {
        return "MCD baseline, all domains at maximum frequency";
    }

    bool
    relativeToBaseline() const override
    {
        return false;
    }

    Outcome
    run(const std::string &bench, const PolicySpec &,
        const PolicyContext &ctx) const override
    {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        sim::Processor proc(ctx.sim, ctx.power, bm.program, bm.ref);
        proc.setCheckpoints(checkpointsFor(ctx, bench));
        sim::RunResult r = proc.run(ctx.productionWindow);
        Outcome o;
        o.timePs = static_cast<double>(r.timePs);
        o.energyNj = r.chipEnergyNj;
        o.timeCiPs = static_cast<double>(r.timeCiPs);
        o.energyCiNj = r.energyCiNj;
        return o;
    }

    bool
    makeTileController(const PolicySpec &, const PolicyContext &,
                       std::unique_ptr<sim::IntervalHook> *hook,
                       std::uint64_t *interval_instrs) const override
    {
        // Max speed needs no callbacks: a tile with no hook runs all
        // domains at the initial (maximum) frequency.
        hook->reset();
        *interval_instrs = 0;
        return true;
    }
};

} // namespace

MCD_REGISTER_POLICY(BaselinePolicy);

} // namespace mcd::control
