/**
 * @file
 * The paper's contribution as a policy: the four-phase profile-driven
 * pipeline (profile the training run, shake, threshold at d, edit),
 * then an instrumented production run on the reference input.
 */

#include "control/policies/pipeline_outcome.hh"
#include "control/policy.hh"
#include "core/pipeline.hh"
#include "util/logging.hh"
#include "workload/suite.hh"

namespace mcd::control
{
namespace
{

class ProfilePolicy final : public Policy
{
  public:
    const char *
    name() const override
    {
        return "profile";
    }

    const char *
    description() const override
    {
        return "profile-driven pipeline: train on the training "
               "input, run production instrumented";
    }

    std::vector<ParamInfo>
    params() const override
    {
        return {
            ParamInfo::mode(
                "mode", core::ContextMode::LF,
                "calling-context definition (LFCP|LFP|FCP|FP|LF|F)"),
            ParamInfo::dbl(
                "d", DEFAULT_SLOWDOWN_PCT,
                "slowdown threshold, percent of baseline run time",
                0.0, 1000.0),
        };
    }

    std::string
    contextKey(const PolicyContext &ctx) const override
    {
        return strprintf("w%llu|a%llu",
                         (unsigned long long)ctx.productionWindow,
                         (unsigned long long)ctx.analysisWindow);
    }

    Outcome
    run(const std::string &bench, const PolicySpec &spec,
        const PolicyContext &ctx) const override
    {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        core::PipelineConfig pc;
        pc.mode = spec.mode("mode");
        pc.slowdownPct = spec.num("d");
        pc.profile.maxInstrs = ctx.profileMaxInstrs;
        pc.analysisWindow = ctx.analysisWindow;
        core::ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, ctx.sim, ctx.power);
        core::RuntimeStats rt;
        sim::RunResult r = pipe.runProduction(
            bm.ref, ctx.sim, ctx.power, ctx.productionWindow, &rt,
            nullptr, 0, checkpointsFor(ctx, bench));
        return pipelineOutcome(r, rt, pipe);
    }
};

} // namespace

MCD_REGISTER_POLICY(ProfilePolicy);

} // namespace mcd::control
