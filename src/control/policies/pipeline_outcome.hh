/**
 * @file
 * Shared Outcome population for policies built on the profile
 * pipeline (`profile`, `hybrid`, and any future pipeline-based
 * policy): one definition of how a production run's results and the
 * trained plan's diagnostics map onto Outcome fields, so the
 * policies cannot silently diverge in what they report.
 */

#ifndef MCD_CONTROL_POLICIES_PIPELINE_OUTCOME_HH
#define MCD_CONTROL_POLICIES_PIPELINE_OUTCOME_HH

#include "control/policy.hh"
#include "core/pipeline.hh"

namespace mcd::control
{

inline Outcome
pipelineOutcome(const sim::RunResult &r, const core::RuntimeStats &rt,
                const core::ProfilePipeline &pipe)
{
    Outcome res;
    res.timePs = static_cast<double>(r.timePs);
    res.energyNj = r.chipEnergyNj;
    res.reconfigs = static_cast<double>(r.reconfigs);
    res.overheadCycles = static_cast<double>(r.overheadCycles);
    res.feCycles = static_cast<double>(r.feCycles);
    res.dynReconfigPoints = static_cast<double>(rt.dynReconfigPoints);
    res.dynInstrPoints = static_cast<double>(rt.dynInstrPoints);
    res.staticReconfigPoints = pipe.plan().staticReconfigPoints;
    res.staticInstrPoints = pipe.plan().staticInstrPoints;
    res.tableBytes =
        static_cast<double>(pipe.plan().nextNodeTableBytes +
                            pipe.plan().freqTableBytes);
    res.timeCiPs = static_cast<double>(r.timeCiPs);
    res.energyCiNj = r.energyCiNj;
    return res;
}

} // namespace mcd::control

#endif // MCD_CONTROL_POLICIES_PIPELINE_OUTCOME_HH
