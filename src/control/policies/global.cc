/**
 * @file
 * The global-DVS baseline as a policy: a single-clock chip bisected
 * to the one frequency whose run time matches the off-line oracle's
 * (Section 4.1) — what conventional chip-wide DVFS could do under
 * the same performance budget.
 *
 * The off-line run it matches is obtained through
 * `PolicyContext::evaluate`, i.e. through the harness memo: whether
 * the off-line cell ran first or this one does, the oracle is
 * computed exactly once.
 */

#include "control/globaldvs.hh"
#include "control/policy.hh"
#include "util/logging.hh"
#include "workload/suite.hh"

namespace mcd::control
{
namespace
{

class GlobalPolicy final : public Policy
{
  public:
    const char *
    name() const override
    {
        return "global";
    }

    const char *
    description() const override
    {
        return "chip-wide DVS on a single-clock core, matched to "
               "the off-line oracle's run time";
    }

    std::vector<ParamInfo>
    params() const override
    {
        return {
            ParamInfo::dbl(
                "d", DEFAULT_SLOWDOWN_PCT,
                "slowdown threshold of the off-line run whose time "
                "is matched",
                0.0, 1000.0),
        };
    }

    std::string
    contextKey(const PolicyContext &ctx) const override
    {
        // The off-line interval is part of the key because the
        // off-line run this policy matches depends on it.
        return strprintf("w%llu|i%llu",
                         (unsigned long long)ctx.productionWindow,
                         (unsigned long long)ctx.offlineInterval);
    }

    Outcome
    run(const std::string &bench, const PolicySpec &spec,
        const PolicyContext &ctx) const override
    {
        // Target: match the off-line algorithm's run time at the
        // same threshold d (Section 4.1).
        Outcome off = ctx.evaluate(
            bench, PolicySpec::of("offline").set("d", spec.num("d")));
        workload::Benchmark bm = workload::makeBenchmark(bench);
        GlobalDvsResult g = globalDvsMatch(
            bm.program, bm.ref, ctx.sim, ctx.power,
            ctx.productionWindow, static_cast<Tick>(off.timePs),
            /*iters=*/6, checkpointsFor(ctx, bench));
        Outcome res;
        res.timePs = static_cast<double>(g.run.timePs);
        res.energyNj = g.run.chipEnergyNj;
        res.globalFreq = g.freq;
        res.timeCiPs = static_cast<double>(g.run.timeCiPs);
        res.energyCiNj = g.run.energyCiNj;
        return res;
    }
};

} // namespace

MCD_REGISTER_POLICY(GlobalPolicy);

} // namespace mcd::control
