/**
 * @file
 * Semeraro et al.'s on-line attack/decay hardware controller as a
 * policy (the paper's reactive baseline).
 */

#include "control/online.hh"
#include "control/policy.hh"
#include "sim/processor.hh"
#include "workload/suite.hh"

namespace mcd::control
{
namespace
{

class OnlinePolicy final : public Policy
{
  public:
    static OnlineConfig
    configFor(const PolicySpec &spec, const PolicyContext &ctx)
    {
        OnlineConfig oc;
        oc.aggressiveness = spec.num("aggr");
        oc.intIqSize = ctx.sim.intIqSize;
        oc.fpIqSize = ctx.sim.fpIqSize;
        oc.lsqSize = ctx.sim.lsqSize;
        oc.robSize = ctx.sim.robSize;
        return oc;
    }

    const char *
    name() const override
    {
        return "online";
    }

    const char *
    description() const override
    {
        return "on-line attack/decay controller reacting to queue "
               "utilization (Semeraro et al., MICRO 2002)";
    }

    std::vector<ParamInfo>
    params() const override
    {
        return {
            ParamInfo::dbl(
                "aggr", 1.0,
                "aggressiveness: scales decay, relaxes the IPC "
                "guard (1.0 = the paper's operating point)",
                0.0, 1000.0),
        };
    }

    Outcome
    run(const std::string &bench, const PolicySpec &spec,
        const PolicyContext &ctx) const override
    {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        OnlineConfig oc = configFor(spec, ctx);
        AttackDecayController ctl(oc, ctx.sim);
        sim::Processor proc(ctx.sim, ctx.power, bm.program, bm.ref);
        proc.setIntervalHook(&ctl, oc.intervalInstrs);
        proc.setCheckpoints(checkpointsFor(ctx, bench));
        sim::RunResult r = proc.run(ctx.productionWindow);
        Outcome res;
        res.timePs = static_cast<double>(r.timePs);
        res.energyNj = r.chipEnergyNj;
        res.reconfigs = static_cast<double>(r.reconfigs);
        res.timeCiPs = static_cast<double>(r.timeCiPs);
        res.energyCiNj = r.energyCiNj;
        return res;
    }

    bool
    makeTileController(const PolicySpec &spec,
                       const PolicyContext &ctx,
                       std::unique_ptr<sim::IntervalHook> *hook,
                       std::uint64_t *interval_instrs) const override
    {
        OnlineConfig oc = configFor(spec, ctx);
        *hook = std::make_unique<AttackDecayController>(oc, ctx.sim);
        *interval_instrs = oc.intervalInstrs;
        return true;
    }
};

} // namespace

MCD_REGISTER_POLICY(OnlinePolicy);

} // namespace mcd::control
