/**
 * @file
 * The learned policy: train a per-domain linear regressor/bandit on
 * the *training* input through seeded exploration runs
 * (control/learned.hh), freeze the model, and let it predict
 * per-domain frequencies on the production run.
 *
 * The training regime (window, passes) comes from the harness
 * (`PolicyContext::learned`, fingerprinted under `ln`); the per-run
 * knobs (seed, learning rate, exploration probability, control
 * interval) live in the spec and therefore in the cache key.  Same
 * seed, same spec, same harness => bit-identical weights and a
 * bit-identical production run.
 *
 * Like the other feedback controllers (docs/SAMPLING.md) the learned
 * controller closes its loop through measured per-interval IPC, so
 * sampled production runs would diverge from exact ones in *decision*
 * space, not just measurement; run() refuses sampled mode with a
 * catchable SpecError instead of returning a silently wrong number.
 */

#include "control/learned.hh"
#include "control/policy.hh"
#include "sim/processor.hh"
#include "workload/spec.hh"
#include "workload/suite.hh"

namespace mcd::control
{
namespace
{

class LearnedPolicy final : public Policy
{
  public:
    static LearnedParams
    paramsFor(const PolicySpec &spec)
    {
        LearnedParams lp;
        lp.seed = static_cast<std::uint64_t>(spec.num("seed"));
        lp.lr = spec.num("lr");
        lp.explore = spec.num("explore");
        lp.intervalInstrs =
            static_cast<std::uint64_t>(spec.num("interval"));
        return lp;
    }

    const char *
    name() const override
    {
        return "learned";
    }

    const char *
    description() const override
    {
        return "per-domain linear regressor/bandit trained on "
               "interval stats from the training input, frozen for "
               "production";
    }

    std::vector<ParamInfo>
    params() const override
    {
        return {
            ParamInfo::dbl("seed", 1.0,
                           "exploration RNG seed (training is a pure "
                           "function of it)",
                           0.0, 1e12, true),
            ParamInfo::dbl("lr", 0.08,
                           "SGD learning rate for the per-domain "
                           "regressors",
                           1e-6, 10.0),
            ParamInfo::dbl("explore", 0.25,
                           "probability a training interval explores "
                           "a random frequency instead of exploiting "
                           "the model",
                           0.0, 1.0),
            ParamInfo::dbl("interval", 2000.0,
                           "control interval (instructions) for both "
                           "training and production",
                           1.0, 1e12, true),
        };
    }

    Outcome
    run(const std::string &bench, const PolicySpec &spec,
        const PolicyContext &ctx) const override
    {
        if (ctx.sim.sampling.sampled())
            throw workload::SpecError(
                "the learned policy is a feedback controller and "
                "does not support sampled simulation (see "
                "docs/SAMPLING.md); run learned cells with "
                "--sample exact");

        workload::Benchmark bm = workload::makeBenchmark(bench);
        LearnedParams lp = paramsFor(spec);
        LearnedModel model = trainLearnedModel(
            bm.program, bm.train, ctx.sim, ctx.power, ctx.learned,
            lp);

        LearnedController ctl(model, ctx.sim);
        sim::Processor proc(ctx.sim, ctx.power, bm.program, bm.ref);
        proc.setIntervalHook(&ctl, lp.intervalInstrs);
        sim::RunResult r = proc.run(ctx.productionWindow);

        Outcome res;
        res.timePs = static_cast<double>(r.timePs);
        res.energyNj = r.chipEnergyNj;
        res.reconfigs = static_cast<double>(r.reconfigs);
        res.tableBytes = static_cast<double>(sizeof(model.w));
        return res;
    }

    // No contextKey override: the training regime (trainWindow,
    // trainPasses) joins the cache key through the experiment
    // fingerprint (prefix `ln`, CACHE_VERSION v9), and the default
    // key already covers the production window.
};

} // namespace

MCD_REGISTER_POLICY(LearnedPolicy);

} // namespace mcd::control
