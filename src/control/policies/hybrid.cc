/**
 * @file
 * A policy the paper does not have, shipped as proof that the policy
 * API is open: the profile-driven pipeline with an on-line IPC guard
 * layered on top.
 *
 * The profile method commits to training-run frequencies; when the
 * reference input enters behaviour the training run never saw (see
 * Table 3's coverage gaps: mpeg2 decode, vpr), those frequencies can
 * collapse an interval's IPC with no mechanism to notice.  `hybrid`
 * keeps the instrumented pipeline but monitors per-interval IPC the
 * way the on-line controller's guard does, and on a collapse
 * overrides the profile's choice by returning every domain to full
 * speed until the next reconfiguration point re-asserts the plan.
 *
 * This file is also the template for adding a policy: one
 * self-registering translation unit, listed in
 * src/control/CMakeLists.txt — no changes to exp/ or bench/.
 */

#include <algorithm>

#include "control/policies/pipeline_outcome.hh"
#include "control/policy.hh"
#include "core/pipeline.hh"
#include "util/logging.hh"
#include "workload/suite.hh"

namespace mcd::control
{
namespace
{

/**
 * The recovery half of the attack/decay controller: track the best
 * recent interval IPC (slowly decaying reference) and return all
 * domains to maximum frequency when an interval falls more than
 * `guard` below it.  It never lowers a frequency — downward moves
 * remain the profile plan's business.
 */
class IpcGuardHook final : public sim::IntervalHook
{
  public:
    IpcGuardHook(double guard, Mhz f_max)
        : guard(guard), fMax(f_max)
    {
    }

    void
    onInterval(const sim::IntervalStats &s,
               sim::DvfsControl &ctl) override
    {
        // Same reference dynamics as the on-line controller: decay
        // the best-seen IPC very slowly so a gradual phase change
        // cannot drag the reference down with itself.
        bestIpc = std::max(bestIpc * 0.998, s.ipc);
        if (!first && s.ipc < bestIpc * (1.0 - guard)) {
            // Count an override only when some domain actually
            // moves; during a sustained collapse the chip is already
            // at full speed and re-asserting it is a no-op.
            bool moves = false;
            for (Domain dom : scaledDomains()) {
                if (ctl.targetFreq(dom) != fMax)
                    moves = true;
                ctl.setTarget(dom, fMax);
            }
            if (moves)
                ++nOverrides;
            // Repeated guard hits relax the reference a little so a
            // permanent phase change cannot pin the chip at full
            // speed forever.
            bestIpc *= 0.99;
        }
        first = false;
    }

    std::uint64_t
    overrides() const
    {
        return nOverrides;
    }

  private:
    double guard;
    Mhz fMax;
    double bestIpc = 0.0;
    bool first = true;
    std::uint64_t nOverrides = 0;
};

class HybridPolicy final : public Policy
{
  public:
    const char *
    name() const override
    {
        return "hybrid";
    }

    const char *
    description() const override
    {
        return "profile pipeline with an on-line IPC guard that "
               "overrides collapsing intervals";
    }

    std::vector<ParamInfo>
    params() const override
    {
        return {
            ParamInfo::mode(
                "mode", core::ContextMode::LF,
                "calling-context definition (LFCP|LFP|FCP|FP|LF|F)"),
            ParamInfo::dbl(
                "d", DEFAULT_SLOWDOWN_PCT,
                "slowdown threshold, percent of baseline run time",
                0.0, 1000.0),
            ParamInfo::dbl(
                "guard", 0.10,
                "IPC drop, as a fraction of the best recent "
                "interval IPC, that triggers a full-speed override",
                0.0, 1.0),
            ParamInfo::dbl(
                "interval", 2000.0,
                "guard evaluation interval, committed instructions",
                1.0, 1e12, /*integer=*/true),
        };
    }

    std::string
    contextKey(const PolicyContext &ctx) const override
    {
        return strprintf("w%llu|a%llu",
                         (unsigned long long)ctx.productionWindow,
                         (unsigned long long)ctx.analysisWindow);
    }

    Outcome
    run(const std::string &bench, const PolicySpec &spec,
        const PolicyContext &ctx) const override
    {
        workload::Benchmark bm = workload::makeBenchmark(bench);
        core::PipelineConfig pc;
        pc.mode = spec.mode("mode");
        pc.slowdownPct = spec.num("d");
        pc.profile.maxInstrs = ctx.profileMaxInstrs;
        pc.analysisWindow = ctx.analysisWindow;
        core::ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, ctx.sim, ctx.power);

        IpcGuardHook guard(spec.num("guard"), ctx.sim.maxMhz);
        // The schema bounds interval to [1, 1e12], so the cast is
        // well-defined and the hook interval positive.
        auto interval =
            static_cast<std::uint64_t>(spec.num("interval"));
        core::RuntimeStats rt;
        sim::RunResult r = pipe.runProduction(
            bm.ref, ctx.sim, ctx.power, ctx.productionWindow, &rt,
            &guard, interval, checkpointsFor(ctx, bench));

        Outcome res = pipelineOutcome(r, rt, pipe);
        // Guard overrides are reconfigurations the chip performs on
        // top of the instrumented ones; the simulator only counts
        // the marker/schedule paths, so add them explicitly.
        res.reconfigs += static_cast<double>(guard.overrides());
        return res;
    }
};

} // namespace

MCD_REGISTER_POLICY(HybridPolicy);

} // namespace mcd::control
