/**
 * @file
 * The "global" baseline of Figure 7: a single-clock processor whose
 * one voltage/frequency is chosen per benchmark so that total run
 * time approximately matches a target (the paper matches the
 * off-line algorithm's run time).
 */

#ifndef MCD_CONTROL_GLOBALDVS_HH
#define MCD_CONTROL_GLOBALDVS_HH

#include <cstdint>
#include <memory>

#include "power/power.hh"
#include "sim/processor.hh"
#include "workload/program.hh"

namespace mcd::control
{

/** Result of the global-DVS search. */
struct GlobalDvsResult
{
    /**
     * Chosen chip-wide frequency in MHz, within
     * [`SimConfig::minMhz`, `maxMhz`]; the whole chip runs at the
     * matching supply voltage (`SimConfig::voltageFor()`, 650–1200
     * mV over the default range).
     */
    Mhz freq = 0.0;
    sim::RunResult run;   ///< run at that frequency
};

/**
 * Find (by bisection) the single chip frequency whose single-clock
 * run time best matches @p target_time_ps without exceeding it by
 * more than the search tolerance, and return that run.
 *
 * Unlike the other controllers this baseline has no slowdown target
 * of its own: the paper gives it the off-line oracle's achieved run
 * time as @p target_time_ps, so it represents what conventional
 * chip-wide DVFS could do under the same performance budget.
 *
 * @param program    workload
 * @param input      input set
 * @param scfg       simulator configuration (single-clock mode is
 *                   forced internally, so no MCD synchronization
 *                   penalties apply)
 * @param pcfg       power configuration
 * @param window     instructions to simulate
 * @param target_time_ps run time to match, in picoseconds
 * @param iters      bisection iterations (6 resolves ~12 MHz over
 *                   the default 750 MHz range)
 * @param checkpoints optional sampled-mode checkpoint set shared by
 *                   every bisection probe run (the functional
 *                   trajectory is frequency-independent, so one set
 *                   serves all probed frequencies); ignored in exact
 *                   mode
 */
GlobalDvsResult
globalDvsMatch(const workload::Program &program,
               const workload::InputSet &input,
               const sim::SimConfig &scfg,
               const power::PowerConfig &pcfg, std::uint64_t window,
               Tick target_time_ps, int iters = 6,
               std::shared_ptr<const sim::CheckpointSet> checkpoints =
                   nullptr);

} // namespace mcd::control

#endif // MCD_CONTROL_GLOBALDVS_HH
