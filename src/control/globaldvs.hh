/**
 * @file
 * The "global" baseline of Figure 7: a single-clock processor whose
 * one voltage/frequency is chosen per benchmark so that total run
 * time approximately matches a target (the paper matches the
 * off-line algorithm's run time).
 */

#ifndef MCD_CONTROL_GLOBALDVS_HH
#define MCD_CONTROL_GLOBALDVS_HH

#include <cstdint>

#include "power/power.hh"
#include "sim/processor.hh"
#include "workload/program.hh"

namespace mcd::control
{

/** Result of the global-DVS search. */
struct GlobalDvsResult
{
    Mhz freq = 0.0;       ///< chosen chip frequency
    sim::RunResult run;   ///< run at that frequency
};

/**
 * Find (by bisection) the single chip frequency whose single-clock
 * run time best matches @p target_time_ps without exceeding it by
 * more than the search tolerance, and return that run.
 *
 * @param program    workload
 * @param input      input set
 * @param scfg       simulator configuration (single-clock mode is
 *                   forced internally)
 * @param pcfg       power configuration
 * @param window     instructions to simulate
 * @param target_time_ps run time to match
 * @param iters      bisection iterations
 */
GlobalDvsResult
globalDvsMatch(const workload::Program &program,
               const workload::InputSet &input,
               const sim::SimConfig &scfg,
               const power::PowerConfig &pcfg, std::uint64_t window,
               Tick target_time_ps, int iters = 6);

} // namespace mcd::control

#endif // MCD_CONTROL_GLOBALDVS_HH
