/**
 * @file
 * The open policy API: every reconfiguration strategy the harness
 * can run — the paper's five (baseline, profile, off-line oracle,
 * on-line attack/decay, global DVS) and any future controller — is a
 * `control::Policy` subclass registered with the `PolicyRegistry`.
 *
 * A policy is addressed by a `PolicySpec`, a parsed/printable string
 * of the form
 *
 *     name[:key=value[,key=value...]]
 *
 * e.g. `profile:mode=LFCP,d=5`, `online:aggr=1.5`, `global`.  Specs
 * canonicalize against the policy's parameter schema (unset
 * parameters take their documented schema defaults, values are
 * reformatted, parameters are put in schema order), and the
 * canonical string is the single source of truth for memo/CSV cache
 * keys, CLI selection (`--policy <spec>`) and sweep construction.
 *
 * Adding a policy is a one-file affair: subclass `Policy` in a new
 * translation unit under `src/control/policies/`, register it with
 * `MCD_REGISTER_POLICY(...)`, and list the file in
 * `src/control/CMakeLists.txt`.  No changes to `exp/` or `bench/`
 * are needed — the registry makes it selectable in every bench
 * binary and sweepable like any built-in.
 */

#ifndef MCD_CONTROL_POLICY_HH
#define MCD_CONTROL_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/learned.hh"
#include "core/calltree.hh"
#include "power/power.hh"
#include "sim/config.hh"
#include "sim/trace.hh"
#include "util/stats.hh"
#include "util/text.hh"

namespace mcd::sim
{
class CheckpointSet;
} // namespace mcd::sim

namespace mcd::control
{

/**
 * Result of one policy run on one benchmark.  Raw time/energy plus
 * per-policy diagnostics; `metrics` (always relative to the MCD
 * baseline, Section 4.1) is filled in by the harness after the raw
 * outcome is computed or served from cache.
 */
struct Outcome
{
    double timePs = 0.0;
    double energyNj = 0.0;
    Metrics metrics;  ///< vs the MCD baseline
    double reconfigs = 0.0;
    double overheadCycles = 0.0;
    double feCycles = 0.0;
    // profile-policy extras
    double dynReconfigPoints = 0.0;
    double dynInstrPoints = 0.0;
    double staticReconfigPoints = 0.0;
    double staticInstrPoints = 0.0;
    double tableBytes = 0.0;
    // global-policy extras
    double globalFreq = 0.0;
    // Sampled-simulation extras (sim/sampling.hh): 95% confidence
    // half-widths of timePs/energyNj.  Both 0 in exact mode — and
    // exact/sampled cells can never swap cache lines anyway, because
    // every SamplingConfig field joins the config fingerprint.
    double timeCiPs = 0.0;
    double energyCiNj = 0.0;
};

/** Types a policy parameter can take. */
enum class ParamType
{
    Double,  ///< locale-independent decimal, canonicalized to 3 digits
    Mode,    ///< a core::ContextMode (canonical: LFCP, LFP, ..., F)
};

/**
 * One entry of a policy's parameter schema: name, type, documented
 * default (the value an unset spec parameter falls back to — never
 * an implicit zero), a one-line help string for `--list-policies`,
 * and an allowed [min, max] range for Double parameters, enforced at
 * canonicalization so an out-of-range value fails at the CLI, not
 * mid-sweep.
 */
struct ParamInfo
{
    std::string name;
    ParamType type = ParamType::Double;
    double defaultDouble = 0.0;
    core::ContextMode defaultMode = core::ContextMode::LF;
    std::string help;
    double minDouble = -1e300;
    double maxDouble = 1e300;
    /** Double parameters only: reject fractional values, so values
     *  the computation would truncate to the same integer cannot
     *  canonicalize to distinct cache keys. */
    bool integer = false;

    /** Named builders — schemas read better and cannot misorder the
     *  positional fields. */
    static ParamInfo dbl(std::string name, double def,
                         std::string help, double min = -1e300,
                         double max = 1e300, bool integer = false);
    static ParamInfo mode(std::string name, core::ContextMode def,
                          std::string help);
};

/** The paper's default slowdown threshold d (percent), shared by
 *  every policy schema that takes a `d` parameter. */
constexpr double DEFAULT_SLOWDOWN_PCT = 5.0;

class Policy;

/**
 * A parsed policy selection: registry name plus key=value
 * parameters.  Build programmatically with `of()`/`set()` or from
 * text with `parseSpec()`; print with `str()`.
 *
 * A spec becomes *canonical* once validated against its policy's
 * schema (see `PolicyRegistry::canonicalize()`): every schema
 * parameter present in schema order with a canonically formatted
 * value and the typed value cached.  parse -> print -> parse of a
 * canonical spec is the identity, and the canonical string is used
 * verbatim in cache keys.
 */
struct PolicySpec
{
    /** One key=value parameter.  `num`/`mode` are the typed values,
     *  valid once the spec is canonical. */
    struct Param
    {
        std::string name;
        std::string text;
        double num = 0.0;
        core::ContextMode mode = core::ContextMode::LF;
    };

    std::string policy;
    std::vector<Param> params;

    /** Start a spec for the named policy. */
    static PolicySpec of(std::string policy_name);

    /** Set a raw textual parameter (overwrites an existing key). */
    PolicySpec &set(const std::string &key, const std::string &value);
    /** Set a numeric parameter (canonical 3-digit fixed format). */
    PolicySpec &set(const std::string &key, double value);
    /** Set a context-mode parameter (canonical compact name). */
    PolicySpec &set(const std::string &key, core::ContextMode mode);

    /** The spec as text, `name:key=value,...` (params as stored). */
    std::string str() const;

    /** Typed accessors; fatal if the key is absent or untyped (call
     *  only on canonical specs). */
    double num(const std::string &key) const;
    core::ContextMode mode(const std::string &key) const;

    /** Pointer to a parameter by name, or nullptr. */
    const Param *find(const std::string &key) const;
};

/**
 * Parse `name[:key=value,...]` into @p out (syntax only — the
 * registry does semantic validation).  On failure returns false and
 * sets @p err to a human-readable message.
 */
bool parseSpec(const std::string &text, PolicySpec &out,
               std::string &err);

/**
 * What a policy run may use: the simulator/power configurations, the
 * harness windows, and a recursive evaluator for outcomes of *other*
 * specs on the same harness (memoized, thread-safe), which is how
 * cross-policy dependencies are expressed — e.g. global DVS matches
 * the off-line oracle's run time via `evaluate(bench, offline spec)`.
 */
struct PolicyContext
{
    sim::SimConfig sim;
    power::PowerConfig power;
    /** Production-run window (instructions). */
    std::uint64_t productionWindow = 150'000;
    /** Analysis-run window for profile-style pipelines. */
    std::uint64_t analysisWindow = 150'000;
    /** Profiling cap for phase-1 functional runs. */
    std::uint64_t profileMaxInstrs = 4'000'000;
    /** Off-line oracle reconfiguration interval (instructions). */
    std::uint64_t offlineInterval = 10'000;
    /** Training regime for the `learned` policy (fingerprinted on
     *  the harness side under prefix `ln`). */
    LearnedConfig learned;
    /** Memoized evaluation of another (bench, spec) cell. */
    std::function<Outcome(const std::string &bench,
                          const PolicySpec &spec)>
        evaluate;
    /**
     * Sampled mode only: the harness's shared per-benchmark
     * checkpoint set for production runs at `productionWindow` (see
     * sim/checkpoint.hh — one functional walk serves every cell of a
     * sweep on the same benchmark).  Unset in exact mode; may return
     * nullptr.  Policies reach it through `checkpointsFor()`.
     */
    std::function<std::shared_ptr<const sim::CheckpointSet>(
        const std::string &bench)>
        checkpoints;
};

/** Null-safe access to PolicyContext::checkpoints. */
inline std::shared_ptr<const sim::CheckpointSet>
checkpointsFor(const PolicyContext &ctx, const std::string &bench)
{
    return ctx.checkpoints ? ctx.checkpoints(bench) : nullptr;
}

/**
 * Abstract reconfiguration policy.  Implementations are stateless
 * const singletons owned by the registry; all run state lives on the
 * stack of `run()`, which may be called concurrently from any number
 * of sweep threads.
 */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Registry name, also the spec prefix (e.g. "profile"). */
    virtual const char *name() const = 0;

    /** One-line description for `--list-policies`. */
    virtual const char *description() const = 0;

    /** Parameter schema (defaults documented per entry). */
    virtual std::vector<ParamInfo> params() const { return {}; }

    /**
     * Whether `Outcome::metrics` should be computed against the MCD
     * baseline after the raw run (everything but the baseline
     * itself).
     */
    virtual bool relativeToBaseline() const { return true; }

    /**
     * Whether the policy participates in all-policy sweeps
     * (`exp::Tournament`'s default roster).  Policies whose `run()`
     * does not model the paper's single-core production run — e.g.
     * the many-core chip coordinator — opt out; they stay fully
     * selectable by explicit spec.
     */
    virtual bool sweepable() const { return true; }

    /**
     * The harness-configuration fragment of this policy's cache key:
     * every `PolicyContext` knob (beyond Sim/PowerConfig, which are
     * fingerprinted separately) that shapes the outcome.  The default
     * covers the production window only.
     */
    virtual std::string contextKey(const PolicyContext &ctx) const;

    /**
     * Run the policy on @p bench.  @p spec is canonical (every
     * schema parameter present and typed).  Returns the raw outcome;
     * `metrics` is filled in by the harness.
     */
    virtual Outcome run(const std::string &bench,
                        const PolicySpec &spec,
                        const PolicyContext &ctx) const = 0;

    /**
     * Per-tile capability: build a fresh interval controller that
     * drives one tile of a `chip::Chip` under this policy.  Policies
     * that can run per-tile return true and fill @p hook (may stay
     * null for policies that need no callbacks, e.g. the max-speed
     * baseline) and @p interval_instrs (its firing interval; 0 with
     * a null hook).  The default is false: the chip layer rejects
     * the spec with a message naming the tile-capable policies.
     * Each call must return an independent controller — tiles do not
     * share state.
     */
    virtual bool
    makeTileController(const PolicySpec &, const PolicyContext &,
                       std::unique_ptr<sim::IntervalHook> *,
                       std::uint64_t *) const
    {
        return false;
    }
};

/**
 * Global name -> Policy table.  Policies register themselves at
 * static-initialization time via `MCD_REGISTER_POLICY`; lookups are
 * thread-safe.
 */
class PolicyRegistry
{
  public:
    static PolicyRegistry &instance();

    /** Register @p p; fatal on a duplicate name. */
    void add(std::unique_ptr<const Policy> p);

    /** The policy named @p name, or nullptr. */
    const Policy *find(const std::string &name) const;

    /** Every registered policy, sorted by name. */
    std::vector<const Policy *> list() const;

    /**
     * Validate @p spec against its policy's schema and rewrite it in
     * canonical form: unknown policy/parameter names and malformed
     * values fail (returns false, sets @p err); unset parameters
     * take their schema defaults; parameters are ordered as in the
     * schema with canonical value formatting and typed values
     * cached.
     */
    bool canonicalize(PolicySpec &spec, std::string &err) const;

  private:
    PolicyRegistry() = default;
    struct Impl;
    Impl &impl() const;
};

/** Registers a policy instance at static-initialization time. */
struct PolicyRegistrar
{
    explicit PolicyRegistrar(std::unique_ptr<const Policy> p);
};

/**
 * Place at namespace scope in a policy's translation unit.  The
 * policy objects are linked into every executable unconditionally
 * (see src/control/CMakeLists.txt), so registration cannot be
 * dead-stripped.
 */
#define MCD_REGISTER_POLICY(cls)                                     \
    static const ::mcd::control::PolicyRegistrar                     \
        mcdPolicyRegistrar_##cls { std::make_unique<cls>() }

/**
 * Human-readable listing of every registered policy — name,
 * description, and each parameter with its type and default — one
 * definition shared by `--list-policies` and the explorer example.
 */
std::string describePolicies();

/** Locale-independent fixed-point decimal and strict double parse —
 *  the shared spec-text primitives live in util/text.hh (the
 *  workload spec grammar uses the same ones); re-exported here for
 *  the pre-existing control:: spelling. */
using util::fmtFixed;
using util::parseDouble;

/** Parse a context mode from its compact ("LFCP"), printable
 *  ("L+F+C+P") or lower-case form.  Returns false on no match. */
bool parseContextMode(const std::string &text, core::ContextMode &m);

/** Compact canonical context-mode name ("LFCP", ..., "F"). */
const char *compactModeName(core::ContextMode m);

} // namespace mcd::control

#endif // MCD_CONTROL_POLICY_HH
