#include "control/globaldvs.hh"

namespace mcd::control
{

GlobalDvsResult
globalDvsMatch(const workload::Program &program,
               const workload::InputSet &input,
               const sim::SimConfig &scfg_in,
               const power::PowerConfig &pcfg, std::uint64_t window,
               Tick target_time_ps, int iters,
               std::shared_ptr<const sim::CheckpointSet> checkpoints)
{
    // Global DVS runs on the same MCD substrate with all domains
    // locked to one frequency: the comparison against per-domain
    // scaling then isolates control granularity.  (The paper used a
    // single-clock chip; with its ~1.3% MCD penalty the two are
    // equivalent, but our substrate's larger synchronization penalty
    // would otherwise hand "global" an unearned speed dividend —
    // see docs/ARCHITECTURE.md, "Synchronization window".)
    sim::SimConfig scfg = scfg_in;

    auto run_at = [&](Mhz f) {
        sim::Processor proc(scfg, pcfg, program, input);
        proc.setInitialFreqs({f, f, f, f});
        proc.setCheckpoints(checkpoints);
        return proc.run(window);
    };

    Mhz lo = scfg.minMhz;
    Mhz hi = scfg.maxMhz;
    GlobalDvsResult best;
    best.freq = hi;
    best.run = run_at(hi);
    if (best.run.timePs >= target_time_ps)
        return best;  // even full speed is no faster than the target

    for (int i = 0; i < iters; ++i) {
        Mhz mid = 0.5 * (lo + hi);
        sim::RunResult r = run_at(mid);
        if (r.timePs <= target_time_ps) {
            // Fast enough: remember and try lower.
            best.freq = mid;
            best.run = r;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return best;
}

} // namespace mcd::control
