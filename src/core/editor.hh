/**
 * @file
 * Phase 4: application editing (Section 3.4).
 *
 * Computes the instrumentation plan for a given context mode: which
 * subroutines, loops and call sites receive tracking instrumentation,
 * which points are reconfiguration points, the node-label and
 * frequency lookup tables (and their sizes), and — for the L+F and F
 * modes — the statically-known per-entity frequency settings.
 */

#ifndef MCD_CORE_EDITOR_HH
#define MCD_CORE_EDITOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/calltree.hh"
#include "sim/trace.hh"

namespace mcd::core
{

/**
 * The edited binary, abstracted: instrumentation point sets plus
 * lookup tables.
 */
struct InstrumentationPlan
{
    ContextMode mode = ContextMode::LF;

    /** Per tree node: chosen frequencies (long-running nodes only). */
    std::map<std::uint32_t, sim::FreqSet> nodeFreqs;

    // --- static instrumentation point sets (path modes) ---
    /** Functions with instrumented prologue/epilogue. */
    std::set<std::uint16_t> instrumentedFuncs;
    /** Loops with instrumented header/footer (L modes). */
    std::set<std::uint16_t> instrumentedLoops;
    /** Instrumented call sites (C modes). */
    std::set<std::uint16_t> instrumentedSites;

    // --- static reconfiguration settings for L+F and F modes ---
    std::map<std::uint16_t, sim::FreqSet> staticFuncFreqs;
    std::map<std::uint16_t, sim::FreqSet> staticLoopFreqs;

    // --- summary numbers (Table 4, Figure 12, Section 3.4) ---
    int staticReconfigPoints = 0;  ///< entities that reconfigure
    int staticInstrPoints = 0;     ///< all instrumented entities
    std::size_t nextNodeTableBytes = 0;  ///< (N+1)x(S+1) label table
    std::size_t freqTableBytes = 0;      ///< (N+1)-entry freq table

    /** True if entering tree node @p id writes the reconfig register. */
    bool nodeReconfigures(std::uint32_t id) const
    {
        return nodeFreqs.count(id) != 0;
    }
};

/**
 * Build the instrumentation plan from an analyzed tree and the
 * per-node frequency choices.
 *
 * Rules (paper Section 3.4): subroutines and loops corresponding to
 * nodes that are long-running or have long-running descendants are
 * instrumented; long-running nodes additionally reconfigure.  In the
 * C modes, call sites that can lead to long-running nodes are
 * instrumented.  In the L+F and F modes there is no path tracking:
 * every instrumentation point is a reconfiguration point whose
 * frequency values are statically known (instance-weighted average
 * over the entity's long-running nodes).
 */
InstrumentationPlan
buildPlan(const CallTree &tree,
          const std::map<std::uint32_t, sim::FreqSet> &node_freqs,
          ContextMode runtime_mode);

} // namespace mcd::core

#endif // MCD_CORE_EDITOR_HH
