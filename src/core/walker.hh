/**
 * @file
 * Read-only call-tree walker: follows the marker stream over an
 * already-built tree without creating nodes.  Used to attribute
 * simulation trace records to long-running nodes (phase 2) and as
 * the label-tracking core of the production-run instrumentation
 * emulation (phase 4).
 *
 * Paths that were not seen during training map to node 0, the
 * paper's "label 0" (Section 3.4).
 */

#ifndef MCD_CORE_WALKER_HH
#define MCD_CORE_WALKER_HH

#include <cstdint>
#include <vector>

#include "core/calltree.hh"
#include "sim/trace.hh"

namespace mcd::core
{

/**
 * Follows markers over a CallTree.
 */
class TreeWalker
{
  public:
    /** @param tree analyzed tree (must outlive the walker). */
    explicit TreeWalker(const CallTree &tree);

    /** Follow one marker. */
    void onMarker(const workload::Marker &m);

    /** Current node id; 0 = unknown path or root. */
    std::uint32_t current() const { return stack.back().node; }

    /**
     * Innermost long-running node covering the current position
     * (0 = none).  Unknown subpaths inherit the enclosing covering
     * node (frequencies simply stay as last configured).
     */
    std::uint32_t covering() const { return stack.back().covering; }

    /** Depth of the walk stack (root = 1). */
    std::size_t depth() const { return stack.size(); }

  private:
    struct Entry
    {
        std::uint32_t node = 0;
        std::uint32_t covering = 0;
    };

    void push(std::uint32_t node);

    const CallTree &tree;
    std::vector<Entry> stack;
    std::vector<std::uint32_t> funcDepth;
};

/**
 * MarkerHandler used during the phase-2 analysis run: follows the
 * tree with zero overhead and exposes the covering long-running node
 * so the simulator stamps it into the timing trace.
 */
class NodeTracker : public sim::MarkerHandler
{
  public:
    explicit NodeTracker(const CallTree &tree) : walker(tree) {}

    sim::MarkerAction
    onMarker(const workload::Marker &m) override
    {
        walker.onMarker(m);
        return {};
    }

    std::uint32_t currentNode() const override
    {
        return walker.covering();
    }

  private:
    TreeWalker walker;
};

} // namespace mcd::core

#endif // MCD_CORE_WALKER_HH
