#include "core/runtime.hh"

namespace mcd::core
{

using workload::Marker;
using workload::MarkerKind;

ProfileRuntime::ProfileRuntime(const CallTree &tree,
                               const InstrumentationPlan &p,
                               const RuntimeCosts &c)
    : plan(p), costs(c), path(modeTracksPath(p.mode)), walker(tree)
{
    shadow = {1000.0, 1000.0, 1000.0, 1000.0};
}

std::uint32_t
ProfileRuntime::currentNode() const
{
    return path ? walker.current() : 0;
}

sim::MarkerAction
ProfileRuntime::makeReconfig(const sim::FreqSet &freqs, int cycles)
{
    sim::MarkerAction a;
    a.reconfig = true;
    a.freqs = freqs;
    a.stallCycles = cycles;
    a.energyPj = cycles * costs.energyPjPerCycle;
    ++stats_.dynReconfigPoints;
    return a;
}

sim::MarkerAction
ProfileRuntime::onMarker(const Marker &m)
{
    return path ? onMarkerPath(m) : onMarkerStatic(m);
}

sim::MarkerAction
ProfileRuntime::onMarkerPath(const Marker &m)
{
    sim::MarkerAction a;
    switch (m.kind) {
      case MarkerKind::CallSite:
        if (plan.instrumentedSites.count(m.site)) {
            a.stallCycles = costs.siteTrackCycles;
            a.energyPj = a.stallCycles * costs.energyPjPerCycle;
            ++stats_.dynInstrPoints;
        }
        return a;

      case MarkerKind::FuncEnter: {
        walker.onMarker(m);
        if (!plan.instrumentedFuncs.count(m.func))
            return a;
        ++stats_.dynInstrPoints;
        std::uint32_t node = walker.current();
        if (node != 0 && plan.nodeReconfigures(node)) {
            const sim::FreqSet &f = plan.nodeFreqs.at(node);
            saved.push_back(shadow);
            shadow = f;
            return makeReconfig(
                f, costs.funcTrackCycles + costs.reconfigExtraCycles);
        }
        a.stallCycles = costs.funcTrackCycles;
        a.energyPj = a.stallCycles * costs.energyPjPerCycle;
        return a;
      }

      case MarkerKind::FuncExit: {
        std::uint32_t node = walker.current();
        walker.onMarker(m);
        if (!plan.instrumentedFuncs.count(m.func))
            return a;
        ++stats_.dynInstrPoints;
        if (node != 0 && plan.nodeReconfigures(node) &&
            !saved.empty()) {
            sim::FreqSet restore = saved.back();
            saved.pop_back();
            shadow = restore;
            return makeReconfig(
                restore,
                costs.funcTrackCycles + costs.reconfigExtraCycles);
        }
        a.stallCycles = costs.funcTrackCycles;
        a.energyPj = a.stallCycles * costs.energyPjPerCycle;
        return a;
      }

      case MarkerKind::LoopEnter: {
        walker.onMarker(m);
        if (!plan.instrumentedLoops.count(m.loop))
            return a;
        ++stats_.dynInstrPoints;
        std::uint32_t node = walker.current();
        if (node != 0 && plan.nodeReconfigures(node)) {
            const sim::FreqSet &f = plan.nodeFreqs.at(node);
            saved.push_back(shadow);
            shadow = f;
            return makeReconfig(
                f, costs.loopTrackCycles + costs.reconfigExtraCycles);
        }
        a.stallCycles = costs.loopTrackCycles;
        a.energyPj = a.stallCycles * costs.energyPjPerCycle;
        return a;
      }

      case MarkerKind::LoopExit: {
        std::uint32_t node = walker.current();
        walker.onMarker(m);
        if (!plan.instrumentedLoops.count(m.loop))
            return a;
        ++stats_.dynInstrPoints;
        if (node != 0 && plan.nodeReconfigures(node) &&
            !saved.empty()) {
            sim::FreqSet restore = saved.back();
            saved.pop_back();
            shadow = restore;
            return makeReconfig(
                restore,
                costs.loopTrackCycles + costs.reconfigExtraCycles);
        }
        a.stallCycles = costs.loopTrackCycles;
        a.energyPj = a.stallCycles * costs.energyPjPerCycle;
        return a;
      }
    }
    return a;
}

sim::MarkerAction
ProfileRuntime::onMarkerStatic(const Marker &m)
{
    sim::MarkerAction a;
    switch (m.kind) {
      case MarkerKind::FuncEnter: {
        auto it = plan.staticFuncFreqs.find(m.func);
        if (it == plan.staticFuncFreqs.end())
            return a;
        ++stats_.dynInstrPoints;
        saved.push_back(shadow);
        shadow = it->second;
        return makeReconfig(it->second, costs.staticReconfigCycles);
      }
      case MarkerKind::FuncExit: {
        auto it = plan.staticFuncFreqs.find(m.func);
        if (it == plan.staticFuncFreqs.end() || saved.empty())
            return a;
        ++stats_.dynInstrPoints;
        sim::FreqSet restore = saved.back();
        saved.pop_back();
        shadow = restore;
        return makeReconfig(restore, costs.staticReconfigCycles);
      }
      case MarkerKind::LoopEnter: {
        auto it = plan.staticLoopFreqs.find(m.loop);
        if (it == plan.staticLoopFreqs.end())
            return a;
        ++stats_.dynInstrPoints;
        saved.push_back(shadow);
        shadow = it->second;
        return makeReconfig(it->second, costs.staticReconfigCycles);
      }
      case MarkerKind::LoopExit: {
        auto it = plan.staticLoopFreqs.find(m.loop);
        if (it == plan.staticLoopFreqs.end() || saved.empty())
            return a;
        ++stats_.dynInstrPoints;
        sim::FreqSet restore = saved.back();
        saved.pop_back();
        shadow = restore;
        return makeReconfig(restore, costs.staticReconfigCycles);
      }
      case MarkerKind::CallSite:
        return a;
    }
    return a;
}

} // namespace mcd::core
