/**
 * @file
 * Phase 3: slowdown thresholding (Section 3.3).
 *
 * Individual events cannot be scaled — whole domains must be.  Given
 * the shaker's per-domain histograms, pick for each domain the
 * minimum frequency such that the extra time needed by events scaled
 * to higher frequencies stays within a slowdown budget of d% of the
 * node's run time.
 */

#ifndef MCD_CORE_THRESHOLD_HH
#define MCD_CORE_THRESHOLD_HH

#include "core/shaker.hh"
#include "sim/trace.hh"

namespace mcd::core
{

/** Slowdown-thresholding parameters. */
struct ThresholdConfig
{
    /** Tolerated slowdown d, percent. */
    double slowdownPct = 5.0;
    /** Frequency discretization (must match the shaker's). */
    FreqSteps steps;
    /**
     * Fraction of the d% budget granted to each domain.  The paper's
     * delay calculation is "by necessity approximate": slowdowns from
     * different domains compose, so granting each domain the full
     * budget overshoots.  0.4 keeps measured degradation roughly in
     * keeping with d across the suite.
     */
    double perDomainShare = 0.7;
    /**
     * Extra conservatism for the front end: fetch-group truncation
     * and branch-resolution serialization make front-end slowdown
     * markedly non-linear, which the event DAG underestimates.
     */
    double frontEndShare = 0.3;
};

/**
 * Choose per-domain frequencies for one node.
 *
 * For each domain the minimum frequency f is selected such that
 * sum over bins b with freq(b) > f of
 *     cycles(b) * (1/f - 1/freq(b))
 * does not exceed d% of the node's analyzed wall time.  Domains with
 * no recorded work idle at the minimum frequency.
 *
 * @param node  shaker output for the node
 * @param cfg   threshold parameters
 */
sim::FreqSet chooseFrequencies(const NodeHistograms &node,
                               const ThresholdConfig &cfg);

} // namespace mcd::core

#endif // MCD_CORE_THRESHOLD_HH
