/**
 * @file
 * Phase 2: the "shaker" algorithm (Section 3.2).
 *
 * From the timing trace of a full-speed simulation we build, per
 * long-running node, a dependence DAG of primitive events (fetch,
 * dispatch, execute, memory access, commit — temporally contiguous
 * work in one hardware unit on behalf of one instruction) connected
 * by functional and data dependences.  The shaker walks the DAG
 * alternately backward and forward with a decaying power threshold,
 * stretching high-power off-critical-path events into available
 * slack — as if each event could run at its own, lower frequency —
 * down to at most 1/4 of nominal frequency.  The result is a
 * per-domain histogram of cycles versus frequency.
 */

#ifndef MCD_CORE_SHAKER_HH
#define MCD_CORE_SHAKER_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/trace.hh"
#include "util/histogram.hh"
#include "util/types.hh"

namespace mcd::core
{

/** Shaker parameters. */
struct ShakerConfig
{
    /** Maximum alternating passes over the DAG. */
    int maxPasses = 20;
    /** Multiplicative power-threshold decay per pass. */
    double thresholdDecay = 0.8;
    /** Maximum stretch factor (paper: down to 1/4 frequency). */
    double maxStretch = 4.0;
    /** Frequency the analysis run executed at (all domains). */
    Mhz nominalMhz = 1000.0;
    /** Frequency discretization for the output histograms. */
    FreqSteps steps;
    /**
     * L1/L2 hit latencies (memory-domain cycles), used to split load
     * miss events into the scalable cache portion and the fixed
     * external-memory portion (the external domain never scales).
     */
    int l1LatencyCycles = 2;
    int l2LatencyCycles = 12;
    /**
     * Structural resource capacities.  The DAG carries occupancy
     * edges (e.g. instruction i cannot dispatch before instruction
     * i - robSize commits) so the shaker does not see phantom slack
     * on overlapped long-latency operations.
     */
    int robSize = 80;
    int lsqSize = 64;
    int intIqSize = 20;
    int fpIqSize = 15;
    /** Bandwidth (width-aware) chain widths. */
    int fetchWidth = 4;
    int retireWidth = 11;
    int intIssueWidth = 4;
    int fpIssueWidth = 2;
    int memIssueWidth = 2;
    /** Front-end refill cycles after a branch mispredict. */
    int mispredictPenalty = 7;
    /**
     * Initial per-domain event power factors (relative domain power,
     * Section 3.2).
     */
    std::array<double, NUM_SCALED_DOMAINS> domainPowerWeight =
        {0.30, 0.25, 0.15, 0.30};
};

/** Accumulated per-node analysis output. */
struct NodeHistograms
{
    std::array<FreqHistogram, NUM_SCALED_DOMAINS> hist;
    Tick spanPs = 0;           ///< wall time of analyzed segments
    std::uint64_t instrs = 0;  ///< instructions analyzed
    int segments = 0;

    NodeHistograms()
        : hist{FreqHistogram(), FreqHistogram(), FreqHistogram(),
               FreqHistogram()}
    {
    }
};

/**
 * Builds the event DAG for one contiguous trace segment and runs the
 * shaker over it, accumulating histograms.
 */
class SegmentAnalyzer
{
  public:
    explicit SegmentAnalyzer(const ShakerConfig &cfg = ShakerConfig());

    /**
     * Analyze one segment of committed-instruction timing records
     * (commit order) and add the result into @p out.
     */
    void analyze(const std::vector<sim::InstrTiming> &segment,
                 NodeHistograms &out) const;

    const ShakerConfig &config() const { return cfg; }

  private:
    ShakerConfig cfg;
};

/**
 * TraceSink that slices the committed-instruction stream into
 * per-node segments (contiguous runs of the same covering node id)
 * and runs the shaker on each, with caps to bound analysis cost.
 */
class AnalysisCollector : public sim::TraceSink
{
  public:
    struct Limits
    {
        std::uint64_t maxSegmentInstrs = 20'000;
        std::uint64_t maxInstrsPerNode = 60'000;
        int maxSegmentsPerNode = 24;
    };

    explicit AnalysisCollector(const ShakerConfig &cfg)
        : AnalysisCollector(cfg, Limits{})
    {
    }
    AnalysisCollector(const ShakerConfig &cfg, const Limits &limits);

    void onInstr(const sim::InstrTiming &t) override;

    /** Flush the trailing segment and return per-node histograms. */
    std::map<std::uint32_t, NodeHistograms> finish();

  private:
    void flush();

    SegmentAnalyzer analyzer;
    Limits limits;
    std::uint32_t curNode = 0;
    std::vector<sim::InstrTiming> segment;
    std::map<std::uint32_t, NodeHistograms> results;
};

} // namespace mcd::core

#endif // MCD_CORE_SHAKER_HH
