#include "core/profiler.hh"

#include "workload/stream.hh"

namespace mcd::core
{

CallTree
profileProgram(const workload::Program &program,
               const workload::InputSet &input, ContextMode mode,
               const ProfileConfig &cfg)
{
    CallTree tree(mode);
    workload::Stream stream(program, input);
    workload::StreamItem item;
    std::uint64_t instrs = 0;
    std::uint64_t pending = 0;
    while (stream.next(item)) {
        if (item.kind == workload::StreamItem::Kind::Instr) {
            ++pending;
            ++instrs;
            if (cfg.maxInstrs && instrs >= cfg.maxInstrs)
                break;
        } else {
            if (pending) {
                tree.onInstr(pending);
                pending = 0;
            }
            tree.onMarker(item.marker);
        }
    }
    if (pending)
        tree.onInstr(pending);
    tree.identifyLongRunning(cfg.longRunningThreshold);
    return tree;
}

} // namespace mcd::core
