#include "core/editor.hh"

namespace mcd::core
{

namespace
{

/** Does the subtree rooted at @p id contain a long-running node? */
bool
hasLongRunning(const CallTree &tree, std::uint32_t id)
{
    const CallTreeNode &n = tree.node(id);
    if (n.longRunning)
        return true;
    for (std::uint32_t c : n.children)
        if (hasLongRunning(tree, c))
            return true;
    return false;
}

} // namespace

InstrumentationPlan
buildPlan(const CallTree &tree,
          const std::map<std::uint32_t, sim::FreqSet> &node_freqs,
          ContextMode runtime_mode)
{
    InstrumentationPlan plan;
    plan.mode = runtime_mode;
    plan.nodeFreqs = node_freqs;

    bool loops = modeHasLoops(runtime_mode);
    bool sites = modeHasSites(runtime_mode);
    bool path = modeTracksPath(runtime_mode);

    // Weighted accumulation for the static (L+F / F) settings.
    struct Acc
    {
        std::array<double, NUM_SCALED_DOMAINS> sum{};
        double weight = 0.0;
    };
    std::map<std::uint16_t, Acc> func_acc;
    std::map<std::uint16_t, Acc> loop_acc;

    for (std::uint32_t id : tree.nodeIds()) {
        const CallTreeNode &n = tree.node(id);
        bool relevant = n.longRunning || hasLongRunning(tree, id);
        if (!relevant)
            continue;

        if (n.kind == NodeKind::Func) {
            plan.instrumentedFuncs.insert(n.func);
            if (sites)
                plan.instrumentedSites.insert(n.site);
        } else if (loops) {
            plan.instrumentedLoops.insert(n.loop);
        }

        if (n.longRunning) {
            auto it = node_freqs.find(id);
            if (it != node_freqs.end()) {
                double w = static_cast<double>(n.inclInstrs);
                Acc &acc = n.kind == NodeKind::Func
                               ? func_acc[n.func]
                               : loop_acc[n.loop];
                for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
                    acc.sum[static_cast<size_t>(d)] +=
                        it->second[static_cast<size_t>(d)] * w;
                acc.weight += w;
            }
        }
    }

    // For L+F / F: only entities with long-running nodes carry any
    // instrumentation, and they reconfigure with static values.
    auto finish_acc = [](const Acc &a) {
        sim::FreqSet f{};
        for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
            f[static_cast<size_t>(d)] =
                a.weight > 0.0
                    ? a.sum[static_cast<size_t>(d)] / a.weight
                    : 1000.0;
        return f;
    };
    for (const auto &kv : func_acc)
        plan.staticFuncFreqs[kv.first] = finish_acc(kv.second);
    if (loops) {
        for (const auto &kv : loop_acc)
            plan.staticLoopFreqs[kv.first] = finish_acc(kv.second);
    }

    if (!path) {
        // No tracking instrumentation at all in L+F / F.
        plan.instrumentedFuncs.clear();
        plan.instrumentedLoops.clear();
        plan.instrumentedSites.clear();
        plan.staticReconfigPoints =
            static_cast<int>(plan.staticFuncFreqs.size() +
                             plan.staticLoopFreqs.size());
        plan.staticInstrPoints = plan.staticReconfigPoints;
        plan.nextNodeTableBytes = 0;
        plan.freqTableBytes =
            static_cast<std::size_t>(plan.staticReconfigPoints) * 8;
        return plan;
    }

    // Path modes: reconfiguration points are the entities of
    // long-running nodes; instrumentation points cover every entity
    // on a path to a long-running node.
    std::set<std::uint16_t> reconfig_funcs, reconfig_loops;
    for (std::uint32_t id : tree.nodeIds()) {
        const CallTreeNode &n = tree.node(id);
        if (!n.longRunning)
            continue;
        if (n.kind == NodeKind::Func)
            reconfig_funcs.insert(n.func);
        else if (loops)
            reconfig_loops.insert(n.loop);
    }
    plan.staticReconfigPoints =
        static_cast<int>(reconfig_funcs.size() + reconfig_loops.size());
    plan.staticInstrPoints =
        static_cast<int>(plan.instrumentedFuncs.size() +
                         plan.instrumentedLoops.size() +
                         plan.instrumentedSites.size());

    // Lookup tables (Section 3.4): an (N+1) x (S+1) next-node table
    // of 2-byte labels, and an (N+1)-entry frequency table with four
    // 16-bit frequency codes per entry.
    std::size_t n_nodes = tree.size();
    std::size_t n_subs = plan.instrumentedFuncs.size();
    plan.nextNodeTableBytes = (n_nodes + 1) * (n_subs + 1) * 2;
    plan.freqTableBytes = (n_nodes + 1) * 8;
    return plan;
}

} // namespace mcd::core
