/**
 * @file
 * End-to-end profile-driven reconfiguration pipeline: the paper's
 * four phases wired together behind one API.
 *
 *   1. profile the training run, build the call tree, select
 *      long-running nodes;
 *   2. simulate the training run at full speed, collect the
 *      primitive-event trace per node, run the shaker;
 *   3. slowdown-threshold the histograms into per-node frequencies;
 *   4. edit the application (instrumentation plan);
 *   then run the edited binary on a production input.
 */

#ifndef MCD_CORE_PIPELINE_HH
#define MCD_CORE_PIPELINE_HH

#include <map>
#include <memory>

#include "core/editor.hh"
#include "core/profiler.hh"
#include "core/runtime.hh"
#include "core/shaker.hh"
#include "core/threshold.hh"
#include "sim/processor.hh"

namespace mcd::core
{

/** Configuration of the whole pipeline. */
struct PipelineConfig
{
    ContextMode mode = ContextMode::LF;
    /** Slowdown threshold d (percent), Section 3.3. */
    double slowdownPct = 5.0;
    ProfileConfig profile;
    ShakerConfig shaker;
    AnalysisCollector::Limits limits;
    /** Timing-simulated instructions for the phase-2 analysis run. */
    std::uint64_t analysisWindow = 200'000;
    RuntimeCosts costs;
};

/**
 * Driver object owning the trained state (tree, frequencies, plan).
 */
class ProfilePipeline
{
  public:
    /**
     * @param program workload (must outlive the pipeline)
     * @param cfg     pipeline configuration
     */
    ProfilePipeline(const workload::Program &program,
                    const PipelineConfig &cfg);

    /**
     * Run phases 1-4 on the training input.
     *
     * @param train training input set
     * @param scfg  simulator configuration for the analysis run
     * @param pcfg  power model configuration
     */
    void train(const workload::InputSet &train,
               const sim::SimConfig &scfg,
               const power::PowerConfig &pcfg);

    /**
     * Run the edited binary on a production input.
     *
     * @param input  production input set
     * @param scfg   simulator configuration
     * @param pcfg   power model configuration
     * @param window instructions to simulate
     * @param rt_out optional: receives dynamic instrumentation counts
     * @param hook   optional interval controller run alongside the
     *               instrumented binary (e.g. a reactive guard that
     *               can override profile-chosen frequencies); fired
     *               every @p hook_interval committed instructions
     * @param checkpoints optional prebuilt sampled-mode checkpoint
     *               set for this run (sim/checkpoint.hh); ignored in
     *               exact mode
     */
    sim::RunResult
    runProduction(const workload::InputSet &input,
                  const sim::SimConfig &scfg,
                  const power::PowerConfig &pcfg, std::uint64_t window,
                  RuntimeStats *rt_out = nullptr,
                  sim::IntervalHook *hook = nullptr,
                  std::uint64_t hook_interval = 0,
                  std::shared_ptr<const sim::CheckpointSet>
                      checkpoints = nullptr);

    /** The training call tree (valid after train()). */
    const CallTree &tree() const { return *tree_; }
    /** The instrumentation plan (valid after train()). */
    const InstrumentationPlan &plan() const { return plan_; }
    /** Chosen frequencies per long-running node. */
    const std::map<std::uint32_t, sim::FreqSet> &
    nodeFrequencies() const
    {
        return nodeFreqs;
    }
    /** Shaker outputs per node (for inspection/tests). */
    const std::map<std::uint32_t, NodeHistograms> &
    nodeHistograms() const
    {
        return nodeHists;
    }

  private:
    const workload::Program &program;
    PipelineConfig cfg;
    std::unique_ptr<CallTree> tree_;
    std::map<std::uint32_t, NodeHistograms> nodeHists;
    std::map<std::uint32_t, sim::FreqSet> nodeFreqs;
    InstrumentationPlan plan_;
    bool trained = false;
};

} // namespace mcd::core

#endif // MCD_CORE_PIPELINE_HH
