/**
 * @file
 * Call trees with configurable context definitions (Section 3.1).
 *
 * A call-tree node is a subroutine or loop *in context*: the path of
 * callers (and optionally call sites) back to main.  The tree is a
 * compressed dynamic call trace: multiple instances of the same path
 * are superimposed, and recursion is folded into the initial call.
 * This extends the calling context tree of Ammons et al. with loop
 * nodes and call-site differentiation, exactly as the paper does.
 */

#ifndef MCD_CORE_CALLTREE_HH
#define MCD_CORE_CALLTREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/instr.hh"

namespace mcd::workload
{
struct Program;
} // namespace mcd::workload

namespace mcd::core
{

/**
 * The six context definitions evaluated in the paper: L = loop nodes,
 * F = function nodes (always present), C = call-site differentiation,
 * P = call-path tracking at run time.  LF and F use the LFP/FP trees
 * for analysis but ignore calling history during production runs
 * (Section 3.1).
 */
enum class ContextMode
{
    LFCP,
    LFP,
    FCP,
    FP,
    LF,
    F,
};

/** Printable name ("L+F+C+P", ...). */
const char *contextModeName(ContextMode m);

/** Whether the tree for this mode contains loop nodes. */
bool modeHasLoops(ContextMode m);
/** Whether the tree distinguishes call sites. */
bool modeHasSites(ContextMode m);
/** Whether run-time instrumentation tracks the call path. */
bool modeTracksPath(ContextMode m);

/** Kind of a call-tree node. */
enum class NodeKind : std::uint8_t { Func, Loop };

/**
 * One call-tree node.  Id 0 is reserved: it denotes "unknown path"
 * (the paper's label 0) and is used for the synthetic root's
 * children lookups.
 */
struct CallTreeNode
{
    std::uint32_t id = 0;
    NodeKind kind = NodeKind::Func;
    std::uint16_t func = 0;   ///< function id (owning function for loops)
    std::uint16_t loop = 0;   ///< loop id (kind == Loop)
    std::uint16_t site = 0;   ///< distinguishing call site (C modes)
    std::uint32_t parent = 0; ///< 0 = child of the synthetic root
    std::vector<std::uint32_t> children;

    std::uint64_t instances = 0;   ///< dynamic instances
    std::uint64_t selfInstrs = 0;  ///< instrs at this node exclusively
    std::uint64_t inclInstrs = 0;  ///< incl. children (computed)
    /** Instrs covered by maximal long-running nodes in the subtree. */
    std::uint64_t longCovered = 0;
    double avgExclusive = 0.0;  ///< avg instance, excl. long children
    bool longRunning = false;
};

/**
 * Call tree: built online from the marker stream during profiling,
 * then analyzed for long-running nodes.
 */
class CallTree
{
  public:
    /**
     * @param mode context definition (determines loop/site keying)
     */
    explicit CallTree(ContextMode mode = ContextMode::LFCP);

    // --- construction (profiling run) ---

    /** Process a structural marker in program order. */
    void onMarker(const workload::Marker &m);

    /** Attribute @p n instructions to the current node. */
    void onInstr(std::uint64_t n = 1);

    /** Current cursor node id (0 when at the synthetic root). */
    std::uint32_t cursor() const;

    // --- analysis ---

    /**
     * Identify long-running nodes: working leaf-up, a node is
     * long-running when its average dynamic instance — excluding
     * instructions in long-running children — reaches
     * @p threshold_instrs (the paper uses 10,000).
     */
    void identifyLongRunning(std::uint64_t threshold_instrs = 10000);

    // --- inspection ---

    ContextMode mode() const { return mode_; }
    /** Number of real nodes (excluding the synthetic root). */
    std::size_t size() const { return nodes_.size() - 1; }
    const CallTreeNode &node(std::uint32_t id) const;
    /** All node ids in creation order (1-based). */
    std::vector<std::uint32_t> nodeIds() const;
    /** Ids of long-running nodes. */
    std::vector<std::uint32_t> longRunningIds() const;

    /**
     * Canonical context signature of a node: the path of
     * (kind, entity, site) steps from the root, e.g.
     * "main>L2>drand48@1".  Two trees built from different runs can
     * be compared by signature (used for Table 3).
     */
    std::string signature(std::uint32_t id,
                          const workload::Program &prog) const;

    /**
     * Find the child of @p parent matching a step; 0 when absent.
     * Used by the production-run tree walker.
     */
    std::uint32_t findChild(std::uint32_t parent, NodeKind kind,
                            std::uint16_t entity,
                            std::uint16_t site) const;

  private:
    std::uint32_t findOrCreateChild(std::uint32_t parent, NodeKind kind,
                                    std::uint16_t entity,
                                    std::uint16_t site);

    ContextMode mode_;
    std::vector<CallTreeNode> nodes_;  ///< [0] = synthetic root
    /**
     * Cursor stack of node ids.  A repeated (recursive) function
     * entry pushes the existing ancestor id (folding), never a new
     * node.
     */
    std::vector<std::uint32_t> stack;
    /** Per-function on-stack counts for recursion folding. */
    std::vector<std::uint32_t> funcDepth;
};

} // namespace mcd::core

#endif // MCD_CORE_CALLTREE_HH
