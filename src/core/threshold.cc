#include "core/threshold.hh"

namespace mcd::core
{

sim::FreqSet
chooseFrequencies(const NodeHistograms &node, const ThresholdConfig &cfg)
{
    sim::FreqSet out{};
    // Budget: d% of the node's analyzed wall time, expressed in
    // microseconds (cycles / MHz).
    double base_budget_us = cfg.slowdownPct / 100.0 *
                            static_cast<double>(node.spanPs) * 1e-6;

    for (std::size_t d = 0; d < node.hist.size(); ++d) {
        double share = d == domainIndex(Domain::FrontEnd)
                           ? cfg.frontEndShare
                           : cfg.perDomainShare;
        double budget_us = base_budget_us * share;
        const FreqHistogram &h = node.hist[d];
        const FreqSteps &steps = h.steps();
        if (h.totalCycles() <= 0.0) {
            out[d] = cfg.steps.minMhz();
            continue;
        }
        Mhz chosen = steps.maxMhz();
        for (int i = 0; i < steps.numSteps(); ++i) {
            Mhz f = steps.freqAt(i);
            double extra_us = 0.0;
            for (int b = i + 1; b < steps.numSteps(); ++b) {
                double cycles = h.binCycles(b);
                if (cycles <= 0.0)
                    continue;
                extra_us += cycles * (1.0 / f - 1.0 / steps.freqAt(b));
            }
            if (extra_us <= budget_us) {
                chosen = f;
                break;
            }
        }
        out[d] = cfg.steps.quantize(chosen);
    }
    return out;
}

} // namespace mcd::core
