#include "core/pipeline.hh"

#include "util/logging.hh"

namespace mcd::core
{

ProfilePipeline::ProfilePipeline(const workload::Program &p,
                                 const PipelineConfig &c)
    : program(p), cfg(c)
{
}

void
ProfilePipeline::train(const workload::InputSet &train_input,
                       const sim::SimConfig &scfg,
                       const power::PowerConfig &pcfg)
{
    // Phase 1: profiling run (functional), long-running selection.
    tree_ = std::make_unique<CallTree>(
        profileProgram(program, train_input, cfg.mode, cfg.profile));

    // Phase 2: full-speed analysis simulation with event tracing.
    ShakerConfig shaker_cfg = cfg.shaker;
    shaker_cfg.domainPowerWeight = pcfg.domainWeight;
    shaker_cfg.nominalMhz = scfg.maxMhz;
    shaker_cfg.l1LatencyCycles = scfg.l1Latency;
    shaker_cfg.l2LatencyCycles = scfg.l2Latency;
    shaker_cfg.robSize = scfg.robSize;
    shaker_cfg.lsqSize = scfg.lsqSize;
    shaker_cfg.intIqSize = scfg.intIqSize;
    shaker_cfg.fpIqSize = scfg.fpIqSize;
    shaker_cfg.fetchWidth = scfg.fetchWidth;
    shaker_cfg.retireWidth = scfg.retireWidth;
    shaker_cfg.intIssueWidth = scfg.intIssueWidth;
    shaker_cfg.fpIssueWidth = scfg.fpIssueWidth;
    shaker_cfg.memIssueWidth = scfg.memIssueWidth;
    shaker_cfg.mispredictPenalty = scfg.mispredictPenalty;
    NodeTracker tracker(*tree_);
    AnalysisCollector collector(shaker_cfg, cfg.limits);
    // The shaker needs the complete per-instruction event trace of
    // the analysis window; sampled probes would leave holes in it,
    // so the analysis run is always exact.
    sim::SimConfig acfg = scfg;
    acfg.sampling = sim::SamplingConfig{};
    sim::Processor analysis(acfg, pcfg, program, train_input);
    analysis.setMarkerHandler(&tracker);
    analysis.setTraceSink(&collector);
    analysis.run(cfg.analysisWindow);
    nodeHists = collector.finish();

    // Phase 3: slowdown thresholding.
    ThresholdConfig tcfg;
    tcfg.slowdownPct = cfg.slowdownPct;
    tcfg.steps = shaker_cfg.steps;
    nodeFreqs.clear();
    for (const auto &kv : nodeHists) {
        if (kv.first != 0 && tree_->node(kv.first).longRunning)
            nodeFreqs[kv.first] = chooseFrequencies(kv.second, tcfg);
    }

    // Phase 4: application editing.
    plan_ = buildPlan(*tree_, nodeFreqs, cfg.mode);
    trained = true;
}

sim::RunResult
ProfilePipeline::runProduction(
    const workload::InputSet &input, const sim::SimConfig &scfg,
    const power::PowerConfig &pcfg, std::uint64_t window,
    RuntimeStats *rt_out, sim::IntervalHook *hook,
    std::uint64_t hook_interval,
    std::shared_ptr<const sim::CheckpointSet> checkpoints)
{
    if (!trained)
        fatal("ProfilePipeline::runProduction() before train()");
    if (hook && hook_interval == 0)
        fatal("ProfilePipeline::runProduction(): an interval hook "
              "needs a positive hook_interval (0 would silently "
              "disable it)");
    ProfileRuntime runtime(*tree_, plan_, cfg.costs);
    sim::Processor proc(scfg, pcfg, program, input);
    proc.setMarkerHandler(&runtime);
    proc.setCheckpoints(std::move(checkpoints));
    if (hook)
        proc.setIntervalHook(hook, hook_interval);
    sim::RunResult r = proc.run(window);
    if (rt_out)
        *rt_out = runtime.stats();
    return r;
}

} // namespace mcd::core
