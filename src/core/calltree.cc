#include "core/calltree.hh"

#include <functional>

#include "util/logging.hh"
#include "workload/program.hh"

namespace mcd::core
{

using workload::Marker;
using workload::MarkerKind;

const char *
contextModeName(ContextMode m)
{
    switch (m) {
      case ContextMode::LFCP: return "L+F+C+P";
      case ContextMode::LFP: return "L+F+P";
      case ContextMode::FCP: return "F+C+P";
      case ContextMode::FP: return "F+P";
      case ContextMode::LF: return "L+F";
      case ContextMode::F: return "F";
    }
    return "?";
}

bool
modeHasLoops(ContextMode m)
{
    switch (m) {
      case ContextMode::LFCP:
      case ContextMode::LFP:
      case ContextMode::LF:
        return true;
      default:
        return false;
    }
}

bool
modeHasSites(ContextMode m)
{
    return m == ContextMode::LFCP || m == ContextMode::FCP;
}

bool
modeTracksPath(ContextMode m)
{
    return m != ContextMode::LF && m != ContextMode::F;
}

CallTree::CallTree(ContextMode m)
    : mode_(m)
{
    nodes_.emplace_back();  // synthetic root, id 0
    stack.push_back(0);
}

const CallTreeNode &
CallTree::node(std::uint32_t id) const
{
    if (id >= nodes_.size())
        panic("call-tree node %u out of range", id);
    return nodes_[id];
}

std::uint32_t
CallTree::cursor() const
{
    return stack.back();
}

std::uint32_t
CallTree::findChild(std::uint32_t parent, NodeKind kind,
                    std::uint16_t entity, std::uint16_t site) const
{
    const CallTreeNode &p = nodes_[parent];
    for (std::uint32_t c : p.children) {
        const CallTreeNode &n = nodes_[c];
        if (n.kind != kind)
            continue;
        if (kind == NodeKind::Func && n.func != entity)
            continue;
        if (kind == NodeKind::Loop && n.loop != entity)
            continue;
        if (modeHasSites(mode_) && kind == NodeKind::Func &&
            n.site != site)
            continue;
        return c;
    }
    return 0;
}

std::uint32_t
CallTree::findOrCreateChild(std::uint32_t parent, NodeKind kind,
                            std::uint16_t entity, std::uint16_t site)
{
    std::uint32_t found = findChild(parent, kind, entity, site);
    if (found)
        return found;
    CallTreeNode n;
    n.id = static_cast<std::uint32_t>(nodes_.size());
    n.kind = kind;
    n.parent = parent;
    if (kind == NodeKind::Func) {
        n.func = entity;
        n.site = modeHasSites(mode_) ? site : 0;
    } else {
        n.loop = entity;
        // A loop's owning function is its enclosing func node's func.
        n.func = nodes_[parent].func;
    }
    nodes_.push_back(n);
    nodes_[parent].children.push_back(n.id);
    return n.id;
}

void
CallTree::onMarker(const Marker &m)
{
    switch (m.kind) {
      case MarkerKind::CallSite:
        // Call-site context arrives on the FuncEnter marker itself;
        // nothing to do here for tree building.
        return;

      case MarkerKind::FuncEnter: {
        if (m.func >= funcDepth.size())
            funcDepth.resize(m.func + 1, 0);
        if (funcDepth[m.func] > 0) {
            // Recursive re-entry: fold into the existing ancestor
            // node for this function (paper Section 3.1).
            std::uint32_t ancestor = 0;
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                const CallTreeNode &n = nodes_[*it];
                if (*it != 0 && n.kind == NodeKind::Func &&
                    n.func == m.func) {
                    ancestor = *it;
                    break;
                }
            }
            ++funcDepth[m.func];
            stack.push_back(ancestor ? ancestor : stack.back());
            return;
        }
        std::uint32_t id = findOrCreateChild(
            stack.back(), NodeKind::Func, m.func, m.site);
        ++nodes_[id].instances;
        ++funcDepth[m.func];
        stack.push_back(id);
        return;
      }

      case MarkerKind::FuncExit:
        if (stack.size() <= 1)
            panic("call-tree stack underflow on FuncExit");
        if (m.func < funcDepth.size() && funcDepth[m.func] > 0)
            --funcDepth[m.func];
        stack.pop_back();
        return;

      case MarkerKind::LoopEnter: {
        if (!modeHasLoops(mode_)) {
            // No loop nodes: keep depth bookkeeping by re-pushing the
            // current node so Loop/Exit stay balanced.
            stack.push_back(stack.back());
            return;
        }
        std::uint32_t id = findOrCreateChild(
            stack.back(), NodeKind::Loop, m.loop, 0);
        ++nodes_[id].instances;
        stack.push_back(id);
        return;
      }

      case MarkerKind::LoopExit:
        if (stack.size() <= 1)
            panic("call-tree stack underflow on LoopExit");
        stack.pop_back();
        return;
    }
}

void
CallTree::onInstr(std::uint64_t n)
{
    nodes_[stack.back()].selfInstrs += n;
}

void
CallTree::identifyLongRunning(std::uint64_t threshold_instrs)
{
    // Iterative post-order DFS from the root.
    struct Item
    {
        std::uint32_t id;
        bool expanded;
    };
    std::vector<Item> work;
    work.push_back({0, false});
    while (!work.empty()) {
        Item it = work.back();
        work.pop_back();
        CallTreeNode &n = nodes_[it.id];
        if (!it.expanded) {
            work.push_back({it.id, true});
            for (std::uint32_t c : n.children)
                work.push_back({c, false});
            continue;
        }
        n.inclInstrs = n.selfInstrs;
        std::uint64_t covered = 0;
        for (std::uint32_t c : n.children) {
            n.inclInstrs += nodes_[c].inclInstrs;
            covered += nodes_[c].longCovered;
        }
        if (it.id == 0) {
            n.longRunning = false;
            n.longCovered = covered;
            continue;
        }
        std::uint64_t excl = n.inclInstrs - covered;
        n.avgExclusive =
            n.instances
                ? static_cast<double>(excl) /
                      static_cast<double>(n.instances)
                : 0.0;
        n.longRunning = n.avgExclusive >=
                        static_cast<double>(threshold_instrs);
        n.longCovered = n.longRunning ? n.inclInstrs : covered;
    }
}

std::vector<std::uint32_t>
CallTree::nodeIds() const
{
    std::vector<std::uint32_t> ids;
    ids.reserve(nodes_.size() - 1);
    for (std::uint32_t i = 1; i < nodes_.size(); ++i)
        ids.push_back(i);
    return ids;
}

std::vector<std::uint32_t>
CallTree::longRunningIds() const
{
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 1; i < nodes_.size(); ++i)
        if (nodes_[i].longRunning)
            ids.push_back(i);
    return ids;
}

std::string
CallTree::signature(std::uint32_t id,
                    const workload::Program &prog) const
{
    if (id == 0 || id >= nodes_.size())
        return "<root>";
    std::string sig;
    std::function<void(std::uint32_t)> build =
        [&](std::uint32_t cur) {
            const CallTreeNode &n = nodes_[cur];
            if (n.parent != 0)
                build(n.parent);
            if (!sig.empty())
                sig += '>';
            if (n.kind == NodeKind::Func) {
                sig += prog.function(n.func).name;
                if (modeHasSites(mode_))
                    sig += strprintf("@%u", n.site);
            } else {
                sig += strprintf("L%u", n.loop);
            }
        };
    build(id);
    return sig;
}

} // namespace mcd::core
