#include "core/shaker.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "workload/instr.hh"

namespace mcd::core
{

using sim::InstrTiming;
using workload::InstrClass;

namespace
{

/** One primitive event in the dependence DAG. */
struct Event
{
    Domain domain = Domain::FrontEnd;
    double start = 0.0;     ///< current position (ps)
    double nominalDur = 0;  ///< duration at nominal frequency (ps)
    double stretch = 1.0;   ///< current stretch factor (>= 1)
    double pf = 0.0;        ///< current power factor
    double pf0 = 0.0;       ///< initial power factor
    std::vector<std::uint32_t> succ;
    std::vector<std::uint32_t> pred;

    double dur() const { return nominalDur * stretch; }
    double end() const { return start + dur(); }
};

void
addEdge(std::vector<Event> &ev, std::uint32_t from, std::uint32_t to)
{
    ev[from].succ.push_back(to);
    ev[to].pred.push_back(from);
}

} // namespace

SegmentAnalyzer::SegmentAnalyzer(const ShakerConfig &c)
    : cfg(c)
{
}

void
SegmentAnalyzer::analyze(const std::vector<InstrTiming> &segment,
                         NodeHistograms &out) const
{
    if (segment.empty())
        return;

    const double cycle_ps = 1e6 / cfg.nominalMhz;

    // ---- build the event DAG ----
    std::vector<Event> ev;
    ev.reserve(segment.size() * 5);
    // Producer seq -> index of the event whose completion carries the
    // value (exec, or mem for loads).
    std::unordered_map<std::uint64_t, std::uint32_t> value_event;
    value_event.reserve(segment.size() * 2);

    // Resource tracking for structural edges: bandwidth chains are
    // width-aware (instruction i's fetch follows instruction
    // i - fetchWidth's fetch, etc.), occupancy edges bound in-flight
    // counts (ROB, issue queues).
    std::vector<std::uint32_t> fetch_events;
    std::vector<std::uint32_t> commit_events;
    std::vector<std::uint32_t> mem_events;
    fetch_events.reserve(segment.size());
    commit_events.reserve(segment.size());
    std::array<std::vector<std::uint32_t>, NUM_SCALED_DOMAINS>
        domain_exec;  // exec event per instr, per domain, in order
    std::array<std::vector<std::uint32_t>, NUM_SCALED_DOMAINS>
        domain_dispatch;

    auto weight = [&](Domain d) {
        return cfg.domainPowerWeight[static_cast<int>(d)];
    };

    // Redirect modeling: fetch after a mispredicted branch depends on
    // the branch's execution plus a front-end refill event whose
    // length scales with the front-end clock.
    std::uint32_t pending_redirect_from = UINT32_MAX;
    double pending_redirect_start = 0.0;

    for (const InstrTiming &t : segment) {
        // fetch (front end)
        std::uint32_t e_fetch = static_cast<std::uint32_t>(ev.size());
        {
            Event e;
            e.domain = Domain::FrontEnd;
            e.start = static_cast<double>(t.fetch);
            e.nominalDur = cycle_ps;
            e.pf0 = e.pf = weight(Domain::FrontEnd);
            ev.push_back(e);
        }
        // dispatch/rename (front end)
        std::uint32_t e_disp = static_cast<std::uint32_t>(ev.size());
        {
            Event e;
            e.domain = Domain::FrontEnd;
            e.start = static_cast<double>(t.dispatch);
            e.nominalDur = cycle_ps;
            e.pf0 = e.pf = weight(Domain::FrontEnd);
            ev.push_back(e);
        }
        // execute (owning domain)
        std::uint32_t e_exec = static_cast<std::uint32_t>(ev.size());
        {
            Event e;
            e.domain = t.domain;
            e.start = static_cast<double>(t.issue);
            double d = static_cast<double>(t.execDone) -
                       static_cast<double>(t.issue);
            e.nominalDur = std::max(d, cycle_ps * 0.5);
            e.pf0 = e.pf = weight(t.domain);
            ev.push_back(e);
        }
        // memory access (loads only); the fixed external-memory
        // latency of misses is carved out into an unscalable
        // External event so the shaker never treats DRAM time as
        // scalable memory-domain work.
        std::uint32_t e_mem = UINT32_MAX;
        std::uint32_t e_ext = UINT32_MAX;
        if (t.cls == InstrClass::Load && t.memDone > t.memStart) {
            double total = static_cast<double>(t.memDone) -
                           static_cast<double>(t.memStart);
            double scalable = total;
            if (t.l2Miss) {
                scalable = cycle_ps * (cfg.l1LatencyCycles +
                                       cfg.l2LatencyCycles);
                scalable = std::min(scalable, total);
            }
            e_mem = static_cast<std::uint32_t>(ev.size());
            {
                Event e;
                e.domain = Domain::Memory;
                e.start = static_cast<double>(t.memStart);
                e.nominalDur = std::max(scalable, cycle_ps * 0.5);
                e.pf0 = e.pf = weight(Domain::Memory);
                ev.push_back(e);
            }
            if (t.l2Miss && total > scalable) {
                e_ext = static_cast<std::uint32_t>(ev.size());
                Event e;
                e.domain = Domain::External;
                e.start = static_cast<double>(t.memStart) + scalable;
                e.nominalDur = total - scalable;
                e.pf0 = e.pf = 0.0;  // never stretched
                ev.push_back(e);
            }
        }
        // commit (front end)
        std::uint32_t e_commit = static_cast<std::uint32_t>(ev.size());
        {
            Event e;
            e.domain = Domain::FrontEnd;
            e.start = static_cast<double>(t.commit);
            e.nominalDur = cycle_ps;
            e.pf0 = e.pf = weight(Domain::FrontEnd);
            ev.push_back(e);
        }

        // intra-instruction chain
        addEdge(ev, e_fetch, e_disp);
        addEdge(ev, e_disp, e_exec);
        if (e_mem != UINT32_MAX) {
            addEdge(ev, e_exec, e_mem);
            if (e_ext != UINT32_MAX) {
                addEdge(ev, e_mem, e_ext);
                addEdge(ev, e_ext, e_commit);
            } else {
                addEdge(ev, e_mem, e_commit);
            }
        } else {
            addEdge(ev, e_exec, e_commit);
        }

        // mispredict redirect: branch exec -> refill -> this fetch
        if (pending_redirect_from != UINT32_MAX) {
            std::uint32_t e_redir =
                static_cast<std::uint32_t>(ev.size());
            Event e;
            e.domain = Domain::FrontEnd;
            e.start = pending_redirect_start;
            e.nominalDur = cycle_ps * cfg.mispredictPenalty;
            e.pf0 = e.pf = weight(Domain::FrontEnd);
            ev.push_back(e);
            addEdge(ev, pending_redirect_from, e_redir);
            addEdge(ev, e_redir, e_fetch);
            pending_redirect_from = UINT32_MAX;
        }

        // width-aware structural bandwidth chains
        fetch_events.push_back(e_fetch);
        const std::size_t fetch_w =
            static_cast<std::size_t>(cfg.fetchWidth);
        if (fetch_events.size() > fetch_w) {
            addEdge(ev,
                    fetch_events[fetch_events.size() - 1 - fetch_w],
                    e_fetch);
        }
        // NOTE: no chain over full mem-access events — cache ports
        // are pipelined (occupied only at initiation), which the
        // memory-domain exec (agen) chain below already models.
        (void)mem_events;

        // data dependences (producers outside the segment are simply
        // "ready"; no edge)
        for (std::uint64_t dep : {t.dep1, t.dep2}) {
            if (!dep)
                continue;
            auto it = value_event.find(dep);
            if (it != value_event.end())
                addEdge(ev, it->second, e_exec);
        }
        value_event[t.seq] = e_ext != UINT32_MAX
                                 ? e_ext
                                 : (e_mem != UINT32_MAX ? e_mem
                                                        : e_exec);

        // Retire bandwidth chain and ROB occupancy edge.
        commit_events.push_back(e_commit);
        std::size_t idx = commit_events.size() - 1;
        const std::size_t retire_w =
            static_cast<std::size_t>(cfg.retireWidth);
        const std::size_t rob_sz =
            static_cast<std::size_t>(cfg.robSize);
        if (idx >= retire_w)
            addEdge(ev, commit_events[idx - retire_w], e_commit);
        if (idx >= rob_sz)
            addEdge(ev, commit_events[idx - rob_sz], e_disp);

        // Per-domain issue bandwidth and queue occupancy.
        int dom = static_cast<int>(t.domain);
        auto &dex = domain_exec[static_cast<size_t>(dom)];
        auto &ddp = domain_dispatch[static_cast<size_t>(dom)];
        int qcap = 0, width = 1;
        switch (t.domain) {
          case Domain::Integer:
            qcap = cfg.intIqSize;
            width = cfg.intIssueWidth;
            break;
          case Domain::FloatingPoint:
            qcap = cfg.fpIqSize;
            width = cfg.fpIssueWidth;
            break;
          case Domain::Memory:
            qcap = cfg.lsqSize;
            width = cfg.memIssueWidth;
            break;
          default:
            break;
        }
        dex.push_back(e_exec);
        ddp.push_back(e_disp);
        const std::size_t issue_w = static_cast<std::size_t>(width);
        const std::size_t queue_cap = static_cast<std::size_t>(qcap);
        if (dex.size() > issue_w)
            addEdge(ev, dex[dex.size() - 1 - issue_w], e_exec);
        if (qcap > 0 && dex.size() > queue_cap)
            addEdge(ev, dex[dex.size() - 1 - queue_cap], ddp.back());

        if (t.mispredict) {
            pending_redirect_from = e_exec;
            pending_redirect_start = static_cast<double>(t.execDone);
        }
    }

    const double seg_start =
        static_cast<double>(segment.front().fetch);
    const double seg_end =
        static_cast<double>(segment.back().commit) + cycle_ps;

    // ---- the shaker ----
    double max_pf = 0.0;
    for (const Event &e : ev)
        max_pf = std::max(max_pf, e.pf0);
    double threshold = max_pf * 0.95;

    auto slack_out = [&](const Event &e) {
        double limit = seg_end;
        for (std::uint32_t s : e.succ)
            limit = std::min(limit, ev[s].start);
        return limit - e.end();
    };
    auto slack_in = [&](const Event &e) {
        double limit = seg_start;
        for (std::uint32_t p : e.pred)
            limit = std::max(limit, ev[p].end());
        return e.start - limit;
    };

    // Stretch event e into `avail` ps of slack, honoring the power
    // threshold and the max-stretch floor.  Returns slack consumed.
    auto stretch_event = [&](Event &e, double avail) {
        if (avail <= 0.0 || e.stretch >= cfg.maxStretch)
            return 0.0;
        if (e.pf < threshold)
            return 0.0;
        double want = (e.dur() + avail) / e.nominalDur;
        // Power factor scales as 1/stretch^2; do not drop (far) below
        // the current threshold ("scales the event until ... its
        // power factor drops below the current threshold").
        double pf_limit = std::sqrt(e.pf0 / threshold);
        double s_new = std::min({want, cfg.maxStretch,
                                 std::max(pf_limit, e.stretch)});
        if (s_new <= e.stretch)
            return 0.0;
        double before = e.dur();
        e.stretch = s_new;
        e.pf = e.pf0 / (e.stretch * e.stretch);
        return e.dur() - before;
    };

    for (int pass = 0; pass < cfg.maxPasses; ++pass) {
        bool backward = (pass % 2) == 0;
        bool changed = false;

        if (backward) {
            for (std::size_t i = ev.size(); i-- > 0;) {
                Event &e = ev[i];
                double sl = slack_out(e);
                if (sl <= 1e-9)
                    continue;
                double used = stretch_event(e, sl);
                double remaining = sl - used;
                if (remaining > 1e-9) {
                    // Move the event later: slack migrates to the
                    // incoming edges.
                    e.start += remaining;
                    changed = true;
                }
                if (used > 0.0)
                    changed = true;
            }
        } else {
            for (std::size_t i = 0; i < ev.size(); ++i) {
                Event &e = ev[i];
                double sl = slack_in(e);
                if (sl <= 1e-9)
                    continue;
                double used = stretch_event(e, sl);
                // Stretching into incoming slack: keep the end fixed.
                if (used > 0.0) {
                    e.start -= used;
                    changed = true;
                }
                double remaining = sl - used;
                if (remaining > 1e-9) {
                    // Move the event earlier: slack migrates to the
                    // outgoing edges.
                    e.start -= remaining;
                    changed = true;
                }
            }
        }

        threshold *= cfg.thresholdDecay;
        if (!changed && threshold < max_pf * 0.05)
            break;
    }

    // ---- summarize into per-domain histograms ----
    for (const Event &e : ev) {
        if (e.domain == Domain::External)
            continue;
        Mhz f = cfg.steps.quantize(cfg.nominalMhz / e.stretch);
        double cycles = e.nominalDur / cycle_ps;
        out.hist[static_cast<int>(e.domain)].add(f, cycles);
    }
    out.spanPs += static_cast<Tick>(seg_end - seg_start);
    out.instrs += segment.size();
    out.segments += 1;
}

AnalysisCollector::AnalysisCollector(const ShakerConfig &cfg,
                                     const Limits &l)
    : analyzer(cfg), limits(l)
{
}

void
AnalysisCollector::onInstr(const InstrTiming &t)
{
    if (t.node != curNode) {
        flush();
        curNode = t.node;
    }
    if (curNode == 0)
        return;
    auto it = results.find(curNode);
    if (it != results.end()) {
        const NodeHistograms &h = it->second;
        if (h.instrs >= limits.maxInstrsPerNode ||
            h.segments >= limits.maxSegmentsPerNode)
            return;  // node already analyzed enough
    }
    segment.push_back(t);
    if (segment.size() >= limits.maxSegmentInstrs)
        flush();
}

void
AnalysisCollector::flush()
{
    if (curNode != 0 && !segment.empty())
        analyzer.analyze(segment, results[curNode]);
    segment.clear();
}

std::map<std::uint32_t, NodeHistograms>
AnalysisCollector::finish()
{
    flush();
    return std::move(results);
}

} // namespace mcd::core
