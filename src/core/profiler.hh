/**
 * @file
 * Phase 1: conventional performance profiling (the paper's ATOM
 * instrumentation pass).  A fast functional walk of the execution
 * stream builds the call tree and identifies long-running nodes.
 */

#ifndef MCD_CORE_PROFILER_HH
#define MCD_CORE_PROFILER_HH

#include <cstdint>

#include "core/calltree.hh"
#include "workload/program.hh"

namespace mcd::core
{

/** Profiling parameters. */
struct ProfileConfig
{
    /** Cap on profiled instructions (0 = run to completion). */
    std::uint64_t maxInstrs = 5'000'000;
    /** Long-running node threshold (paper: 10,000 instructions). */
    std::uint64_t longRunningThreshold = 10'000;
};

/**
 * Profile @p program on @p input: build the call tree for
 * @p mode and mark long-running nodes.
 *
 * This is a functional (untimed) run — the paper's phase-one
 * profiling also measures only instruction counts.
 */
CallTree profileProgram(const workload::Program &program,
                        const workload::InputSet &input,
                        ContextMode mode,
                        const ProfileConfig &cfg = ProfileConfig());

} // namespace mcd::core

#endif // MCD_CORE_PROFILER_HH
