#include "core/walker.hh"

#include "util/logging.hh"

namespace mcd::core
{

using workload::Marker;
using workload::MarkerKind;

TreeWalker::TreeWalker(const CallTree &t)
    : tree(t)
{
    stack.push_back(Entry{0, 0});
}

void
TreeWalker::push(std::uint32_t node)
{
    Entry e;
    e.node = node;
    if (node != 0 && tree.node(node).longRunning)
        e.covering = node;
    else
        e.covering = stack.back().covering;
    stack.push_back(e);
}

void
TreeWalker::onMarker(const Marker &m)
{
    switch (m.kind) {
      case MarkerKind::CallSite:
        return;

      case MarkerKind::FuncEnter: {
        if (m.func >= funcDepth.size())
            funcDepth.resize(m.func + 1, 0);
        if (funcDepth[m.func] > 0) {
            // Recursion folds to the ancestor, mirroring training.
            std::uint32_t ancestor = 0;
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (it->node != 0 &&
                    tree.node(it->node).kind == NodeKind::Func &&
                    tree.node(it->node).func == m.func) {
                    ancestor = it->node;
                    break;
                }
            }
            ++funcDepth[m.func];
            push(ancestor);
            return;
        }
        ++funcDepth[m.func];
        std::uint32_t cur = stack.back().node;
        std::uint32_t child =
            cur == 0 && stack.size() > 1
                ? 0  // inside an unknown subpath: stay unknown
                : tree.findChild(cur, NodeKind::Func, m.func, m.site);
        push(child);
        return;
      }

      case MarkerKind::FuncExit:
        if (stack.size() <= 1)
            panic("tree walker underflow on FuncExit");
        if (m.func < funcDepth.size() && funcDepth[m.func] > 0)
            --funcDepth[m.func];
        stack.pop_back();
        return;

      case MarkerKind::LoopEnter: {
        if (!modeHasLoops(tree.mode())) {
            stack.push_back(stack.back());
            return;
        }
        std::uint32_t cur = stack.back().node;
        std::uint32_t child =
            cur == 0 && stack.size() > 1
                ? 0
                : tree.findChild(cur, NodeKind::Loop, m.loop, 0);
        push(child);
        return;
      }

      case MarkerKind::LoopExit:
        if (stack.size() <= 1)
            panic("tree walker underflow on LoopExit");
        stack.pop_back();
        return;
    }
}

} // namespace mcd::core
