/**
 * @file
 * Production-run instrumentation runtime (Section 3.4).
 *
 * Emulates the code injected by the binary editor: call-chain label
 * tracking via the (prev-label x subroutine) lookup table in the path
 * modes, statically-known reconfiguration writes in the L+F and F
 * modes, and saved/restored reconfiguration register values at node
 * exits.  Each executed instrumentation point charges the fixed
 * cycle/energy penalties the paper derives from a hand-instrumented
 * microbenchmark (~9 cycles for a label-table access, ~17 for a
 * reconfiguration point).
 */

#ifndef MCD_CORE_RUNTIME_HH
#define MCD_CORE_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "core/editor.hh"
#include "core/walker.hh"

namespace mcd::core
{

/** Per-point overhead charges (paper Section 3.4). */
struct RuntimeCosts
{
    /** Subroutine prologue/epilogue label-table access. */
    int funcTrackCycles = 9;
    /** Loop header/footer label offset update. */
    int loopTrackCycles = 2;
    /** Call-site label offset update (C modes). */
    int siteTrackCycles = 1;
    /** Additional cost of a reconfiguration (frequency-table access
     *  plus control-register write): 9 + 8 = the paper's ~17. */
    int reconfigExtraCycles = 8;
    /** Statically-known reconfiguration in L+F / F: the handful of
     *  instructions schedule into empty issue slots (paper: overhead
     *  "virtually zero"). */
    int staticReconfigCycles = 1;
    /** Energy per overhead cycle (pJ at Vmax). */
    double energyPjPerCycle = 260.0;
};

/** Dynamic instrumentation execution counts (Table 4). */
struct RuntimeStats
{
    std::uint64_t dynReconfigPoints = 0;
    std::uint64_t dynInstrPoints = 0;
};

/**
 * The instrumentation runtime: installed as the simulator's
 * MarkerHandler during production runs of the edited binary.
 */
class ProfileRuntime : public sim::MarkerHandler
{
  public:
    /**
     * @param tree  analyzed training call tree (path modes walk it)
     * @param plan  instrumentation plan from the editor
     * @param costs overhead model
     */
    ProfileRuntime(const CallTree &tree,
                   const InstrumentationPlan &plan,
                   const RuntimeCosts &costs = RuntimeCosts());

    sim::MarkerAction onMarker(const workload::Marker &m) override;

    std::uint32_t currentNode() const override;

    const RuntimeStats &stats() const { return stats_; }

  private:
    sim::MarkerAction onMarkerPath(const workload::Marker &m);
    sim::MarkerAction onMarkerStatic(const workload::Marker &m);
    sim::MarkerAction makeReconfig(const sim::FreqSet &freqs,
                                   int cycles);

    const InstrumentationPlan &plan;
    RuntimeCosts costs;
    bool path;
    TreeWalker walker;
    /** Shadow of the reconfiguration register (last written value). */
    sim::FreqSet shadow;
    /** Saved register values for restore-at-exit. */
    std::vector<sim::FreqSet> saved;
    RuntimeStats stats_;
};

} // namespace mcd::core

#endif // MCD_CORE_RUNTIME_HH
