/**
 * @file
 * Small statistics helpers: running summaries and percentage metrics.
 */

#ifndef MCD_UTIL_STATS_HH
#define MCD_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace mcd
{

/** Sample mean with a 95% confidence half-width. */
struct MeanCi
{
    double mean = 0.0;
    /** 1.96 * sd / sqrt(n) (normal approximation); 0 when n < 2. */
    double ci95 = 0.0;
    std::uint64_t n = 0;
};

/**
 * Mean and 95% confidence half-width of @p samples (sample standard
 * deviation, n-1 denominator; normal approximation).  Used by the
 * sampled simulator to bound its per-interval extrapolation
 * (docs/SAMPLING.md).
 */
MeanCi meanCi95(const std::vector<double> &samples);

/**
 * Running min/max/mean accumulator.
 */
class Summary
{
  public:
    Summary() = default;

    /** Record one sample. */
    void add(double v);

    std::uint64_t count() const { return n; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double total() const { return sum; }

  private:
    std::uint64_t n = 0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double sum = 0.0;
};

/**
 * Percentage change metrics used throughout the evaluation, all
 * relative to the MCD baseline run (Section 4.1).
 */
struct Metrics
{
    /** (T - T_base) / T_base * 100. */
    double slowdownPct = 0.0;
    /** (E_base - E) / E_base * 100. */
    double energySavingsPct = 0.0;
    /** (1 - E*T / (E_base*T_base)) * 100. */
    double energyDelayImprovementPct = 0.0;
};

/**
 * Compute the paper's three headline metrics from absolute
 * time/energy of a run and of the baseline run.
 *
 * @param time_ps     run time of the evaluated configuration
 * @param energy_nj   energy of the evaluated configuration
 * @param base_time_ps   baseline run time
 * @param base_energy_nj baseline energy
 */
Metrics computeMetrics(double time_ps, double energy_nj,
                       double base_time_ps, double base_energy_nj);

} // namespace mcd

#endif // MCD_UTIL_STATS_HH
