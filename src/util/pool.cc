#include "util/pool.hh"

#include <algorithm>

namespace mcd::util
{

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned n)
    : nThreads(n ? n : defaultThreads())
{
    if (nThreads == 1)
        return;  // inline mode: no workers, submit() runs the job
    workers.reserve(nThreads);
    for (unsigned i = 0; i < nThreads; ++i)
        workers.push_back(std::make_unique<Worker>());
    threads.reserve(nThreads);
    for (unsigned i = 0; i < nThreads; ++i)
        threads.emplace_back(&ThreadPool::workerLoop, this, i);
}

ThreadPool::~ThreadPool()
{
    if (nThreads == 1)
        return;
    {
        std::unique_lock<std::mutex> l(m);
        cvIdle.wait(l, [this] { return inflight == 0; });
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::runJob(const std::function<void()> &job)
{
    try {
        job();
    } catch (...) {
        std::lock_guard<std::mutex> l(m);
        if (!firstError)
            firstError = std::current_exception();
    }
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (nThreads == 1) {
        runJob(job);
        return;
    }
    std::size_t w;
    {
        std::lock_guard<std::mutex> l(m);
        w = nextWorker++ % workers.size();
        ++inflight;
    }
    {
        std::lock_guard<std::mutex> l(workers[w]->m);
        workers[w]->q.push_back(std::move(job));
    }
    cvWork.notify_one();
}

bool
ThreadPool::popFrom(std::size_t w, std::function<void()> &job)
{
    Worker &wk = *workers[w];
    std::lock_guard<std::mutex> l(wk.m);
    if (wk.q.empty())
        return false;
    job = std::move(wk.q.front());
    wk.q.pop_front();
    return true;
}

bool
ThreadPool::stealFor(std::size_t w, std::function<void()> &job)
{
    // Steal from the back of the victim's deque, scanning siblings
    // starting just past our own slot so thieves spread out.
    for (std::size_t i = 1; i < workers.size(); ++i) {
        Worker &victim = *workers[(w + i) % workers.size()];
        std::lock_guard<std::mutex> l(victim.m);
        if (victim.q.empty())
            continue;
        job = std::move(victim.q.back());
        victim.q.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t w)
{
    for (;;) {
        {
            // Sleep until a job is queued somewhere or we are told to
            // stop.  A false wakeup just loops back here.
            std::unique_lock<std::mutex> l(m);
            cvWork.wait(l, [this] {
                if (stopping)
                    return true;
                for (const auto &wk : workers) {
                    std::lock_guard<std::mutex> ql(wk->m);
                    if (!wk->q.empty())
                        return true;
                }
                return false;
            });
            if (stopping)
                return;
        }
        std::function<void()> job;
        if (!popFrom(w, job) && !stealFor(w, job))
            continue;  // a sibling got there first
        runJob(job);
        {
            std::lock_guard<std::mutex> l(m);
            --inflight;
        }
        cvIdle.notify_all();
        // Drain without round-tripping through the sleep above.
        while (popFrom(w, job) || stealFor(w, job)) {
            runJob(job);
            {
                std::lock_guard<std::mutex> l(m);
                --inflight;
            }
            cvIdle.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> l(m);
        cvIdle.wait(l, [this] { return inflight == 0; });
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    unsigned want = jobs ? jobs : ThreadPool::defaultThreads();
    unsigned nthreads = static_cast<unsigned>(
        std::min<std::size_t>(want, n ? n : 1));
    if (nthreads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(nthreads);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace mcd::util
