#include "util/types.hh"

namespace mcd
{

const char *
domainName(Domain d)
{
    switch (d) {
      case Domain::FrontEnd: return "fe";
      case Domain::Integer: return "int";
      case Domain::FloatingPoint: return "fp";
      case Domain::Memory: return "mem";
      case Domain::External: return "ext";
    }
    return "?";
}

} // namespace mcd
