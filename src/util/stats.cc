#include "util/stats.hh"

#include <cmath>

namespace mcd
{

MeanCi
meanCi95(const std::vector<double> &samples)
{
    MeanCi r;
    r.n = samples.size();
    if (r.n == 0)
        return r;
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    r.mean = sum / static_cast<double>(r.n);
    if (r.n < 2)
        return r;
    double ss = 0.0;
    for (double v : samples) {
        double d = v - r.mean;
        ss += d * d;
    }
    double sd = std::sqrt(ss / static_cast<double>(r.n - 1));
    r.ci95 = 1.96 * sd / std::sqrt(static_cast<double>(r.n));
    return r;
}

void
Summary::add(double v)
{
    ++n;
    sum += v;
    if (v < lo)
        lo = v;
    if (v > hi)
        hi = v;
}

Metrics
computeMetrics(double time_ps, double energy_nj,
               double base_time_ps, double base_energy_nj)
{
    Metrics m;
    if (base_time_ps > 0.0)
        m.slowdownPct = (time_ps - base_time_ps) / base_time_ps * 100.0;
    if (base_energy_nj > 0.0)
        m.energySavingsPct =
            (base_energy_nj - energy_nj) / base_energy_nj * 100.0;
    double base_ed = base_time_ps * base_energy_nj;
    if (base_ed > 0.0)
        m.energyDelayImprovementPct =
            (1.0 - (time_ps * energy_nj) / base_ed) * 100.0;
    return m;
}

} // namespace mcd
