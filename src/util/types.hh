/**
 * @file
 * Fundamental scalar types shared across the MCD-DVFS libraries.
 *
 * Simulated time is kept in integer picoseconds so that clock-edge
 * arithmetic across asynchronous domains stays exact.  Frequencies are
 * kept in MHz as doubles (the DVFS model ramps them continuously).
 */

#ifndef MCD_UTIL_TYPES_HH
#define MCD_UTIL_TYPES_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace mcd
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Picoseconds per common time units. */
constexpr Tick PS_PER_NS = 1000;
constexpr Tick PS_PER_US = 1000 * 1000;

/** Clock frequency in MHz. */
using Mhz = double;

/** Supply voltage in volts. */
using Volt = double;

/**
 * Convert a frequency in MHz to a clock period in picoseconds
 * (rounded to the nearest picosecond).
 *
 * @param mhz frequency; must be positive.
 */
constexpr Tick
periodPs(Mhz mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/**
 * The on-chip clock domains of the MCD processor, plus the external
 * main-memory "domain" which always runs at full speed (Section 2 of
 * the paper).
 */
enum class Domain : std::uint8_t
{
    FrontEnd = 0,   ///< fetch, rename, dispatch, ROB, L1 I-cache
    Integer = 1,    ///< integer issue queue, ALUs, register file
    FloatingPoint = 2, ///< FP issue queue, ALUs, register file
    Memory = 3,     ///< load/store unit, L1 D-cache, unified L2
    External = 4,   ///< main memory; not voltage scaled
};

/** Number of on-chip, voltage-scalable domains. */
constexpr int NUM_SCALED_DOMAINS = 4;
/** Number of domains including external memory. */
constexpr int NUM_DOMAINS = 5;

/** Array index of a domain (domains index per-domain arrays a lot). */
constexpr std::size_t
domainIndex(Domain d)
{
    return static_cast<std::size_t>(d);
}

/** The four scaled domains, in index (synchronizer tie-break)
 *  order, so per-domain loops read `for (Domain d :
 *  scaledDomains())` instead of casting a raw index back and
 *  forth. */
inline constexpr std::array<Domain, NUM_SCALED_DOMAINS>
    SCALED_DOMAINS{Domain::FrontEnd, Domain::Integer,
                   Domain::FloatingPoint, Domain::Memory};

constexpr const std::array<Domain, NUM_SCALED_DOMAINS> &
scaledDomains()
{
    return SCALED_DOMAINS;
}

/** Short human-readable domain name ("fe", "int", "fp", "mem", "ext"). */
const char *domainName(Domain d);

} // namespace mcd

#endif // MCD_UTIL_TYPES_HH
