#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace mcd
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

void
TextTable::separator()
{
    rows.emplace_back();
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return std::string(buf);
}

void
TextTable::print(std::ostream &os) const
{
    size_t ncols = head.size();
    for (const auto &r : rows)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    measure(head);
    for (const auto &r : rows)
        measure(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < r.size() ? r[i] : "";
            if (i == 0) {
                os << cell
                   << std::string(width[i] - cell.size(), ' ');
            } else {
                os << "  "
                   << std::string(width[i] - cell.size(), ' ')
                   << cell;
            }
        }
        os << '\n';
    };

    if (!head.empty()) {
        emit(head);
        size_t total = 0;
        for (size_t i = 0; i < ncols; ++i)
            total += width[i] + (i ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows) {
        if (r.empty()) {
            size_t total = 0;
            for (size_t i = 0; i < ncols; ++i)
                total += width[i] + (i ? 2 : 0);
            os << std::string(total, '-') << '\n';
        } else {
            emit(r);
        }
    }
}

} // namespace mcd
