/**
 * @file
 * Small work-stealing thread pool used by the sweep layer.
 *
 * Each worker owns a deque of jobs: it pops from the front of its own
 * deque (FIFO for submission order locality) and steals from the back
 * of a sibling's deque when it runs dry.  submit() distributes jobs
 * round-robin so a burst of submissions spreads across workers even
 * before stealing kicks in.
 *
 * A pool constructed with one thread (or on a single-core host via
 * threads == 0) runs every job inline inside submit(), in submission
 * order, on the calling thread.  This makes `--jobs 1` sweeps exactly
 * equivalent to the old serial loops — same execution order, same
 * output bytes — which keeps figure tables reproducible.
 */

#ifndef MCD_UTIL_POOL_HH
#define MCD_UTIL_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcd::util
{

/**
 * Work-stealing thread pool.
 *
 * Jobs must not submit to the pool they run on and then block on the
 * submitted job's completion (classic pool deadlock); blocking on
 * results computed *inline* by sibling jobs (e.g. a memoized
 * dependency) is fine.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue one job.  With a single worker the job runs inline on the
     * calling thread before submit() returns.
     */
    void submit(std::function<void()> job);

    /**
     * Block until every job submitted so far has finished.  Rethrows
     * the first exception any job raised (at most one is kept).
     */
    void wait();

    /** Number of worker threads (>= 1). */
    unsigned threadCount() const { return nThreads; }

    /** Resolved default worker count: hardware_concurrency(), >= 1. */
    static unsigned defaultThreads();

  private:
    struct Worker
    {
        std::mutex m;
        std::deque<std::function<void()>> q;
    };

    bool popFrom(std::size_t w, std::function<void()> &job);
    bool stealFor(std::size_t w, std::function<void()> &job);
    void workerLoop(std::size_t w);
    void runJob(const std::function<void()> &job);

    unsigned nThreads;
    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;

    std::mutex m;
    std::condition_variable cvWork;  ///< workers sleep here
    std::condition_variable cvIdle;  ///< wait() sleeps here
    std::size_t inflight = 0;        ///< submitted, not yet finished
    std::size_t nextWorker = 0;      ///< round-robin submit cursor
    std::exception_ptr firstError;
    bool stopping = false;
};

/**
 * Run @p fn(i) for every i in [0, n), spreading the calls over
 * @p jobs threads (0 = ThreadPool::defaultThreads()), and block until
 * all of them finish.  With jobs <= 1 the calls run inline in index
 * order.  Rethrows the first exception a call raised.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

} // namespace mcd::util

#endif // MCD_UTIL_POOL_HH
