#include "util/rng.hh"

#include <cmath>

namespace mcd
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedNormal(0.0), hasCachedNormal(false)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
    // xoshiro must not be seeded with all zeros; splitmix64 cannot
    // produce four zero words from any seed, but be defensive anyway.
    if (!(s[0] | s[1] | s[2] | s[3]))
        s[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(bound));
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::normal(double mean, double sigma)
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return mean + sigma * cachedNormal;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return mean + sigma * r * std::cos(theta);
}

double
Rng::clampedNormal(double mean, double sigma, double limit)
{
    double v = normal(mean, sigma);
    if (v < mean - limit)
        return mean - limit;
    if (v > mean + limit)
        return mean + limit;
    return v;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace mcd
