/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * fatal() is for user errors (bad configuration); panic() is for
 * internal invariant violations.  Both terminate.  warn()/inform() are
 * purely informational.
 */

#ifndef MCD_UTIL_LOGGING_HH
#define MCD_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mcd
{

/** Render a printf-style format string to a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-level error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a recoverable anomaly. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace mcd

#endif // MCD_UTIL_LOGGING_HH
