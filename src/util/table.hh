/**
 * @file
 * ASCII table writer used by the benchmark harnesses to print the
 * paper's tables and figure series in a readable form.
 */

#ifndef MCD_UTIL_TABLE_HH
#define MCD_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mcd
{

/**
 * Simple left/right aligned text table.
 *
 * The first column is left-aligned (row label); remaining columns are
 * right-aligned.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (cells may be fewer than header cells). */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render to a stream with column alignment. */
    void print(std::ostream &os) const;

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;  // empty row = separator
};

} // namespace mcd

#endif // MCD_UTIL_TABLE_HH
