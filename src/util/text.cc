#include "util/text.hh"

#include <charconv>
#include <locale>
#include <sstream>

namespace mcd::util
{

std::string
fmtFixed(double v, int prec)
{
    // The classic C locale guarantees '.' decimal points no matter
    // what the embedding application did with setlocale().
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << v;
    return os.str();
}

std::string
fmtDouble17(double v)
{
    // Identical bytes to `os << v` on a classic-locale stream with
    // precision 17 (the format every existing cache line and ROW
    // payload was written in): default floatfield == printf %.17g.
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(17);
    os << v;
    return os.str();
}

bool
parseDouble(const std::string &text, double &v)
{
    if (text.empty())
        return false;
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    const char *first = text.data();
    const char *last = first + text.size();
    auto [ptr, ec] = std::from_chars(first, last, v);
    return ec == std::errc() && ptr == last;
#else
    // Fallback for standard libraries without floating-point
    // from_chars (libc++ < 20): classic-locale stream extraction,
    // rejecting partial consumption and leading whitespace.
    std::istringstream is(text);
    is.imbue(std::locale::classic());
    is >> std::noskipws >> v;
    return !is.fail() && is.eof();
#endif
}

bool
validSpecName(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

bool
validSpecValue(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : bytes)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h;
}

bool
splitSpec(const std::string &text, const char *what,
          std::string &name,
          std::vector<std::pair<std::string, std::string>> &kvs,
          std::string &err)
{
    name.clear();
    kvs.clear();
    std::size_t colon = text.find(':');
    name = text.substr(0, colon);
    if (!validSpecName(name)) {
        err = "bad " + std::string(what) + " '" + text +
              "': expected name[:key=value,...] with a " +
              "[a-z0-9_-]+ name";
        return false;
    }
    if (colon == std::string::npos)
        return true;
    std::string rest = text.substr(colon + 1);
    std::size_t start = 0;
    for (;;) {
        std::size_t comma = rest.find(',', start);
        std::string item = rest.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= item.size()) {
            err = "bad " + std::string(what) + " '" + text +
                  "': parameter '" + item +
                  "' is not of the form key=value";
            return false;
        }
        std::string key = item.substr(0, eq);
        for (const auto &kv : kvs) {
            if (kv.first == key) {
                err = "bad " + std::string(what) + " '" + text +
                      "': parameter '" + key + "' given twice";
                return false;
            }
        }
        kvs.emplace_back(std::move(key), item.substr(eq + 1));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return true;
}

} // namespace mcd::util
