/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (clock jitter, synthetic
 * workload behaviour) draws from an explicitly-seeded Rng so that runs
 * are exactly reproducible.  The generator is xoshiro256** seeded via
 * splitmix64.
 */

#ifndef MCD_UTIL_RNG_HH
#define MCD_UTIL_RNG_HH

#include <cstdint>

namespace mcd
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Not thread-safe; each simulation component owns its own instance so
 * that streams are independent and stable under refactoring.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. @pre lo <= hi */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Normally distributed value (Box-Muller).
     *
     * @param mean   distribution mean
     * @param sigma  standard deviation
     */
    double normal(double mean, double sigma);

    /**
     * Normal value clamped to [mean - limit, mean + limit]; used for
     * bounded clock jitter.
     */
    double clampedNormal(double mean, double sigma, double limit);

    /** Derive an independent child generator (stable w.r.t. parent). */
    Rng fork();

  private:
    std::uint64_t s[4];
    double cachedNormal;
    bool hasCachedNormal;
};

} // namespace mcd

#endif // MCD_UTIL_RNG_HH
