/**
 * @file
 * Frequency histograms used by the shaker and slowdown-thresholding
 * algorithms (Sections 3.2 and 3.3 of the paper).
 *
 * A FreqHistogram records, per discrete frequency step, the total
 * number of nominal-frequency cycles of work belonging to events that
 * the shaker scaled to run "at or near" that frequency.
 */

#ifndef MCD_UTIL_HISTOGRAM_HH
#define MCD_UTIL_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace mcd
{

/**
 * Discretization of the legal frequency range into uniform steps.
 *
 * The paper's MCD model scales 250 MHz - 1 GHz; we use 25 MHz bins
 * (31 steps) by default.
 */
class FreqSteps
{
  public:
    /**
     * @param min_mhz  lowest legal frequency
     * @param max_mhz  highest legal frequency
     * @param step_mhz bin width
     */
    FreqSteps(Mhz min_mhz = 250.0, Mhz max_mhz = 1000.0,
              Mhz step_mhz = 25.0);

    /** Number of discrete steps (inclusive of both endpoints). */
    int numSteps() const { return numSteps_; }

    /** Frequency of step @p i (0 = minimum). */
    Mhz freqAt(int i) const;

    /** Step index whose frequency is nearest to @p f (clamped). */
    int indexOf(Mhz f) const;

    /** Round @p f to the nearest legal step frequency (clamped). */
    Mhz quantize(Mhz f) const { return freqAt(indexOf(f)); }

    Mhz minMhz() const { return minMhz_; }
    Mhz maxMhz() const { return maxMhz_; }
    Mhz stepMhz() const { return stepMhz_; }

  private:
    Mhz minMhz_;
    Mhz maxMhz_;
    Mhz stepMhz_;
    int numSteps_;
};

/**
 * Cycles-at-frequency histogram for one clock domain.
 *
 * The "cycles" recorded are nominal (full-frequency) cycles of work;
 * the slowdown-thresholding algorithm converts them to time at
 * candidate frequencies.
 */
class FreqHistogram
{
  public:
    explicit FreqHistogram(const FreqSteps &steps = FreqSteps());

    /** Add @p cycles of work scaled to frequency @p f. */
    void add(Mhz f, double cycles);

    /** Merge another histogram (same step layout) into this one. */
    void merge(const FreqHistogram &other);

    /** Sum of all recorded cycles. */
    double totalCycles() const;

    /** Cycles recorded in step @p i. */
    double binCycles(int i) const { return bins[static_cast<size_t>(i)]; }

    const FreqSteps &steps() const { return steps_; }

    /**
     * Weighted-average frequency of the recorded work (0 if empty).
     */
    Mhz meanFreq() const;

  private:
    FreqSteps steps_;
    std::vector<double> bins;
};

} // namespace mcd

#endif // MCD_UTIL_HISTOGRAM_HH
