#include "util/histogram.hh"

#include <cmath>

#include "util/logging.hh"

namespace mcd
{

FreqSteps::FreqSteps(Mhz min_mhz, Mhz max_mhz, Mhz step_mhz)
    : minMhz_(min_mhz), maxMhz_(max_mhz), stepMhz_(step_mhz)
{
    if (min_mhz <= 0 || max_mhz < min_mhz || step_mhz <= 0)
        fatal("invalid frequency steps [%f, %f] step %f",
              min_mhz, max_mhz, step_mhz);
    numSteps_ = static_cast<int>(
        std::floor((max_mhz - min_mhz) / step_mhz + 0.5)) + 1;
}

Mhz
FreqSteps::freqAt(int i) const
{
    if (i < 0)
        i = 0;
    if (i >= numSteps_)
        i = numSteps_ - 1;
    return minMhz_ + stepMhz_ * i;
}

int
FreqSteps::indexOf(Mhz f) const
{
    int i = static_cast<int>(std::floor((f - minMhz_) / stepMhz_ + 0.5));
    if (i < 0)
        i = 0;
    if (i >= numSteps_)
        i = numSteps_ - 1;
    return i;
}

FreqHistogram::FreqHistogram(const FreqSteps &steps)
    : steps_(steps), bins(static_cast<size_t>(steps.numSteps()), 0.0)
{
}

void
FreqHistogram::add(Mhz f, double cycles)
{
    bins[static_cast<size_t>(steps_.indexOf(f))] += cycles;
}

void
FreqHistogram::merge(const FreqHistogram &other)
{
    if (other.bins.size() != bins.size())
        panic("merging histograms with different step layouts");
    for (size_t i = 0; i < bins.size(); ++i)
        bins[i] += other.bins[i];
}

double
FreqHistogram::totalCycles() const
{
    double sum = 0.0;
    for (double b : bins)
        sum += b;
    return sum;
}

Mhz
FreqHistogram::meanFreq() const
{
    double sum = 0.0;
    double weighted = 0.0;
    for (size_t i = 0; i < bins.size(); ++i) {
        sum += bins[i];
        weighted += bins[i] * steps_.freqAt(static_cast<int>(i));
    }
    return sum > 0.0 ? weighted / sum : 0.0;
}

} // namespace mcd
