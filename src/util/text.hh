/**
 * @file
 * Locale-independent text primitives shared by every spec grammar in
 * the tree (`control::PolicySpec`, `workload::WorkloadSpec`, the
 * workload authoring format): canonical fixed-point formatting,
 * strict double parsing, the `[a-z0-9_-]+` name rule, and the FNV-1a
 * hash used for content-addressed cache-key fragments.
 */

#ifndef MCD_UTIL_TEXT_HH
#define MCD_UTIL_TEXT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcd::util
{

/** Locale-independent fixed-point decimal (the canonical format of
 *  numeric spec parameters and of cache-key numbers). */
std::string fmtFixed(double v, int prec);

/**
 * Locale-independent 17-significant-digit decimal (C-locale `%.17g`
 * semantics): the one sanctioned way to write a double on a
 * persisted or wire path — result-cache CSV lines, MCD/2 ROW
 * payloads.  17 significant digits round-trip any IEEE-754 double
 * exactly, and the classic locale guarantees '.' decimal points no
 * matter what the embedding application did with setlocale().
 * `mcd_lint` (rule `locale-safety`) bans ad-hoc stream precision
 * fiddling on those paths in favour of this helper.
 */
std::string fmtDouble17(double v);

/** Strict, locale-independent full-string double parse. */
bool parseDouble(const std::string &text, double &v);

/** True iff @p s is a non-empty [a-z0-9_-]+ spec name. */
bool validSpecName(const std::string &s);

/** True iff @p s is a non-empty [A-Za-z0-9_.-]+ string value (the
 *  charset spec string parameters may take: it excludes the
 *  grammar's own separators ':', ',', '=' and whitespace). */
bool validSpecValue(const std::string &s);

/** 64-bit FNV-1a over a byte string. */
std::uint64_t fnv1a64(const std::string &bytes);

/**
 * Split `name[:key=value[,key=value...]]` into @p name and @p kvs —
 * the one definition of the spec grammar's surface syntax, shared
 * by `control::parseSpec` and `workload::parseWorkloadSpec`
 * (semantic validation stays with the registries).  On failure
 * returns false and sets @p err to a message prefixed
 * "bad <what> '<text>':", where @p what names the grammar
 * ("policy spec", "workload spec").  Rejects non-validSpecName()
 * names, malformed key=value items, and duplicate keys.
 */
bool splitSpec(const std::string &text, const char *what,
               std::string &name,
               std::vector<std::pair<std::string, std::string>> &kvs,
               std::string &err);

} // namespace mcd::util

#endif // MCD_UTIL_TEXT_HH
