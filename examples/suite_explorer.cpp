/**
 * @file
 * Command-line explorer for the open workload/policy registries: run
 * any workload spec under any registered control policy and print
 * the paper's metrics.  Both sides use the spec-string grammar of
 * the bench binaries' `--workload` and `--policy` flags.
 *
 * Usage:
 *   suite_explorer                        # list workloads/policies
 *   suite_explorer <workload>             # every registered policy
 *   suite_explorer <workload> <spec>...   # the given specs, e.g.
 *       suite_explorer gsm_decode profile:mode=LFCP,d=5 global
 *       suite_explorer gen:phases=6,mem=0.7,seed=3 online:aggr=1.5
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "control/policy.hh"
#include "exp/experiment.hh"
#include "util/table.hh"
#include "workload/registry.hh"

using namespace mcd;

namespace
{

void
addRow(TextTable &t, const std::string &name, const exp::Outcome &o)
{
    t.row({name, TextTable::num(o.metrics.slowdownPct),
           TextTable::num(o.metrics.energySavingsPct),
           TextTable::num(o.metrics.energyDelayImprovementPct),
           TextTable::num(o.reconfigs, 0)});
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("workloads (spec grammar "
                    "name[:key=value,...]):\n%s",
                    workload::describeWorkloads().c_str());
        std::printf("\npolicies (same grammar):\n%s",
                    control::describePolicies().c_str());
        std::printf("\nusage: %s <workload-spec> "
                    "[policy-spec ...]\n",
                    argv[0]);
        return 0;
    }
    std::string bench;
    try {
        bench = workload::canonicalWorkloadSpec(argv[1]);
    } catch (const workload::SpecError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    const control::PolicyRegistry &reg =
        control::PolicyRegistry::instance();
    std::vector<control::PolicySpec> specs;
    if (argc > 2) {
        for (int i = 2; i < argc; ++i) {
            control::PolicySpec spec;
            std::string err;
            if (!control::parseSpec(argv[i], spec, err) ||
                !reg.canonicalize(spec, err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 1;
            }
            specs.push_back(std::move(spec));
        }
    } else {
        // No specs given: every registered policy at its schema
        // defaults, except baseline — its metrics vs itself are all
        // zero, so the row carries no information.  Canonicalize so
        // the rows print the defaults they ran with.
        for (const control::Policy *p : reg.list()) {
            if (std::string(p->name()) == "baseline")
                continue;
            control::PolicySpec spec =
                control::PolicySpec::of(p->name());
            std::string err;
            if (!reg.canonicalize(spec, err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 1;
            }
            specs.push_back(std::move(spec));
        }
    }

    exp::ExpConfig cfg;
    cfg.cacheFile.clear();  // explorer runs are always fresh
    exp::Runner runner(cfg);

    TextTable t;
    t.header({"policy", "slowdown %", "savings %", "ExD gain %",
              "reconfigs"});
    for (const control::PolicySpec &spec : specs) {
        exp::Outcome o = runner.run(bench, spec);
        addRow(t, spec.str(), o);
        // Keyed on the outcome fields, not the policy name, so any
        // policy that fills them (profile, hybrid, future
        // pipeline-based ones) gets its diagnostics printed.
        if (o.globalFreq > 0.0)
            std::printf("matched chip frequency: %.0f MHz\n",
                        o.globalFreq);
        if (o.staticReconfigPoints > 0.0 ||
            o.staticInstrPoints > 0.0 || o.tableBytes > 0.0)
            std::printf(
                "%s: static points: %g reconfig / %g "
                "instrumentation; tables %.2f KB\n",
                spec.policy.c_str(), o.staticReconfigPoints,
                o.staticInstrPoints, o.tableBytes / 1024.0);
    }

    std::printf("%s (window %llu instructions, vs MCD baseline)\n",
                bench.c_str(),
                (unsigned long long)cfg.productionWindow);
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
