/**
 * @file
 * Command-line explorer for the benchmark suite: run any benchmark
 * under any control policy and print the paper's metrics.
 *
 * Usage:
 *   suite_explorer                        # list benchmarks
 *   suite_explorer <bench>                # all four policies
 *   suite_explorer <bench> profile [mode] [d]
 *   suite_explorer <bench> offline [d]
 *   suite_explorer <bench> online [aggressiveness]
 *   suite_explorer <bench> global
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "exp/experiment.hh"
#include "util/table.hh"
#include "workload/suite.hh"

using namespace mcd;

namespace
{

core::ContextMode
parseMode(const char *s)
{
    const struct
    {
        const char *name;
        core::ContextMode mode;
    } table[] = {
        {"lfcp", core::ContextMode::LFCP},
        {"lfp", core::ContextMode::LFP},
        {"fcp", core::ContextMode::FCP},
        {"fp", core::ContextMode::FP},
        {"lf", core::ContextMode::LF},
        {"f", core::ContextMode::F},
    };
    for (const auto &e : table)
        if (!std::strcmp(s, e.name))
            return e.mode;
    std::fprintf(stderr, "unknown mode '%s' (lfcp|lfp|fcp|fp|lf|f)\n",
                 s);
    std::exit(1);
}

void
addRow(TextTable &t, const char *name, const exp::Outcome &o)
{
    t.row({name, TextTable::num(o.metrics.slowdownPct),
           TextTable::num(o.metrics.energySavingsPct),
           TextTable::num(o.metrics.energyDelayImprovementPct),
           TextTable::num(o.reconfigs, 0)});
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("benchmarks:\n");
        for (const auto &n : workload::suiteNames())
            std::printf("  %s\n", n.c_str());
        std::printf("\nusage: %s <bench> "
                    "[profile [mode] [d] | offline [d] | "
                    "online [aggr] | global]\n",
                    argv[0]);
        return 0;
    }
    std::string bench = argv[1];
    if (!workload::isSuiteBenchmark(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     bench.c_str());
        return 1;
    }

    exp::ExpConfig cfg;
    cfg.cacheFile.clear();  // explorer runs are always fresh
    exp::Runner runner(cfg);

    TextTable t;
    t.header({"policy", "slowdown %", "savings %", "ExD gain %",
              "reconfigs"});

    const char *policy = argc > 2 ? argv[2] : "all";
    if (!std::strcmp(policy, "all")) {
        addRow(t, "off-line", runner.offline(bench, cfg.d));
        addRow(t, "on-line", runner.online(bench, 1.0));
        addRow(t, "profile L+F",
               runner.profile(bench, core::ContextMode::LF, cfg.d));
        addRow(t, "global", runner.global(bench));
    } else if (!std::strcmp(policy, "profile")) {
        core::ContextMode mode =
            argc > 3 ? parseMode(argv[3]) : core::ContextMode::LF;
        double d = argc > 4 ? std::atof(argv[4]) : cfg.d;
        auto o = runner.profile(bench, mode, d);
        addRow(t, core::contextModeName(mode), o);
        std::printf("static points: %g reconfig / %g instrumentation; "
                    "tables %.2f KB\n",
                    o.staticReconfigPoints, o.staticInstrPoints,
                    o.tableBytes / 1024.0);
    } else if (!std::strcmp(policy, "offline")) {
        double d = argc > 3 ? std::atof(argv[3]) : cfg.d;
        addRow(t, "off-line", runner.offline(bench, d));
    } else if (!std::strcmp(policy, "online")) {
        double a = argc > 3 ? std::atof(argv[3]) : 1.0;
        addRow(t, "on-line", runner.online(bench, a));
    } else if (!std::strcmp(policy, "global")) {
        auto o = runner.global(bench);
        addRow(t, "global", o);
        std::printf("matched chip frequency: %.0f MHz\n",
                    o.globalFreq);
    } else {
        std::fprintf(stderr, "unknown policy '%s'\n", policy);
        return 1;
    }

    std::printf("%s (window %llu instructions, vs MCD baseline)\n",
                bench.c_str(),
                (unsigned long long)cfg.productionWindow);
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
