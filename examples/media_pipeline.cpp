/**
 * @file
 * Domain scenario 1: a MediaBench-style codec (gsm decode) compared
 * across all four control strategies — the workloads the paper's
 * introduction motivates (rate-based multimedia kernels with
 * per-frame phase structure).
 */

#include <cstdio>

#include "control/offline.hh"
#include "control/online.hh"
#include "core/pipeline.hh"
#include "sim/processor.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workload/suite.hh"

#include <sstream>

using namespace mcd;

int
main()
{
    const std::uint64_t window = 150'000;
    workload::Benchmark bm = workload::makeBenchmark("gsm_decode");
    sim::SimConfig scfg;
    scfg.rampNsPerMhz = 2.2;
    power::PowerConfig pcfg;

    // MCD baseline.
    sim::Processor base(scfg, pcfg, bm.program, bm.ref);
    sim::RunResult base_run = base.run(window);

    TextTable t;
    t.header({"method", "time us", "energy uJ", "slowdown %",
              "savings %", "ExD gain %"});
    auto report = [&](const char *name, const sim::RunResult &r) {
        Metrics m = computeMetrics(static_cast<double>(r.timePs),
                                   r.chipEnergyNj,
                                   static_cast<double>(base_run.timePs),
                                   base_run.chipEnergyNj);
        t.row({name,
               TextTable::num(static_cast<double>(r.timePs) / 1e6, 1),
               TextTable::num(r.chipEnergyNj / 1000.0, 1),
               TextTable::num(m.slowdownPct),
               TextTable::num(m.energySavingsPct),
               TextTable::num(m.energyDelayImprovementPct)});
    };
    report("MCD baseline", base_run);

    // Off-line oracle.
    control::OfflineConfig oc;
    oc.slowdownPct = 10.0;
    report("off-line oracle",
           control::offlineRun(oc, bm.program, bm.ref, scfg, pcfg,
                               window));

    // On-line attack/decay.
    control::OnlineConfig onc;
    control::AttackDecayController ctl(onc, scfg);
    sim::Processor onl(scfg, pcfg, bm.program, bm.ref);
    onl.setIntervalHook(&ctl, onc.intervalInstrs);
    report("on-line attack/decay", onl.run(window));

    // Profile-driven L+F (trained on the small input).
    core::PipelineConfig pc;
    pc.mode = core::ContextMode::LF;
    pc.slowdownPct = 10.0;
    core::ProfilePipeline pipe(bm.program, pc);
    pipe.train(bm.train, scfg, pcfg);
    report("profile L+F",
           pipe.runProduction(bm.ref, scfg, pcfg, window));

    std::printf("gsm decode under the four control strategies "
                "(reference input)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
