/**
 * @file
 * Domain scenario 2: calling-context sensitivity on epic encode
 * (Section 4.2 of the paper).  internal_filter is called from six
 * call sites with different behaviour; call-site tracking (the C
 * modes) can choose different frequencies per invocation, while the
 * site-blind modes settle for the average.
 */

#include <cstdio>
#include <sstream>

#include "core/pipeline.hh"
#include "sim/processor.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workload/suite.hh"

using namespace mcd;

int
main()
{
    const std::uint64_t window = 150'000;
    workload::Benchmark bm = workload::makeBenchmark("epic_encode");
    sim::SimConfig scfg;
    scfg.rampNsPerMhz = 2.2;
    power::PowerConfig pcfg;

    sim::Processor base(scfg, pcfg, bm.program, bm.ref);
    sim::RunResult base_run = base.run(window);

    const core::ContextMode modes[] = {
        core::ContextMode::LFCP, core::ContextMode::LFP,
        core::ContextMode::FCP,  core::ContextMode::FP,
        core::ContextMode::LF,   core::ContextMode::F,
    };

    TextTable t;
    t.header({"context", "nodes", "long-running", "static instr",
              "reconfigs", "slowdown %", "savings %"});
    for (auto mode : modes) {
        core::PipelineConfig pc;
        pc.mode = mode;
        pc.slowdownPct = 10.0;
        core::ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, scfg, pcfg);
        core::RuntimeStats rt;
        sim::RunResult r =
            pipe.runProduction(bm.ref, scfg, pcfg, window, &rt);
        Metrics m = computeMetrics(static_cast<double>(r.timePs),
                                   r.chipEnergyNj,
                                   static_cast<double>(base_run.timePs),
                                   base_run.chipEnergyNj);
        t.row({core::contextModeName(mode),
               std::to_string(pipe.tree().size()),
               std::to_string(pipe.tree().longRunningIds().size()),
               std::to_string(pipe.plan().staticInstrPoints),
               std::to_string(
                   static_cast<unsigned long>(rt.dynReconfigPoints)),
               TextTable::num(m.slowdownPct),
               TextTable::num(m.energySavingsPct)});
    }
    std::printf("epic encode: the six context definitions "
                "(internal_filter called from 6 sites)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
