/**
 * @file
 * Domain scenario 3: authoring a custom workload and exploring the
 * slowdown-threshold trade-off (the knob behind Figures 10/11).
 *
 * The workload is a two-phase scientific kernel: a memory-bound
 * sparse gather phase and an FP-dense stencil phase — exactly the
 * kind of per-phase domain imbalance MCD DVFS exploits.
 */

#include <cstdio>
#include <sstream>

#include "core/pipeline.hh"
#include "sim/processor.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace mcd;

namespace
{

workload::Program
buildSolver()
{
    workload::ProgramBuilder b("custom_solver");

    workload::InstructionMix gather;
    gather.set(workload::InstrClass::Load, 0.34)
        .set(workload::InstrClass::Store, 0.08)
        .branches(0.10, 0.05)
        .mem(12 * 1024 * 1024, 0.2);  // cache-hostile

    workload::InstructionMix stencil;
    stencil.set(workload::InstrClass::FpAdd, 0.28)
        .set(workload::InstrClass::FpMul, 0.18)
        .set(workload::InstrClass::Load, 0.26)
        .set(workload::InstrClass::Store, 0.08)
        .branches(0.05, 0.01)
        .mem(4 * 1024 * 1024, 0.97);  // streaming

    workload::MixId g = b.mix(gather);
    workload::MixId s = b.mix(stencil);

    b.func("gather_phase");
    b.loop(40, 0.6, [&] { b.block(g, 220); });

    b.func("stencil_phase");
    b.loop(36, 0.6, [&] { b.block(s, 260); });

    b.func("main");
    b.loop(8, 1.0, [&] {
        b.call("gather_phase");
        b.call("stencil_phase");
    });
    return b.build("main");
}

} // namespace

int
main()
{
    const std::uint64_t window = 150'000;
    workload::Program program = buildSolver();
    workload::InputSet train{"train", 7, 1.0, {}};
    workload::InputSet ref{"ref", 8, 1.4, {}};

    sim::SimConfig scfg;
    scfg.rampNsPerMhz = 2.2;
    power::PowerConfig pcfg;

    sim::Processor base(scfg, pcfg, program, ref);
    sim::RunResult base_run = base.run(window);

    TextTable t;
    t.header({"d %", "slowdown %", "savings %", "ExD gain %", "fe MHz",
              "int MHz", "fp MHz", "mem MHz"});
    for (double d : {2.0, 5.0, 10.0, 15.0, 20.0}) {
        core::PipelineConfig pc;
        pc.mode = core::ContextMode::LF;
        pc.slowdownPct = d;
        core::ProfilePipeline pipe(program, pc);
        pipe.train(train, scfg, pcfg);
        sim::RunResult r = pipe.runProduction(ref, scfg, pcfg, window);
        Metrics m = computeMetrics(static_cast<double>(r.timePs),
                                   r.chipEnergyNj,
                                   static_cast<double>(base_run.timePs),
                                   base_run.chipEnergyNj);
        t.row({TextTable::num(d, 0), TextTable::num(m.slowdownPct),
               TextTable::num(m.energySavingsPct),
               TextTable::num(m.energyDelayImprovementPct),
               TextTable::num(r.avgFreq[0], 0),
               TextTable::num(r.avgFreq[1], 0),
               TextTable::num(r.avgFreq[2], 0),
               TextTable::num(r.avgFreq[3], 0)});
    }
    std::printf("custom two-phase solver: slowdown-threshold sweep "
                "(profile-driven L+F)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
