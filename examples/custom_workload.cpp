/**
 * @file
 * Domain scenario 3: authoring a custom workload with the spec text
 * format (docs/WORKLOADS.md) and exploring the slowdown-threshold
 * trade-off (the knob behind Figures 10/11).
 *
 * The workload is a two-phase scientific kernel: a memory-bound
 * sparse gather phase and an FP-dense stencil phase — exactly the
 * kind of per-phase domain imbalance MCD DVFS exploits.  The same
 * text, saved to a file, runs in every bench binary via
 * `--workload @file`.
 */

#include <cstdio>
#include <sstream>

#include "core/pipeline.hh"
#include "sim/processor.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workload/author.hh"

using namespace mcd;

namespace
{

/** The authored program: sections mirror the name: key=value spec
 *  idiom; mixes are declared once and referenced by id; loops nest
 *  until the matching `end`.  Unknown keys are hard errors. */
const char *const solverText = R"(# custom two-phase solver
program: name=custom_solver, entry=main

input: set=train, seed=7, scale=1.0
input: set=ref, seed=8, scale=1.4

# cache-hostile sparse gather vs. streaming FP stencil
mix: id=gather, load=0.34, store=0.08, branch=0.10, noise=0.05, ws=12582912, stream=0.2
mix: id=stencil, fadd=0.28, fmul=0.18, load=0.26, store=0.08, branch=0.05, noise=0.01, ws=4194304, stream=0.97

func: name=gather_phase
  loop: trips=40, scale=0.6
    block: mix=gather, n=220
  end

func: name=stencil_phase
  loop: trips=36, scale=0.6
    block: mix=stencil, n=260
  end

func: name=main
  loop: trips=8, scale=1.0
    call: f=gather_phase
    call: f=stencil_phase
  end
)";

} // namespace

int
main()
{
    const std::uint64_t window = 150'000;
    workload::Benchmark bm;
    try {
        bm = workload::parseProgram(solverText);
    } catch (const workload::SpecError &e) {
        std::fprintf(stderr, "custom_workload: %s\n", e.what());
        return 1;
    }

    sim::SimConfig scfg;
    scfg.rampNsPerMhz = 2.2;
    power::PowerConfig pcfg;

    sim::Processor base(scfg, pcfg, bm.program, bm.ref);
    sim::RunResult base_run = base.run(window);

    TextTable t;
    t.header({"d %", "slowdown %", "savings %", "ExD gain %", "fe MHz",
              "int MHz", "fp MHz", "mem MHz"});
    for (double d : {2.0, 5.0, 10.0, 15.0, 20.0}) {
        core::PipelineConfig pc;
        pc.mode = core::ContextMode::LF;
        pc.slowdownPct = d;
        core::ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, scfg, pcfg);
        sim::RunResult r =
            pipe.runProduction(bm.ref, scfg, pcfg, window);
        Metrics m = computeMetrics(static_cast<double>(r.timePs),
                                   r.chipEnergyNj,
                                   static_cast<double>(base_run.timePs),
                                   base_run.chipEnergyNj);
        t.row({TextTable::num(d, 0), TextTable::num(m.slowdownPct),
               TextTable::num(m.energySavingsPct),
               TextTable::num(m.energyDelayImprovementPct),
               TextTable::num(r.avgFreq[0], 0),
               TextTable::num(r.avgFreq[1], 0),
               TextTable::num(r.avgFreq[2], 0),
               TextTable::num(r.avgFreq[3], 0)});
    }
    std::printf("custom two-phase solver (authored spec text): "
                "slowdown-threshold sweep (profile-driven L+F)\n");
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);

    // Round-trip proof: the canonical text is what the registry
    // content-addresses (prog:name=...,hash=...) for cache keys.
    std::printf("\ncanonical form (printProgram):\n%s",
                workload::printProgram(bm).c_str());
    return 0;
}
