/**
 * @file
 * Quickstart: build a small workload with the builder API, train the
 * profile-driven DVFS pipeline on it, and run production with
 * instrumented reconfiguration.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "sim/processor.hh"
#include "util/stats.hh"

using namespace mcd;

int
main()
{
    // --- 1. Describe a workload --------------------------------------
    // A toy signal-processing program: an integer filter kernel called
    // from a long-running sample loop, plus an FP post-processing pass.
    workload::ProgramBuilder b("quickstart");

    workload::InstructionMix filter_mix;
    filter_mix.set(workload::InstrClass::Load, 0.22)
        .set(workload::InstrClass::Store, 0.08)
        .set(workload::InstrClass::IntMul, 0.05)
        .branches(0.12, 0.02)
        .mem(8 * 1024, 0.9);

    workload::InstructionMix post_mix;
    post_mix.set(workload::InstrClass::FpAdd, 0.25)
        .set(workload::InstrClass::FpMul, 0.15)
        .set(workload::InstrClass::Load, 0.25)
        .branches(0.06, 0.01)
        .mem(256 * 1024, 0.95);

    workload::MixId filter = b.mix(filter_mix);
    workload::MixId post = b.mix(post_mix);

    b.func("filter_block");
    b.block(filter, 80);

    b.func("postprocess");
    b.loop(60, 1.0, [&] { b.block(post, 120); });

    b.func("main");
    b.loop(900, 1.0, [&] { b.call("filter_block"); });
    b.call("postprocess");

    workload::Program program = b.build("main");

    workload::InputSet train{"train", 1, 1.0, {}};
    workload::InputSet ref{"ref", 2, 1.5, {}};

    // --- 2. Baseline run: MCD processor, all domains at 1 GHz --------
    sim::SimConfig scfg;
    scfg.rampNsPerMhz = 2.2;  // time-scaled DVFS ramp (docs/ARCHITECTURE.md)
    power::PowerConfig pcfg;

    sim::Processor base(scfg, pcfg, program, ref);
    sim::RunResult base_run = base.run(120'000);
    std::printf("baseline: %.1f us, %.1f uJ, IPC %.2f\n",
                static_cast<double>(base_run.timePs) / 1e6,
                base_run.chipEnergyNj / 1000.0, base_run.ipc);

    // --- 3. Train the profile-driven pipeline (phases 1-4) -----------
    core::PipelineConfig pc;
    pc.mode = core::ContextMode::LF;  // the paper's recommended mode
    pc.slowdownPct = 8.0;
    core::ProfilePipeline pipe(program, pc);
    pipe.train(train, scfg, pcfg);

    std::printf("call tree: %zu nodes, %zu long-running\n",
                pipe.tree().size(), pipe.tree().longRunningIds().size());
    for (auto id : pipe.tree().longRunningIds()) {
        const auto &freqs = pipe.nodeFrequencies().at(id);
        std::printf("  node %-24s -> fe %4.0f int %4.0f fp %4.0f "
                    "mem %4.0f MHz\n",
                    pipe.tree().signature(id, program).c_str(),
                    freqs[0], freqs[1], freqs[2], freqs[3]);
    }

    // --- 4. Production run of the edited binary ----------------------
    core::RuntimeStats rt;
    sim::RunResult prod =
        pipe.runProduction(ref, scfg, pcfg, 120'000, &rt);
    Metrics m = computeMetrics(static_cast<double>(prod.timePs),
                               prod.chipEnergyNj,
                               static_cast<double>(base_run.timePs),
                               base_run.chipEnergyNj);
    std::printf("production: %.1f us, %.1f uJ\n",
                static_cast<double>(prod.timePs) / 1e6,
                prod.chipEnergyNj / 1000.0);
    std::printf("  slowdown          %6.2f %%\n", m.slowdownPct);
    std::printf("  energy savings    %6.2f %%\n", m.energySavingsPct);
    std::printf("  energy-delay gain %6.2f %%\n",
                m.energyDelayImprovementPct);
    std::printf("  reconfigurations  %llu (instrumentation points "
                "executed: %llu)\n",
                static_cast<unsigned long long>(prod.reconfigs),
                static_cast<unsigned long long>(rt.dynInstrPoints));
    return 0;
}
