/**
 * @file
 * Tests for the all-policy tournament (exp/tournament.hh): roster
 * construction (every sweepable registered policy, chip-coord
 * excluded), the pinned train/holdout workload split, cell-key plan
 * determinism, a golden ranked table on a pinned 3-policy x
 * 2-workload cross-product, `--jobs` byte-identity, and the
 * constructor's refusals (malformed specs, empty plans, non-sweepable
 * policies, sampled-mode runners).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "control/policy.hh"
#include "exp/experiment.hh"
#include "exp/tournament.hh"
#include "workload/spec.hh"
#include "workload/split.hh"

#include "cache_key_util.hh"

using namespace mcd;
using exp::ExpConfig;
using exp::Runner;
using exp::Tournament;
using exp::TournamentConfig;
using exp::TournamentResult;
using workload::SpecError;

namespace
{

/** Small windows so a pinned cross-product stays test-sized. */
ExpConfig
smallConfig()
{
    ExpConfig cfg;
    cfg.productionWindow = 8'000;
    cfg.analysisWindow = 8'000;
    cfg.offlineInterval = 4'000;
    cfg.learned.trainWindow = 6'000;
    cfg.learned.trainPasses = 2;
    cfg.cacheFile.clear();
    return cfg;
}

/** The pinned 3-policy x 2-workload cross-product the golden-table
 *  and jobs-identity tests share. */
TournamentConfig
pinnedConfig()
{
    TournamentConfig cfg;
    cfg.policies = {"baseline", "global", "offline:d=10"};
    cfg.workloads = {"gsm_decode", "gen:phases=2,seed=7"};
    return cfg;
}

} // namespace

// ---------------------------------------------------------------- //
// The workload split                                               //
// ---------------------------------------------------------------- //

TEST(TournamentSplit, MembershipIsPinned)
{
    // The split IS the experiment: heuristics were hand-tuned on the
    // curated suite, so the held-out `gen:` workloads are the only
    // honest ground for the learned policy's ranking.  Changing
    // membership silently would invalidate every committed ranking.
    EXPECT_EQ(workload::trainingSplit(),
              (std::vector<std::string>{"gsm_decode", "adpcm_decode",
                                        "gsm_encode", "mcf"}));
    ASSERT_EQ(workload::holdoutSplit().size(), 3u);
    for (const std::string &w : workload::holdoutSplit())
        EXPECT_EQ(w.rfind("gen:", 0), 0u) << w;

    std::vector<std::string> all = workload::tournamentWorkloads();
    ASSERT_EQ(all.size(), 7u);
    EXPECT_TRUE(std::equal(workload::trainingSplit().begin(),
                           workload::trainingSplit().end(),
                           all.begin()));
}

// ---------------------------------------------------------------- //
// Plan construction                                                //
// ---------------------------------------------------------------- //

TEST(TournamentPlan, DefaultRosterIsEverySweepablePolicy)
{
    Runner runner(smallConfig());
    Tournament t(runner);

    std::vector<std::string> names;
    for (const std::string &spec : t.policies())
        names.push_back(spec.substr(0, spec.find(':')));
    for (const char *want : {"baseline", "global", "hybrid",
                             "learned", "offline", "online",
                             "profile"})
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end())
            << want;
    // chip-coord's run() is a chip-sweep panic; sweepable() keeps it
    // out of the all-policy roster.
    EXPECT_EQ(std::find(names.begin(), names.end(), "chip-coord"),
              names.end());
    EXPECT_TRUE(std::is_sorted(t.policies().begin(),
                               t.policies().end()));

    EXPECT_EQ(t.oracle(), "offline:d=10.000");
    EXPECT_EQ(t.workloads().size(),
              workload::tournamentWorkloads().size());
}

TEST(TournamentPlan, CellKeysAreDeterministicAndTagged)
{
    Runner runner(smallConfig());
    Tournament t(runner, pinnedConfig());
    std::vector<std::string> keys = t.cellKeys();
    // oracle cells (one per workload) + 3 policies x 2 workloads
    ASSERT_EQ(keys.size(), 2u + 3u * 2u);
    for (const std::string &k : keys)
        EXPECT_TRUE(testpins::hasCacheKeyTag(k)) << k;
    EXPECT_EQ(keys, Tournament(runner, pinnedConfig()).cellKeys());
    // The oracle rows lead the plan.
    EXPECT_NE(keys[0].find("|offline:d=10.000|"), std::string::npos);
}

TEST(TournamentPlan, MalformedPlansDieInTheConstructor)
{
    Runner runner(smallConfig());

    TournamentConfig cfg;
    cfg.oracle = "nonesuch";
    EXPECT_THROW(Tournament(runner, cfg), SpecError);

    cfg = TournamentConfig();
    cfg.policies = {"offline:warp=1"};
    EXPECT_THROW(Tournament(runner, cfg), SpecError);

    cfg = TournamentConfig();
    cfg.workloads = {"gen:warp=9"};
    EXPECT_THROW(Tournament(runner, cfg), SpecError);

    // Naming a non-sweepable policy explicitly is refused, not
    // silently dropped.
    cfg = TournamentConfig();
    cfg.policies = {"chip-coord"};
    EXPECT_THROW(Tournament(runner, cfg), SpecError);
}

TEST(TournamentPlan, SampledRunnersAreRefused)
{
    ExpConfig cfg = smallConfig();
    cfg.sim.sampling.mode = sim::SamplingMode::Sampled;
    cfg.sim.sampling.intervalInstrs = 4'000;
    cfg.sim.sampling.sampleInstrs = 600;
    cfg.sim.sampling.warmupInstrs = 200;
    Runner runner(cfg);
    // The roster holds feedback controllers whose decisions diverge
    // under sampling (docs/SAMPLING.md); a mixed-trust ranking is
    // worse than none.
    EXPECT_THROW(Tournament t(runner), SpecError);
}

// ---------------------------------------------------------------- //
// Results                                                          //
// ---------------------------------------------------------------- //

TEST(TournamentRun, GoldenRankedTable)
{
    Runner runner(smallConfig());
    TournamentResult r = Tournament(runner, pinnedConfig()).run(1);

    ASSERT_EQ(r.ranking.size(), 3u);
    EXPECT_EQ(r.holdoutCount, 1u);
    // Structural invariants of any ranking: ascending regret, the
    // oracle's own row at zero regret, the baseline's regret equal to
    // the oracle's gain.
    EXPECT_LE(r.ranking[0].meanRegretPct, r.ranking[1].meanRegretPct);
    EXPECT_LE(r.ranking[1].meanRegretPct, r.ranking[2].meanRegretPct);
    EXPECT_EQ(r.ranking[0].policy, "offline:d=10.000");
    EXPECT_DOUBLE_EQ(r.ranking[0].meanRegretPct, 0.0);
    for (const exp::TournamentRow &row : r.ranking) {
        ASSERT_EQ(row.cells.size(), 2u);
        EXPECT_EQ(row.cells[0].workload, "gsm_decode");
        EXPECT_FALSE(row.cells[0].holdout);
        EXPECT_TRUE(row.cells[1].holdout);
        if (row.policy == "baseline") {
            EXPECT_DOUBLE_EQ(
                row.meanRegretPct,
                (r.ranking[0].cells[0]
                     .outcome.metrics.energyDelayImprovementPct +
                 r.ranking[0].cells[1]
                     .outcome.metrics.energyDelayImprovementPct) /
                    2.0);
        }
    }

    // The rendered table is the deliverable bench_tournament prints
    // and CI's rank-stability gate diffs; pin it byte-for-byte.
    // (Every constituent simulation is bit-deterministic, so these
    // exact bytes are reproducible on any host.)
    const char *golden =
        "policy tournament: regret vs offline:d=10.000 over 2 "
        "workloads (1 held-out gen:)\n"
        "rank            policy  regret %  holdout regret %  "
        "ExD gain %  slowdown %\n"
        "-----------------------------------------------------"
        "---------------------\n"
        "1     offline:d=10.000      0.00              0.00   "
        "    24.99        6.97\n"
        "2       global:d=5.000     17.89             17.54   "
        "     7.09        2.82\n"
        "3             baseline     24.99             25.39   "
        "     0.00        0.00\n";
    EXPECT_EQ(exp::renderTournamentTable(r), golden);
}

TEST(TournamentRun, JobsDoNotChangeTheBytes)
{
    Runner r1(smallConfig());
    TournamentResult serial =
        Tournament(r1, pinnedConfig()).run(1);
    Runner r4(smallConfig());
    TournamentResult threaded =
        Tournament(r4, pinnedConfig()).run(4);
    EXPECT_EQ(renderTournamentTable(serial),
              renderTournamentTable(threaded));
    ASSERT_EQ(serial.ranking.size(), threaded.ranking.size());
    for (std::size_t i = 0; i < serial.ranking.size(); ++i) {
        EXPECT_EQ(serial.ranking[i].policy,
                  threaded.ranking[i].policy);
        EXPECT_DOUBLE_EQ(serial.ranking[i].meanRegretPct,
                         threaded.ranking[i].meanRegretPct);
        EXPECT_DOUBLE_EQ(serial.ranking[i].holdoutRegretPct,
                         threaded.ranking[i].holdoutRegretPct);
    }
}
