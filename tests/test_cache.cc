/**
 * @file
 * Tests for the cache models and main memory.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

using namespace mcd;
using namespace mcd::sim;

TEST(Cache, ColdMissThenHit)
{
    Cache c(64, 2, 64);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103F));   // same line
    EXPECT_FALSE(c.access(0x1040));  // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictsOldest)
{
    // 1 KB, 2-way, 64 B lines -> 16 lines, 8 sets; addresses a set
    // apart by 8 lines collide.
    Cache c2(1, 2, 64);
    ASSERT_EQ(c2.numSets(), 8u);
    std::uint64_t set_stride = 8 * 64;
    EXPECT_FALSE(c2.access(0 * set_stride));
    EXPECT_FALSE(c2.access(1 * set_stride));
    EXPECT_TRUE(c2.access(0 * set_stride));  // 0 now MRU
    EXPECT_FALSE(c2.access(2 * set_stride)); // evicts 1
    EXPECT_TRUE(c2.access(0 * set_stride));
    EXPECT_FALSE(c2.access(1 * set_stride)); // 1 was evicted
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c(1, 1, 64);  // 1 KB direct mapped: 16 sets
    std::uint64_t stride = 16 * 64;
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(stride));   // conflict
    EXPECT_FALSE(c.access(0));        // conflict again
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(1, 2, 64);
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_FALSE(c.probe(0x9940));
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 0u);  // probes are not counted
}

TEST(Cache, WorkingSetBiggerThanCacheMisses)
{
    Cache c(64, 2, 64);  // 64 KB
    // Stream 1 MB twice: second pass still misses (capacity).
    std::uint64_t misses_before;
    for (std::uint64_t a = 0; a < (1u << 20); a += 64)
        c.access(a);
    misses_before = c.misses();
    for (std::uint64_t a = 0; a < (1u << 20); a += 64)
        c.access(a);
    EXPECT_EQ(c.misses(), 2 * misses_before);
}

TEST(Cache, SmallWorkingSetFitsAfterWarmup)
{
    Cache c(64, 2, 64);
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 16 * 1024; a += 64)
            c.access(a);
    // Second pass should be all hits.
    EXPECT_EQ(c.misses(), 16 * 1024 / 64);
}

TEST(MainMemory, FixedLatency)
{
    MainMemory m(60000, 4000);
    EXPECT_EQ(m.access(1000), 61000u);
    EXPECT_EQ(m.requests(), 1u);
}

TEST(MainMemory, BusSerializesBackToBack)
{
    MainMemory m(60000, 4000);
    Tick t1 = m.access(0);
    Tick t2 = m.access(0);
    Tick t3 = m.access(0);
    EXPECT_EQ(t1, 60000u);
    EXPECT_EQ(t2, 64000u);  // queued behind first
    EXPECT_EQ(t3, 68000u);
    // A late request after the bus drains sees only the latency.
    EXPECT_EQ(m.access(1'000'000), 1'060'000u);
}
