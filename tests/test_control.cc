/**
 * @file
 * Tests for the baseline controllers: on-line attack/decay, off-line
 * oracle, global DVS.
 */

#include <gtest/gtest.h>

#include "control/globaldvs.hh"
#include "control/offline.hh"
#include "control/online.hh"
#include "sim/processor.hh"
#include "workload/suite.hh"

using namespace mcd;
using namespace mcd::control;
using namespace mcd::sim;
using namespace mcd::workload;

namespace
{

/** Scripted DvfsControl for controller unit tests. */
class FakeDvfs : public DvfsControl
{
  public:
    void setTarget(Domain d, Mhz f) override
    {
        targets[static_cast<size_t>(d)] = f;
    }
    Mhz freq(Domain d) const override
    {
        return targets[static_cast<size_t>(d)];
    }
    Mhz targetFreq(Domain d) const override
    {
        return targets[static_cast<size_t>(d)];
    }
    std::array<Mhz, NUM_SCALED_DOMAINS> targets{1000.0, 1000.0, 1000.0,
                                                1000.0};
};

IntervalStats
stats(double ipc, double fe_occ, double int_occ, double fp_occ,
      double mem_occ, double rob)
{
    IntervalStats s;
    s.instrs = 2000;
    s.timePs = 2'000'000;
    s.ipc = ipc;
    s.queueOcc = {fe_occ, int_occ, fp_occ, mem_occ};
    s.robOcc = rob;
    return s;
}

} // namespace

TEST(AttackDecay, IdleDomainDecaysToFloor)
{
    OnlineConfig cfg;
    AttackDecayController ctl(cfg, SimConfig{});
    FakeDvfs dvfs;
    // FP queue empty throughout.
    for (int i = 0; i < 400; ++i)
        ctl.onInterval(stats(1.0, 2.0, 5.0, 0.0, 10.0, 40.0), dvfs);
    EXPECT_DOUBLE_EQ(dvfs.targets[static_cast<size_t>(
                         Domain::FloatingPoint)],
                     250.0);
}

TEST(AttackDecay, BackloggedQueueAttacksUp)
{
    OnlineConfig cfg;
    AttackDecayController ctl(cfg, SimConfig{});
    FakeDvfs dvfs;
    dvfs.targets[static_cast<size_t>(Domain::Integer)] = 500.0;
    // Integer queue nearly full: must attack upward.
    ctl.onInterval(stats(1.0, 2.0, 18.0, 1.0, 10.0, 40.0), dvfs);
    ctl.onInterval(stats(1.0, 2.0, 18.0, 1.0, 10.0, 40.0), dvfs);
    EXPECT_GT(dvfs.targets[static_cast<size_t>(Domain::Integer)],
              500.0);
    EXPECT_GT(ctl.attacks(), 0u);
}

TEST(AttackDecay, IpcCollapseTriggersRecovery)
{
    OnlineConfig cfg;
    AttackDecayController ctl(cfg, SimConfig{});
    FakeDvfs dvfs;
    for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
        dvfs.targets[static_cast<size_t>(d)] = 400.0;
    ctl.onInterval(stats(2.0, 2.0, 5.0, 1.0, 10.0, 40.0), dvfs);
    // IPC halves: recovery returns everything to full speed.
    ctl.onInterval(stats(1.0, 2.0, 5.0, 1.0, 10.0, 40.0), dvfs);
    for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
        EXPECT_DOUBLE_EQ(dvfs.targets[static_cast<size_t>(d)], 1000.0);
    EXPECT_GT(ctl.recoveries(), 0u);
}

TEST(AttackDecay, EmptyRobAttacksFrontEndUp)
{
    OnlineConfig cfg;
    AttackDecayController ctl(cfg, SimConfig{});
    FakeDvfs dvfs;
    dvfs.targets[static_cast<size_t>(Domain::FrontEnd)] = 400.0;
    ctl.onInterval(stats(1.0, 1.0, 5.0, 1.0, 10.0, 4.0), dvfs);
    ctl.onInterval(stats(1.0, 1.0, 5.0, 1.0, 10.0, 4.0), dvfs);
    EXPECT_GT(dvfs.targets[static_cast<size_t>(Domain::FrontEnd)],
              400.0);
}

TEST(AttackDecay, TargetsStayInLegalRange)
{
    OnlineConfig cfg;
    cfg.aggressiveness = 10.0;
    AttackDecayController ctl(cfg, SimConfig{});
    FakeDvfs dvfs;
    for (int i = 0; i < 500; ++i) {
        ctl.onInterval(stats(1.0 + (i % 3), i % 15, (i * 7) % 20,
                             (i * 3) % 15, (i * 5) % 60, (i * 11) % 80),
                       dvfs);
        for (int d = 0; d < NUM_SCALED_DOMAINS; ++d) {
            ASSERT_GE(dvfs.targets[static_cast<size_t>(d)], 250.0);
            ASSERT_LE(dvfs.targets[static_cast<size_t>(d)], 1000.0);
        }
    }
}

TEST(Offline, ProducesOnePointPerInterval)
{
    Benchmark bm = makeBenchmark("gsm_decode");
    SimConfig scfg;
    power::PowerConfig pcfg;
    OfflineConfig cfg;
    cfg.intervalInstrs = 5'000;
    auto sched = offlineAnalyze(cfg, bm.program, bm.train, scfg, pcfg,
                                30'000);
    EXPECT_EQ(sched.size(), 6u);
    // Points are sorted and lead-shifted.
    for (std::size_t i = 1; i < sched.size(); ++i)
        EXPECT_GT(sched[i].atInstr, sched[i - 1].atInstr);
    EXPECT_EQ(sched[0].atInstr, 0u);
}

TEST(Offline, RunSavesEnergyWithBoundedSlowdown)
{
    Benchmark bm = makeBenchmark("swim");
    SimConfig scfg;
    scfg.rampNsPerMhz = 2.2;
    power::PowerConfig pcfg;

    Processor base(scfg, pcfg, bm.program, bm.train);
    RunResult rb = base.run(60'000);

    OfflineConfig cfg;
    cfg.slowdownPct = 8.0;
    RunResult ro = offlineRun(cfg, bm.program, bm.train, scfg, pcfg,
                              60'000);
    EXPECT_LT(ro.chipEnergyNj, rb.chipEnergyNj * 0.95);
    double slow = (static_cast<double>(ro.timePs) -
                   static_cast<double>(rb.timePs)) /
                  static_cast<double>(rb.timePs);
    EXPECT_LT(slow, 0.30);
}

TEST(GlobalDvs, MatchesTargetRuntime)
{
    Benchmark bm = makeBenchmark("gsm_decode");
    SimConfig scfg;
    power::PowerConfig pcfg;
    // Target: 10% slower than full speed.
    Processor full(scfg, pcfg, bm.program, bm.train);
    RunResult rf = full.run(40'000);
    Tick target = rf.timePs + rf.timePs / 10;
    auto g = globalDvsMatch(bm.program, bm.train, scfg, pcfg, 40'000,
                            target, 7);
    EXPECT_LT(g.freq, 1000.0);
    EXPECT_LE(g.run.timePs, target);
    // Within ~6% below the target (bisection granularity).
    EXPECT_GT(static_cast<double>(g.run.timePs),
              static_cast<double>(target) * 0.90);
    EXPECT_LT(g.run.chipEnergyNj, rf.chipEnergyNj);
}

TEST(GlobalDvs, UnreachableTargetReturnsFullSpeed)
{
    Benchmark bm = makeBenchmark("gsm_decode");
    SimConfig scfg;
    power::PowerConfig pcfg;
    auto g = globalDvsMatch(bm.program, bm.train, scfg, pcfg, 20'000,
                            1, 4);
    EXPECT_DOUBLE_EQ(g.freq, 1000.0);
}
