/**
 * @file
 * Tests for frequency steps and cycles-at-frequency histograms.
 */

#include <gtest/gtest.h>

#include "util/histogram.hh"

using mcd::FreqHistogram;
using mcd::FreqSteps;

TEST(FreqSteps, DefaultLayoutMatchesPaperRange)
{
    FreqSteps s;
    EXPECT_EQ(s.numSteps(), 31);
    EXPECT_DOUBLE_EQ(s.freqAt(0), 250.0);
    EXPECT_DOUBLE_EQ(s.freqAt(30), 1000.0);
}

TEST(FreqSteps, QuantizeRoundsToNearest)
{
    FreqSteps s;
    EXPECT_DOUBLE_EQ(s.quantize(262.0), 250.0);
    EXPECT_DOUBLE_EQ(s.quantize(263.0), 275.0);
    EXPECT_DOUBLE_EQ(s.quantize(999.0), 1000.0);
}

TEST(FreqSteps, ClampsOutOfRange)
{
    FreqSteps s;
    EXPECT_DOUBLE_EQ(s.quantize(100.0), 250.0);
    EXPECT_DOUBLE_EQ(s.quantize(5000.0), 1000.0);
    EXPECT_EQ(s.indexOf(0.0), 0);
    EXPECT_EQ(s.indexOf(1e9), 30);
}

TEST(FreqHistogram, AccumulatesAndTotals)
{
    FreqHistogram h;
    h.add(250.0, 100.0);
    h.add(1000.0, 50.0);
    h.add(1000.0, 25.0);
    EXPECT_DOUBLE_EQ(h.totalCycles(), 175.0);
    EXPECT_DOUBLE_EQ(h.binCycles(0), 100.0);
    EXPECT_DOUBLE_EQ(h.binCycles(30), 75.0);
}

TEST(FreqHistogram, MergePreservesTotal)
{
    FreqHistogram a, b;
    a.add(500.0, 10.0);
    b.add(500.0, 20.0);
    b.add(750.0, 5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.totalCycles(), 35.0);
    EXPECT_DOUBLE_EQ(a.binCycles(a.steps().indexOf(500.0)), 30.0);
}

TEST(FreqHistogram, MeanFreqWeighted)
{
    FreqHistogram h;
    EXPECT_DOUBLE_EQ(h.meanFreq(), 0.0);
    h.add(250.0, 1.0);
    h.add(1000.0, 1.0);
    EXPECT_DOUBLE_EQ(h.meanFreq(), 625.0);
}

/** Property sweep: every step index round-trips through freqAt/indexOf. */
class FreqStepsRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(FreqStepsRoundTrip, IndexRoundTrips)
{
    FreqSteps s;
    int i = GetParam();
    EXPECT_EQ(s.indexOf(s.freqAt(i)), i);
}

INSTANTIATE_TEST_SUITE_P(AllSteps, FreqStepsRoundTrip,
                         ::testing::Range(0, 31));
