/**
 * @file
 * Call-tree tests, including the paper's Figure 2 worked example:
 * main calls initm twice; initm contains loop L1 containing loop L2
 * which calls drand48.  The four context definitions yield four
 * different trees.
 */

#include <gtest/gtest.h>

#include "core/calltree.hh"
#include "core/profiler.hh"
#include "workload/program.hh"
#include "workload/stream.hh"

using namespace mcd;
using namespace mcd::core;
using namespace mcd::workload;

namespace
{

/** The paper's Figure 2 program. */
Program
figure2Program()
{
    ProgramBuilder b("fig2");
    InstructionMix m;
    MixId mx = b.mix(m);

    b.func("drand48");
    b.block(mx, 12);

    b.func("initm");
    b.loop(10, 0.0, [&] {          // L1 (loop id 0)
        b.loop(10, 0.0, [&] {      // L2 (loop id 1)
            b.call("drand48");
        });
    });

    b.func("main");
    b.call("initm");  // call site A
    b.call("initm");  // call site B
    return b.build("main");
}

CallTree
buildTree(const Program &p, ContextMode mode)
{
    CallTree tree(mode);
    Stream s(p, InputSet{});
    StreamItem item;
    while (s.next(item)) {
        if (item.kind == StreamItem::Kind::Marker)
            tree.onMarker(item.marker);
        else
            tree.onInstr();
    }
    return tree;
}

int
countNodes(const CallTree &t, NodeKind kind, std::uint16_t entity)
{
    int n = 0;
    for (auto id : t.nodeIds()) {
        const auto &node = t.node(id);
        if (node.kind != kind)
            continue;
        if (kind == NodeKind::Func && node.func == entity)
            ++n;
        if (kind == NodeKind::Loop && node.loop == entity)
            ++n;
    }
    return n;
}

} // namespace

TEST(CallTree, Figure2FullContext)
{
    Program p = figure2Program();
    CallTree t = buildTree(p, ContextMode::LFCP);
    const Function *initm = p.findFunction("initm");
    const Function *drand = p.findFunction("drand48");
    // Two initm children of main (distinct call sites), each with
    // L1 > L2 > one drand48 child: 2*(1 + 1 + 1 + 1) + 1 = 9 nodes.
    EXPECT_EQ(countNodes(t, NodeKind::Func, initm->id), 2);
    EXPECT_EQ(countNodes(t, NodeKind::Func, drand->id), 2);
    EXPECT_EQ(t.size(), 9u);
}

TEST(CallTree, Figure2NoCallSites)
{
    Program p = figure2Program();
    CallTree t = buildTree(p, ContextMode::LFP);
    const Function *initm = p.findFunction("initm");
    // Without call-site differentiation the two initm calls merge.
    EXPECT_EQ(countNodes(t, NodeKind::Func, initm->id), 1);
    EXPECT_EQ(t.size(), 5u);  // main, initm, L1, L2, drand48
}

TEST(CallTree, Figure2NoLoops)
{
    Program p = figure2Program();
    CallTree t = buildTree(p, ContextMode::FCP);
    // main, 2x initm, 2x drand48 — no loop nodes.
    EXPECT_EQ(t.size(), 5u);
    for (auto id : t.nodeIds())
        EXPECT_EQ(t.node(id).kind, NodeKind::Func);
}

TEST(CallTree, Figure2Cct)
{
    Program p = figure2Program();
    CallTree t = buildTree(p, ContextMode::FP);
    // The CCT of Ammons et al.: main, initm, drand48.
    EXPECT_EQ(t.size(), 3u);
}

TEST(CallTree, DrandInstancesSuperimposed)
{
    Program p = figure2Program();
    CallTree t = buildTree(p, ContextMode::LFP);
    const Function *drand = p.findFunction("drand48");
    for (auto id : t.nodeIds()) {
        const auto &n = t.node(id);
        if (n.kind == NodeKind::Func && n.func == drand->id) {
            // One node, 2 calls x 10 x 10 loop iterations.
            EXPECT_EQ(n.instances, 200u);
        }
    }
}

TEST(CallTree, InclusiveCountsRollUp)
{
    Program p = figure2Program();
    CallTree t = buildTree(p, ContextMode::LFCP);
    t.identifyLongRunning(1'000'000);  // nothing qualifies
    // main's inclusive count equals the whole program.
    std::uint64_t total = 0;
    for (auto id : t.nodeIds())
        total += t.node(id).selfInstrs;
    for (auto id : t.nodeIds()) {
        if (t.node(id).parent == 0) {
            EXPECT_EQ(t.node(id).inclInstrs, total);
        }
    }
}

TEST(CallTree, LongRunningExcludesLongChildren)
{
    // Figure 3's principle: a parent whose own work is small must
    // not become long-running just because a child is long.
    ProgramBuilder b("fig3ish");
    InstructionMix m;
    MixId mx = b.mix(m);
    b.func("hot");
    b.loop(600, 0.0, [&] { b.block(mx, 40); });  // 24k per call
    b.func("wrapper");
    b.block(mx, 50);  // tiny own work
    b.call("hot");
    b.func("main");
    b.loop(3, 0.0, [&] { b.call("wrapper"); });
    Program p = b.build("main");

    CallTree t = buildTree(p, ContextMode::FP);
    t.identifyLongRunning(10'000);
    const Function *hot = p.findFunction("hot");
    const Function *wrapper = p.findFunction("wrapper");
    for (auto id : t.nodeIds()) {
        const auto &n = t.node(id);
        if (n.kind != NodeKind::Func)
            continue;
        if (n.func == hot->id) {
            EXPECT_TRUE(n.longRunning);
        }
        if (n.func == wrapper->id) {
            EXPECT_FALSE(n.longRunning)
                << "wrapper's own 50 instrs must not qualify";
        }
    }
}

TEST(CallTree, SignaturesIdentifyPaths)
{
    Program p = figure2Program();
    CallTree t = buildTree(p, ContextMode::LFCP);
    std::set<std::string> sigs;
    for (auto id : t.nodeIds())
        sigs.insert(t.signature(id, p));
    EXPECT_EQ(sigs.size(), t.size()) << "signatures must be unique";
    // Sites distinguish the two initm paths: two distinct signatures
    // of the form "main>initm@<site>".
    std::set<std::string> initm_sigs;
    for (const auto &s : sigs)
        if (s.find(">initm@") != std::string::npos &&
            s.find('L') == std::string::npos)
            initm_sigs.insert(s);
    EXPECT_EQ(initm_sigs.size(), 2u);
}

TEST(Profiler, CapsInstructionCount)
{
    Program p = figure2Program();
    ProfileConfig cfg;
    cfg.maxInstrs = 100;
    CallTree t = profileProgram(p, InputSet{}, ContextMode::LFCP, cfg);
    std::uint64_t total = 0;
    for (auto id : t.nodeIds())
        total += t.node(id).selfInstrs;
    EXPECT_LE(total, 110u);
}

TEST(ContextMode, PredicateTable)
{
    EXPECT_TRUE(modeHasLoops(ContextMode::LFCP));
    EXPECT_TRUE(modeHasLoops(ContextMode::LF));
    EXPECT_FALSE(modeHasLoops(ContextMode::FP));
    EXPECT_TRUE(modeHasSites(ContextMode::LFCP));
    EXPECT_FALSE(modeHasSites(ContextMode::LFP));
    EXPECT_TRUE(modeTracksPath(ContextMode::FP));
    EXPECT_FALSE(modeTracksPath(ContextMode::F));
    EXPECT_STREQ(contextModeName(ContextMode::LFCP), "L+F+C+P");
}
