/**
 * @file
 * Instrumentation-runtime tests: reconfiguration on long-running
 * node entry, register save/restore at exit, label-0 behaviour on
 * untrained paths, overhead charging, dynamic counts.
 */

#include <gtest/gtest.h>

#include "core/editor.hh"
#include "core/profiler.hh"
#include "core/runtime.hh"
#include "workload/stream.hh"

using namespace mcd;
using namespace mcd::core;
using namespace mcd::workload;

namespace
{

struct Fixture
{
    Program program;
    CallTree tree{ContextMode::LF};
    InstrumentationPlan plan;

    explicit Fixture(ContextMode mode, double rare_prob_train = 0.0)
    {
        ProgramBuilder b("rt");
        InstructionMix m;
        MixId mx = b.mix(m);
        b.func("hot");
        b.loop(500, 0.0, [&] { b.block(mx, 40); });
        b.func("rare");
        b.call("hot");
        b.func("main");
        b.loop(4, 0.0, [&] {
            b.call("hot");
            b.call("rare", 0, 1.0, "rare_on");
        });
        program = b.build("main");
        InputSet train;
        train.with("rare_on", rare_prob_train);
        tree = profileProgram(program, train, mode, ProfileConfig());
        std::map<std::uint32_t, sim::FreqSet> freqs;
        for (auto id : tree.longRunningIds())
            freqs[id] = {600.0, 550.0, 250.0, 700.0};
        plan = buildPlan(tree, freqs, mode);
    }
};

/** Drive a runtime over a stream; collect reconfig actions. */
struct Driver
{
    std::vector<sim::MarkerAction> reconfigs;
    std::uint64_t stall_cycles = 0;

    void
    run(ProfileRuntime &rt, const Program &p, const InputSet &in)
    {
        Stream s(p, in);
        StreamItem item;
        while (s.next(item)) {
            if (item.kind != StreamItem::Kind::Marker)
                continue;
            auto a = rt.onMarker(item.marker);
            stall_cycles += static_cast<std::uint64_t>(a.stallCycles);
            if (a.reconfig)
                reconfigs.push_back(a);
        }
    }
};

} // namespace

TEST(Runtime, PathModeReconfiguresOnTrainedNodes)
{
    Fixture fx(ContextMode::LFP);
    ProfileRuntime rt(fx.tree, fx.plan);
    Driver d;
    InputSet in;
    in.with("rare_on", 0.0);
    d.run(rt, fx.program, in);
    EXPECT_FALSE(d.reconfigs.empty());
    EXPECT_GT(rt.stats().dynInstrPoints, 0u);
    EXPECT_GT(rt.stats().dynReconfigPoints, 0u);
    // Entry writes the trained values.
    EXPECT_DOUBLE_EQ(d.reconfigs.front().freqs[2], 250.0);
}

TEST(Runtime, ExitRestoresSavedRegister)
{
    Fixture fx(ContextMode::LFP);
    ProfileRuntime rt(fx.tree, fx.plan);
    Driver d;
    InputSet in;
    in.with("rare_on", 0.0);
    d.run(rt, fx.program, in);
    ASSERT_GE(d.reconfigs.size(), 2u);
    // Reconfigurations alternate set/restore; the final restore
    // returns the register to the initial full-speed value.
    const auto &last = d.reconfigs.back();
    EXPECT_DOUBLE_EQ(last.freqs[0], 1000.0);
    EXPECT_DOUBLE_EQ(last.freqs[2], 1000.0);
}

TEST(Runtime, UntrainedPathDoesNotReconfigure)
{
    // Train without the rare path; produce with it.  Path-tracking
    // modes must not reconfigure along main>rare>hot.
    Fixture fx(ContextMode::LFP, 0.0);
    ProfileRuntime rt(fx.tree, fx.plan);
    Driver d;
    InputSet with_rare;
    with_rare.with("rare_on", 1.0);
    d.run(rt, fx.program, with_rare);

    Fixture fx2(ContextMode::LFP, 0.0);
    ProfileRuntime rt2(fx2.tree, fx2.plan);
    Driver d2;
    InputSet without_rare;
    without_rare.with("rare_on", 0.0);
    d2.run(rt2, fx2.program, without_rare);

    // Same number of reconfigurations: the rare path contributes
    // none (its nodes map to label 0).
    EXPECT_EQ(d.reconfigs.size(), d2.reconfigs.size());
}

TEST(Runtime, StaticModeReconfiguresOnAnyPath)
{
    // The L+F mode keys on static entities, so reaching hot via the
    // untrained rare path still reconfigures (the paper's mpeg2
    // observation, Section 4.2).
    Fixture fx(ContextMode::LF, 0.0);
    ProfileRuntime rt(fx.tree, fx.plan);
    Driver d;
    InputSet with_rare;
    with_rare.with("rare_on", 1.0);
    d.run(rt, fx.program, with_rare);

    Fixture fx2(ContextMode::LF, 0.0);
    ProfileRuntime rt2(fx2.tree, fx2.plan);
    Driver d2;
    InputSet without_rare;
    without_rare.with("rare_on", 0.0);
    d2.run(rt2, fx2.program, without_rare);

    EXPECT_GT(d.reconfigs.size(), d2.reconfigs.size())
        << "L+F reconfigures on new paths to known entities";
}

TEST(Runtime, StaticModeCostsLessThanPathMode)
{
    Fixture path_fx(ContextMode::LFP);
    Fixture static_fx(ContextMode::LF);
    ProfileRuntime path_rt(path_fx.tree, path_fx.plan);
    ProfileRuntime static_rt(static_fx.tree, static_fx.plan);
    Driver dp, ds;
    InputSet in;
    in.with("rare_on", 0.0);
    dp.run(path_rt, path_fx.program, in);
    ds.run(static_rt, static_fx.program, in);
    EXPECT_LT(ds.stall_cycles, dp.stall_cycles)
        << "L+F instrumentation must be cheaper than path tracking";
}

TEST(Runtime, SaveRestoreBalancedAcrossRun)
{
    Fixture fx(ContextMode::LFP);
    ProfileRuntime rt(fx.tree, fx.plan);
    Driver d;
    InputSet in;
    in.with("rare_on", 1.0);
    d.run(rt, fx.program, in);
    // Every reconfig entry has a matching restore: even count.
    EXPECT_EQ(d.reconfigs.size() % 2, 0u);
}

TEST(RuntimeCosts, PaperPenaltiesByDefault)
{
    RuntimeCosts c;
    EXPECT_EQ(c.funcTrackCycles, 9);
    EXPECT_EQ(c.funcTrackCycles + c.reconfigExtraCycles, 17);
}
