/**
 * @file
 * Property/fuzz tests for the spec parsers — the surfaces that now
 * accept bytes straight off a socket (the sweep server feeds
 * workload specs, policy specs and authored program text from the
 * wire into these exact entry points).
 *
 * Two properties, checked over a corpus and thousands of
 * deterministic mutations of it (the same xorshift mutation engine
 * as the server's fault injector, so failures replay):
 *
 *  1. Round-trip identity: parse -> print -> parse of a canonical
 *     spec is the identity, and canonicalization is idempotent.
 *  2. Totality: any mutated, truncated or random input either
 *     canonicalizes or fails *catchably* — `workload::SpecError`
 *     for workload specs and program text, a false return for
 *     policy specs.  Nothing crashes, nothing throws anything else.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "control/policy.hh"
#include "exp/experiment.hh"
#include "exp/tournament.hh"
#include "srv/faults.hh"
#include "workload/author.hh"
#include "workload/registry.hh"
#include "workload/spec.hh"

using namespace mcd;
using workload::SpecError;

namespace
{

const std::vector<std::string> &
workloadCorpus()
{
    static const std::vector<std::string> corpus = {
        "gsm_decode",
        "adpcm_decode",
        "gzip",
        "gen:phases=4,mem=0.4,seed=7",
        "gen:seed=9",
        "gen:phases=2,depth=3,imbalance=0.8,refscale=2.0",
    };
    return corpus;
}

const std::vector<std::string> &
policyCorpus()
{
    static const std::vector<std::string> corpus = {
        "baseline",
        "offline:d=10",
        "online:aggr=1.5",
        "profile:mode=LF,d=10",
        "global:d=5",
        "learned",
        "learned:seed=3,lr=0.1",
        "learned:explore=0.5,interval=1000,seed=2",
    };
    return corpus;
}

const char *const kProgram = R"(
program: name=fuzz_prog, entry=main
input: set=train, seed=3, scale=1.0
input: set=ref, seed=4, scale=1.3
mix: id=a, load=0.3, branch=0.1, ws=1048576, stream=0.3
func: name=leaf
  block: mix=a, n=20
func: name=main
  loop: trips=6, scale=1.0
    block: mix=a, n=50
    call: f=leaf
  end
)";

/** Canonicalize or throw SpecError; any other escape fails the
 *  test at the call site. */
bool
tryCanonicalWorkload(const std::string &text, std::string *canon)
{
    try {
        std::string c = workload::canonicalWorkloadSpec(text);
        if (canon)
            *canon = c;
        return true;
    } catch (const SpecError &) {
        return false;
    }
}

bool
tryCanonicalPolicy(const std::string &text, std::string *canon)
{
    control::PolicySpec spec;
    std::string err;
    if (!control::parseSpec(text, spec, err))
        return false;
    if (!control::PolicyRegistry::instance().canonicalize(spec, err))
        return false;
    if (canon)
        *canon = spec.str();
    return true;
}

bool
tryParseProgram(const std::string &text)
{
    try {
        workload::parseProgram(text);
        return true;
    } catch (const SpecError &) {
        return false;
    }
}

} // namespace

// ---------------------------------------------------------------- //
// Round-trip identity                                              //
// ---------------------------------------------------------------- //

TEST(SpecFuzz, WorkloadRoundTripIdentity)
{
    for (const std::string &text : workloadCorpus()) {
        std::string canon;
        ASSERT_TRUE(tryCanonicalWorkload(text, &canon)) << text;
        // Canonicalization is idempotent...
        std::string again;
        ASSERT_TRUE(tryCanonicalWorkload(canon, &again)) << canon;
        EXPECT_EQ(again, canon) << text;
        // ...and parse -> print -> parse is the identity.
        workload::WorkloadSpec spec;
        std::string err;
        ASSERT_TRUE(workload::parseWorkloadSpec(canon, spec, err))
            << err;
        EXPECT_EQ(spec.str(), canon) << text;
        workload::WorkloadSpec back;
        ASSERT_TRUE(
            workload::parseWorkloadSpec(spec.str(), back, err))
            << err;
        EXPECT_EQ(back.str(), canon) << text;
    }
}

TEST(SpecFuzz, PolicyRoundTripIdentity)
{
    for (const std::string &text : policyCorpus()) {
        std::string canon;
        ASSERT_TRUE(tryCanonicalPolicy(text, &canon)) << text;
        std::string again;
        ASSERT_TRUE(tryCanonicalPolicy(canon, &again)) << canon;
        EXPECT_EQ(again, canon) << text;
    }
}

TEST(SpecFuzz, ProgramRoundTripIdentity)
{
    workload::Benchmark bm = workload::parseProgram(kProgram);
    std::string canon = workload::printProgram(bm);
    EXPECT_EQ(workload::printProgram(workload::parseProgram(canon)),
              canon);
    // Content addressing sees through formatting: raw and canonical
    // text register under one handle.
    EXPECT_EQ(
        workload::WorkloadRegistry::instance().addProgram(kProgram),
        workload::WorkloadRegistry::instance().addProgram(canon));
}

// ---------------------------------------------------------------- //
// Totality under mutation                                          //
// ---------------------------------------------------------------- //

TEST(SpecFuzz, MutatedWorkloadSpecsNeverCrash)
{
    for (const std::string &text : workloadCorpus()) {
        for (std::uint32_t seed = 1; seed <= 300; ++seed) {
            srv::Fault f = (seed % 2) ? srv::Fault::GarbleFrame
                                      : srv::Fault::TruncateFrame;
            std::string mutated = srv::mutateLine(text, f, seed);
            SCOPED_TRACE("'" + mutated + "'");
            // Either outcome is fine; escaping with anything but
            // SpecError (or crashing) fails the test.
            tryCanonicalWorkload(mutated, nullptr);
        }
    }
}

TEST(SpecFuzz, TruncatedWorkloadSpecsNeverCrash)
{
    for (const std::string &text : workloadCorpus()) {
        for (std::size_t len = 0; len <= text.size(); ++len) {
            std::string prefix = text.substr(0, len);
            SCOPED_TRACE("'" + prefix + "'");
            tryCanonicalWorkload(prefix, nullptr);
        }
    }
}

TEST(SpecFuzz, MutatedPolicySpecsNeverCrash)
{
    for (const std::string &text : policyCorpus()) {
        for (std::uint32_t seed = 1; seed <= 300; ++seed) {
            srv::Fault f = (seed % 2) ? srv::Fault::GarbleFrame
                                      : srv::Fault::TruncateFrame;
            std::string mutated = srv::mutateLine(text, f, seed);
            SCOPED_TRACE("'" + mutated + "'");
            tryCanonicalPolicy(mutated, nullptr);
        }
        for (std::size_t len = 0; len <= text.size(); ++len)
            tryCanonicalPolicy(text.substr(0, len), nullptr);
    }
}

TEST(SpecFuzz, RandomGarbageNeverCrashes)
{
    std::uint32_t state = 0xc0ffee17u;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    };
    for (int i = 0; i < 500; ++i) {
        std::string junk;
        std::size_t len = next() % 40;
        for (std::size_t j = 0; j < len; ++j) {
            // Full byte range, including NULs, controls, UTF-8
            // fragments — the wire can carry anything.
            junk += static_cast<char>(next() & 0xff);
        }
        SCOPED_TRACE(i);
        tryCanonicalWorkload(junk, nullptr);
        tryCanonicalPolicy(junk, nullptr);
    }
}

TEST(SpecFuzz, MutatedProgramTextNeverCrashes)
{
    for (std::uint32_t seed = 1; seed <= 150; ++seed) {
        srv::Fault f = (seed % 2) ? srv::Fault::GarbleFrame
                                  : srv::Fault::TruncateFrame;
        std::string mutated =
            srv::mutateLine(kProgram, f, seed * 7919u);
        SCOPED_TRACE(seed);
        tryParseProgram(mutated);
    }
    // Line-level truncation: drop the tail of the program at every
    // line boundary (what a dying PROG upload hands the parser).
    std::string text = kProgram;
    for (std::size_t pos = text.rfind('\n');
         pos != std::string::npos && pos > 0;
         pos = text.rfind('\n')) {
        text = text.substr(0, pos);
        tryParseProgram(text + "\n");
    }
}

TEST(SpecFuzz, HostileTournamentPlansDieCatchablyOrKeyCleanly)
{
    // The tournament constructor is the trust boundary for three
    // spec surfaces at once (oracle, roster, workloads); any hostile
    // spec must either throw SpecError there, or survive
    // canonicalization — in which case every cell key it plans must
    // derive without a fatal (the keys a mutated-but-valid plan
    // produces are as stable as a well-behaved client's).
    exp::ExpConfig ecfg;
    ecfg.productionWindow = 6'000;
    ecfg.analysisWindow = 6'000;
    ecfg.cacheFile.clear();
    exp::Runner runner(ecfg);

    auto tryPlan = [&runner](const exp::TournamentConfig &cfg) {
        try {
            exp::Tournament t(runner, cfg);
            for (const std::string &k : t.cellKeys())
                EXPECT_FALSE(k.empty());
            return true;
        } catch (const SpecError &) {
            return false;
        }
    };

    int survivors = 0;
    for (std::uint32_t seed = 1; seed <= 120; ++seed) {
        srv::Fault f = (seed % 2) ? srv::Fault::GarbleFrame
                                  : srv::Fault::TruncateFrame;
        // Mutate each surface in isolation, holding the others valid.
        exp::TournamentConfig cfg;
        cfg.workloads = {"gsm_decode"};
        cfg.policies = {
            srv::mutateLine("learned:seed=3,lr=0.1", f, seed)};
        SCOPED_TRACE("policy '" + cfg.policies[0] + "'");
        survivors += tryPlan(cfg);

        cfg = exp::TournamentConfig();
        cfg.policies = {"baseline"};
        cfg.workloads = {srv::mutateLine(
            "gen:phases=4,mem=0.4,seed=7", f, seed)};
        survivors += tryPlan(cfg);

        cfg = exp::TournamentConfig();
        cfg.workloads = {"gsm_decode"};
        cfg.oracle = srv::mutateLine("offline:d=10", f, seed);
        survivors += tryPlan(cfg);
    }
    // Mutations sometimes yield other valid specs; a fuzz pass where
    // nothing survived would make the key-derivation check vacuous.
    EXPECT_GT(survivors, 0);
}

TEST(SpecFuzz, MutatedSpecsThatSurviveStayCanonical)
{
    // Stronger property on the survivors: whenever a mutation still
    // canonicalizes, the canonical form must round-trip — the memo
    // key derived from hostile input is as stable as one from a
    // well-behaved client.
    int survivors = 0;
    for (const std::string &text : workloadCorpus()) {
        for (std::uint32_t seed = 1; seed <= 300; ++seed) {
            std::string mutated = srv::mutateLine(
                text, srv::Fault::GarbleFrame, seed);
            std::string canon;
            if (!tryCanonicalWorkload(mutated, &canon))
                continue;
            ++survivors;
            std::string again;
            ASSERT_TRUE(tryCanonicalWorkload(canon, &again))
                << canon;
            EXPECT_EQ(again, canon) << "from '" << mutated << "'";
        }
    }
    // The corpus names mutate into other valid names sometimes; if
    // literally nothing survived the property was vacuous.
    EXPECT_GT(survivors, 0);
}
