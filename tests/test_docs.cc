/**
 * @file
 * Documentation drift gates: docs/POLICIES.md must cover every
 * registered policy with its full parameter schema (verified
 * against the same `describePolicies()` text `--list-policies`
 * prints), and docs/WORKLOADS.md must cover every registered
 * workload family and every generator parameter, and docs/SERVER.md
 * must track the wire protocol's verbs, error codes and the real
 * `srv::ServerConfig` defaults.  A new policy, parameter, knob or
 * error code without a docs section fails here, not in review.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "chip/config.hh"
#include "control/policy.hh"
#include "sim/sampling.hh"
#include "srv/proto.hh"
#include "srv/server.hh"
#include "workload/generate.hh"
#include "workload/registry.hh"

namespace
{

std::string
readDoc(const std::string &rel)
{
    std::string path = std::string(MCD_SOURCE_DIR) + "/" + rel;
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(Docs, PoliciesDocCoversTheRegistry)
{
    std::string doc = readDoc("docs/POLICIES.md");
    for (const mcd::control::Policy *p :
         mcd::control::PolicyRegistry::instance().list()) {
        // One "## `name`" section per policy...
        EXPECT_NE(doc.find("## `" + std::string(p->name()) + "`"),
                  std::string::npos)
            << "docs/POLICIES.md lacks a section for policy '"
            << p->name() << "'";
        // ...documenting every schema parameter with its canonical
        // default, exactly as --list-policies prints it.
        for (const mcd::control::ParamInfo &pi : p->params()) {
            std::string needle =
                "`" + pi.name + "` | " +
                (pi.type == mcd::control::ParamType::Mode
                     ? std::string(mcd::control::compactModeName(
                           pi.defaultMode))
                     : mcd::control::fmtFixed(pi.defaultDouble, 3));
            EXPECT_NE(doc.find(needle), std::string::npos)
                << "docs/POLICIES.md: policy '" << p->name()
                << "' parameter row '" << needle
                << "' missing or stale";
        }
    }
}

TEST(Docs, WorkloadsDocCoversTheRegistry)
{
    std::string doc = readDoc("docs/WORKLOADS.md");
    // Every registered family (the 19 suite names share one
    // section; gen and prog get their own).
    EXPECT_NE(doc.find("## Suite benchmarks"), std::string::npos);
    EXPECT_NE(doc.find("## `gen`"), std::string::npos);
    EXPECT_NE(doc.find("`prog`"), std::string::npos);
    for (const mcd::workload::WorkloadFactory *f :
         mcd::workload::WorkloadRegistry::instance().list())
        EXPECT_NE(doc.find("`" + std::string(f->name()) + "`"),
                  std::string::npos)
            << "docs/WORKLOADS.md does not mention workload '"
            << f->name() << "'";
    // Every generator knob, with its canonical default.
    for (const mcd::workload::SpecParamInfo &pi :
         mcd::workload::generatorParams()) {
        std::string def =
            pi.integer ? std::to_string((long long)pi.defaultNum)
                       : mcd::control::fmtFixed(pi.defaultNum, 3);
        std::string needle = "`" + pi.name + "` | " + def;
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "docs/WORKLOADS.md: generator knob row '" << needle
            << "' missing or stale";
    }
}

TEST(Docs, ServerDocCoversProtocolAndKnobs)
{
    std::string doc = readDoc("docs/SERVER.md");
    // The protocol tag, every verb and every reply kind.
    EXPECT_NE(doc.find(mcd::srv::PROTO_TAG), std::string::npos);
    for (const char *verb : {"`HELLO`", "`PING`", "`STATS`",
                             "`SWEEP`", "`PROG`", "`QUIT`"})
        EXPECT_NE(doc.find(verb), std::string::npos)
            << "docs/SERVER.md lacks verb " << verb;
    for (const char *kind :
         {"\"OK\"", "\"ROW\"", "\"DONE\"", "\"ERR\"", "\"BYE\""})
        EXPECT_NE(doc.find(kind), std::string::npos)
            << "docs/SERVER.md grammar lacks reply kind " << kind;
    // Every structured error code, one table row each.
    for (const std::string &code : mcd::srv::errorCodes())
        EXPECT_NE(doc.find("| `" + code + "` |"),
                  std::string::npos)
            << "docs/SERVER.md lacks error code '" << code << "'";
    // Every knob row carries the struct's real default, so the doc
    // cannot drift from src/srv/server.hh.
    mcd::srv::ServerConfig def;
    auto row = [](const char *name, const std::string &value) {
        return "| `" + std::string(name) + "` | " + value + " |";
    };
    for (const std::string &needle : {
             row("tcpPort", std::to_string(def.tcpPort)),
             row("queueLimit", std::to_string(def.queueLimit)),
             row("maxCellsPerRequest",
                 std::to_string(def.maxCellsPerRequest)),
             row("maxConnections",
                 std::to_string(def.maxConnections)),
             row("requestTimeoutMs",
                 std::to_string(def.requestTimeoutMs)),
             row("idleTimeoutMs",
                 std::to_string(def.idleTimeoutMs)),
             row("maxLineBytes", std::to_string(def.maxLineBytes)),
             row("maxProgLines", std::to_string(def.maxProgLines)),
             row("retryAfterMs", std::to_string(def.retryAfterMs)),
             row("maxWindows", std::to_string(def.maxWindows)),
         })
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "docs/SERVER.md knob row '" << needle
            << "' missing or stale";
}

TEST(Docs, ChipDocCoversTopologyAndKnobs)
{
    std::string doc = readDoc("docs/CHIP.md");
    // Every ChipConfig knob row carries the struct's real default,
    // so the doc cannot drift from src/chip/config.hh.
    mcd::chip::ChipConfig def;
    auto row = [](const char *name, const std::string &value) {
        return "| `" + std::string(name) + "` | " + value + " |";
    };
    for (const std::string &needle : {
             row("l2PortCycles", std::to_string(def.l2PortCycles)),
             row("uncoreMaxMhz",
                 mcd::control::fmtFixed(def.uncoreMaxMhz, 3)),
             row("uncoreMinMhz",
                 mcd::control::fmtFixed(def.uncoreMinMhz, 3)),
             row("coordIntervalPs",
                 std::to_string(def.coordIntervalPs)),
             row("uncoreClockPj",
                 mcd::control::fmtFixed(def.uncoreClockPj, 3)),
             row("uncoreLeakW",
                 mcd::control::fmtFixed(def.uncoreLeakW, 3)),
         })
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "docs/CHIP.md knob row '" << needle
            << "' missing or stale";
    // The co-schedule grammar, the wire row labels and the chip
    // cache-key field must be spelled out.
    for (const char *token : {"`multi:", ",t1=", "tile=u",
                              "chip:tiles=", "`chip-coord"})
        EXPECT_NE(doc.find(token), std::string::npos)
            << "docs/CHIP.md lacks '" << token << "'";
}

TEST(Docs, LintingDocCoversEveryRule)
{
    // The three-way sync behind mcd_lint's `lint-docs` rule: this
    // list, tools/mcd_lint.py RULES and the `## \`rule\`` sections
    // of docs/LINTING.md must all name the same invariants.  Adding
    // or retiring a rule without touching all three fails either
    // here or in the lint itself.
    const char *rules[] = {
        "fingerprint-complete", "cache-version-pin", "determinism",
        "locale-safety",        "registration",      "lint-docs",
    };
    std::string doc = readDoc("docs/LINTING.md");
    std::string lint = readDoc("tools/mcd_lint.py");
    for (const char *rule : rules) {
        EXPECT_NE(doc.find("## `" + std::string(rule) + "`"),
                  std::string::npos)
            << "docs/LINTING.md lacks a section for lint rule '"
            << rule << "'";
        EXPECT_NE(lint.find("\"" + std::string(rule) + "\""),
                  std::string::npos)
            << "tools/mcd_lint.py no longer enforces rule '" << rule
            << "' pinned here and in docs/LINTING.md";
    }
    // The suppression grammar documented in the doc is the one the
    // tool parses.
    EXPECT_NE(doc.find("mcd-lint: allow("), std::string::npos);
    EXPECT_NE(doc.find("mcd-lint: allow-file("), std::string::npos);
}

TEST(Docs, WorkloadsDocGrammarSectionsExist)
{
    std::string doc = readDoc("docs/WORKLOADS.md");
    // The authoring grammar's section vocabulary must be documented
    // one for one.
    for (const char *section :
         {"`program:`", "`input:`", "`mix:`", "`func:`", "`args:`",
          "`block:`", "`loop:`", "`call:`"})
        EXPECT_NE(doc.find(section), std::string::npos)
            << "docs/WORKLOADS.md lacks grammar docs for "
            << section;
}

TEST(Docs, SamplingDocTracksTheRealKnobsAndSchema)
{
    std::string doc = readDoc("docs/SAMPLING.md");
    // Every knob row carries the struct's real default, so the doc
    // cannot drift from src/sim/sampling.hh.
    mcd::sim::SamplingConfig def;
    auto row = [](const char *name, const std::string &value) {
        return "| `" + std::string(name) + "` | " + value + " |";
    };
    for (const std::string &needle : {
             row("intervalInstrs",
                 std::to_string(def.intervalInstrs)),
             row("sampleInstrs", std::to_string(def.sampleInstrs)),
             row("warmupInstrs", std::to_string(def.warmupInstrs)),
             row("ciBiasPct",
                 mcd::control::fmtFixed(def.ciBiasPct, 3)),
         })
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "docs/SAMPLING.md knob row '" << needle
            << "' missing or stale";
    // The canonical default sampled spelling printed in the doc is
    // the one canonicalSamplingSpec emits.
    mcd::sim::SamplingConfig sampled = def;
    sampled.mode = mcd::sim::SamplingMode::Sampled;
    EXPECT_NE(doc.find(mcd::sim::canonicalSamplingSpec(sampled)),
              std::string::npos)
        << "docs/SAMPLING.md lacks the canonical default spec";
    // The contract vocabulary the tests and CI gate rely on.
    for (const char *token :
         {"byte-identical", "`exact`", "ciBiasPct",
          "tools/check_sampling.py", "`matches()`"})
        EXPECT_NE(doc.find(token), std::string::npos)
            << "docs/SAMPLING.md lacks '" << token << "'";
}

TEST(Docs, ArchitectureDocTracksTheCacheSchemaVersion)
{
    std::string doc = readDoc("docs/ARCHITECTURE.md");
    // The CACHE_VERSION history table must have a row for the live
    // schema (v9: learned training knobs fingerprinted) and keep the
    // prior rows intact.
    EXPECT_NE(doc.find("| v9 | PR 10 (learned policy + "
                       "tournament) |"),
              std::string::npos)
        << "docs/ARCHITECTURE.md lacks the v9 history row";
    EXPECT_NE(doc.find("| v8 | PR 9 (sampled + checkpointed "
                       "simulation) |"),
              std::string::npos)
        << "docs/ARCHITECTURE.md lacks the v8 history row";
    for (const char *token :
         {"thirteen", "timeCiPs", "SAMPLING.md",
          "control::LearnedConfig"})
        EXPECT_NE(doc.find(token), std::string::npos)
            << "docs/ARCHITECTURE.md lacks '" << token << "'";
}
