/**
 * @file
 * Tests for the ASCII table writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

using mcd::TextTable;

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"bench", "x", "yy"});
    t.row({"a", "1.0", "2"});
    t.row({"longname", "10.25", "3"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("bench"), std::string::npos);
    EXPECT_NE(s.find("longname"), std::string::npos);
    // Every data line should have the same width.
    std::istringstream is(s);
    std::string line;
    std::getline(is, line);
    size_t w = line.size();
    while (std::getline(is, line))
        EXPECT_EQ(line.size(), w) << "line: '" << line << "'";
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(-1.0, 0), "-1");
}

TEST(TextTable, SeparatorAndShortRows)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"only"});
    t.separator();
    t.row({"x", "y"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}
