/**
 * @file
 * Tree-walker tests: faithful path following, label-0 semantics on
 * unseen paths, covering-node computation.
 */

#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "core/walker.hh"
#include "workload/stream.hh"

using namespace mcd;
using namespace mcd::core;
using namespace mcd::workload;

namespace
{

Program
guardedProgram()
{
    ProgramBuilder b("guarded");
    InstructionMix m;
    MixId mx = b.mix(m);

    b.func("helper");
    b.loop(400, 0.0, [&] { b.block(mx, 40); });

    b.func("rare");
    b.call("helper");  // helper reachable via a second path

    b.func("main");
    b.loop(3, 0.0, [&] {
        b.call("helper");
        b.call("rare", 0, 1.0, "rare_on");
    });
    return b.build("main");
}

} // namespace

TEST(TreeWalker, FollowsTrainedPathsExactly)
{
    Program p = guardedProgram();
    InputSet train;
    train.with("rare_on", 0.0);
    CallTree tree =
        profileProgram(p, train, ContextMode::LFP, ProfileConfig());

    // Replay the same input: the walker must mirror the builder.
    TreeWalker w(tree);
    CallTree ref(ContextMode::LFP);
    Stream s(p, train);
    StreamItem item;
    while (s.next(item)) {
        if (item.kind != StreamItem::Kind::Marker)
            continue;
        ref.onMarker(item.marker);
        w.onMarker(item.marker);
        EXPECT_EQ(w.current(), ref.cursor());
    }
}

TEST(TreeWalker, UnknownPathMapsToLabelZero)
{
    Program p = guardedProgram();
    InputSet train, ref_in;
    train.with("rare_on", 0.0);
    ref_in.with("rare_on", 1.0);
    CallTree tree =
        profileProgram(p, train, ContextMode::LFP, ProfileConfig());

    const Function *rare = p.findFunction("rare");
    TreeWalker w(tree);
    Stream s(p, ref_in);
    StreamItem item;
    bool saw_rare = false;
    int depth_in_rare = 0;
    while (s.next(item)) {
        if (item.kind != StreamItem::Kind::Marker)
            continue;
        w.onMarker(item.marker);
        if (item.marker.kind == MarkerKind::FuncEnter &&
            item.marker.func == rare->id) {
            saw_rare = true;
            depth_in_rare = 1;
            EXPECT_EQ(w.current(), 0u)
                << "path absent from training must map to label 0";
        } else if (depth_in_rare > 0) {
            if (item.marker.kind == MarkerKind::FuncEnter)
                ++depth_in_rare;
            if (item.marker.kind == MarkerKind::FuncExit)
                --depth_in_rare;
            if (depth_in_rare > 0) {
                EXPECT_EQ(w.current(), 0u)
                    << "everything below an unknown path is unknown";
            }
        }
    }
    EXPECT_TRUE(saw_rare);
}

TEST(TreeWalker, CoveringNodeIsInnermostLongRunning)
{
    Program p = guardedProgram();
    InputSet train;
    train.with("rare_on", 0.0);
    CallTree tree =
        profileProgram(p, train, ContextMode::LFP, ProfileConfig());

    // helper's loop runs 400*40 = 16k instrs per instance: long.
    std::uint32_t loop_node = 0;
    for (auto id : tree.nodeIds())
        if (tree.node(id).kind == NodeKind::Loop &&
            tree.node(id).longRunning)
            loop_node = id;
    ASSERT_NE(loop_node, 0u);

    TreeWalker w(tree);
    Stream s(p, train);
    StreamItem item;
    bool covered = false;
    while (s.next(item)) {
        if (item.kind != StreamItem::Kind::Marker)
            continue;
        w.onMarker(item.marker);
        if (w.current() == loop_node) {
            EXPECT_EQ(w.covering(), loop_node);
            covered = true;
        }
    }
    EXPECT_TRUE(covered);
}

TEST(TreeWalker, BalancedAtProgramEnd)
{
    Program p = guardedProgram();
    InputSet in;
    in.with("rare_on", 1.0);
    CallTree tree =
        profileProgram(p, in, ContextMode::LFCP, ProfileConfig());
    TreeWalker w(tree);
    Stream s(p, in);
    StreamItem item;
    while (s.next(item))
        if (item.kind == StreamItem::Kind::Marker)
            w.onMarker(item.marker);
    EXPECT_EQ(w.depth(), 1u);
}
