/**
 * @file
 * Integration tests: the full profile pipeline end-to-end against
 * the paper's headline claims, on a subset of the suite small enough
 * for CI latency.
 */

#include <gtest/gtest.h>

#include "control/offline.hh"
#include "control/policy.hh"
#include "core/pipeline.hh"
#include "exp/experiment.hh"
#include "sim/processor.hh"
#include "util/stats.hh"
#include "workload/suite.hh"

using namespace mcd;
using namespace mcd::core;
using namespace mcd::sim;
using namespace mcd::workload;

namespace
{

SimConfig
expSim()
{
    SimConfig c;
    c.rampNsPerMhz = 2.2;
    return c;
}

} // namespace

TEST(Integration, ProfilePipelineSavesEnergyBoundedSlowdown)
{
    const std::uint64_t window = 80'000;
    for (const char *name : {"gsm_decode", "swim", "mcf"}) {
        Benchmark bm = makeBenchmark(name);
        SimConfig scfg = expSim();
        power::PowerConfig pcfg;

        Processor base(scfg, pcfg, bm.program, bm.ref);
        RunResult rb = base.run(window);

        PipelineConfig pc;
        pc.mode = ContextMode::LF;
        pc.slowdownPct = 8.0;
        ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, scfg, pcfg);
        RunResult rp = pipe.runProduction(bm.ref, scfg, pcfg, window);

        Metrics m = computeMetrics(static_cast<double>(rp.timePs),
                                   rp.chipEnergyNj,
                                   static_cast<double>(rb.timePs),
                                   rb.chipEnergyNj);
        EXPECT_GT(m.energySavingsPct, 5.0) << name;
        EXPECT_LT(m.slowdownPct, 25.0) << name;
        EXPECT_GT(m.energyDelayImprovementPct, 0.0) << name;
    }
}

TEST(Integration, ProfileMatchesOfflineClosely)
{
    // The paper's central claim: profile-driven reconfiguration
    // yields virtually the off-line oracle's improvement.
    const std::uint64_t window = 80'000;
    Benchmark bm = makeBenchmark("gsm_decode");
    SimConfig scfg = expSim();
    power::PowerConfig pcfg;

    Processor base(scfg, pcfg, bm.program, bm.ref);
    RunResult rb = base.run(window);

    control::OfflineConfig oc;
    oc.slowdownPct = 8.0;
    RunResult ro = control::offlineRun(oc, bm.program, bm.ref, scfg,
                                       pcfg, window);

    PipelineConfig pc;
    pc.mode = ContextMode::LF;
    pc.slowdownPct = 8.0;
    ProfilePipeline pipe(bm.program, pc);
    pipe.train(bm.train, scfg, pcfg);
    RunResult rp = pipe.runProduction(bm.ref, scfg, pcfg, window);

    Metrics moff = computeMetrics(static_cast<double>(ro.timePs),
                                  ro.chipEnergyNj,
                                  static_cast<double>(rb.timePs),
                                  rb.chipEnergyNj);
    Metrics mprof = computeMetrics(static_cast<double>(rp.timePs),
                                   rp.chipEnergyNj,
                                   static_cast<double>(rb.timePs),
                                   rb.chipEnergyNj);
    EXPECT_NEAR(mprof.energySavingsPct, moff.energySavingsPct, 6.0);
    EXPECT_NEAR(mprof.slowdownPct, moff.slowdownPct, 6.0);
}

TEST(Integration, TrainingTransfersAcrossInputs)
{
    // Training on the small input and producing on the large one
    // must stay close to training and producing on the same input.
    const std::uint64_t window = 80'000;
    Benchmark bm = makeBenchmark("jpeg_compress");
    SimConfig scfg = expSim();
    power::PowerConfig pcfg;

    Processor base(scfg, pcfg, bm.program, bm.ref);
    RunResult rb = base.run(window);

    auto run_with_training = [&](const InputSet &train) {
        PipelineConfig pc;
        pc.mode = ContextMode::LF;
        pc.slowdownPct = 8.0;
        ProfilePipeline pipe(bm.program, pc);
        pipe.train(train, scfg, pcfg);
        RunResult r = pipe.runProduction(bm.ref, scfg, pcfg, window);
        return computeMetrics(static_cast<double>(r.timePs),
                              r.chipEnergyNj,
                              static_cast<double>(rb.timePs),
                              rb.chipEnergyNj);
    };
    Metrics cross = run_with_training(bm.train);
    Metrics self = run_with_training(bm.ref);
    EXPECT_NEAR(cross.energySavingsPct, self.energySavingsPct, 5.0);
}

TEST(Integration, Mpeg2PathDivergence)
{
    // mpeg2 decode: L+F reconfigures on reference-only paths, the
    // path-tracking variant does not (Section 4.2) — so L+F must
    // execute at least as many reconfigurations.
    const std::uint64_t window = 80'000;
    Benchmark bm = makeBenchmark("mpeg2_decode");
    SimConfig scfg = expSim();
    power::PowerConfig pcfg;

    auto run_mode = [&](ContextMode mode) {
        PipelineConfig pc;
        pc.mode = mode;
        pc.slowdownPct = 8.0;
        ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, scfg, pcfg);
        RuntimeStats rt;
        pipe.runProduction(bm.ref, scfg, pcfg, window, &rt);
        return rt;
    };
    RuntimeStats lf = run_mode(ContextMode::LF);
    RuntimeStats lfp = run_mode(ContextMode::LFP);
    EXPECT_GE(lf.dynReconfigPoints, lfp.dynReconfigPoints);
}

TEST(Integration, RunnerCachesConsistently)
{
    exp::ExpConfig cfg;
    cfg.productionWindow = 40'000;
    cfg.analysisWindow = 40'000;
    cfg.cacheFile.clear();
    exp::Runner runner(cfg);
    auto a = runner.run("adpcm_decode",
                        control::PolicySpec::of("offline").set("d", 6.0));
    auto b = runner.run("adpcm_decode",
                        control::PolicySpec::of("offline").set("d", 6.0));
    EXPECT_DOUBLE_EQ(a.timePs, b.timePs);
    EXPECT_DOUBLE_EQ(a.energyNj, b.energyNj);
    // Baseline metrics of the baseline itself are zero.
    auto base = runner.run("adpcm_decode",
                           control::PolicySpec::of("baseline"));
    EXPECT_GT(base.timePs, 0.0);
}

TEST(Integration, FileCacheRoundTrips)
{
    std::string path = "/tmp/mcd_test_cache_roundtrip.csv";
    std::remove(path.c_str());
    exp::ExpConfig cfg;
    cfg.productionWindow = 40'000;
    cfg.analysisWindow = 40'000;
    cfg.cacheFile = path;
    double t1 = 0.0, t2 = 0.0;
    {
        exp::Runner runner(cfg);
        t1 = runner.run("g721_decode",
                        control::PolicySpec::of("online").set(
                            "aggr", 1.0))
                 .timePs;
    }
    {
        exp::Runner runner(cfg);  // must hit the file cache
        t2 = runner.run("g721_decode",
                        control::PolicySpec::of("online").set(
                            "aggr", 1.0))
                 .timePs;
    }
    EXPECT_DOUBLE_EQ(t1, t2);
    std::remove(path.c_str());
}
