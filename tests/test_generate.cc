/**
 * @file
 * The procedural workload generator: determinism (same canonical
 * spec, bit-identical Benchmark), parameter effects on program
 * shape, and the memo-cache key identity of generated `--workload`
 * cells in the sweep engine.
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "workload/author.hh"
#include "workload/registry.hh"
#include "workload/stream.hh"

#include "cache_key_util.hh"

using namespace mcd;
using namespace mcd::workload;

namespace
{

/** Canonical-text fingerprint: two benchmarks with equal canonical
 *  text are the same program, layouts included (the authoring
 *  round-trip tests pin that text -> layout is deterministic). */
std::string
fingerprintOf(const Benchmark &bm)
{
    std::string s = printProgram(bm);
    s += "|train:" + std::to_string(bm.train.seed) + "," +
         std::to_string(bm.train.scale);
    s += "|ref:" + std::to_string(bm.ref.seed) + "," +
         std::to_string(bm.ref.scale);
    return s;
}

exp::ExpConfig
smallConfig()
{
    exp::ExpConfig cfg;
    cfg.productionWindow = 6'000;
    cfg.analysisWindow = 6'000;
    cfg.offlineInterval = 3'000;
    cfg.cacheFile.clear();
    return cfg;
}

} // namespace

TEST(Generator, SameSeedBitIdenticalAcrossCalls)
{
    const char *spec = "gen:phases=5,mem=0.6,fp=0.4,seed=11";
    Benchmark a = makeWorkload(spec);
    Benchmark b = makeWorkload(spec);
    EXPECT_EQ(fingerprintOf(a), fingerprintOf(b));
    // And the dynamic stream is item-for-item identical.
    Stream sa(a.program, a.ref), sb(b.program, b.ref);
    StreamItem ia, ib;
    for (int n = 0; n < 30'000; ++n) {
        bool ma = sa.next(ia), mb = sb.next(ib);
        ASSERT_EQ(ma, mb);
        if (!ma)
            break;
        ASSERT_EQ(ia.kind, ib.kind);
        if (ia.kind == StreamItem::Kind::Instr) {
            ASSERT_EQ(ia.instr.pc, ib.instr.pc);
            ASSERT_EQ(ia.instr.cls, ib.instr.cls);
            ASSERT_EQ(ia.instr.addr, ib.instr.addr);
            ASSERT_EQ(ia.instr.taken, ib.instr.taken);
        }
    }
}

TEST(Generator, SeedAndParametersChangeTheProgram)
{
    std::string base = fingerprintOf(makeWorkload("gen:seed=1"));
    EXPECT_NE(fingerprintOf(makeWorkload("gen:seed=2")), base);
    EXPECT_NE(fingerprintOf(makeWorkload("gen:seed=1,phases=8")),
              base);
    EXPECT_NE(fingerprintOf(makeWorkload("gen:seed=1,mem=0.9")),
              base);
}

TEST(Generator, PhasesShapeTheProgram)
{
    Benchmark bm = makeWorkload("gen:phases=6,seed=3");
    // phase0..phase5 + main.
    EXPECT_EQ(bm.program.functions.size(), 7u);
    for (int p = 0; p < 6; ++p)
        EXPECT_NE(bm.program.findFunction("phase" +
                                          std::to_string(p)),
                  nullptr);
    EXPECT_EQ(bm.program.functions[bm.program.entry].name, "main");
    // Generated programs must be long enough to profile.
    Stream s(bm.program, bm.train);
    StreamItem item;
    std::uint64_t instrs = 0;
    while (s.next(item) && instrs < 50'000)
        instrs += item.kind == StreamItem::Kind::Instr;
    EXPECT_GT(instrs, 10'000u);
}

TEST(Generator, DivergenceGatesPhasesBetweenInputs)
{
    // With diverge=1 every phase is gated; the train and ref knob
    // values must disagree so the two call trees diverge (the
    // paper's partial-coverage situation).
    Benchmark bm = makeWorkload("gen:phases=6,diverge=1,seed=5");
    ASSERT_FALSE(bm.train.knobs.empty());
    ASSERT_EQ(bm.train.knobs.size(), bm.ref.knobs.size());
    for (std::size_t i = 0; i < bm.train.knobs.size(); ++i) {
        EXPECT_EQ(bm.train.knobs[i].first, bm.ref.knobs[i].first);
        EXPECT_NE(bm.train.knobs[i].second,
                  bm.ref.knobs[i].second);
    }
    // diverge=0: no gates at all.
    EXPECT_TRUE(
        makeWorkload("gen:phases=6,diverge=0,seed=5")
            .train.knobs.empty());
}

TEST(Generator, AuthoredRoundTripOfGeneratedProgram)
{
    // Generated programs flow through the same authoring printer
    // as hand-written ones: print -> parse -> print is identity.
    Benchmark bm = makeWorkload("gen:phases=3,seed=9");
    std::string text = printProgram(bm);
    EXPECT_EQ(printProgram(parseProgram(text)), text);
}

TEST(GeneratedCells, CacheKeyUsesCanonicalSpecAndIsPinned)
{
    exp::Runner runner(smallConfig());
    control::PolicySpec bl = control::PolicySpec::of("baseline");
    std::string key =
        runner.cacheKey("gen:seed=7,mem=0.40,phases=2", bl);
    ASSERT_TRUE(testpins::hasCacheKeyTag(key)) << key;
    EXPECT_EQ(testpins::cacheKeyTail(key),
              "|baseline|gen:phases=2,mem=0.400,fp=0.300,depth=2,"
              "diverge=0.200,imbalance=0.500,refscale=1.400,seed=7"
              "|w6000");
    // Spelling variants of one cell share one key...
    EXPECT_EQ(runner.cacheKey("gen:phases=2,seed=7,mem=0.4", bl),
              key);
    // ...different parameters do not.
    EXPECT_NE(runner.cacheKey("gen:phases=2,seed=8,mem=0.4", bl),
              key);
    // A bad workload spec surfaces as the same catchable error the
    // CLI path reports, not a fatal.
    EXPECT_THROW(runner.cacheKey("gen:warp=9", bl), SpecError);
}

TEST(GeneratedCells, SweepRunsAndMemoizesGeneratedWorkloads)
{
    exp::Runner runner(smallConfig());
    std::vector<exp::SweepCell> cells;
    cells.push_back(
        exp::SweepCell::of("gen:phases=2,seed=7", "baseline"));
    cells.push_back(
        exp::SweepCell::of("gen:phases=2,seed=7", "offline:d=10"));
    std::vector<exp::Outcome> out = runner.runSweep(cells, 2);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_GT(out[0].timePs, 0.0);
    EXPECT_GT(out[1].timePs, 0.0);
    // Re-running the cell reproduces the outcome bit for bit (memo
    // or not, the simulation is deterministic in the canonical
    // spec).
    exp::Runner fresh(smallConfig());
    exp::Outcome again = fresh.run(cells[1]);
    EXPECT_EQ(again.timePs, out[1].timePs);
    EXPECT_EQ(again.energyNj, out[1].energyNj);
}
