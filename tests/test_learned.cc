/**
 * @file
 * Tests for the learned DVFS policy (control/learned.hh and
 * control/policies/learned.cc): bit-identical same-seed training
 * trajectories, seed/knob sensitivity of the trained weights, the
 * untrained model's baseline equivalence (trainWindow = 0 degrades
 * to the MCD baseline, not garbage), the pinned canonical cache-key
 * fragment, a regret-vs-oracle sanity bound, and the documented
 * refusal to run under sampled simulation (docs/SAMPLING.md).
 */

#include <gtest/gtest.h>

#include <string>

#include "control/learned.hh"
#include "control/policy.hh"
#include "exp/experiment.hh"
#include "workload/spec.hh"
#include "workload/suite.hh"

#include "cache_key_util.hh"

using namespace mcd;
using control::LearnedConfig;
using control::LearnedModel;
using control::LearnedParams;
using control::PolicySpec;
using exp::ExpConfig;
using exp::Outcome;
using exp::Runner;

namespace
{

/** Small windows so training + production stays test-sized. */
ExpConfig
smallConfig()
{
    ExpConfig cfg;
    cfg.productionWindow = 8'000;
    cfg.analysisWindow = 8'000;
    cfg.offlineInterval = 4'000;
    cfg.learned.trainWindow = 6'000;
    cfg.learned.trainPasses = 2;
    cfg.cacheFile.clear();
    return cfg;
}

/** Train a model on gsm_decode's training input under @p params. */
LearnedModel
trainOn(const LearnedParams &params,
        std::uint64_t window = 6'000, std::uint64_t passes = 2)
{
    workload::Benchmark bm = workload::makeBenchmark("gsm_decode");
    sim::SimConfig sim;
    power::PowerConfig power;
    LearnedConfig cfg;
    cfg.trainWindow = window;
    cfg.trainPasses = passes;
    return control::trainLearnedModel(bm.program, bm.train, sim,
                                      power, cfg, params);
}

} // namespace

// ---------------------------------------------------------------- //
// Training determinism                                             //
// ---------------------------------------------------------------- //

TEST(LearnedTraining, SameSeedIsBitIdentical)
{
    LearnedParams params;
    LearnedModel a = trainOn(params);
    LearnedModel b = trainOn(params);
    ASSERT_TRUE(a.trained());
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.digest(), b.digest());
    // digest() hashes double bits; spell the strongest form out too.
    for (std::size_t d = 0; d < a.w.size(); ++d)
        for (std::size_t i = 0; i < a.w[d].size(); ++i)
            EXPECT_DOUBLE_EQ(a.w[d][i], b.w[d][i]) << d << "," << i;
}

TEST(LearnedTraining, SeedAndKnobsShapeTheTrajectory)
{
    LearnedParams base;
    LearnedModel ref = trainOn(base);

    LearnedParams seeded = base;
    seeded.seed = 2;
    EXPECT_NE(trainOn(seeded).digest(), ref.digest());

    LearnedParams rate = base;
    rate.lr = 0.16;
    EXPECT_NE(trainOn(rate).digest(), ref.digest());

    // More passes continue the same RNG stream, not replay pass 1.
    EXPECT_NE(trainOn(base, 6'000, 1).digest(), ref.digest());
}

TEST(LearnedTraining, UntrainedModelPredictsFullSpeed)
{
    LearnedModel m;
    EXPECT_FALSE(m.trained());
    // Bias-only weights: full speed whatever the interval looks like.
    control::LearnedFeatures busy = {1.0, 0.9, 0.1, 0.8};
    control::LearnedFeatures idle = {1.0, 0.0, 0.0, 0.0};
    for (Domain d : scaledDomains()) {
        EXPECT_DOUBLE_EQ(m.predict(d, busy), 1.0);
        EXPECT_DOUBLE_EQ(m.predict(d, idle), 1.0);
    }
    EXPECT_EQ(trainOn(LearnedParams{}, 0).samples, 0u);
}

// ---------------------------------------------------------------- //
// Harness integration                                              //
// ---------------------------------------------------------------- //

TEST(LearnedPolicy, CanonicalSpecAndCacheKeyArePinned)
{
    Runner runner(smallConfig());
    std::string key =
        runner.cacheKey("gsm_decode", PolicySpec::of("learned"));
    ASSERT_TRUE(testpins::hasCacheKeyTag(key)) << key;
    // The training regime (LearnedConfig) travels in the fingerprint
    // (prefix `ln`), not in this tail — changing it must still change
    // the key.
    EXPECT_EQ(testpins::cacheKeyTail(key),
              "|learned:seed=1.000,lr=0.080,explore=0.250,"
              "interval=2000.000|gsm_decode|w8000");

    ExpConfig regime = smallConfig();
    regime.learned.trainWindow = 12'000;
    EXPECT_NE(Runner(regime).cacheKey("gsm_decode",
                                      PolicySpec::of("learned")),
              key);
}

TEST(LearnedPolicy, SameSeedOutcomeIsReproducible)
{
    Outcome a = Runner(smallConfig())
                    .run("gsm_decode", PolicySpec::of("learned"));
    Outcome b = Runner(smallConfig())
                    .run("gsm_decode", PolicySpec::of("learned"));
    EXPECT_DOUBLE_EQ(a.timePs, b.timePs);
    EXPECT_DOUBLE_EQ(a.energyNj, b.energyNj);
    EXPECT_DOUBLE_EQ(a.metrics.energyDelayImprovementPct,
                     b.metrics.energyDelayImprovementPct);
}

TEST(LearnedPolicy, NoTrainingDataFallsBackToBaseline)
{
    ExpConfig cfg = smallConfig();
    cfg.learned.trainWindow = 0;
    Runner runner(cfg);
    Outcome learned =
        runner.run("gsm_decode", PolicySpec::of("learned"));
    Outcome baseline =
        runner.run("gsm_decode", PolicySpec::of("baseline"));
    // The untrained model predicts full speed and the controller only
    // writes targets that move, so the schedule is the baseline
    // schedule: identical time, zero reconfigs.  Energy agrees to
    // accumulation order — installing the interval hook changes the
    // order the per-cycle energy terms are summed in, which moves the
    // last ulp but nothing physical.
    EXPECT_DOUBLE_EQ(learned.timePs, baseline.timePs);
    EXPECT_NEAR(learned.energyNj, baseline.energyNj,
                1e-9 * baseline.energyNj);
    EXPECT_DOUBLE_EQ(learned.reconfigs, 0.0);
    EXPECT_DOUBLE_EQ(learned.metrics.slowdownPct, 0.0);
    EXPECT_NEAR(learned.metrics.energySavingsPct, 0.0, 1e-9);
}

TEST(LearnedPolicy, RegretAgainstOracleIsBounded)
{
    Runner runner(smallConfig());
    Outcome oracle = runner.run(
        "gsm_decode", PolicySpec::of("offline").set("d", 10.0));
    Outcome learned =
        runner.run("gsm_decode", PolicySpec::of("learned"));
    double regret = oracle.metrics.energyDelayImprovementPct -
                    learned.metrics.energyDelayImprovementPct;
    // Deterministic, so this is a pin more than a tolerance: the
    // trained controller must stay within shouting distance of the
    // offline oracle and must never *hurt* energy x delay by more
    // than the oracle gains.
    EXPECT_LT(regret, 50.0);
    EXPECT_GT(learned.metrics.energyDelayImprovementPct, -25.0);
}

TEST(LearnedPolicy, RefusesSampledSimulation)
{
    ExpConfig cfg = smallConfig();
    cfg.sim.sampling.mode = sim::SamplingMode::Sampled;
    cfg.sim.sampling.intervalInstrs = 4'000;
    cfg.sim.sampling.sampleInstrs = 600;
    cfg.sim.sampling.warmupInstrs = 200;
    Runner runner(cfg);
    // Feedback controllers diverge in decision space under sampling
    // (docs/SAMPLING.md); the learned policy must refuse loudly, with
    // the same catchable error the CLI reports.
    EXPECT_THROW(runner.run("gsm_decode", PolicySpec::of("learned")),
                 workload::SpecError);
}
