/**
 * @file
 * Property tests across the whole 19-benchmark synthetic suite.
 */

#include <gtest/gtest.h>

#include "workload/spec.hh"
#include "workload/stream.hh"
#include "workload/suite.hh"

using namespace mcd::workload;

class SuiteProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteProperty, BuildsAndStreams)
{
    Benchmark bm = makeBenchmark(GetParam());
    EXPECT_FALSE(bm.program.functions.empty());
    Stream s(bm.program, bm.train);
    StreamItem item;
    std::uint64_t instrs = 0;
    while (s.next(item) && instrs < 50'000)
        instrs += item.kind == StreamItem::Kind::Instr;
    EXPECT_GT(instrs, 10'000u) << "benchmark too short to profile";
}

TEST_P(SuiteProperty, MarkersBalancedInWindow)
{
    Benchmark bm = makeBenchmark(GetParam());
    Stream s(bm.program, bm.ref);
    StreamItem item;
    std::uint64_t instrs = 0;
    int func_depth = 0;
    while (s.next(item) && instrs < 100'000) {
        if (item.kind == StreamItem::Kind::Instr) {
            ++instrs;
        } else {
            if (item.marker.kind == MarkerKind::FuncEnter)
                ++func_depth;
            if (item.marker.kind == MarkerKind::FuncExit)
                --func_depth;
            ASSERT_GE(func_depth, 0);
            ASSERT_LE(func_depth, 32) << "runaway call depth";
        }
    }
}

TEST_P(SuiteProperty, ReferenceAtLeastAsLongAsTraining)
{
    Benchmark bm = makeBenchmark(GetParam());
    auto count = [&](const InputSet &in) {
        Stream s(bm.program, in);
        StreamItem item;
        std::uint64_t n = 0;
        while (s.next(item) && n < 3'000'000)
            n += item.kind == StreamItem::Kind::Instr;
        return n;
    };
    std::uint64_t t = count(bm.train);
    std::uint64_t r = count(bm.ref);
    EXPECT_GE(r, t * 9 / 10)
        << "reference input should not be much shorter than training";
}

TEST_P(SuiteProperty, DeterministicInstrCount)
{
    Benchmark bm = makeBenchmark(GetParam());
    auto count = [&]() {
        Stream s(bm.program, bm.train);
        StreamItem item;
        std::uint64_t n = 0;
        while (s.next(item) && n < 200'000)
            n += item.kind == StreamItem::Kind::Instr;
        return n;
    };
    EXPECT_EQ(count(), count());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteProperty,
                         ::testing::ValuesIn(suiteNames()),
                         [](const auto &info) { return info.param; });

TEST(Suite, NamesStable)
{
    EXPECT_EQ(suiteNames().size(), 19u);
    EXPECT_TRUE(isSuiteBenchmark("gzip"));
    EXPECT_FALSE(isSuiteBenchmark("doom"));
}

TEST(Suite, UnknownNameIsCatchableAndListsWhatExists)
{
    // makeBenchmark routes through the WorkloadRegistry: an unknown
    // name is a SpecError (not a process-terminating fatal), and
    // the message names the registered workloads so a CLI typo is
    // self-diagnosing.
    try {
        makeBenchmark("doom");
        FAIL() << "unknown benchmark did not throw";
    } catch (const SpecError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown workload 'doom'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("gzip"), std::string::npos) << msg;
        EXPECT_NE(msg.find("gen"), std::string::npos) << msg;
    }
}

TEST(Suite, Mpeg2DecodeDivergesBetweenInputs)
{
    Benchmark bm = makeBenchmark("mpeg2_decode");
    const Function *bpred_fn =
        bm.program.findFunction("decode_bpred_mb");
    ASSERT_NE(bpred_fn, nullptr);
    auto count_enters = [&](const InputSet &in) {
        Stream s(bm.program, in);
        StreamItem item;
        std::uint64_t n = 0, instrs = 0;
        while (s.next(item) && instrs < 400'000) {
            if (item.kind == StreamItem::Kind::Instr)
                ++instrs;
            else if (item.marker.kind == MarkerKind::FuncEnter &&
                     item.marker.func == bpred_fn->id)
                ++n;
        }
        return n;
    };
    EXPECT_EQ(count_enters(bm.train), 0u);
    EXPECT_GT(count_enters(bm.ref), 0u);
}
