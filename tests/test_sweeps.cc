/**
 * @file
 * Parameterized property sweeps over the simulator: monotonicity of
 * run time in domain frequency, energy monotonicity in voltage,
 * determinism under every context mode, synchronization margins
 * across frequency pairs.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/processor.hh"
#include "workload/suite.hh"

using namespace mcd;
using namespace mcd::sim;
using namespace mcd::workload;

namespace
{

RunResult
runAt(const Benchmark &bm, const FreqSet &freqs,
      std::uint64_t n = 15'000)
{
    SimConfig scfg;
    power::PowerConfig pcfg;
    Processor proc(scfg, pcfg, bm.program, bm.train);
    proc.setInitialFreqs(freqs);
    return proc.run(n);
}

} // namespace

/** Uniformly scaling the whole chip down must monotonically slow it
 *  and save energy. */
class UniformScaleSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(UniformScaleSweep, TimeUpEnergyDown)
{
    Benchmark bm = makeBenchmark("jpeg_compress");
    Mhz f = static_cast<Mhz>(GetParam());
    RunResult fast = runAt(bm, {1000, 1000, 1000, 1000});
    RunResult slow = runAt(bm, {f, f, f, f});
    EXPECT_GT(slow.timePs, fast.timePs);
    EXPECT_LT(slow.chipEnergyNj, fast.chipEnergyNj);
}

INSTANTIATE_TEST_SUITE_P(Freqs, UniformScaleSweep,
                         ::testing::Values(900, 750, 600, 450, 300,
                                           250));

/** Per-domain monotonicity: lowering one domain further never makes
 *  the program faster. */
class DomainScaleSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DomainScaleSweep, MonotoneInDomainFrequency)
{
    Benchmark bm = makeBenchmark("epic_decode");
    int d = GetParam();
    FreqSet hi = {1000, 1000, 1000, 1000};
    FreqSet mid = hi, lo = hi;
    mid[static_cast<size_t>(d)] = 600;
    lo[static_cast<size_t>(d)] = 250;
    Tick t_hi = runAt(bm, hi).timePs;
    Tick t_mid = runAt(bm, mid).timePs;
    Tick t_lo = runAt(bm, lo).timePs;
    // Allow ~1% jitter-induced noise in the comparisons.
    EXPECT_GE(static_cast<double>(t_mid) * 1.01,
              static_cast<double>(t_hi));
    EXPECT_GE(static_cast<double>(t_lo) * 1.01,
              static_cast<double>(t_mid));
}

INSTANTIATE_TEST_SUITE_P(Domains, DomainScaleSweep,
                         ::testing::Range(0, NUM_SCALED_DOMAINS));

/** The full pipeline is deterministic under every context mode. */
class ModeDeterminism
    : public ::testing::TestWithParam<core::ContextMode>
{
};

TEST_P(ModeDeterminism, TrainAndRunTwiceIdentical)
{
    Benchmark bm = makeBenchmark("gsm_encode");
    SimConfig scfg;
    scfg.rampNsPerMhz = 2.2;
    power::PowerConfig pcfg;
    auto once = [&]() {
        core::PipelineConfig pc;
        pc.mode = GetParam();
        pc.slowdownPct = 8.0;
        core::ProfilePipeline pipe(bm.program, pc);
        pipe.train(bm.train, scfg, pcfg);
        return pipe.runProduction(bm.ref, scfg, pcfg, 40'000);
    };
    RunResult a = once();
    RunResult b = once();
    EXPECT_EQ(a.timePs, b.timePs);
    EXPECT_DOUBLE_EQ(a.chipEnergyNj, b.chipEnergyNj);
    EXPECT_EQ(a.reconfigs, b.reconfigs);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ModeDeterminism,
    ::testing::Values(core::ContextMode::LFCP, core::ContextMode::LFP,
                      core::ContextMode::FCP, core::ContextMode::FP,
                      core::ContextMode::LF, core::ContextMode::F),
    [](const auto &info) {
        std::string s = core::contextModeName(info.param);
        for (auto &c : s)
            if (c == '+')
                c = '_';
        return s;
    });

/** Sync margin properties across frequency pairs. */
class SyncMarginSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SyncMarginSweep, WindowTracksFasterClock)
{
    SimConfig cfg;
    auto [src_mhz, dst_mhz] = GetParam();
    Tick sp = periodPs(static_cast<Mhz>(src_mhz));
    Tick dp = periodPs(static_cast<Mhz>(dst_mhz));
    Tick margin = syncMarginPs(cfg, Domain::Integer, Domain::Memory,
                               sp, dp);
    Tick faster = std::min(sp, dp);
    EXPECT_EQ(margin, static_cast<Tick>(cfg.syncWindowFrac *
                                        static_cast<double>(faster)));
    // Symmetric in the period pair.
    EXPECT_EQ(margin, syncMarginPs(cfg, Domain::Memory,
                                   Domain::Integer, dp, sp));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SyncMarginSweep,
    ::testing::Values(std::make_pair(1000, 1000),
                      std::make_pair(1000, 250),
                      std::make_pair(250, 1000),
                      std::make_pair(475, 650),
                      std::make_pair(250, 250)));
