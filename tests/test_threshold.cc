/**
 * @file
 * Slowdown-thresholding tests: exact budget arithmetic on crafted
 * histograms, monotonicity in d, boundary behaviours.
 */

#include <gtest/gtest.h>

#include "core/threshold.hh"

using namespace mcd;
using namespace mcd::core;

namespace
{

NodeHistograms
singleDomainHist(Domain d, std::initializer_list<std::pair<Mhz, double>>
                               bins,
                 Tick span_ps)
{
    NodeHistograms n;
    for (auto [f, c] : bins)
        n.hist[static_cast<int>(d)].add(f, c);
    n.spanPs = span_ps;
    return n;
}

} // namespace

TEST(Threshold, EmptyDomainsGetMinimumFrequency)
{
    NodeHistograms n;
    n.spanPs = 1'000'000;
    ThresholdConfig cfg;
    auto f = chooseFrequencies(n, cfg);
    for (int d = 0; d < NUM_SCALED_DOMAINS; ++d)
        EXPECT_DOUBLE_EQ(f[static_cast<size_t>(d)], 250.0);
}

TEST(Threshold, AllTopBinWithTinyBudgetStaysFast)
{
    // 100k cycles of critical (1000 MHz) integer work in a 100 us
    // node: running at 975 MHz would cost 100000*(1/975-1/1000) =
    // 2.56 us of extra time.  With d=0.1% (0.1 us budget at share 1)
    // the threshold must keep the domain at 1000.
    auto n = singleDomainHist(Domain::Integer, {{1000.0, 100'000.0}},
                              100'000'000);
    ThresholdConfig cfg;
    cfg.slowdownPct = 0.1;
    cfg.perDomainShare = 1.0;
    auto f = chooseFrequencies(n, cfg);
    EXPECT_DOUBLE_EQ(f[static_cast<size_t>(Domain::Integer)], 1000.0);
}

TEST(Threshold, ShakenWorkPermitsLowFrequency)
{
    // All work already shaken to 250 MHz: any frequency >= 250 costs
    // nothing extra, so the minimum is chosen.
    auto n = singleDomainHist(Domain::Integer, {{250.0, 100'000.0}},
                              100'000'000);
    ThresholdConfig cfg;
    cfg.slowdownPct = 1.0;
    auto f = chooseFrequencies(n, cfg);
    EXPECT_DOUBLE_EQ(f[static_cast<size_t>(Domain::Integer)], 250.0);
}

TEST(Threshold, ExactBudgetBoundary)
{
    // 10k top-bin cycles in a 10 ms node, share 1.  Extra time at
    // f: 10000*(1/f - 1/1000) us.  At f=500: 10 us.  So d must be
    // >= 0.1% for 500 MHz to be acceptable.
    auto n = singleDomainHist(Domain::Integer, {{1000.0, 10'000.0}},
                              10'000'000'000ULL);
    ThresholdConfig cfg;
    cfg.perDomainShare = 1.0;

    cfg.slowdownPct = 0.11;
    auto f_loose = chooseFrequencies(n, cfg);
    EXPECT_LE(f_loose[static_cast<size_t>(Domain::Integer)], 500.0);

    cfg.slowdownPct = 0.05;
    auto f_tight = chooseFrequencies(n, cfg);
    EXPECT_GT(f_tight[static_cast<size_t>(Domain::Integer)], 500.0);
}

TEST(Threshold, FrontEndUsesItsOwnShare)
{
    auto make = [](Domain d) {
        return singleDomainHist(d, {{1000.0, 10'000.0}},
                                10'000'000'000ULL);
    };
    ThresholdConfig cfg;
    cfg.slowdownPct = 0.2;
    cfg.perDomainShare = 1.0;
    cfg.frontEndShare = 0.05;
    auto fe = chooseFrequencies(make(Domain::FrontEnd), cfg);
    auto in = chooseFrequencies(make(Domain::Integer), cfg);
    EXPECT_GT(fe[static_cast<size_t>(Domain::FrontEnd)],
              in[static_cast<size_t>(Domain::Integer)])
        << "front end must be throttled more conservatively";
}

/** Property: chosen frequency is non-increasing in d. */
class ThresholdMonotonic : public ::testing::TestWithParam<double>
{
};

TEST_P(ThresholdMonotonic, FrequencyNonIncreasingInD)
{
    NodeHistograms n;
    // A spread of work across bins.
    for (Mhz f = 250.0; f <= 1000.0; f += 125.0)
        n.hist[static_cast<int>(Domain::Memory)].add(f, 5'000.0);
    n.spanPs = 50'000'000;

    ThresholdConfig lo_cfg, hi_cfg;
    lo_cfg.slowdownPct = GetParam();
    hi_cfg.slowdownPct = GetParam() + 2.0;
    auto f_lo = chooseFrequencies(n, lo_cfg);
    auto f_hi = chooseFrequencies(n, hi_cfg);
    EXPECT_GE(f_lo[static_cast<size_t>(Domain::Memory)],
              f_hi[static_cast<size_t>(Domain::Memory)]);
}

INSTANTIATE_TEST_SUITE_P(DSweep, ThresholdMonotonic,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0,
                                           12.0));

TEST(Threshold, OutputQuantizedToSteps)
{
    NodeHistograms n;
    n.hist[static_cast<int>(Domain::Integer)].add(733.0, 1'000.0);
    n.spanPs = 1'000'000;
    ThresholdConfig cfg;
    auto f = chooseFrequencies(n, cfg);
    double v = f[static_cast<size_t>(Domain::Integer)];
    EXPECT_DOUBLE_EQ(v, cfg.steps.quantize(v));
}
