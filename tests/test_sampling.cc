/**
 * @file
 * Tests for sampled + checkpointed simulation (sim/sampling.hh,
 * sim/checkpoint.hh): spec parse/canonical round-trips and error
 * cases, meanCi95 math, determinism of sampled runs, equivalence of
 * checkpoint-replay and inline functional warm-up, checkpoint
 * serialization round-trips (and rejection of corrupt blobs),
 * exact-mode neutrality of the sampled reporting fields, the pinned
 * cache-key shape for sampled cells (schema tag hoisted into
 * cache_key_util.hh), and the chip-cell rejection of sampled mode.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "sim/checkpoint.hh"
#include "sim/processor.hh"
#include "sim/sampling.hh"
#include "util/stats.hh"
#include "workload/spec.hh"
#include "workload/suite.hh"

#include "cache_key_util.hh"

using namespace mcd;
using sim::SamplingConfig;
using sim::SamplingMode;

namespace
{

SamplingConfig
sampledCfg(std::uint64_t interval = 4'000,
           std::uint64_t sample = 600, std::uint64_t warmup = 200)
{
    SamplingConfig c;
    c.mode = SamplingMode::Sampled;
    c.intervalInstrs = interval;
    c.sampleInstrs = sample;
    c.warmupInstrs = warmup;
    return c;
}

sim::RunResult
runOnce(const workload::Benchmark &bm, const sim::SimConfig &scfg,
        std::uint64_t window,
        std::shared_ptr<const sim::CheckpointSet> cps = nullptr)
{
    power::PowerConfig pcfg;
    sim::Processor proc(scfg, pcfg, bm.program, bm.train);
    proc.setCheckpoints(std::move(cps));
    return proc.run(window);
}

/** Field-by-field equality of everything a RunResult reports. */
void
expectSameResult(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.timePs, b.timePs);
    EXPECT_EQ(a.chipEnergyNj, b.chipEnergyNj);
    EXPECT_EQ(a.dramEnergyNj, b.dramEnergyNj);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.sampleIntervals, b.sampleIntervals);
    EXPECT_EQ(a.skippedInstrs, b.skippedInstrs);
    EXPECT_EQ(a.timeCiPs, b.timeCiPs);
    EXPECT_EQ(a.energyCiNj, b.energyCiNj);
}

} // namespace

// ---------------------------------------------------------------- //
// Spec grammar                                                     //
// ---------------------------------------------------------------- //

TEST(SamplingSpec, ParseDefaultsAndCanonicalRoundTrip)
{
    SamplingConfig exact = sim::parseSamplingSpec("exact");
    EXPECT_FALSE(exact.sampled());
    EXPECT_EQ(sim::canonicalSamplingSpec(exact), "exact");

    SamplingConfig s = sim::parseSamplingSpec("sampled");
    EXPECT_TRUE(s.sampled());
    EXPECT_EQ(s.intervalInstrs, 10'000u);
    EXPECT_EQ(s.sampleInstrs, 600u);
    EXPECT_EQ(s.warmupInstrs, 400u);
    EXPECT_DOUBLE_EQ(s.ciBiasPct, 1.0);
    EXPECT_EQ(sim::canonicalSamplingSpec(s),
              "sampled:interval=10000,sample=600,warmup=400,"
              "ci=1.000");

    // parse(canonical(cfg)) is the identity on every knob.
    SamplingConfig c = sim::parseSamplingSpec(
        "sampled:warmup=50,interval=900,ci=2.5,sample=100");
    SamplingConfig c2 =
        sim::parseSamplingSpec(sim::canonicalSamplingSpec(c));
    EXPECT_EQ(c2.intervalInstrs, 900u);
    EXPECT_EQ(c2.sampleInstrs, 100u);
    EXPECT_EQ(c2.warmupInstrs, 50u);
    EXPECT_DOUBLE_EQ(c2.ciBiasPct, 2.5);
}

TEST(SamplingSpec, BadSpecsThrowSpecError)
{
    EXPECT_THROW(sim::parseSamplingSpec(""), workload::SpecError);
    EXPECT_THROW(sim::parseSamplingSpec("fast"),
                 workload::SpecError);
    // exact takes no parameters.
    EXPECT_THROW(sim::parseSamplingSpec("exact:interval=100"),
                 workload::SpecError);
    // Unknown key, malformed value, out-of-range ci.
    EXPECT_THROW(sim::parseSamplingSpec("sampled:probes=3"),
                 workload::SpecError);
    EXPECT_THROW(sim::parseSamplingSpec("sampled:interval=abc"),
                 workload::SpecError);
    EXPECT_THROW(sim::parseSamplingSpec("sampled:interval=0"),
                 workload::SpecError);
    EXPECT_THROW(sim::parseSamplingSpec("sampled:ci=101"),
                 workload::SpecError);
    // Warm-up is mandatory in sampled mode...
    EXPECT_THROW(sim::parseSamplingSpec("sampled:warmup=0"),
                 workload::SpecError);
    // ...and the probe must leave room to skip.
    EXPECT_THROW(
        sim::parseSamplingSpec(
            "sampled:interval=1000,sample=900,warmup=100"),
        workload::SpecError);
}

// ---------------------------------------------------------------- //
// CI math                                                          //
// ---------------------------------------------------------------- //

TEST(SamplingStats, MeanCi95MatchesHandComputation)
{
    EXPECT_EQ(meanCi95({}).n, 0u);
    MeanCi one = meanCi95({4.0});
    EXPECT_DOUBLE_EQ(one.mean, 4.0);
    EXPECT_DOUBLE_EQ(one.ci95, 0.0);

    // {2, 4, 6}: mean 4, sample sd 2, ci95 = 1.96 * 2 / sqrt(3).
    MeanCi m = meanCi95({2.0, 4.0, 6.0});
    EXPECT_EQ(m.n, 3u);
    EXPECT_DOUBLE_EQ(m.mean, 4.0);
    EXPECT_NEAR(m.ci95, 1.96 * 2.0 / std::sqrt(3.0), 1e-12);
}

// ---------------------------------------------------------------- //
// Sampled runs                                                     //
// ---------------------------------------------------------------- //

TEST(SampledRun, ExactModeReportsNoSampling)
{
    workload::Benchmark bm = workload::makeBenchmark("gsm_decode");
    sim::SimConfig scfg;  // default sampling = exact
    sim::RunResult r = runOnce(bm, scfg, 12'000);
    EXPECT_FALSE(r.sampled);
    EXPECT_EQ(r.sampleIntervals, 0u);
    EXPECT_EQ(r.skippedInstrs, 0u);
    EXPECT_EQ(r.timeCiPs, 0);
    EXPECT_EQ(r.energyCiNj, 0.0);
}

TEST(SampledRun, DeterministicAcrossRepeats)
{
    workload::Benchmark bm = workload::makeBenchmark("gsm_decode");
    sim::SimConfig scfg;
    scfg.sampling = sampledCfg();
    sim::RunResult a = runOnce(bm, scfg, 12'000);
    sim::RunResult b = runOnce(bm, scfg, 12'000);
    EXPECT_TRUE(a.sampled);
    EXPECT_GT(a.sampleIntervals, 0u);
    EXPECT_GT(a.skippedInstrs, 0u);
    EXPECT_GT(a.timeCiPs, 0);
    expectSameResult(a, b);
}

TEST(SampledRun, EstimateTracksExactRun)
{
    // Determinism makes this loose bound stable: the extrapolated
    // time/energy of a sampled run must land near the exact run's.
    workload::Benchmark bm = workload::makeBenchmark("gsm_decode");
    sim::SimConfig exact;
    sim::RunResult e = runOnce(bm, exact, 20'000);
    sim::SimConfig scfg;
    scfg.sampling = sampledCfg();
    sim::RunResult s = runOnce(bm, scfg, 20'000);
    EXPECT_EQ(s.instrs, e.instrs);
    double t_err = std::abs(static_cast<double>(s.timePs) -
                            static_cast<double>(e.timePs)) /
                   static_cast<double>(e.timePs);
    double en_err = std::abs(s.chipEnergyNj - e.chipEnergyNj) /
                    e.chipEnergyNj;
    EXPECT_LT(t_err, 0.10) << s.timePs << " vs " << e.timePs;
    EXPECT_LT(en_err, 0.10)
        << s.chipEnergyNj << " vs " << e.chipEnergyNj;
}

TEST(SampledRun, CheckpointReplayMatchesInlineWalk)
{
    auto bm = std::make_shared<workload::Benchmark>(
        workload::makeBenchmark("gsm_decode"));
    sim::SimConfig scfg;
    scfg.sampling = sampledCfg();
    std::shared_ptr<const workload::Program> prog(bm, &bm->program);
    auto cps =
        sim::CheckpointSet::build(prog, bm->train, scfg, 12'000);
    ASSERT_TRUE(cps);
    ASSERT_TRUE(cps->matches(scfg.sampling, 12'000));
    sim::RunResult inline_walk = runOnce(*bm, scfg, 12'000);
    sim::RunResult replay = runOnce(*bm, scfg, 12'000, cps);
    expectSameResult(inline_walk, replay);
}

TEST(SampledRun, MismatchedCheckpointsFallBackToInlineWalk)
{
    auto bm = std::make_shared<workload::Benchmark>(
        workload::makeBenchmark("gsm_decode"));
    sim::SimConfig scfg;
    scfg.sampling = sampledCfg();
    std::shared_ptr<const workload::Program> prog(bm, &bm->program);
    // Built for a different window: matches() is false and the run
    // must ignore the set rather than replay the wrong trajectory.
    auto cps =
        sim::CheckpointSet::build(prog, bm->train, scfg, 8'000);
    ASSERT_TRUE(cps);
    EXPECT_FALSE(cps->matches(scfg.sampling, 12'000));
    expectSameResult(runOnce(*bm, scfg, 12'000),
                     runOnce(*bm, scfg, 12'000, cps));
}

// ---------------------------------------------------------------- //
// Serialization                                                    //
// ---------------------------------------------------------------- //

TEST(CheckpointIo, SerializeDeserializeRoundTrip)
{
    auto bm = std::make_shared<workload::Benchmark>(
        workload::makeBenchmark("gsm_decode"));
    sim::SimConfig scfg;
    scfg.sampling = sampledCfg();
    std::shared_ptr<const workload::Program> prog(bm, &bm->program);
    auto built =
        sim::CheckpointSet::build(prog, bm->train, scfg, 12'000);
    ASSERT_TRUE(built);
    std::string bytes;
    built->serialize(bytes);
    EXPECT_FALSE(bytes.empty());

    auto loaded = sim::CheckpointSet::deserialize(bytes, prog,
                                                  bm->train, scfg);
    ASSERT_TRUE(loaded);
    EXPECT_EQ(loaded->points().size(), built->points().size());
    EXPECT_TRUE(loaded->matches(scfg.sampling, 12'000));
    // The real equivalence check: a replay from the loaded set is
    // bit-identical to one from the freshly built set.
    expectSameResult(runOnce(*bm, scfg, 12'000, built),
                     runOnce(*bm, scfg, 12'000, loaded));
}

TEST(CheckpointIo, CorruptBlobsReturnNull)
{
    auto bm = std::make_shared<workload::Benchmark>(
        workload::makeBenchmark("gsm_decode"));
    sim::SimConfig scfg;
    scfg.sampling = sampledCfg();
    std::shared_ptr<const workload::Program> prog(bm, &bm->program);
    auto built =
        sim::CheckpointSet::build(prog, bm->train, scfg, 12'000);
    std::string bytes;
    built->serialize(bytes);

    EXPECT_EQ(sim::CheckpointSet::deserialize("", prog, bm->train,
                                              scfg),
              nullptr);
    std::string bad_magic = bytes;
    bad_magic[0] ^= 0x5a;
    EXPECT_EQ(sim::CheckpointSet::deserialize(bad_magic, prog,
                                              bm->train, scfg),
              nullptr);
    std::string truncated = bytes.substr(0, bytes.size() / 2);
    EXPECT_EQ(sim::CheckpointSet::deserialize(truncated, prog,
                                              bm->train, scfg),
              nullptr);
}

// ---------------------------------------------------------------- //
// exp/ integration                                                 //
// ---------------------------------------------------------------- //

TEST(SamplingCacheKeys, SampledCellsArePinnedAndDistinct)
{
    exp::ExpConfig cfg;
    cfg.productionWindow = 8'000;
    cfg.analysisWindow = 8'000;
    exp::Runner exact(cfg);
    cfg.sim.sampling = sampledCfg();
    exp::Runner sampled(cfg);

    control::PolicySpec bl = control::PolicySpec::of("baseline");
    std::string ke = exact.cacheKey("gsm_decode", bl);
    std::string ks = sampled.cacheKey("gsm_decode", bl);
    // Both keys carry the schema tag and the 16-hex fingerprint
    // (pinned in cache_key_util.hh); the sampling knobs are inside
    // the fingerprint, so exact and sampled cells can never collide
    // in the cache.
    ASSERT_TRUE(testpins::hasCacheKeyTag(ke)) << ke;
    ASSERT_TRUE(testpins::hasCacheKeyTag(ks)) << ks;
    EXPECT_EQ(testpins::cacheKeyTail(ke),
              "|baseline|gsm_decode|w8000");
    EXPECT_EQ(testpins::cacheKeyTail(ks),
              "|baseline|gsm_decode|w8000");
    EXPECT_NE(ke, ks);

    // Every sampling knob is load-bearing in the fingerprint.
    exp::ExpConfig knob = cfg;
    knob.sim.sampling.ciBiasPct = 2.0;
    EXPECT_NE(exp::Runner(knob).cacheKey("gsm_decode", bl), ks);
    knob = cfg;
    knob.sim.sampling.warmupInstrs = 300;
    EXPECT_NE(exp::Runner(knob).cacheKey("gsm_decode", bl), ks);
}

TEST(SamplingChip, ChipCellsRejectSampledMode)
{
    exp::ExpConfig cfg;
    cfg.productionWindow = 6'000;
    cfg.analysisWindow = 6'000;
    cfg.sim.sampling = sampledCfg();
    exp::Runner runner(cfg);
    exp::ChipCell cell;
    cell.workload = "gsm_decode";
    cell.tiles = 2;
    EXPECT_THROW(runner.runChip(cell), workload::SpecError);
}
