/**
 * @file
 * Tests for the Wattch-style power model: V^2 scaling, domain
 * attribution, leakage.
 */

#include <gtest/gtest.h>

#include "power/power.hh"

using namespace mcd;
using namespace mcd::power;

TEST(PowerModel, AccessEnergyScalesWithVSquared)
{
    PowerConfig cfg;
    PowerModel full(cfg), half(cfg);
    full.access(Unit::IntAlu, 1.2);
    half.access(Unit::IntAlu, 0.6);
    EXPECT_NEAR(half.chipEnergyNj() / full.chipEnergyNj(), 0.25, 1e-9);
}

TEST(PowerModel, DomainAttribution)
{
    PowerConfig cfg;
    PowerModel p(cfg);
    p.access(Unit::FpAlu, 1.2);
    EXPECT_GT(p.domainEnergyNj(Domain::FloatingPoint), 0.0);
    EXPECT_DOUBLE_EQ(p.domainEnergyNj(Domain::Integer), 0.0);
    p.access(Unit::Dcache, 1.2);
    EXPECT_GT(p.domainEnergyNj(Domain::Memory), 0.0);
}

TEST(PowerModel, DramExcludedFromChipEnergy)
{
    PowerConfig cfg;
    PowerModel p(cfg);
    p.access(Unit::Dram, 1.2);
    EXPECT_DOUBLE_EQ(p.chipEnergyNj(), 0.0);
    EXPECT_GT(p.dramEnergyNj(), 0.0);
}

TEST(PowerModel, ClockCyclePerDomain)
{
    PowerConfig cfg;
    PowerModel p(cfg);
    for (int i = 0; i < 1000; ++i)
        p.clockCycle(Domain::FrontEnd, 1.2);
    double fe = p.domainEnergyNj(Domain::FrontEnd);
    EXPECT_NEAR(fe, cfg.clockPj[0], cfg.clockPj[0] * 1e-9);
    // External domain has no scaled clock tree.
    p.clockCycle(Domain::External, 1.2);
    EXPECT_DOUBLE_EQ(p.dramEnergyNj(), 0.0);
}

TEST(PowerModel, LeakageScalesLinearlyWithVAndTime)
{
    PowerConfig cfg;
    PowerModel a(cfg), b(cfg);
    a.leakage(Domain::Integer, 1.2, 1000);
    b.leakage(Domain::Integer, 0.6, 2000);
    // same energy: half voltage, double time
    EXPECT_NEAR(a.chipEnergyNj(), b.chipEnergyNj(), 1e-12);
}

TEST(PowerModel, AccessToChargesRequestedDomain)
{
    PowerConfig cfg;
    PowerModel p(cfg);
    p.accessTo(Unit::IssueQueue, Domain::FloatingPoint, 1.2);
    EXPECT_GT(p.domainEnergyNj(Domain::FloatingPoint), 0.0);
    EXPECT_DOUBLE_EQ(p.domainEnergyNj(Domain::Integer), 0.0);
}

TEST(PowerModel, UnitBreakdownSumsToTotals)
{
    PowerConfig cfg;
    PowerModel p(cfg);
    p.access(Unit::Icache, 1.1);
    p.access(Unit::Dcache, 1.0);
    p.access(Unit::Dram, 1.2);
    double unit_sum = 0.0;
    for (double e : p.unitEnergyNj())
        unit_sum += e;
    EXPECT_NEAR(unit_sum, p.chipEnergyNj() + p.dramEnergyNj(), 1e-12);
}

TEST(PowerConfig, DomainWeightsNormalizedish)
{
    PowerConfig cfg;
    double sum = 0.0;
    for (double w : cfg.domainWeight)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}
