/**
 * @file
 * Tests for domain clocks: edges, jitter bounds, DVFS ramping,
 * voltage tracking, synchronization margins.
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"

using namespace mcd;
using namespace mcd::sim;

namespace
{

SimConfig
cfg()
{
    return SimConfig{};
}

} // namespace

TEST(DomainClock, NominalPeriodAtFullSpeed)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, false, Rng(1));
    Tick e0 = clk.nextEdge();
    EXPECT_EQ(e0, 1000u);  // 1 GHz -> 1000 ps
    clk.advance();
    EXPECT_EQ(clk.nextEdge(), 2000u);
}

TEST(DomainClock, JitterBoundedAndMonotonic)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, true, Rng(2));
    Tick prev = 0;
    for (int i = 1; i <= 5000; ++i) {
        Tick e = clk.nextEdge();
        ASSERT_GT(e, prev);
        // nominal edge is i*1000; jitter bounded by 110 ps
        ASSERT_GE(e + 110, static_cast<Tick>(i) * 1000);
        ASSERT_LE(e, static_cast<Tick>(i) * 1000 + 110);
        prev = e;
        clk.advance();
    }
}

TEST(DomainClock, VoltageTracksFrequency)
{
    SimConfig c = cfg();
    EXPECT_DOUBLE_EQ(c.voltageFor(1000.0), 1.20);
    EXPECT_DOUBLE_EQ(c.voltageFor(250.0), 0.65);
    EXPECT_NEAR(c.voltageFor(625.0), 0.925, 1e-12);
    EXPECT_DOUBLE_EQ(c.voltageFor(100.0), 0.65);   // clamped
    EXPECT_DOUBLE_EQ(c.voltageFor(2000.0), 1.20);  // clamped
}

TEST(DomainClock, RampTakesTimeProportionalToDelta)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, false, Rng(3));
    clk.setTarget(500.0);
    // Full 1000->500 MHz swing at 73.3 ns/MHz = 36.65 us.
    Tick t = 0;
    while (clk.freq() > 500.0) {
        t = clk.nextEdge();
        clk.advance();
        ASSERT_LT(t, 60ULL * 1000 * 1000) << "ramp never completed";
    }
    double expected_ns = 500.0 * c.rampNsPerMhz;
    EXPECT_NEAR(static_cast<double>(t) / 1000.0, expected_ns,
                expected_ns * 0.1);
}

TEST(DomainClock, RampIsGradualNotInstant)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, false, Rng(4));
    clk.setTarget(250.0);
    clk.advance();
    // After one edge the frequency has barely moved.
    EXPECT_GT(clk.freq(), 990.0);
    EXPECT_LT(clk.freq(), 1000.0);
}

TEST(DomainClock, TargetClampedToLegalRange)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, false, Rng(5));
    clk.setTarget(50.0);
    EXPECT_DOUBLE_EQ(clk.target(), 250.0);
    clk.setTarget(5000.0);
    EXPECT_DOUBLE_EQ(clk.target(), 1000.0);
}

TEST(DomainClock, JumpToSetsImmediately)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, false, Rng(6));
    clk.jumpTo(500.0);
    EXPECT_DOUBLE_EQ(clk.freq(), 500.0);
    EXPECT_NEAR(clk.voltage(), c.voltageFor(500.0), 1e-12);
    EXPECT_EQ(clk.nextEdge(), 2000u);  // 500 MHz -> 2000 ps period
}

TEST(DomainClock, AverageFreqReflectsHistory)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, false, Rng(7));
    for (int i = 0; i < 100; ++i)
        clk.advance();
    EXPECT_NEAR(clk.averageFreq(), 1000.0, 1.0);
}

TEST(SyncMargin, ZeroSameDomainOrSingleClock)
{
    SimConfig c = cfg();
    EXPECT_EQ(syncMarginPs(c, Domain::Integer, Domain::Integer, 1000,
                           1000),
              0u);
    SimConfig sc = cfg();
    sc.singleClock = true;
    EXPECT_EQ(syncMarginPs(sc, Domain::Integer, Domain::FrontEnd, 1000,
                           1000),
              0u);
}

TEST(SyncMargin, ThirtyPercentOfFasterClock)
{
    SimConfig c = cfg();
    // Both at 1 GHz: 300 ps (Table 1's synchronization window).
    EXPECT_EQ(syncMarginPs(c, Domain::Integer, Domain::FrontEnd, 1000,
                           1000),
              300u);
    // One domain at 250 MHz: window still set by the faster clock.
    EXPECT_EQ(syncMarginPs(c, Domain::Integer, Domain::FrontEnd, 4000,
                           1000),
              300u);
    EXPECT_EQ(syncMarginPs(c, Domain::Integer, Domain::FrontEnd, 1000,
                           4000),
              300u);
}

TEST(DomainClock, JumpToClampedToLegalRange)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Integer, false, Rng(8));
    clk.jumpTo(10.0);
    EXPECT_DOUBLE_EQ(clk.freq(), c.minMhz);
    EXPECT_DOUBLE_EQ(clk.voltage(), c.minVolt);
    clk.jumpTo(99999.0);
    EXPECT_DOUBLE_EQ(clk.freq(), c.maxMhz);
    EXPECT_DOUBLE_EQ(clk.voltage(), c.maxVolt);
}

TEST(DomainClock, AverageFreqTimeWeightedAcrossRamp)
{
    // Dwell at 1 GHz, ramp to 500 MHz, dwell there: the average must
    // sit strictly between the endpoints and move toward 500 as the
    // low-frequency dwell grows (time weighting, not edge counting).
    // A fast ramp keeps the transition negligible next to the dwells
    // so the two plateaus dominate the closed form below.
    SimConfig c = cfg();
    c.rampNsPerMhz = 0.1;
    DomainClock clk(c, Domain::Integer, false, Rng(9));
    for (int i = 0; i < 1000; ++i)
        clk.advance();
    clk.setTarget(500.0);
    while (clk.ramping())
        clk.advance();
    for (int i = 0; i < 1000; ++i)
        clk.advance();
    Mhz mid = clk.averageFreq();
    EXPECT_GT(mid, 500.0);
    EXPECT_LT(mid, 1000.0);
    // 1000 more edges at 500 MHz cover twice the time of the initial
    // 1000 edges at 1 GHz; the average must keep falling.
    for (int i = 0; i < 1000; ++i)
        clk.advance();
    Mhz later = clk.averageFreq();
    EXPECT_LT(later, mid);
    // Closed form ignoring the (short) ramp: the dwell times weight
    // the two plateaus.  The ramp pulls the true value slightly up.
    double t_fast = 1000.0 * 1000.0;      // 1000 edges @ 1000 ps
    double t_slow = 2000.0 * 2000.0;      // 2000 edges @ 2000 ps
    double plateau_avg =
        (1000.0 * t_fast + 500.0 * t_slow) / (t_fast + t_slow);
    EXPECT_NEAR(later, plateau_avg, 25.0);
    EXPECT_GT(later, plateau_avg);
}

TEST(DomainClock, FastForwardMatchesStepwiseAdvance)
{
    // fastForwardTo must be indistinguishable from stepping
    // advance() edge by edge: same edge count, same (jittered) next
    // edge, same average frequency — the determinism argument for
    // the kernel's idle-edge fast-forward.
    SimConfig c = cfg();
    DomainClock stepped(c, Domain::Memory, true, Rng(10));
    DomainClock jumped(c, Domain::Memory, true, Rng(10));
    const Tick t = 5'000'500;
    std::uint64_t n = 0;
    while (stepped.nextEdge() < t) {
        stepped.advance();
        ++n;
    }
    EXPECT_EQ(jumped.fastForwardTo(t), n);
    EXPECT_GT(n, 4900u);
    EXPECT_EQ(jumped.edges(), stepped.edges());
    EXPECT_EQ(jumped.nextEdge(), stepped.nextEdge());
    EXPECT_GE(jumped.nextEdge(), t);  // consumed edges before t only
    EXPECT_DOUBLE_EQ(jumped.averageFreq(), stepped.averageFreq());
    // ... and the streams stay aligned afterwards.
    for (int i = 0; i < 100; ++i) {
        stepped.advance();
        jumped.advance();
        EXPECT_EQ(jumped.nextEdge(), stepped.nextEdge());
    }
}

/** Ramp property over a sweep of targets: always converges. */
class RampSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RampSweep, ConvergesToTarget)
{
    SimConfig c = cfg();
    DomainClock clk(c, Domain::Memory, true, Rng(11));
    Mhz target = static_cast<Mhz>(GetParam());
    clk.setTarget(target);
    for (int i = 0; i < 200000 && clk.freq() != clk.target(); ++i)
        clk.advance();
    EXPECT_DOUBLE_EQ(clk.freq(), clk.target());
    EXPECT_NEAR(clk.voltage(), c.voltageFor(target), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Targets, RampSweep,
                         ::testing::Values(250, 300, 475, 500, 725, 900,
                                           1000));
